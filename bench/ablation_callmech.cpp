// Ablation A2 (§5.1/§2.2): per-call cost of the managed-to-native call
// mechanisms — FCall (internally trusted, Motor's path) vs P/Invoke
// (Indiana bindings, on both host profiles) vs JNI (mpiJava). This is the
// fixed per-operation term that separates the Figure 9 curves at small
// buffer sizes.
#include <benchmark/benchmark.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace {

using namespace motor;

vm::VmConfig host(vm::RuntimeProfile profile) {
  vm::VmConfig c;
  c.profile = std::move(profile);
  c.heap.young_bytes = 1 << 20;
  return c;
}

vm::Value nop_body(vm::Vm&, vm::ManagedThread&,
                   std::span<const vm::Value>) {
  return vm::Value();
}

void BM_FCall_SSCLI(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::sscli()));
  vm::ManagedThread thread(vm);
  const int idx = vm.fcalls().register_fcall("nop", nop_body);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.fcalls().invoke(vm, thread, idx, {}));
  }
}
BENCHMARK(BM_FCall_SSCLI);

void BM_PInvoke_SSCLI(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::sscli()));
  vm::ManagedThread thread(vm);
  const int idx = vm.pinvokes().register_entry("nop", nop_body);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.pinvokes().invoke(vm, thread, idx, {}));
  }
}
BENCHMARK(BM_PInvoke_SSCLI);

void BM_PInvoke_CommercialNET(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::commercial_net()));
  vm::ManagedThread thread(vm);
  const int idx = vm.pinvokes().register_entry("nop", nop_body);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.pinvokes().invoke(vm, thread, idx, {}));
  }
}
BENCHMARK(BM_PInvoke_CommercialNET);

void BM_JNI_SunJvm(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::sun_jvm()));
  vm::ManagedThread thread(vm);
  const int idx = vm.pinvokes().register_entry("nop", nop_body);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 64));
  const vm::Value args[] = {vm::Value::from_ref(arr.get())};
  for (auto _ : state) {
    // JNI auto-pins the array argument every call (§2.3).
    benchmark::DoNotOptimize(vm.pinvokes().invoke_jni(vm, thread, idx, args));
  }
}
BENCHMARK(BM_JNI_SunJvm);

/// The pin/unpin pair in isolation (the cost the Motor policy avoids).
void BM_PinUnpinPair(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::uncosted()));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 64));
  for (auto _ : state) {
    vm.heap().pin(arr.get());
    vm.heap().unpin(arr.get());
  }
}
BENCHMARK(BM_PinUnpinPair);

/// The Motor young-generation boundary check (the policy's fast test).
void BM_GenerationCheck(benchmark::State& state) {
  vm::Vm vm(host(vm::RuntimeProfile::uncosted()));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.heap().in_young(arr.get()));
  }
}
BENCHMARK(BM_GenerationCheck);

}  // namespace

BENCHMARK_MAIN();
