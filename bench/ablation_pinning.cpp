// Ablation A1 (§7.4): the Motor pinning policy vs the wrapper-style
// always-pin discipline, on the Figure 9 ping-pong. Reports per-iteration
// time and pin-table traffic for young and elder buffers.
#include <cstdio>

#include "series.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

struct Case {
  const char* name;
  mp::PinMode mode;
};

double pinning_pingpong_us(std::size_t bytes, mp::PinMode mode, bool elder,
                           std::uint64_t* pin_calls) {
  PingPongSpec spec;
  spec.warmup_iterations = 50;
  spec.timed_iterations = 100;
  spec.repeats = 3;
  auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  const double us = baselines::run_pingpong_us(
      spec, [bytes, mode, elder, calls](mpi::RankCtx& ctx) {
        auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sscli());
        mp::MPDirectConfig cfg;
        cfg.pin_mode = mode;
        auto direct = std::make_shared<mp::MPDirect>(host->vm, host->thread,
                                                     ctx.comm_world(), cfg);
        const vm::MethodTable* mt =
            host->vm.types().primitive_array(vm::ElementKind::kUInt8);
        auto buf = std::make_shared<vm::GcRoot>(
            host->thread, host->vm.heap().alloc_array(
                              mt, static_cast<std::int64_t>(bytes)));
        if (elder) host->vm.heap().collect();  // promote the buffer
        const int me = ctx.comm_world().rank();
        return IterationFn([host, direct, buf, me, calls] {
          if (me == 0) {
            direct->send(buf->get(), 1, 0);
            direct->recv(buf->get(), 1, 0);
          } else {
            direct->recv(buf->get(), 0, 0);
            direct->send(buf->get(), 0, 0);
          }
          calls->store(host->vm.heap().stats().pin_calls);
        });
      },
      paper_world_config());
  *pin_calls = calls->load();
  return us;
}

}  // namespace

int main() {
  std::printf("# Ablation A1: pinning policy vs always-pin (Motor stack)\n");
  std::printf("# pin_calls = heap pin-table insertions on rank 1 per run\n");
  std::printf("%8s %8s %14s %14s %10s\n", "bytes", "buffer", "mode",
              "us/iter", "pin_calls");

  const Case cases[] = {{"policy", mp::PinMode::kMotorPolicy},
                        {"always-pin", mp::PinMode::kAlwaysPin}};
  for (std::size_t bytes : {1024ul, 65536ul}) {
    for (bool elder : {false, true}) {
      for (const Case& c : cases) {
        std::uint64_t pins = 0;
        const double us = pinning_pingpong_us(bytes, c.mode, elder, &pins);
        std::printf("%8zu %8s %14s %14.2f %10llu\n", bytes,
                    elder ? "elder" : "young", c.name, us,
                    static_cast<unsigned long long>(pins));
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n# expectation: policy matches or beats always-pin and does\n");
  std::printf("# ZERO pin-table work for elder buffers (paper §7.4).\n");
  return 0;
}
