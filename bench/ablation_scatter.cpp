// Ablation A4 (§2.4/§7.5): scattering an ARRAY OF OBJECTS over N ranks.
//   split:  the Motor split representation — the serializer windows the
//           array directly, one independently-deserializable piece per
//           rank, no intermediate managed objects;
//   naive:  the §2.4 strawman — "create N new sub-arrays and serialize
//           them individually" with the standard (CLI) serializer.
// Same transport, same object graph; the delta is the serialization
// architecture.
#include <cstdio>

#include "motor/motor_runtime.hpp"
#include "pal/clock.hpp"
#include "vm/cli_serializer.hpp"

namespace {

using namespace motor;

constexpr int kRanks = 4;

struct CellTypes {
  const vm::MethodTable* ints;
  const vm::MethodTable* cell;
  const vm::MethodTable* cells;

  explicit CellTypes(vm::Vm& vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    cell = vm.types()
               .define_class("Cell")
               .ref_field("values", ints, true)
               .field("tag", vm::ElementKind::kInt64)
               .build();
    cells = vm.types().ref_array(cell);
  }

  vm::Obj make_cells(vm::Vm& vm, vm::ManagedThread& thread, int n) const {
    vm::GcRoot arr(thread, vm.heap().alloc_array(cells, n));
    for (int i = 0; i < n; ++i) {
      vm::GcRoot v(thread, vm.heap().alloc_array(ints, 8));
      for (int k = 0; k < 8; ++k) {
        vm::set_element<std::int32_t>(v.get(), k, i * 8 + k);
      }
      vm::Obj c = vm.heap().alloc_object(cell);
      vm::set_ref_field(c, 0, v.get());
      vm::set_field<std::int64_t>(c, 8, i);
      vm::set_ref_element(arr.get(), i, c);
    }
    return arr.get();
  }
};

/// Root-side serialization cost of the split representation.
double split_us(vm::Vm& vm, vm::ManagedThread& thread, const CellTypes& t,
                int n, int iters) {
  vm::GcRoot arr(thread, t.make_cells(vm, thread, n));
  mp::MotorSerializer ser(vm, mp::VisitedMode::kHashed);
  const std::vector<std::int64_t> counts(kRanks, n / kRanks);
  pal::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    std::vector<ByteBuffer> pieces;
    ser.serialize_split(arr.get(), counts, pieces);
  }
  return sw.elapsed_us() / iters;
}

/// Root-side cost of the strawman: allocate N managed sub-arrays, copy
/// the references over, serialize each with the standard serializer.
double naive_us(vm::Vm& vm, vm::ManagedThread& thread, const CellTypes& t,
                int n, int iters) {
  vm::GcRoot arr(thread, t.make_cells(vm, thread, n));
  vm::CliBinarySerializer ser(vm);
  const int per = n / kRanks;
  pal::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    for (int r = 0; r < kRanks; ++r) {
      // "the MPI library would need to create N new sub-arrays and
      // serialize them individually" (§2.4).
      vm::GcRoot sub(thread, vm.heap().alloc_array(t.cells, per));
      for (int k = 0; k < per; ++k) {
        vm::set_ref_element(sub.get(), k,
                            vm::get_ref_element(arr.get(), r * per + k));
      }
      ByteBuffer piece;
      ser.serialize(sub.get(), piece);
    }
  }
  return sw.elapsed_us() / iters;
}

}  // namespace

int main() {
  std::printf("# Ablation A4: object-array scatter serialization, %d ranks\n",
              kRanks);
  std::printf("# root-side cost per scatter, microseconds\n");
  std::printf("%10s %14s %14s %10s\n", "elements", "split(Motor)",
              "naive(CLI)", "speedup");

  vm::VmConfig cfg;
  // The paper's comparison: Motor's runtime-internal serializer vs the
  // MANAGED standard serializer on the SSCLI host (§2.4/§8) — the naive
  // path pays the host's serializer cost, the split path does not.
  cfg.profile = vm::RuntimeProfile::sscli();
  cfg.heap.young_bytes = 16 << 20;
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  CellTypes types(vm);

  for (int n : {64, 256, 1024, 4096}) {
    const int iters = std::max(3, 2048 / n);
    const double split = split_us(vm, thread, types, n, iters);
    const double naive = naive_us(vm, thread, types, n, iters);
    std::printf("%10d %14.1f %14.1f %9.2fx\n", n, split, naive,
                naive / split);
    std::fflush(stdout);
  }
  std::printf("\n# expectation: split wins — no managed sub-array churn, no\n");
  std::printf("# per-object type names on the wire (§2.4).\n");
  return 0;
}
