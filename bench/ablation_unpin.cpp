// Ablation A5 (§4.3): strategies for releasing pins after NON-BLOCKING
// operations — the design space the paper walks through before choosing
// the conditional (mark-phase) pin:
//   conditional   Motor: GC checks request status during mark; no unpin
//                 call, no extra thread (the paper's choice);
//   helper-thread "Test non-blocking transport operations and unpin
//                 buffers in a separate thread. This solution imposes an
//                 unnecessary overhead";
//   test-release  "Test and release the pinned memory when the user calls
//                 a status checking operation ... if the user never calls
//                 another MPI operation then the memory buffer will never
//                 be released" — measured here as residual pins when the
//                 user skips the final waits.
#include <atomic>
#include <cstdio>
#include <mutex>

#include "motor/motor_runtime.hpp"
#include "pal/clock.hpp"
#include "pal/thread.hpp"

namespace {

using namespace motor;

constexpr int kBatch = 32;
constexpr int kRounds = 40;

struct Result {
  double us_per_op = 0;
  std::uint64_t residual_pins = 0;   // pins still held at the end
  std::uint64_t pin_calls = 0;       // pin-table insertions
  std::uint64_t gc_cond_checked = 0; // mark-phase request checks
};

mp::MotorWorldConfig world_config() {
  mp::MotorWorldConfig c;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 2 << 20;
  c.mp.pin_mode = mp::PinMode::kNeverPin;  // strategies manage pins here
  return c;
}

enum class Strategy { kConditional, kHelperThread, kTestRelease };

Result run_strategy(Strategy strategy, bool user_forgets_last_round) {
  Result result;
  run_motor_world(world_config(), [&](mp::MotorContext& ctx) {
    const vm::MethodTable* mt =
        ctx.vm().types().primitive_array(vm::ElementKind::kUInt8);
    const int peer = 1 - ctx.rank();

    if (ctx.rank() == 1) {
      // Plain receiver.
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBatch; ++i) {
          vm::GcRoot buf(ctx.thread(), ctx.vm().heap().alloc_array(mt, 512));
          ctx.mp().direct().recv(buf.get(), peer, i);
        }
      }
      return;
    }

    // Sender: helper-thread strategy machinery.
    std::mutex mu;
    std::vector<std::pair<mpi::Request, vm::Obj>> outstanding;
    std::atomic<bool> stop{false};
    std::unique_ptr<pal::Thread> helper;
    if (strategy == Strategy::kHelperThread) {
      helper = std::make_unique<pal::Thread>("unpinner", [&] {
        while (!stop) {
          {
            std::lock_guard lk(mu);
            std::erase_if(outstanding, [&](auto& entry) {
              if (!entry.first->is_complete()) return false;
              ctx.vm().heap().unpin(entry.second);
              return true;
            });
          }
          pal::Thread::sleep_for(std::chrono::microseconds(100));
        }
      });
    }

    pal::Stopwatch sw;
    for (int round = 0; round < kRounds; ++round) {
      std::vector<mp::MPRequest> reqs;
      vm::RootRange bufs(ctx.thread());
      for (int i = 0; i < kBatch; ++i) {
        bufs.add(ctx.vm().heap().alloc_array(mt, 512));
        mp::MPRequest r = ctx.mp().direct().isend(bufs[static_cast<std::size_t>(i)], peer, i);
        switch (strategy) {
          case Strategy::kConditional:
            ctx.vm().heap().add_conditional_pin(
                bufs[static_cast<std::size_t>(i)], r.req);
            break;
          case Strategy::kHelperThread: {
            ctx.vm().heap().pin(bufs[static_cast<std::size_t>(i)]);
            std::lock_guard lk(mu);
            outstanding.emplace_back(r.req, bufs[static_cast<std::size_t>(i)]);
            break;
          }
          case Strategy::kTestRelease:
            ctx.vm().heap().pin(bufs[static_cast<std::size_t>(i)]);
            break;
        }
        reqs.push_back(std::move(r));
      }
      ctx.vm().heap().collect();  // pressure: every round collects

      const bool forget =
          user_forgets_last_round && round == kRounds - 1 &&
          strategy == Strategy::kTestRelease;
      for (int i = 0; i < kBatch; ++i) {
        if (forget) {
          // The user never tests these requests: test-release leaks.
          ctx.mp().direct().comm().device().wait(reqs[static_cast<std::size_t>(i)].req);
          continue;
        }
        ctx.mp().direct().wait(reqs[static_cast<std::size_t>(i)]);
        if (strategy == Strategy::kTestRelease) {
          ctx.vm().heap().unpin(bufs[static_cast<std::size_t>(i)]);
        }
      }
    }
    result.us_per_op = sw.elapsed_us() / (kRounds * kBatch);

    if (helper) {
      // Drain, then stop.
      for (;;) {
        {
          std::lock_guard lk(mu);
          if (outstanding.empty()) break;
        }
        pal::Thread::sleep_for(std::chrono::milliseconds(1));
      }
      stop = true;
      helper->join();
    }
    ctx.vm().heap().collect();  // retire completed conditional pins
    result.residual_pins = ctx.vm().heap().pin_table_size();
    result.pin_calls = ctx.vm().heap().stats().pin_calls;
    result.gc_cond_checked = ctx.vm().heap().stats().conditional_checked;
  });
  return result;
}

const char* name_of(Strategy s) {
  switch (s) {
    case Strategy::kConditional: return "conditional";
    case Strategy::kHelperThread: return "helper-thread";
    case Strategy::kTestRelease: return "test-release";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("# Ablation A5: non-blocking unpin strategies (%d ops)\n",
              kBatch * kRounds);
  std::printf("%14s %10s %10s %14s %14s\n", "strategy", "us/op", "pin_calls",
              "residual_pins", "gc_req_checks");
  for (Strategy s : {Strategy::kConditional, Strategy::kHelperThread,
                     Strategy::kTestRelease}) {
    const Result r = run_strategy(s, /*user_forgets_last_round=*/true);
    std::printf("%14s %10.2f %10llu %14llu %14llu\n", name_of(s), r.us_per_op,
                static_cast<unsigned long long>(r.pin_calls),
                static_cast<unsigned long long>(r.residual_pins),
                static_cast<unsigned long long>(r.gc_cond_checked));
    std::fflush(stdout);
  }
  std::printf("\n# expectation: conditional does zero pin-table insertions\n");
  std::printf("# and leaves zero residual pins; test-release leaks pins when\n");
  std::printf("# the user stops calling MPI (%d leaked = final batch);\n",
              kBatch);
  std::printf("# helper-thread pays thread + locking overhead (§4.3).\n");
  return 0;
}
