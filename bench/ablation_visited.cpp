// Ablation A3 (§8): the Motor serializer's visited-object structure —
// the paper's LINEAR list (the cause of the Figure 10 fall-off past 2048
// objects) vs the HASHED structure the paper says will replace it
// ("will be improved when we implement an efficient structure to record
// objects visited"). Also measures the FieldDesc-Transportable-bit fast
// path against the reflection/metadata slow path (§7.5).
#include <benchmark/benchmark.h>

#include "motor/motor_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace {

using namespace motor;

struct Fixture {
  vm::Vm vm;
  vm::ManagedThread thread;
  const vm::MethodTable* bytes_mt;
  const vm::MethodTable* node_mt;

  Fixture()
      : vm([] {
          vm::VmConfig c;
          c.profile = vm::RuntimeProfile::uncosted();
          c.heap.young_bytes = 8 << 20;
          return c;
        }()),
        thread(vm) {
    bytes_mt = vm.types().primitive_array(vm::ElementKind::kUInt8);
    node_mt = vm.types()
                  .define_class("LinkedArray")
                  .transportable()
                  .ref_field("array", bytes_mt, true)
                  .ref_field("next", vm.types().object_type(), true)
                  .build();
  }

  vm::Obj make_list(int elements) {
    vm::GcRoot head(thread, nullptr);
    for (int i = 0; i < elements; ++i) {
      vm::GcRoot arr(thread, vm.heap().alloc_array(bytes_mt, 4));
      vm::Obj n = vm.heap().alloc_object(node_mt);
      vm::set_ref_field(n, 0, arr.get());
      vm::set_ref_field(n, 8, head.get());
      head.set(n);
    }
    return head.get();
  }
};

void BM_SerializeVisited(benchmark::State& state, mp::VisitedMode mode) {
  Fixture f;
  const int objects = static_cast<int>(state.range(0));
  vm::GcRoot list(f.thread, f.make_list(objects / 2));
  mp::MotorSerializer ser(f.vm, mode);
  for (auto _ : state) {
    ByteBuffer buf;
    benchmark::DoNotOptimize(ser.serialize(list.get(), buf));
  }
  state.counters["objects"] = objects;
  state.counters["scan_steps_per_iter"] =
      static_cast<double>(ser.stats().visited_scan_steps) /
      static_cast<double>(state.iterations());
}

void BM_Visited_Linear(benchmark::State& state) {
  BM_SerializeVisited(state, mp::VisitedMode::kLinear);
}
void BM_Visited_Hashed(benchmark::State& state) {
  BM_SerializeVisited(state, mp::VisitedMode::kHashed);
}
BENCHMARK(BM_Visited_Linear)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);
BENCHMARK(BM_Visited_Hashed)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

/// §7.5's other fast path: Transportable via the FieldDesc bit...
void BM_TransportableViaFieldDescBit(benchmark::State& state) {
  Fixture f;
  const vm::FieldDesc* field = f.node_mt->field_named("array");
  for (auto _ : state) {
    benchmark::DoNotOptimize(field->is_transportable());
  }
}
BENCHMARK(BM_TransportableViaFieldDescBit);

/// ...versus introspecting the type metadata through reflection.
void BM_TransportableViaReflection(benchmark::State& state) {
  Fixture f;
  const vm::MetadataRegistry& md = f.vm.types().metadata();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        md.field_has_attribute("LinkedArray", "array", "Transportable"));
  }
}
BENCHMARK(BM_TransportableViaReflection);

}  // namespace

BENCHMARK_MAIN();
