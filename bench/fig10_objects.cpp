// Figure 10 reproduction: ping-pong of a LINKED LIST OF OBJECTS, time per
// iteration (microseconds), serialization cost included, across total
// object counts 2 .. 8192. A 4096-byte payload is evenly distributed over
// the list; each element contributes two objects (the node and its byte
// array), exactly as in §8.
//
// Series: Motor (extended OO operations, custom serializer with the
// paper's LINEAR visited structure), mpiJava (standard Java
// serialization — stack overflow past 1024 objects, handle-table bump
// mid-range), Indiana bindings on .NET and on SSCLI (standard CLI binary
// serialization over regular MPI).
//
// Budget deviation from the paper: iterations scale down at large object
// counts (documented in EXPERIMENTS.md); shapes are unaffected.
#include <cstdio>
#include <vector>

#include "series.hpp"
#include "vm/java_serializer.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

constexpr std::size_t kTotalPayloadBytes = 4096;

baselines::PingPongSpec spec_for(int total_objects) {
  baselines::PingPongSpec spec;
  spec.repeats = 1;
  spec.warmup_iterations = total_objects >= 2048 ? 2 : 5;
  spec.timed_iterations =
      std::max(3, std::min(40, 40960 / std::max(total_objects, 1)));
  return spec;
}

/// Motor OO-ops series.
RankSetup motor_objects(int elements) {
  return [elements](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sscli());
    // The Figure 10 reproduction depends on the PAPER's linear visited
    // structure (the fall-off past ~2048 objects); the runtime default is
    // now the hashed fix, so opt into kLinear explicitly here.
    mp::MPDirectConfig cfg;
    cfg.visited_mode = mp::VisitedMode::kLinear;
    auto direct = std::make_shared<mp::MPDirect>(host->vm, host->thread,
                                                 ctx.comm_world(), cfg);
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    return IterationFn([host, direct, fixture, list, me] {
      if (me == 0) {
        direct->osend(list->get(), 1, 0);
        vm::Obj back = nullptr;
        direct->orecv(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        direct->orecv(0, 0, &got);
        vm::GcRoot got_root(host->thread, got);
        direct->osend(got_root.get(), 0, 0);
      }
    });
  };
}

/// Indiana series (CLI binary serialization over regular MPI).
RankSetup indiana_objects(int elements, vm::RuntimeProfile profile) {
  return [elements, profile](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(profile);
    auto comm = std::make_shared<baselines::IndianaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    return IterationFn([host, comm, fixture, list, me] {
      if (me == 0) {
        comm->send_object_tree(list->get(), 1, 0);
        vm::Obj back = nullptr;
        comm->recv_object_tree(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        comm->recv_object_tree(0, 0, &got);
        vm::GcRoot got_root(host->thread, got);
        comm->send_object_tree(got_root.get(), 0, 0);
      }
    });
  };
}

/// mpiJava series. The stack overflow is probed during SETUP (a local
/// trial serialization): if the list is too deep for the Java serializer,
/// both ranks skip their iterations — otherwise the receiver would block
/// on a message the failed sender can never produce.
RankSetup mpijava_objects(int elements, std::shared_ptr<std::atomic<bool>> failed) {
  return [elements, failed](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sun_jvm());
    auto comm = std::make_shared<baselines::MpiJavaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    if (me == 0) {
      vm::JavaSerializer probe(host->vm);
      ByteBuffer scratch;
      if (probe.serialize(list->get(), scratch).code() ==
          ErrorCode::kStackOverflow) {
        failed->store(true);  // visible to rank 1 before the first iteration
      }
    }
    return IterationFn([host, comm, fixture, list, me, failed] {
      if (failed->load()) return;  // overflow: series is not measurable
      if (me == 0) {
        if (!comm->send_object(list->get(), 1, 0).is_ok()) return;
        vm::Obj back = nullptr;
        comm->recv_object(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        if (!comm->recv_object(0, 0, &got).is_ok()) return;
        vm::GcRoot got_root(host->thread, got);
        comm->send_object(got_root.get(), 0, 0);
      }
    });
  };
}

}  // namespace

int main() {
  std::printf("# Figure 10: ping-pong, linked list of objects\n");
  std::printf("# total payload %zu bytes; objects = 2 x list elements\n",
              kTotalPayloadBytes);
  std::printf("# time per iteration in microseconds; 'overflow' = the Java\n");
  std::printf("# serialization stack overflow the paper reports past 1024\n");
  std::printf("%10s %12s %14s %14s %14s\n", "objects", "Motor", "mpiJava",
              "IndianaNET", "IndianaSSCLI");

  double motor_small_sum = 0, best_other_small_sum = 0;
  double motor_at_8192 = 0, indiana_net_at_8192 = 0;
  bool java_overflowed = false;
  int java_last_ok = 0;

  for (int objects = 2; objects <= 8192; objects *= 2) {
    const int elements = std::max(1, objects / 2);
    const auto spec = spec_for(objects);

    const double motor_us =
        baselines::run_pingpong_us(spec, motor_objects(elements),
                                   paper_world_config());
    auto failed = std::make_shared<std::atomic<bool>>(false);
    const double java_us =
        baselines::run_pingpong_us(spec, mpijava_objects(elements, failed),
                                   paper_world_config());
    const double net_us = baselines::run_pingpong_us(
        spec, indiana_objects(elements, vm::RuntimeProfile::commercial_net()),
        paper_world_config());
    const double sscli_us = baselines::run_pingpong_us(
        spec, indiana_objects(elements, vm::RuntimeProfile::sscli()),
        paper_world_config());

    if (failed->load()) {
      java_overflowed = true;
      std::printf("%10d %12.2f %14s %14.2f %14.2f\n", objects, motor_us,
                  "overflow", net_us, sscli_us);
    } else {
      java_last_ok = objects;
      std::printf("%10d %12.2f %14.2f %14.2f %14.2f\n", objects, motor_us,
                  java_us, net_us, sscli_us);
    }
    std::fflush(stdout);

    if (objects <= 1024) {
      motor_small_sum += motor_us;
      best_other_small_sum +=
          std::min(net_us, failed->load() ? net_us : java_us);
    }
    if (objects == 8192) {
      motor_at_8192 = motor_us;
      indiana_net_at_8192 = net_us;
    }
  }

  std::printf("\n# shape summary\n");
  std::printf("motor_fastest_below_2048    %s   (paper: Motor best < 2048)\n",
              motor_small_sum < best_other_small_sum ? "yes" : "no");
  std::printf("motor_degrades_at_8192      %s   (paper: linear visited "
              "structure falls off)\n",
              motor_at_8192 > indiana_net_at_8192 ? "yes" : "no");
  std::printf("mpijava_overflowed          %s   (paper: stops at 1024 "
              "objects; last ok here: %d)\n",
              java_overflowed ? "yes" : "no", java_last_ok);
  return 0;
}
