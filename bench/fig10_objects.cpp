// Figure 10 reproduction: ping-pong of a LINKED LIST OF OBJECTS, time per
// iteration (microseconds), serialization cost included, across total
// object counts 2 .. 8192. A 4096-byte payload is evenly distributed over
// the list; each element contributes two objects (the node and its byte
// array), exactly as in §8.
//
// Series: Motor (extended OO operations, custom serializer with the
// paper's LINEAR visited structure), mpiJava (standard Java
// serialization — stack overflow past 1024 objects, handle-table bump
// mid-range), Indiana bindings on .NET and on SSCLI (standard CLI binary
// serialization over regular MPI).
//
// Budget deviation from the paper: iterations scale down at large object
// counts (documented in EXPERIMENTS.md); shapes are unaffected.
//
// Extensions beyond the paper's figure:
//   * a WIRE-PLAN ablation section (serialization only, no wire): the
//     compiled per-type plan cache (wire_plan.hpp) on vs off, over an
//     object array of all-primitive records and over the figure's linked
//     list, reporting us/iteration, ns/object and objects/s;
//   * a TYPED-TRANSPORT ablation section (serialization only): the
//     compile-time wire plans (motor/typed) vs the runtime plan cache vs
//     the reflective walk, over the same all-primitive Cell records, with
//     a hard wire-identity check (all three encoders must produce the
//     same bytes) and a perf-ordering gate (typed >= plan >= reflective
//     throughput) — the binary exits non-zero if either fails, so
//     scripts/verify.sh keeps the zero-overhead claim honest;
//   * a float-span series pitting the typed encoder against a raw memcpy
//     of the same payload (the typed header is ~33 bytes, so at 256 KiB
//     the encoder must sit within a few percent of the copy);
//   * flags: --smoke (tiny sizes, used by scripts/verify.sh so the bench
//     cannot rot), --plan_cache=off (run the Motor ping-pong series on
//     the ablation serializer), --json=PATH (write the ablation numbers
//     as a machine-readable snapshot, e.g. BENCH_fig10.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "motor/typed/typed.hpp"
#include "pal/clock.hpp"
#include "series.hpp"
#include "vm/java_serializer.hpp"

namespace fig10 {

/// The native twin of the ablation's managed "Cell" class: same leaves,
/// same offsets (x/y/z at 0/8/16, id/flags at 24/28), so the two encoders
/// below serialize the same values from the same layout.
struct Cell {
  double x;
  double y;
  double z;
  std::int32_t id;
  std::int32_t flags;
};

}  // namespace fig10

MOTOR_TYPED_STRUCT_NAMED(fig10::Cell, "Cell", x, y, z, id, flags);

namespace {

using namespace motor;
using namespace motor::bench;

constexpr std::size_t kTotalPayloadBytes = 4096;

baselines::PingPongSpec spec_for(int total_objects) {
  baselines::PingPongSpec spec;
  spec.repeats = 1;
  spec.warmup_iterations = total_objects >= 2048 ? 2 : 5;
  spec.timed_iterations =
      std::max(3, std::min(40, 40960 / std::max(total_objects, 1)));
  return spec;
}

/// Motor OO-ops series.
RankSetup motor_objects(int elements, bool plan_cache) {
  return [elements, plan_cache](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sscli());
    // The Figure 10 reproduction depends on the PAPER's linear visited
    // structure (the fall-off past ~2048 objects); the runtime default is
    // now the hashed fix, so opt into kLinear explicitly here.
    mp::MPDirectConfig cfg;
    cfg.visited_mode = mp::VisitedMode::kLinear;
    cfg.plan_cache = plan_cache;
    auto direct = std::make_shared<mp::MPDirect>(host->vm, host->thread,
                                                 ctx.comm_world(), cfg);
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    return IterationFn([host, direct, fixture, list, me] {
      if (me == 0) {
        direct->osend(list->get(), 1, 0);
        vm::Obj back = nullptr;
        direct->orecv(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        direct->orecv(0, 0, &got);
        vm::GcRoot got_root(host->thread, got);
        direct->osend(got_root.get(), 0, 0);
      }
    });
  };
}

/// Indiana series (CLI binary serialization over regular MPI).
RankSetup indiana_objects(int elements, vm::RuntimeProfile profile) {
  return [elements, profile](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(profile);
    auto comm = std::make_shared<baselines::IndianaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    return IterationFn([host, comm, fixture, list, me] {
      if (me == 0) {
        comm->send_object_tree(list->get(), 1, 0);
        vm::Obj back = nullptr;
        comm->recv_object_tree(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        comm->recv_object_tree(0, 0, &got);
        vm::GcRoot got_root(host->thread, got);
        comm->send_object_tree(got_root.get(), 0, 0);
      }
    });
  };
}

/// mpiJava series. The stack overflow is probed during SETUP (a local
/// trial serialization): if the list is too deep for the Java serializer,
/// both ranks skip their iterations — otherwise the receiver would block
/// on a message the failed sender can never produce.
RankSetup mpijava_objects(int elements, std::shared_ptr<std::atomic<bool>> failed) {
  return [elements, failed](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sun_jvm());
    auto comm = std::make_shared<baselines::MpiJavaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    auto fixture = std::make_shared<ListFixture>(host->vm);
    const int me = ctx.comm_world().rank();
    auto list = std::make_shared<vm::GcRoot>(
        host->thread,
        me == 0 ? fixture->make(host->vm, host->thread, elements,
                                kTotalPayloadBytes)
                : nullptr);
    if (me == 0) {
      vm::JavaSerializer probe(host->vm);
      ByteBuffer scratch;
      if (probe.serialize(list->get(), scratch).code() ==
          ErrorCode::kStackOverflow) {
        failed->store(true);  // visible to rank 1 before the first iteration
      }
    }
    return IterationFn([host, comm, fixture, list, me, failed] {
      if (failed->load()) return;  // overflow: series is not measurable
      if (me == 0) {
        if (!comm->send_object(list->get(), 1, 0).is_ok()) return;
        vm::Obj back = nullptr;
        comm->recv_object(1, 0, &back);
      } else {
        vm::Obj got = nullptr;
        if (!comm->recv_object(0, 0, &got).is_ok()) return;
        vm::GcRoot got_root(host->thread, got);
        comm->send_object(got_root.get(), 0, 0);
      }
    });
  };
}

// ---- wire-plan ablation (serialization only, no wire) ----

struct AblationPoint {
  int objects = 0;
  double on_us = 0;   // us per serialization, plans on
  double off_us = 0;  // us per serialization, plans off (ablation)
};

/// Mean time to serialize `root` into a FRESH buffer (exactly what osend
/// does for its GatherRep metadata every call, so cold-buffer regrowth is
/// part of the measured ablation cost).
double time_serialize_us(mp::MotorSerializer& ser, vm::Obj root, int iters) {
  for (int i = 0; i < 2; ++i) {
    ByteBuffer warm;
    (void)ser.serialize(root, warm);
  }
  pal::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    ByteBuffer out;
    (void)ser.serialize(root, out);
  }
  return sw.elapsed_us() / iters;
}

vm::VmConfig ablation_vm_config() {
  vm::VmConfig c;
  // Uncosted profile: the ablation isolates serializer mechanics, not the
  // hosted-runtime cost model the ping-pong table charges.
  c.profile = vm::RuntimeProfile::uncosted();
  c.heap.young_bytes = 64 << 20;
  return c;
}

/// Object array of all-primitive records (the plan cache's best case:
/// every record is one bulk copy).
AblationPoint measure_object_array(int objects, int iters) {
  vm::Vm vm(ablation_vm_config());
  vm::ManagedThread thread(vm);
  const vm::MethodTable* cell = vm.types()
                                    .define_class("Cell")
                                    .field("x", vm::ElementKind::kDouble)
                                    .field("y", vm::ElementKind::kDouble)
                                    .field("z", vm::ElementKind::kDouble)
                                    .field("id", vm::ElementKind::kInt32)
                                    .field("flags", vm::ElementKind::kInt32)
                                    .build();
  const vm::MethodTable* arr_mt = vm.types().ref_array(cell);
  // `objects` counts every transported object: the array + its cells.
  const int cells = std::max(1, objects - 1);
  vm::GcRoot arr(thread, vm.heap().alloc_array(arr_mt, cells));
  for (int i = 0; i < cells; ++i) {
    vm::Obj c = vm.heap().alloc_object(cell);
    vm::set_field<double>(c, 0, i * 0.5);
    vm::set_field<double>(c, 8, i * 1.5);
    vm::set_field<double>(c, 16, i * 2.5);
    vm::set_field<std::int32_t>(c, 24, i);
    vm::set_field<std::int32_t>(c, 28, ~i);
    vm::set_ref_element(arr.get(), i, c);
  }

  mp::MotorSerializer on(vm, mp::VisitedMode::kHashed, /*plan_cache=*/true);
  mp::MotorSerializer off(vm, mp::VisitedMode::kHashed, /*plan_cache=*/false);
  AblationPoint p;
  p.objects = objects;
  p.off_us = time_serialize_us(off, arr.get(), iters);
  p.on_us = time_serialize_us(on, arr.get(), iters);
  return p;
}

/// The figure's own shape: linked list of (node + byte-array) pairs,
/// mixed reference/primitive records.
AblationPoint measure_linked_list(int objects, int iters) {
  vm::Vm vm(ablation_vm_config());
  vm::ManagedThread thread(vm);
  ListFixture fixture(vm);
  const int elements = std::max(1, objects / 2);
  vm::GcRoot list(thread,
                  fixture.make(vm, thread, elements, kTotalPayloadBytes));

  mp::MotorSerializer on(vm, mp::VisitedMode::kHashed, /*plan_cache=*/true);
  mp::MotorSerializer off(vm, mp::VisitedMode::kHashed, /*plan_cache=*/false);
  AblationPoint p;
  p.objects = objects;
  p.off_us = time_serialize_us(off, list.get(), iters);
  p.on_us = time_serialize_us(on, list.get(), iters);
  return p;
}

// ---- typed-transport ablation (compile-time plans, serialization only) ----

// All-primitive and gapless, so the compile-time plan is one run covering
// the whole record — the layout the acceptance numbers are about.
static_assert(typed::TypedPlan<fig10::Cell>::contiguous);
static_assert(typed::TypedPlan<fig10::Cell>::wire_bytes == 32);

struct TypedAblationPoint {
  int objects = 0;
  double typed_us = 0;    // compile-time plan over the native span (no VM)
  double plan_us = 0;     // runtime plan cache over the managed twin array
  double reflect_us = 0;  // per-field FieldDesc walk (plan cache off)
};

struct SpanPoint {
  std::size_t bytes = 0;
  double typed_us = 0;   // typed::serialize_span into a fresh buffer
  double memcpy_us = 0;  // reserve + one raw append of the same payload
};

/// Hard gate: the whole point of the identity property is that the three
/// encoders are interchangeable on the wire, so a mismatch is a bug, not
/// a data point.
void check_identical(const ByteBuffer& a, const ByteBuffer& b,
                     const char* what) {
  if (a.size() != b.size() ||
      std::memcmp(a.data(), b.data(), a.size()) != 0) {
    std::fprintf(stderr,
                 "fig10: wire identity violated (%s): %zu vs %zu bytes\n",
                 what, a.size(), b.size());
    std::exit(1);
  }
}

double time_typed_us(std::span<const fig10::Cell> data, int iters) {
  for (int i = 0; i < 2; ++i) {
    ByteBuffer warm;
    typed::serialize_span(data, warm);
  }
  pal::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    ByteBuffer out;  // fresh buffer, same methodology as time_serialize_us
    typed::serialize_span(data, out);
  }
  return sw.elapsed_us() / iters;
}

/// Same Cell records three ways: a native std::vector<Cell> through the
/// compile-time codec, and its managed twin array through the runtime
/// serializer with the plan cache on and off. Byte identity is enforced
/// before anything is timed.
TypedAblationPoint measure_typed_object_array(int objects, int iters) {
  vm::Vm vm(ablation_vm_config());
  vm::ManagedThread thread(vm);
  // Registration verifies the twin leaf by leaf (kind + offset), so the
  // memcpy from the native record into instance data below is exact.
  const vm::MethodTable* cell =
      typed::register_managed_twin<fig10::Cell>(vm.types());
  const int cells = std::max(1, objects - 1);
  std::vector<fig10::Cell> native(static_cast<std::size_t>(cells));
  vm::GcRoot arr(thread,
                 vm.heap().alloc_array(vm.types().ref_array(cell), cells));
  for (int i = 0; i < cells; ++i) {
    fig10::Cell& c = native[static_cast<std::size_t>(i)];
    c.x = i * 0.5;
    c.y = i * 1.5;
    c.z = i * 2.5;
    c.id = i;
    c.flags = ~i;
    vm::Obj obj = vm.heap().alloc_object(cell);
    std::memcpy(vm::obj_data(obj), &c, sizeof(fig10::Cell));
    vm::set_ref_element(arr.get(), i, obj);
  }
  const std::span<const fig10::Cell> span(native);

  mp::MotorSerializer plan(vm, mp::VisitedMode::kHashed, /*plan_cache=*/true);
  mp::MotorSerializer reflect(vm, mp::VisitedMode::kHashed,
                              /*plan_cache=*/false);
  {
    ByteBuffer t, p, r;
    typed::serialize_span(span, t);
    (void)plan.serialize(arr.get(), p);
    (void)reflect.serialize(arr.get(), r);
    check_identical(t, p, "typed vs plan-cache");
    check_identical(t, r, "typed vs reflective");
  }

  TypedAblationPoint p;
  p.objects = objects;
  p.reflect_us = time_serialize_us(reflect, arr.get(), iters);
  p.plan_us = time_serialize_us(plan, arr.get(), iters);
  p.typed_us = time_typed_us(span, iters);
  return p;
}

/// Float spans against the floor: the typed stream is header (~33 bytes)
/// + one payload memcpy, so at large sizes it must track a raw reserve +
/// copy of the same bytes.
SpanPoint measure_float_span(std::size_t bytes, int iters) {
  std::vector<float> data(bytes / sizeof(float));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 0.125f;
  }
  const std::span<const float> s(data);

  SpanPoint p;
  p.bytes = bytes;
  for (int i = 0; i < 2; ++i) {
    ByteBuffer warm;
    typed::serialize_span(s, warm);
  }
  // Both sides are allocator + memcpy bound, so single-run means wobble by
  // several percent either way; min-of-reps recovers the throughput floor
  // the within-5% claim is about.
  constexpr int kReps = 4;
  p.typed_us = 1e300;
  p.memcpy_us = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      pal::Stopwatch sw;
      for (int i = 0; i < iters; ++i) {
        ByteBuffer out;
        typed::serialize_span(s, out);
      }
      p.typed_us = std::min(p.typed_us, sw.elapsed_us() / iters);
    }
    {
      pal::Stopwatch sw;
      for (int i = 0; i < iters; ++i) {
        ByteBuffer out;
        out.reserve(bytes);
        out.append_raw(data.data(), bytes);
      }
      p.memcpy_us = std::min(p.memcpy_us, sw.elapsed_us() / iters);
    }
  }
  return p;
}

void print_typed_header() {
  std::printf("\n# typed-transport ablation: Cell records, native span vs "
              "managed twin array (serialization only)\n");
  std::printf("# wire identity enforced per size: typed == plan-cache == "
              "reflective bytes\n");
  std::printf("%10s %12s %12s %12s %11s %11s\n", "objects", "typed_us",
              "plan_us", "reflect_us", "vs_plan", "vs_reflect");
}

void print_typed_row(const TypedAblationPoint& p) {
  std::printf("%10d %12.2f %12.2f %12.2f %10.2fx %10.2fx\n", p.objects,
              p.typed_us, p.plan_us, p.reflect_us, p.plan_us / p.typed_us,
              p.reflect_us / p.typed_us);
}

void print_span_header() {
  std::printf("\n# typed float spans vs raw memcpy of the same payload\n");
  std::printf("%10s %12s %12s %11s\n", "bytes", "typed_us", "memcpy_us",
              "overhead");
}

void print_span_row(const SpanPoint& p) {
  std::printf("%10zu %12.2f %12.2f %10.1f%%\n", p.bytes, p.typed_us,
              p.memcpy_us, (p.typed_us / p.memcpy_us - 1.0) * 100.0);
}

void json_typed_rows(std::FILE* f,
                     const std::vector<TypedAblationPoint>& rows) {
  std::fprintf(f, "  \"typed_object_array\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TypedAblationPoint& p = rows[i];
    std::fprintf(f,
                 "    {\"objects\": %d, \"typed_us\": %.3f, "
                 "\"plan_us\": %.3f, \"reflect_us\": %.3f, "
                 "\"typed_vs_plan\": %.3f, \"typed_vs_reflect\": %.3f}%s\n",
                 p.objects, p.typed_us, p.plan_us, p.reflect_us,
                 p.plan_us / p.typed_us, p.reflect_us / p.typed_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

void json_span_rows(std::FILE* f, const std::vector<SpanPoint>& rows) {
  std::fprintf(f, "  \"float_span\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SpanPoint& p = rows[i];
    std::fprintf(f,
                 "    {\"bytes\": %zu, \"typed_us\": %.3f, "
                 "\"memcpy_us\": %.3f, \"overhead_pct\": %.2f}%s\n",
                 p.bytes, p.typed_us, p.memcpy_us,
                 (p.typed_us / p.memcpy_us - 1.0) * 100.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

void print_ablation_row(const AblationPoint& p) {
  const double on_ns = p.on_us * 1e3 / p.objects;
  const double off_ns = p.off_us * 1e3 / p.objects;
  std::printf("%10d %12.2f %12.2f %12.1f %12.1f %11.0f %11.0f %9.2fx\n",
              p.objects, p.on_us, p.off_us, on_ns, off_ns,
              p.objects / p.on_us * 1e6, p.objects / p.off_us * 1e6,
              p.off_us / p.on_us);
}

void print_ablation_header(const char* title) {
  std::printf("\n# wire-plan ablation: %s (serialization only)\n", title);
  std::printf("%10s %12s %12s %12s %12s %11s %11s %10s\n", "objects",
              "plan_us", "noplan_us", "plan_ns/obj", "noplan_ns/ob",
              "plan_obj/s", "noplan_ob/s", "speedup");
}

void json_rows(std::FILE* f, const char* key,
               const std::vector<AblationPoint>& rows) {
  std::fprintf(f, "  \"%s\": [\n", key);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationPoint& p = rows[i];
    std::fprintf(f,
                 "    {\"objects\": %d, \"plan_on_us\": %.3f, "
                 "\"plan_off_us\": %.3f, \"plan_on_ns_per_obj\": %.1f, "
                 "\"plan_off_ns_per_obj\": %.1f, \"speedup\": %.3f}%s\n",
                 p.objects, p.on_us, p.off_us, p.on_us * 1e3 / p.objects,
                 p.off_us * 1e3 / p.objects, p.off_us / p.on_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

/// The Figure 10 ping-pong table itself. In smoke mode only the smallest
/// sizes run (and the shape summary is skipped) so scripts/verify.sh can
/// exercise the binary in seconds.
void run_fig10(bool smoke, bool plan_cache) {
  std::printf("# Figure 10: ping-pong, linked list of objects\n");
  std::printf("# total payload %zu bytes; objects = 2 x list elements\n",
              kTotalPayloadBytes);
  if (!plan_cache) {
    std::printf("# plan_cache=off: Motor series walks FieldDescs per record "
                "(ablation)\n");
  }
  std::printf("# time per iteration in microseconds; 'overflow' = the Java\n");
  std::printf("# serialization stack overflow the paper reports past 1024\n");
  std::printf("%10s %12s %14s %14s %14s\n", "objects", "Motor", "mpiJava",
              "IndianaNET", "IndianaSSCLI");

  double motor_small_sum = 0, best_other_small_sum = 0;
  double motor_at_8192 = 0, indiana_net_at_8192 = 0;
  bool java_overflowed = false;
  int java_last_ok = 0;

  const int max_objects = smoke ? 8 : 8192;
  for (int objects = 2; objects <= max_objects; objects *= 2) {
    const int elements = std::max(1, objects / 2);
    const auto spec = spec_for(objects);

    const double motor_us = baselines::run_pingpong_us(
        spec, motor_objects(elements, plan_cache), paper_world_config());
    auto failed = std::make_shared<std::atomic<bool>>(false);
    const double java_us =
        baselines::run_pingpong_us(spec, mpijava_objects(elements, failed),
                                   paper_world_config());
    const double net_us = baselines::run_pingpong_us(
        spec, indiana_objects(elements, vm::RuntimeProfile::commercial_net()),
        paper_world_config());
    const double sscli_us = baselines::run_pingpong_us(
        spec, indiana_objects(elements, vm::RuntimeProfile::sscli()),
        paper_world_config());

    if (failed->load()) {
      java_overflowed = true;
      std::printf("%10d %12.2f %14s %14.2f %14.2f\n", objects, motor_us,
                  "overflow", net_us, sscli_us);
    } else {
      java_last_ok = objects;
      std::printf("%10d %12.2f %14.2f %14.2f %14.2f\n", objects, motor_us,
                  java_us, net_us, sscli_us);
    }
    std::fflush(stdout);

    if (objects <= 1024) {
      motor_small_sum += motor_us;
      best_other_small_sum +=
          std::min(net_us, failed->load() ? net_us : java_us);
    }
    if (objects == 8192) {
      motor_at_8192 = motor_us;
      indiana_net_at_8192 = net_us;
    }
  }

  if (smoke) return;  // the shape summary needs the full size range

  std::printf("\n# shape summary\n");
  std::printf("motor_fastest_below_2048    %s   (paper: Motor best < 2048)\n",
              motor_small_sum < best_other_small_sum ? "yes" : "no");
  std::printf("motor_degrades_at_8192      %s   (paper: linear visited "
              "structure falls off)\n",
              motor_at_8192 > indiana_net_at_8192 ? "yes" : "no");
  std::printf("mpijava_overflowed          %s   (paper: stops at 1024 "
              "objects; last ok here: %d)\n",
              java_overflowed ? "yes" : "no", java_last_ok);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool plan_cache = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--plan_cache=off") {
      plan_cache = false;
    } else if (arg == "--plan_cache=on") {
      plan_cache = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--plan_cache=on|off] "
                   "[--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  run_fig10(smoke, plan_cache);

  // Wire-plan ablation: compiled per-type plans vs the paper's per-field
  // walk. Hashed visited structure on both sides so the visited-set cost
  // does not mask the per-field dispatch being measured.
  const std::vector<int> sizes =
      smoke ? std::vector<int>{256, 1024}
            : std::vector<int>{256, 1024, 4096, 16384};
  const int iters = smoke ? 40 : 200;

  std::vector<AblationPoint> array_rows, list_rows;
  print_ablation_header("object array of all-primitive records");
  for (int objects : sizes) {
    array_rows.push_back(measure_object_array(objects, iters));
    print_ablation_row(array_rows.back());
    std::fflush(stdout);
  }
  print_ablation_header("fig10 linked list (mixed ref/primitive records)");
  for (int objects : sizes) {
    list_rows.push_back(measure_linked_list(objects, iters));
    print_ablation_row(list_rows.back());
    std::fflush(stdout);
  }

  // Typed-transport ablation: same sizes as the plan ablation; wire
  // identity is enforced inside measure_typed_object_array.
  std::vector<TypedAblationPoint> typed_rows;
  print_typed_header();
  for (int objects : sizes) {
    typed_rows.push_back(measure_typed_object_array(objects, iters));
    print_typed_row(typed_rows.back());
    std::fflush(stdout);
  }

  const std::vector<std::size_t> span_bytes =
      smoke ? std::vector<std::size_t>{256 * 1024}
            : std::vector<std::size_t>{16 * 1024, 64 * 1024, 256 * 1024};
  const int span_iters = smoke ? 200 : 1000;
  std::vector<SpanPoint> span_rows;
  print_span_header();
  for (std::size_t b : span_bytes) {
    span_rows.push_back(measure_float_span(b, span_iters));
    print_span_row(span_rows.back());
    std::fflush(stdout);
  }

  // The ordering gate: the compile-time plans must not lose to the
  // machinery they bypass. Checked at the largest measured size (the
  // small points are timer-noise-bound); identity was already enforced
  // per size, so a violation here is a performance regression.
  const TypedAblationPoint& big = typed_rows.back();
  if (!(big.typed_us <= big.plan_us && big.plan_us <= big.reflect_us)) {
    std::fprintf(stderr,
                 "fig10: typed ablation ordering violated at %d objects: "
                 "typed %.2fus plan %.2fus reflect %.2fus\n",
                 big.objects, big.typed_us, big.plan_us, big.reflect_us);
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig10_plan_ablation\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"iters\": %d,\n", iters);
    json_rows(f, "object_array", array_rows);
    std::fprintf(f, ",\n");
    json_rows(f, "linked_list", list_rows);
    std::fprintf(f, ",\n");
    json_typed_rows(f, typed_rows);
    std::fprintf(f, ",\n");
    json_span_rows(f, span_rows);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\n# wrote %s\n", json_path.c_str());
  }
  return 0;
}
