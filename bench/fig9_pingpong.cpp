// Figure 9 reproduction: ping-pong of REGULAR MPI operations, time per
// iteration (microseconds) across buffer sizes 4 B .. 256 KiB, for the
// five implementations the paper compares:
//   C++ (native MPI core), Motor, Indiana bindings on SSCLI, Indiana
//   bindings on commercial .NET, mpiJava on the Sun JVM.
//
// Methodology per §8: 200 iterations (last 100 timed), each size run 3
// times and averaged, single node, two ranks. Also prints the §8 headline
// ratios (experiment E3): Motor vs Indiana-SSCLI peak / mean / >64 KiB
// mean improvements.
#include <cstdio>
#include <vector>

#include "series.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

struct Row {
  std::size_t bytes;
  double cpp, motor, indiana_sscli, indiana_net, mpijava;
};

}  // namespace

int main() {
  PingPongSpec spec;
  spec.warmup_iterations = 100;
  spec.timed_iterations = 100;
  spec.repeats = 3;

  std::vector<std::size_t> sizes;
  for (std::size_t b = 4; b <= 262144; b *= 2) sizes.push_back(b);

  std::printf("# Figure 9: ping-pong, regular MPI operations\n");
  std::printf("# time per iteration (round trip) in microseconds\n");
  std::printf("%10s %12s %12s %14s %12s %12s\n", "bytes", "C++", "Motor",
              "IndianaSSCLI", "IndianaNET", "mpiJava");

  std::vector<Row> rows;
  for (std::size_t bytes : sizes) {
    Row row{};
    row.bytes = bytes;
    row.cpp = baselines::native_pingpong_us(bytes, spec, paper_world_config());
    row.motor =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), paper_world_config());
    row.indiana_sscli = baselines::run_pingpong_us(
        spec, indiana_pingpong(bytes, vm::RuntimeProfile::sscli()),
        paper_world_config());
    row.indiana_net = baselines::run_pingpong_us(
        spec, indiana_pingpong(bytes, vm::RuntimeProfile::commercial_net()),
        paper_world_config());
    row.mpijava = baselines::run_pingpong_us(spec, mpijava_pingpong(bytes),
                                             paper_world_config());
    rows.push_back(row);
    std::printf("%10zu %12.2f %12.2f %14.2f %12.2f %12.2f\n", row.bytes,
                row.cpp, row.motor, row.indiana_sscli, row.indiana_net,
                row.mpijava);
    std::fflush(stdout);
  }

  // E3: the paper's headline Motor-vs-Indiana-SSCLI improvements:
  // "16% at a peak; 8% on average over all buffer sizes; and 3% on
  // average over buffer sizes greater than 65,536 bytes".
  double peak = 0.0, sum = 0.0, sum_large = 0.0;
  int n_large = 0;
  int motor_wins = 0, cpp_fastest = 0, java_slowest = 0;
  for (const Row& r : rows) {
    const double gain = (r.indiana_sscli - r.motor) / r.indiana_sscli * 100.0;
    peak = std::max(peak, gain);
    sum += gain;
    if (r.bytes > 65536) {
      sum_large += gain;
      ++n_large;
    }
    if (r.motor < r.indiana_sscli) ++motor_wins;
    if (r.cpp <= r.motor && r.cpp <= r.indiana_sscli && r.cpp <= r.indiana_net)
      ++cpp_fastest;
    if (r.mpijava >= r.motor) ++java_slowest;
  }
  const auto total = static_cast<double>(rows.size());
  std::printf("\n# E3 summary (Motor improvement over Indiana-SSCLI)\n");
  std::printf("peak_improvement_pct        %6.1f   (paper: ~16)\n", peak);
  std::printf("mean_improvement_pct        %6.1f   (paper: ~8)\n",
              sum / total);
  std::printf("mean_improvement_gt64k_pct  %6.1f   (paper: ~3)\n",
              n_large > 0 ? sum_large / n_large : 0.0);
  std::printf("motor_beats_indiana_sscli   %d/%zu sizes\n", motor_wins,
              rows.size());
  std::printf("cpp_fastest_overall         %d/%zu sizes\n", cpp_fastest,
              rows.size());
  std::printf("mpijava_slowest_vs_motor    %d/%zu sizes\n", java_slowest,
              rows.size());

  // Staged-vs-gathered ablation for the zero-copy data path: the same
  // Motor ping-pong with DeviceConfig::staged_copies restoring the
  // pre-gather behaviour (flatten into a staging buffer on send, bounce
  // through a staging buffer on receive). Large messages only — that is
  // where the per-byte copies show.
  std::printf("\n# staged vs gathered data path (Motor series, round trip)\n");
  std::printf("%10s %12s %12s %12s %12s %10s\n", "bytes", "staged_us",
              "gathered_us", "staged_MBs", "gathrd_MBs", "gain_pct");
  for (std::size_t bytes :
       {std::size_t{16384}, std::size_t{65536}, std::size_t{262144}}) {
    mpi::WorldConfig staged_wc = paper_world_config();
    staged_wc.device.staged_copies = true;
    const double st =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), staged_wc);
    const double ga = baselines::run_pingpong_us(spec, motor_pingpong(bytes),
                                                 paper_world_config());
    // Round trip moves the buffer twice; bytes/us == MB/s.
    const double st_bw = 2.0 * static_cast<double>(bytes) / st;
    const double ga_bw = 2.0 * static_cast<double>(bytes) / ga;
    std::printf("%10zu %12.2f %12.2f %12.1f %12.1f %9.1f%%\n", bytes, st, ga,
                st_bw, ga_bw, (st - ga) / st * 100.0);
    std::fflush(stdout);
  }

  // E5: reliability-layer overhead on a clean wire. With the layer OFF
  // (the default) the data path is byte-identical to the zero-copy PR —
  // the acceptance gate is a <=2% bandwidth delta at 256 KiB. With it ON
  // the frames carry sealed headers (CRC-32C over header and payload),
  // ride the sequence window, and generate ack traffic — the price of
  // running over an untrusted wire, paid only when asked for.
  std::printf("\n# E5: reliability layer overhead (Motor series, round trip)\n");
  std::printf("%10s %12s %12s %12s %12s %10s\n", "bytes", "off_us", "on_us",
              "off_MBs", "on_MBs", "cost_pct");
  for (std::size_t bytes :
       {std::size_t{16384}, std::size_t{65536}, std::size_t{262144}}) {
    mpi::WorldConfig rel_wc = paper_world_config();
    rel_wc.device.reliability.enabled = true;
    const double off =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), paper_world_config());
    const double on =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), rel_wc);
    const double off_bw = 2.0 * static_cast<double>(bytes) / off;
    const double on_bw = 2.0 * static_cast<double>(bytes) / on;
    std::printf("%10zu %12.2f %12.2f %12.1f %12.1f %9.1f%%\n", bytes, off, on,
                off_bw, on_bw, (on - off) / off * 100.0);
    std::fflush(stdout);
  }
  return 0;
}
