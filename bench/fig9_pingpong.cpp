// Figure 9 reproduction: ping-pong of REGULAR MPI operations, time per
// iteration (microseconds) across buffer sizes 4 B .. 256 KiB, for the
// five implementations the paper compares:
//   C++ (native MPI core), Motor, Indiana bindings on SSCLI, Indiana
//   bindings on commercial .NET, mpiJava on the Sun JVM.
//
// Methodology per §8: 200 iterations (last 100 timed), each size run 3
// times and averaged, single node, two ranks. Also prints the §8 headline
// ratios (experiment E3): Motor vs Indiana-SSCLI peak / mean / >64 KiB
// mean improvements.
//
// Flags:
//   --smoke               reduced sizes and iteration counts (CI tier)
//   --json=PATH           write the Motor series as JSON (same schema in
//                         every mode, so thread and process runs diff
//                         structurally clean)
//   --transport=thread    in-process two-rank world (default)
//   --transport=socket    RE-EXECS ITSELF under the launcher: two real
//   --transport=shm       rank processes over AF_UNIX sockets / POSIX
//                         shm rings, Motor series only (the hosted
//                         baseline series measure wrapper cost, which is
//                         transport-independent)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "launch/launch.hpp"
#include "mpi/collectives.hpp"
#include "pal/clock.hpp"
#include "series.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

struct Row {
  std::size_t bytes;
  double cpp, motor, indiana_sscli, indiana_net, mpijava;
};

struct Options {
  bool smoke = false;
  std::string json_path;
  std::string transport = "thread";
};

std::vector<std::size_t> size_sweep(bool smoke) {
  if (smoke) return {4, 1024, 65536, 262144};
  std::vector<std::size_t> sizes;
  for (std::size_t b = 4; b <= 262144; b *= 2) sizes.push_back(b);
  return sizes;
}

PingPongSpec spec_for(bool smoke) {
  PingPongSpec spec;
  spec.warmup_iterations = smoke ? 20 : 100;
  spec.timed_iterations = smoke ? 50 : 100;
  spec.repeats = smoke ? 1 : 3;
  return spec;
}

// The one schema every mode emits: mode + spec + per-size Motor numbers.
// mbps counts both directions of the round trip (bytes/us == MB/s).
void write_json(const Options& opt, const PingPongSpec& spec,
                const std::vector<std::size_t>& sizes,
                const std::vector<double>& motor_us) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig9: cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_pingpong\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", opt.transport.c_str());
  std::fprintf(f,
               "  \"spec\": {\"warmup\": %d, \"timed\": %d, \"repeats\": "
               "%d},\n",
               spec.warmup_iterations, spec.timed_iterations, spec.repeats);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double us = motor_us[i];
    const double mbps =
        us > 0.0 ? 2.0 * static_cast<double>(sizes[i]) / us : 0.0;
    std::fprintf(f,
                 "    {\"bytes\": %zu, \"motor_us\": %.3f, \"motor_mbps\": "
                 "%.1f}%s\n",
                 sizes[i], us, mbps, i + 1 < sizes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "fig9: wrote %s\n", opt.json_path.c_str());
}

// ---------------------------------------------------------------------------
// Cross-process mode. The parent re-execs itself under motor_launch's
// library form; each child detects the rank environment and runs the
// Motor series over the real wire, one world for the whole sweep
// (MatlabMPI-style: the processes ARE the ranks; a fresh world per
// repeat is a thread-mode luxury). Rank 0 prints the table and writes
// the JSON.

int run_proc_child(const Options& opt) {
  const PingPongSpec spec = spec_for(opt.smoke);
  const std::vector<std::size_t> sizes = size_sweep(opt.smoke);
  mpi::WorldConfig wc;  // the wire is real; no modelled latency
  return launch::run_rank(wc, [&](mpi::RankCtx& ctx) {
    const int me = ctx.comm_world().rank();
    std::vector<double> motor_us;
    if (me == 0) {
      std::printf("# Figure 9 (cross-process, %s transport): Motor series\n",
                  opt.transport.c_str());
      std::printf("%10s %12s %12s\n", "bytes", "Motor_us", "MB/s");
    }
    for (const std::size_t bytes : sizes) {
      double total_us = 0.0;
      for (int repeat = 0; repeat < spec.repeats; ++repeat) {
        // Fresh VM + buffers per repeat, matching run_pingpong_us.
        IterationFn iteration = motor_pingpong(bytes)(ctx);
        mpi::barrier(ctx.comm_world());
        for (int i = 0; i < spec.warmup_iterations; ++i) iteration();
        mpi::barrier(ctx.comm_world());
        pal::Stopwatch sw;
        for (int i = 0; i < spec.timed_iterations; ++i) iteration();
        total_us += sw.elapsed_us() / spec.timed_iterations;
        mpi::barrier(ctx.comm_world());
      }
      const double us = total_us / spec.repeats;
      if (me == 0) {
        motor_us.push_back(us);
        std::printf("%10zu %12.2f %12.1f\n", bytes, us,
                    2.0 * static_cast<double>(bytes) / us);
        std::fflush(stdout);
      }
    }
    if (me == 0 && !opt.json_path.empty()) {
      write_json(opt, spec, sizes, motor_us);
    }
  });
}

int run_proc_parent(const Options& opt, const char* self) {
  launch::LaunchConfig lc;
  lc.n_ranks = 2;
  lc.transport = opt.transport;
  lc.program = {self, "--transport=" + opt.transport};
  if (opt.smoke) lc.program.push_back("--smoke");
  if (!opt.json_path.empty()) lc.program.push_back("--json=" + opt.json_path);
  lc.watchdog_ns = 600ull * 1000 * 1000 * 1000;
  const launch::LaunchResult result = launch::launch_world(lc);
  if (result.exit_code != 0) {
    std::fprintf(stderr, "%s", result.summary.c_str());
  }
  return result.exit_code;
}

// ---------------------------------------------------------------------------
// Thread mode: the full five-series paper reproduction.

int run_thread_mode(const Options& opt) {
  const PingPongSpec spec = spec_for(opt.smoke);
  const std::vector<std::size_t> sizes = size_sweep(opt.smoke);

  std::printf("# Figure 9: ping-pong, regular MPI operations\n");
  std::printf("# time per iteration (round trip) in microseconds\n");
  std::printf("%10s %12s %12s %14s %12s %12s\n", "bytes", "C++", "Motor",
              "IndianaSSCLI", "IndianaNET", "mpiJava");

  std::vector<Row> rows;
  for (std::size_t bytes : sizes) {
    Row row{};
    row.bytes = bytes;
    row.cpp = baselines::native_pingpong_us(bytes, spec, paper_world_config());
    row.motor = baselines::run_pingpong_us(spec, motor_pingpong(bytes),
                                           paper_world_config());
    row.indiana_sscli = baselines::run_pingpong_us(
        spec, indiana_pingpong(bytes, vm::RuntimeProfile::sscli()),
        paper_world_config());
    row.indiana_net = baselines::run_pingpong_us(
        spec, indiana_pingpong(bytes, vm::RuntimeProfile::commercial_net()),
        paper_world_config());
    row.mpijava = baselines::run_pingpong_us(spec, mpijava_pingpong(bytes),
                                             paper_world_config());
    rows.push_back(row);
    std::printf("%10zu %12.2f %12.2f %14.2f %12.2f %12.2f\n", row.bytes,
                row.cpp, row.motor, row.indiana_sscli, row.indiana_net,
                row.mpijava);
    std::fflush(stdout);
  }

  if (!opt.json_path.empty()) {
    std::vector<double> motor_us;
    for (const Row& r : rows) motor_us.push_back(r.motor);
    write_json(opt, spec, sizes, motor_us);
  }

  // E3: the paper's headline Motor-vs-Indiana-SSCLI improvements:
  // "16% at a peak; 8% on average over all buffer sizes; and 3% on
  // average over buffer sizes greater than 65,536 bytes".
  double peak = 0.0, sum = 0.0, sum_large = 0.0;
  int n_large = 0;
  int motor_wins = 0, cpp_fastest = 0, java_slowest = 0;
  for (const Row& r : rows) {
    const double gain = (r.indiana_sscli - r.motor) / r.indiana_sscli * 100.0;
    peak = std::max(peak, gain);
    sum += gain;
    if (r.bytes > 65536) {
      sum_large += gain;
      ++n_large;
    }
    if (r.motor < r.indiana_sscli) ++motor_wins;
    if (r.cpp <= r.motor && r.cpp <= r.indiana_sscli && r.cpp <= r.indiana_net)
      ++cpp_fastest;
    if (r.mpijava >= r.motor) ++java_slowest;
  }
  const auto total = static_cast<double>(rows.size());
  std::printf("\n# E3 summary (Motor improvement over Indiana-SSCLI)\n");
  std::printf("peak_improvement_pct        %6.1f   (paper: ~16)\n", peak);
  std::printf("mean_improvement_pct        %6.1f   (paper: ~8)\n",
              sum / total);
  std::printf("mean_improvement_gt64k_pct  %6.1f   (paper: ~3)\n",
              n_large > 0 ? sum_large / n_large : 0.0);
  std::printf("motor_beats_indiana_sscli   %d/%zu sizes\n", motor_wins,
              rows.size());
  std::printf("cpp_fastest_overall         %d/%zu sizes\n", cpp_fastest,
              rows.size());
  std::printf("mpijava_slowest_vs_motor    %d/%zu sizes\n", java_slowest,
              rows.size());

  // Staged-vs-gathered ablation for the zero-copy data path: the same
  // Motor ping-pong with DeviceConfig::staged_copies restoring the
  // pre-gather behaviour (flatten into a staging buffer on send, bounce
  // through a staging buffer on receive). Large messages only — that is
  // where the per-byte copies show.
  std::printf("\n# staged vs gathered data path (Motor series, round trip)\n");
  std::printf("%10s %12s %12s %12s %12s %10s\n", "bytes", "staged_us",
              "gathered_us", "staged_MBs", "gathrd_MBs", "gain_pct");
  for (std::size_t bytes :
       {std::size_t{16384}, std::size_t{65536}, std::size_t{262144}}) {
    mpi::WorldConfig staged_wc = paper_world_config();
    staged_wc.device.staged_copies = true;
    const double st =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), staged_wc);
    const double ga = baselines::run_pingpong_us(spec, motor_pingpong(bytes),
                                                 paper_world_config());
    // Round trip moves the buffer twice; bytes/us == MB/s.
    const double st_bw = 2.0 * static_cast<double>(bytes) / st;
    const double ga_bw = 2.0 * static_cast<double>(bytes) / ga;
    std::printf("%10zu %12.2f %12.2f %12.1f %12.1f %9.1f%%\n", bytes, st, ga,
                st_bw, ga_bw, (st - ga) / st * 100.0);
    std::fflush(stdout);
  }

  // E5: reliability-layer overhead on a clean wire. With the layer OFF
  // (the default) the data path is byte-identical to the zero-copy PR —
  // the acceptance gate is a <=2% bandwidth delta at 256 KiB. With it ON
  // the frames carry sealed headers (CRC-32C over header and payload),
  // ride the sequence window, and generate ack traffic — the price of
  // running over an untrusted wire, paid only when asked for.
  std::printf("\n# E5: reliability layer overhead (Motor series, round trip)\n");
  std::printf("%10s %12s %12s %12s %12s %10s\n", "bytes", "off_us", "on_us",
              "off_MBs", "on_MBs", "cost_pct");
  for (std::size_t bytes :
       {std::size_t{16384}, std::size_t{65536}, std::size_t{262144}}) {
    mpi::WorldConfig rel_wc = paper_world_config();
    rel_wc.device.reliability.enabled = true;
    const double off = baselines::run_pingpong_us(spec, motor_pingpong(bytes),
                                                  paper_world_config());
    const double on =
        baselines::run_pingpong_us(spec, motor_pingpong(bytes), rel_wc);
    const double off_bw = 2.0 * static_cast<double>(bytes) / off;
    const double on_bw = 2.0 * static_cast<double>(bytes) / on;
    std::printf("%10zu %12.2f %12.2f %12.1f %12.1f %9.1f%%\n", bytes, off, on,
                off_bw, on_bw, (on - off) / off * 100.0);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (a.rfind("--json=", 0) == 0) {
      opt.json_path = a.substr(7);
    } else if (a.rfind("--transport=", 0) == 0) {
      opt.transport = a.substr(12);
    } else {
      std::fprintf(stderr,
                   "usage: fig9_pingpong [--smoke] [--json=PATH]\n"
                   "                     [--transport=thread|socket|shm]\n");
      return 2;
    }
  }
  if (opt.transport == "thread") return run_thread_mode(opt);
  if (motor::launch::in_rank_process()) return run_proc_child(opt);
  return run_proc_parent(opt, argv[0]);
}
