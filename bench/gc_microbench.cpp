// GC microbenchmarks: allocation throughput, collection pause versus live
// set, and — the §4.3 concern — what conditional pin entries cost the
// collector's mark phase ("checking the status of an operation causes the
// garbage collector minimal extra work during the mark phase").
#include <benchmark/benchmark.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace {

using namespace motor;

vm::VmConfig heap_config(std::size_t young = 1 << 20) {
  vm::VmConfig c;
  c.profile = vm::RuntimeProfile::uncosted();
  c.heap.young_bytes = young;
  return c;
}

void BM_AllocSmallObjects(benchmark::State& state) {
  vm::Vm vm(heap_config(8 << 20));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* node = vm.types()
                                    .define_class("N")
                                    .field("a", vm::ElementKind::kInt64)
                                    .field("b", vm::ElementKind::kInt64)
                                    .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.heap().alloc_object(node));
  }
  state.counters["collections"] =
      static_cast<double>(vm.heap().stats().collections);
}
BENCHMARK(BM_AllocSmallObjects);

void BM_AllocArrays(benchmark::State& state) {
  vm::Vm vm(heap_config(8 << 20));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.heap().alloc_array(ints, n));
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_AllocArrays)->Arg(16)->Arg(256)->Arg(4096);

/// Collection pause as the live set grows (promoted survivors are traced
/// every cycle).
void BM_CollectionPause(benchmark::State& state) {
  vm::Vm vm(heap_config(1 << 20));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* node =
      vm.types()
          .define_class("L")
          .ref_field("next", vm.types().object_type(), true)
          .field("v", vm::ElementKind::kInt64)
          .build();
  vm::GcRoot head(thread, nullptr);
  for (int i = 0; i < state.range(0); ++i) {
    vm::Obj n = vm.heap().alloc_object(node);
    vm::set_ref_field(n, 0, head.get());
    head.set(n);
  }
  for (auto _ : state) {
    vm.heap().collect();
  }
  state.counters["live_objects"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CollectionPause)->Arg(100)->Arg(1000)->Arg(10000);

/// Mark-phase cost of N outstanding conditional pin entries (incomplete
/// requests, so every entry is checked and kept each cycle).
void BM_CollectWithConditionalPins(benchmark::State& state) {
  vm::Vm vm(heap_config(1 << 20));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::RootRange buffers(thread);
  std::vector<mpi::Request> requests;
  for (int i = 0; i < state.range(0); ++i) {
    buffers.add(vm.heap().alloc_array(ints, 16));
    auto req = std::make_shared<mpi::RequestState>();  // stays incomplete
    vm.heap().add_conditional_pin(buffers[static_cast<std::size_t>(i)], req);
    requests.push_back(std::move(req));
  }
  for (auto _ : state) {
    vm.heap().collect();
  }
  state.counters["cond_pins"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CollectWithConditionalPins)->Arg(0)->Arg(64)->Arg(1024);

/// The heap verifier (diagnostic walk) as a coverage-ish throughput probe.
void BM_HeapVerify(benchmark::State& state) {
  vm::Vm vm(heap_config(4 << 20));
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::RootRange keep(thread);
  for (int i = 0; i < 2000; ++i) keep.add(vm.heap().alloc_array(ints, 8));
  for (auto _ : state) {
    vm.heap().verify_heap();
  }
}
BENCHMARK(BM_HeapVerify);

}  // namespace

BENCHMARK_MAIN();
