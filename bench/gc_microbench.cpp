// GC pause behaviour under live parameter-server traffic: the
// pause-bounded (incremental) collector versus the stop-the-world
// baseline at production heap sizes.
//
// Two ranks: rank 0 serves a PS shard and verifies the final table
// against the closed-form expectation; rank 1 builds a large live elder
// graph (chains rooted in a handle range), then pushes deltas while
// churning its heap — young garbage plus occasional insertions into the
// elder graph, every reference store barriered. Pause statistics come
// from the worker heap's per-pause histogram, restricted to the
// measurement window by differencing the bucket counts.
//
// Modes per run:
//   off  traffic only, no churn (no collections in the window): the
//        throughput ceiling the loss numbers are measured against;
//   stw  churn with the stop-the-world collector (incremental=false);
//   inc  churn with incremental marking + pin-aware regions.
//
// Flags (fig9/fig10 conventions): --smoke (small heap, exercised by
// scripts/verify.sh; exits non-zero if any run fails or the incremental
// max pause exceeds the stop-the-world max), --json=PATH (snapshot,
// e.g. BENCH_gc.json). The full run additionally gates on the ISSUE
// acceptance numbers: incremental max pause <= 1/5 of the STW max and
// <= 10% traffic throughput loss at a 256 MiB live heap.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "motor/motor_runtime.hpp"
#include "pal/clock.hpp"
#include "ps/ps.hpp"
#include "vm/handles.hpp"

namespace motor::ps {
namespace {

constexpr std::uint64_t kKeys = 64;
constexpr int kValueLen = 32;       // 128-byte payload per push
constexpr std::size_t kHeads = 512; // root slots anchoring the live graph

enum class GcMode { kOff, kStw, kIncremental };

const char* mode_name(GcMode m) {
  switch (m) {
    case GcMode::kOff: return "off";
    case GcMode::kStw: return "stw";
    default: return "inc";
  }
}

struct Params {
  std::size_t live_bytes;   // elder live set built before measuring
  std::size_t young_bytes;
  int pushes;
  int churn_per_push;       // young allocations per push (0 in off mode)
  std::uint64_t wire_ns;
};

Params params(bool smoke) {
  Params p;
  p.live_bytes = smoke ? 16u << 20 : 256u << 20;
  p.young_bytes = smoke ? 1u << 20 : 4u << 20;
  p.pushes = smoke ? 256 : 4096;
  p.churn_per_push = smoke ? 256 : 256;
  p.wire_ns = smoke ? 2'000 : 13'000;
  return p;
}

/// Pause-histogram bucket counts restricted to a measurement window
/// (after minus before). Quantiles report the bucket's upper bound, the
/// max the top non-empty bucket's upper bound clamped to the heap's
/// exact lifetime max.
struct WindowHist {
  std::array<std::uint64_t, vm::PauseHistogram::kBuckets> counts{};
  std::uint64_t samples = 0;
  std::uint64_t exact_max_ns = 0;  // lifetime max: upper clamp only

  static WindowHist diff(const vm::PauseHistogram& before,
                         const vm::PauseHistogram& after) {
    WindowHist w;
    for (int b = 0; b < vm::PauseHistogram::kBuckets; ++b) {
      const auto i = static_cast<std::size_t>(b);
      w.counts[i] = after.counts[i] - before.counts[i];
      w.samples += w.counts[i];
    }
    w.exact_max_ns = after.max_ns;
    return w;
  }

  [[nodiscard]] std::uint64_t quantile_ns(double q) const {
    if (samples == 0) return 0;
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(samples - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < vm::PauseHistogram::kBuckets; ++b) {
      seen += counts[static_cast<std::size_t>(b)];
      if (seen > rank) {
        const std::uint64_t hi = (std::uint64_t{2} << b) - 1;
        return std::min(hi, exact_max_ns);
      }
    }
    return exact_max_ns;
  }
  [[nodiscard]] std::uint64_t max_ns() const { return quantile_ns(1.0); }
};

struct CaseResult {
  GcMode gc = GcMode::kOff;
  int pushes = 0;
  double elapsed_s = 0.0;
  double pushes_per_sec = 0.0;
  double loss_pct = 0.0;  // vs the off-mode ceiling (filled by run())
  std::size_t live_bytes = 0;
  // Collector activity inside the measurement window.
  std::uint64_t collections = 0;
  std::uint64_t incremental_cycles = 0;
  std::uint64_t mark_slices = 0;
  std::uint64_t barrier_shades = 0;
  std::uint64_t remset_records = 0;
  // Per-phase totals (ns) inside the window.
  std::uint64_t pin_ns = 0, root_ns = 0, mark_phase_ns = 0;
  std::uint64_t reloc_ns = 0, sweep_phase_ns = 0;
  WindowHist pauses;
  bool ok = false;
};

/// One mode: build the live graph, then push under churn and difference
/// the worker heap's counters across the measurement window.
CaseResult run_case(GcMode gc, const Params& p) {
  CaseResult res;
  res.gc = gc;
  res.pushes = p.pushes;

  mp::MotorWorldConfig wc;
  wc.ranks = 2;
  wc.vm.profile = vm::RuntimeProfile::uncosted();
  wc.vm.heap.young_bytes = p.young_bytes;
  wc.vm.heap.incremental = (gc == GcMode::kIncremental);
  wc.world.wire_latency_ns = p.wire_ns;

  std::mutex mu;
  bool converged = true;
  std::uint64_t elapsed_ns = 0;

  run_motor_world(wc, [&](mp::MotorContext& ctx) {
    PsConfig pc;
    pc.servers = 1;
    pc.serve_timeout_ns = 600ull * 1000 * 1000 * 1000;
    pc.op_timeout_ns = 600ull * 1000 * 1000 * 1000;
    PsNode node(ctx, pc);
    if (node.is_server()) {
      const bool served = node.server().Serve().is_ok();
      // Single worker: every lane of key k must equal pushes / kKeys.
      const auto per_key =
          static_cast<float>(static_cast<std::uint64_t>(p.pushes) / kKeys);
      bool table_ok = served && node.server().table_size() == kKeys;
      for (std::uint64_t k = 0; table_ok && k < kKeys; ++k) {
        std::vector<float> v;
        table_ok = node.server().Lookup(k, &v) &&
                   v.size() == static_cast<std::size_t>(kValueLen);
        for (std::size_t j = 0; table_ok && j < v.size(); ++j) {
          table_ok = v[j] == per_key;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      converged = converged && table_ok;
      return;
    }

    // ---- worker: live graph + churn under traffic ----
    vm::Vm& wvm = ctx.vm();
    vm::ManagedThread& t = ctx.thread();
    vm::ManagedHeap& heap = wvm.heap();
    const vm::MethodTable* node_mt =
        wvm.types()
            .define_class("ChurnNode")
            .field("value", vm::ElementKind::kInt64)
            .ref_field("next", wvm.types().object_type(), true)
            .build();
    auto make_node = [&](std::int64_t value, vm::Obj next) {
      vm::GcRoot next_root(t, next);
      vm::Obj n = heap.alloc_object(node_mt);
      vm::set_field(n, 0, value);
      heap.store_ref_field(n, 8, next_root.get());
      return n;
    };

    // The live set: kHeads chains grown round-robin until the elder
    // generation holds the target bytes (collections during the build
    // promote everything, since every node is rooted).
    vm::RootRange heads(t);
    for (std::size_t i = 0; i < kHeads; ++i) heads.add(nullptr);
    std::int64_t serial = 0;
    while (heap.elder_bytes() < p.live_bytes) {
      const std::size_t k = static_cast<std::size_t>(serial) % kHeads;
      heads[k] = make_node(serial, heads.at(k));
      ++serial;
    }
    heap.collect();  // start the window with an empty nursery

    vm::GcRoot churn_head(t, nullptr);
    auto churn = [&](int n) {
      for (int j = 0; j < n; ++j) {
        vm::Obj c = make_node(++serial, churn_head.get());
        if (serial % 64 == 0) {
          // Insert into the elder graph behind a head node: a young
          // object now referenced from the elder generation (remembered
          // set + barrier work), without severing the chain.
          vm::Obj head = heads.at(static_cast<std::size_t>(serial) % kHeads);
          heap.store_ref_field(c, 8, vm::get_ref_field(head, 8));
          heap.store_ref_field(head, 8, c);
        }
        // Drop the churn chain periodically so the garbage dies young.
        churn_head.set(serial % 16 == 0 ? nullptr : c);
      }
    };

    const vm::GcStats before = heap.stats();
    PsClient& cl = node.client();
    std::vector<float> delta(kValueLen, 1.0f);
    bool ok = true;
    const std::uint64_t t0 = pal::monotonic_ns();
    for (int i = 0; ok && i < p.pushes; ++i) {
      ok = cl.Push(static_cast<std::uint64_t>(i) % kKeys, delta).is_ok();
      if (gc != GcMode::kOff) churn(p.churn_per_push);
    }
    ok = ok && cl.Flush().is_ok();
    const std::uint64_t elapsed = pal::monotonic_ns() - t0;
    const vm::GcStats after = heap.stats();
    ok = ok && cl.Close().is_ok();

    std::lock_guard<std::mutex> lk(mu);
    converged = converged && ok;
    elapsed_ns = elapsed;
    res.live_bytes = heap.elder_bytes();
    res.collections = after.collections - before.collections;
    res.incremental_cycles =
        after.incremental_cycles - before.incremental_cycles;
    res.mark_slices = after.mark_slices - before.mark_slices;
    res.barrier_shades = after.barrier_shades - before.barrier_shades;
    res.remset_records = after.remset_records - before.remset_records;
    res.pin_ns = after.pin_resolve_ns - before.pin_resolve_ns;
    res.root_ns = after.root_scan_ns - before.root_scan_ns;
    res.mark_phase_ns = after.mark_ns - before.mark_ns;
    res.reloc_ns = after.relocate_ns - before.relocate_ns;
    res.sweep_phase_ns = after.sweep_ns - before.sweep_ns;
    res.pauses = WindowHist::diff(before.pause_hist, after.pause_hist);
  });

  res.ok = converged;
  res.elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  res.pushes_per_sec =
      res.elapsed_s > 0 ? static_cast<double>(p.pushes) / res.elapsed_s : 0.0;
  return res;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

int run(bool smoke, const std::string& json_path) {
  const Params p = params(smoke);
  std::printf("# gc_microbench (%s): live %zu MiB, young %zu KiB, "
              "%d pushes, churn %d allocs/push, wire %llu ns\n",
              smoke ? "smoke" : "full", p.live_bytes >> 20,
              p.young_bytes >> 10, p.pushes, p.churn_per_push,
              static_cast<unsigned long long>(p.wire_ns));
  std::printf("%5s %10s %9s %8s %7s %7s %10s %10s %10s %8s\n", "mode",
              "pushes/s", "loss_pct", "gcs", "cycles", "slices",
              "p50_ms", "p99_ms", "max_ms", "ok");
  std::fflush(stdout);

  std::vector<CaseResult> rows;
  for (GcMode gc : {GcMode::kOff, GcMode::kStw, GcMode::kIncremental}) {
    CaseResult r = run_case(gc, p);
    if (!rows.empty() && rows.front().pushes_per_sec > 0) {
      r.loss_pct =
          100.0 * (1.0 - r.pushes_per_sec / rows.front().pushes_per_sec);
    }
    std::printf("%5s %10.0f %9.1f %8llu %7llu %7llu %10.3f %10.3f %10.3f "
                "%8s\n",
                mode_name(r.gc), r.pushes_per_sec, r.loss_pct,
                static_cast<unsigned long long>(r.collections),
                static_cast<unsigned long long>(r.incremental_cycles),
                static_cast<unsigned long long>(r.mark_slices),
                ms(r.pauses.quantile_ns(0.5)), ms(r.pauses.quantile_ns(0.99)),
                ms(r.pauses.max_ns()), r.ok ? "yes" : "NO");
    std::printf("#       phases: pin %.1f root %.1f mark %.1f reloc %.1f "
                "sweep %.1f ms\n",
                ms(r.pin_ns), ms(r.root_ns), ms(r.mark_phase_ns),
                ms(r.reloc_ns), ms(r.sweep_phase_ns));
    std::fflush(stdout);
    rows.push_back(r);
  }

  const CaseResult& stw = rows[1];
  const CaseResult& inc = rows[2];
  bool pass = rows[0].ok && stw.ok && inc.ok;
  // Both GC modes must actually have collected inside the window, or
  // the pause comparison is vacuous.
  pass = pass && stw.collections > 0 && inc.collections > 0;

  const double ratio =
      inc.pauses.max_ns() > 0 ? static_cast<double>(stw.pauses.max_ns()) /
                                    static_cast<double>(inc.pauses.max_ns())
                              : 0.0;
  std::printf("# max pause: stw %.3f ms, inc %.3f ms (%.1fx shorter)\n",
              ms(stw.pauses.max_ns()), ms(inc.pauses.max_ns()), ratio);
  std::printf("# traffic loss vs no-churn ceiling: stw %.1f%%, inc %.1f%%\n",
              stw.loss_pct, inc.loss_pct);
  // Throughput cost of the incremental machinery itself (barrier, root
  // re-scans, slice scheduling), measured against STW doing the same GC
  // work in the same window. The vs-off losses above mostly price GC
  // work as such, which both modes pay equally.
  const double inc_vs_stw_loss =
      stw.pushes_per_sec > 0
          ? 100.0 * (1.0 - inc.pushes_per_sec / stw.pushes_per_sec)
          : 0.0;
  std::printf("# incremental overhead vs stw throughput: %.1f%%\n",
              inc_vs_stw_loss);
  if (smoke) {
    pass = pass && inc.pauses.max_ns() <= stw.pauses.max_ns();
  } else {
    // The ISSUE acceptance gates, full mode only: incremental max pause
    // at most 1/5 of STW, and at most 10% throughput lost to the
    // incremental machinery.
    pass = pass && inc.pauses.max_ns() * 5 <= stw.pauses.max_ns();
    pass = pass && inc_vs_stw_loss <= 10.0;
  }
  std::printf("# gates (%s): %s\n", smoke ? "smoke" : "full",
              pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"gc_microbench\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"live_mib\": %zu,\n  \"young_kib\": %zu,\n"
                 "  \"pushes\": %d,\n  \"churn_per_push\": %d,\n"
                 "  \"wire\": {\"latency_ns_per_hop\": %llu},\n",
                 p.live_bytes >> 20, p.young_bytes >> 10, p.pushes,
                 p.churn_per_push,
                 static_cast<unsigned long long>(p.wire_ns));
    std::fprintf(f, "  \"max_pause_ratio_stw_over_inc\": %.2f,\n", ratio);
    std::fprintf(f, "  \"inc_throughput_loss_pct\": %.2f,\n", inc_vs_stw_loss);
    std::fprintf(f, "  \"inc_loss_vs_idle_pct\": %.2f,\n", inc.loss_pct);
    std::fprintf(f, "  \"stw_loss_vs_idle_pct\": %.2f,\n", stw.loss_pct);
    std::fprintf(f, "  \"gates_pass\": %s,\n", pass ? "true" : "false");
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CaseResult& r = rows[i];
      std::fprintf(
          f,
          "    {\"gc\": \"%s\", \"pushes\": %d, \"elapsed_s\": %.3f, "
          "\"pushes_per_sec\": %.0f, \"loss_pct\": %.2f, "
          "\"live_mib\": %.1f, \"collections\": %llu, "
          "\"incremental_cycles\": %llu, \"mark_slices\": %llu, "
          "\"barrier_shades\": %llu, \"remset_records\": %llu, "
          "\"pause_p50_ms\": %.3f, \"pause_p99_ms\": %.3f, "
          "\"pause_max_ms\": %.3f, \"ok\": %s}%s\n",
          mode_name(r.gc), r.pushes, r.elapsed_s, r.pushes_per_sec,
          r.loss_pct, static_cast<double>(r.live_bytes) / (1 << 20),
          static_cast<unsigned long long>(r.collections),
          static_cast<unsigned long long>(r.incremental_cycles),
          static_cast<unsigned long long>(r.mark_slices),
          static_cast<unsigned long long>(r.barrier_shades),
          static_cast<unsigned long long>(r.remset_records),
          ms(r.pauses.quantile_ns(0.5)), ms(r.pauses.quantile_ns(0.99)),
          ms(r.pauses.max_ns()), r.ok ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace motor::ps

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return motor::ps::run(smoke, json_path);
}
