// Parameter-server throughput: sustained push updates/sec and p99 push
// latency vs worker count, with and without coalescing (the ablation).
//
// One server shard plus W workers on the paper-calibrated wire (13 us
// one-way, as in Figure 9/10 — see EXPERIMENTS.md). Every worker pushes
// `ops` integer-valued 32-float deltas over a 64-key space, then the
// server verifies the final table against the closed-form expectation
// (workers * ops / keys per lane) — the run exits non-zero on any
// mismatch, so the verify.sh smoke check cannot rot into a no-op.
//
//   --coalesce=on   records pack into 32 KiB batches (size/count/deadline
//                   flush), one wire message per batch;
//   --coalesce=off  every push is its own wire message (immediate flush),
//                   still async and credit-windowed.
//
// Flags (fig9/fig10 conventions): --smoke (tiny grid, exercised by
// scripts/verify.sh; exits non-zero on any convergence mismatch),
// --json=PATH (machine-readable snapshot, e.g. BENCH_ps.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "motor/motor_runtime.hpp"
#include "pal/clock.hpp"
#include "ps/ps.hpp"

namespace motor::ps {
namespace {

constexpr std::uint64_t kKeys = 64;
constexpr int kValueLen = 32;  // 128-byte payload per push

struct CaseResult {
  int workers = 0;
  bool coalesce = true;
  int ops_per_worker = 0;
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  double records_per_batch = 0.0;
  double elapsed_s = 0.0;
  double updates_per_sec = 0.0;
  double mean_us = 0.0;  // flush -> credit-return round trip
  double p99_us = 0.0;
  bool converged = false;
};

double percentile(std::vector<std::uint64_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1000.0;
}

/// One grid point: ranks 1..workers push, rank 0 serves and verifies.
CaseResult run_case(int workers, bool coalesce, int ops, bool smoke) {
  CaseResult res;
  res.workers = workers;
  res.coalesce = coalesce;
  res.ops_per_worker = ops;
  res.records =
      static_cast<std::uint64_t>(workers) * static_cast<std::uint64_t>(ops);

  mp::MotorWorldConfig wc;
  wc.ranks = workers + 1;
  wc.vm.profile = vm::RuntimeProfile::uncosted();
  wc.vm.heap.young_bytes = 512 * 1024;
  // The paper-testbed wire (bench/series.hpp): per-message cost is what
  // coalescing amortizes, so the wire must charge for messages.
  wc.world.wire_latency_ns = smoke ? 2'000 : 13'000;

  std::mutex mu;
  std::uint64_t max_elapsed_ns = 0;
  std::uint64_t batches = 0;
  std::vector<std::uint64_t> latency_ns;
  bool converged = true;

  run_motor_world(wc, [&](mp::MotorContext& ctx) {
    PsConfig pc;
    pc.servers = 1;
    pc.coalesce = coalesce;
    pc.collect_latency = true;
    pc.serve_timeout_ns = 300ull * 1000 * 1000 * 1000;
    pc.op_timeout_ns = 300ull * 1000 * 1000 * 1000;
    PsNode node(ctx, pc);
    if (node.is_server()) {
      const bool ok = node.server().Serve().is_ok();
      // Closed-form expectation: worker w's op i hits key i % kKeys with
      // an all-ones delta, so every lane of key k counts the hits.
      const auto per_key = static_cast<float>(
          static_cast<std::uint64_t>(workers) *
          (static_cast<std::uint64_t>(ops) / kKeys));
      bool table_ok = ok && node.server().table_size() == kKeys;
      for (std::uint64_t k = 0; table_ok && k < kKeys; ++k) {
        std::vector<float> v;
        table_ok = node.server().Lookup(k, &v) &&
                   v.size() == static_cast<std::size_t>(kValueLen);
        for (std::size_t j = 0; table_ok && j < v.size(); ++j) {
          table_ok = v[j] == per_key;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      converged = converged && table_ok;
      return;
    }
    PsClient& cl = node.client();
    std::vector<float> delta(kValueLen, 1.0f);
    const std::uint64_t t0 = pal::monotonic_ns();
    bool ok = true;
    for (int i = 0; ok && i < ops; ++i) {
      ok = cl.Push(static_cast<std::uint64_t>(i) % kKeys, delta).is_ok();
    }
    ok = ok && cl.Flush().is_ok();
    const std::uint64_t elapsed = pal::monotonic_ns() - t0;
    // One read exercises the pull path under load-adjacent conditions;
    // the value is verified authoritatively by the server after FINs.
    // Exact-size typed pull into caller storage (no resize, and a length
    // mismatch would surface as kCountError).
    std::vector<float> got(kValueLen);
    ok = ok && cl.Pull(0, std::span<float>(got)).is_ok();
    std::vector<std::uint64_t> samples = cl.take_latency_samples();
    const PsClientStats st = cl.stats();
    ok = ok && cl.Close().is_ok();
    std::lock_guard<std::mutex> lk(mu);
    converged = converged && ok;
    max_elapsed_ns = std::max(max_elapsed_ns, elapsed);
    batches += st.batches_flushed;
    latency_ns.insert(latency_ns.end(), samples.begin(), samples.end());
  });

  res.converged = converged;
  res.batches = batches;
  res.records_per_batch =
      batches > 0 ? static_cast<double>(res.records) /
                        static_cast<double>(batches)
                  : 0.0;
  res.elapsed_s = static_cast<double>(max_elapsed_ns) / 1e9;
  res.updates_per_sec =
      res.elapsed_s > 0 ? static_cast<double>(res.records) / res.elapsed_s
                        : 0.0;
  double sum = 0;
  for (const std::uint64_t s : latency_ns) sum += static_cast<double>(s);
  res.mean_us = latency_ns.empty()
                    ? 0.0
                    : sum / static_cast<double>(latency_ns.size()) / 1000.0;
  res.p99_us = percentile(latency_ns, 0.99);
  return res;
}

const CaseResult* find_case(const std::vector<CaseResult>& rows, int workers,
                            bool coalesce) {
  for (const CaseResult& r : rows) {
    if (r.workers == workers && r.coalesce == coalesce) return &r;
  }
  return nullptr;
}

int run(bool smoke, const std::string& json_path) {
  // Off-mode op counts shrink with the per-message wire cost so the full
  // sweep stays tractable; updates/sec normalizes the comparison.
  const std::vector<int> worker_grid =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8, 16};
  const int ops_on = smoke ? 512 : 12'800;
  const int ops_off = smoke ? 128 : 1'280;

  std::printf("# ps_throughput (%s): 1 server shard, %d-float deltas, "
              "%llu keys, wire %d ns\n",
              smoke ? "smoke" : "full", kValueLen,
              static_cast<unsigned long long>(kKeys), smoke ? 2000 : 13000);
  std::printf("%8s %9s %8s %10s %10s %12s %10s %10s %10s\n", "workers",
              "coalesce", "ops/wkr", "records", "rec/batch", "updates/s",
              "mean_us", "p99_us", "elapsed_s");
  std::fflush(stdout);

  std::vector<CaseResult> rows;
  bool all_converged = true;
  for (const int w : worker_grid) {
    for (const bool on : {true, false}) {
      const CaseResult r = run_case(w, on, on ? ops_on : ops_off, smoke);
      all_converged = all_converged && r.converged;
      std::printf("%8d %9s %8d %10llu %10.1f %12.0f %10.1f %10.1f %9.3f%s\n",
                  r.workers, r.coalesce ? "on" : "off", r.ops_per_worker,
                  static_cast<unsigned long long>(r.records),
                  r.records_per_batch, r.updates_per_sec, r.mean_us,
                  r.p99_us, r.elapsed_s,
                  r.converged ? "" : "  CONVERGENCE FAILED");
      std::fflush(stdout);
      rows.push_back(r);
    }
  }

  // The headline acceptance number: coalescing vs the ablation at the
  // largest worker count.
  const int peak = worker_grid.back();
  const CaseResult* on = find_case(rows, peak, true);
  const CaseResult* off = find_case(rows, peak, false);
  double speedup = 0.0;
  if (on != nullptr && off != nullptr && off->updates_per_sec > 0) {
    speedup = on->updates_per_sec / off->updates_per_sec;
    std::printf("# coalescing at %d workers: %.0f -> %.0f updates/s "
                "(%.1fx), p99 push %.1f us\n",
                peak, off->updates_per_sec, on->updates_per_sec, speedup,
                on->p99_us);
  }
  std::printf("# convergence (every lane equals workers*ops/keys): %s\n",
              all_converged ? "OK" : "FAILED");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ps_throughput\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"wire\": {\"latency_ns_per_hop\": %d},\n"
                 "  \"shards\": 1,\n  \"value_floats\": %d,\n"
                 "  \"keys\": %llu,\n",
                 smoke ? 2000 : 13000, kValueLen,
                 static_cast<unsigned long long>(kKeys));
    std::fprintf(f, "  \"all_converged\": %s,\n",
                 all_converged ? "true" : "false");
    std::fprintf(f, "  \"peak_workers\": %d,\n", peak);
    std::fprintf(f, "  \"coalesce_speedup_at_peak\": %.2f,\n", speedup);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CaseResult& r = rows[i];
      std::fprintf(
          f,
          "    {\"workers\": %d, \"coalesce\": %s, \"ops_per_worker\": %d, "
          "\"records\": %llu, \"records_per_batch\": %.1f, "
          "\"updates_per_sec\": %.0f, \"mean_push_us\": %.1f, "
          "\"p99_push_us\": %.1f, \"elapsed_s\": %.3f, \"converged\": %s}%s\n",
          r.workers, r.coalesce ? "true" : "false", r.ops_per_worker,
          static_cast<unsigned long long>(r.records), r.records_per_batch,
          r.updates_per_sec, r.mean_us, r.p99_us, r.elapsed_s,
          r.converged ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return all_converged ? 0 : 1;
}

}  // namespace
}  // namespace motor::ps

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return motor::ps::run(smoke, json_path);
}
