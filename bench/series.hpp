// Shared series builders for the paper-reproduction benchmarks: one
// setup function per measured implementation, all running over the same
// Message Passing Core so the measured deltas are wrapper architecture,
// exactly as in the paper's methodology (§8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/indiana_bindings.hpp"
#include "baselines/mpijava_bindings.hpp"
#include "baselines/native_pingpong.hpp"
#include "motor/mp_direct.hpp"
#include "vm/handles.hpp"

namespace motor::bench {

using baselines::IterationFn;
using baselines::PingPongSpec;
using baselines::RankSetup;

/// World configuration for the paper-reproduction benchmarks: the wire
/// gets a localhost-TCP-scale one-way latency so cost *proportions* match
/// the paper's 2005 testbed (see EXPERIMENTS.md calibration).
inline mpi::WorldConfig paper_world_config() {
  mpi::WorldConfig c;
  c.wire_latency_ns = 13'000;
  return c;
}

inline vm::VmConfig hosted_vm_config(vm::RuntimeProfile profile) {
  vm::VmConfig c;
  c.profile = std::move(profile);
  // Generous nursery: Figure 9 isolates call-path costs, not GC pressure.
  c.heap.young_bytes = 4 << 20;
  return c;
}

/// Per-rank state shared by hosted-series setups. Kept alive by the
/// returned IterationFn's shared_ptr.
struct HostedRank {
  explicit HostedRank(vm::RuntimeProfile profile)
      : vm(hosted_vm_config(std::move(profile))), thread(vm) {}
  vm::Vm vm;
  vm::ManagedThread thread;
};

/// Motor series: System.MP over the FCall boundary with the pinning
/// policy (SSCLI host profile, as in the paper).
inline RankSetup motor_pingpong(std::size_t bytes,
                                mp::PinMode pin_mode = mp::PinMode::kMotorPolicy) {
  return [bytes, pin_mode](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sscli());
    mp::MPDirectConfig mp_cfg;
    mp_cfg.pin_mode = pin_mode;
    auto direct = std::make_shared<mp::MPDirect>(host->vm, host->thread,
                                                 ctx.comm_world(), mp_cfg);
    const vm::MethodTable* mt =
        host->vm.types().primitive_array(vm::ElementKind::kUInt8);
    auto buf = std::make_shared<vm::GcRoot>(
        host->thread,
        host->vm.heap().alloc_array(mt, static_cast<std::int64_t>(bytes)));
    const int me = ctx.comm_world().rank();
    return IterationFn([host, direct, buf, me] {
      if (me == 0) {
        direct->send(buf->get(), 1, 0);
        direct->recv(buf->get(), 1, 0);
      } else {
        direct->recv(buf->get(), 0, 0);
        direct->send(buf->get(), 0, 0);
      }
    });
  };
}

/// Indiana C# bindings series, hosted by `profile` (sscli or dotnet).
inline RankSetup indiana_pingpong(std::size_t bytes,
                                  vm::RuntimeProfile profile) {
  return [bytes, profile](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(profile);
    auto comm = std::make_shared<baselines::IndianaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    const vm::MethodTable* mt =
        host->vm.types().primitive_array(vm::ElementKind::kUInt8);
    auto buf = std::make_shared<vm::GcRoot>(
        host->thread,
        host->vm.heap().alloc_array(mt, static_cast<std::int64_t>(bytes)));
    const int me = ctx.comm_world().rank();
    return IterationFn([host, comm, buf, me] {
      if (me == 0) {
        comm->send(buf->get(), 1, 0);
        comm->recv(buf->get(), 1, 0);
      } else {
        comm->recv(buf->get(), 0, 0);
        comm->send(buf->get(), 0, 0);
      }
    });
  };
}

/// mpiJava series on the Sun JVM profile.
inline RankSetup mpijava_pingpong(std::size_t bytes) {
  return [bytes](mpi::RankCtx& ctx) {
    auto host = std::make_shared<HostedRank>(vm::RuntimeProfile::sun_jvm());
    auto comm = std::make_shared<baselines::MpiJavaCommunicator>(
        host->vm, host->thread, ctx.comm_world());
    const vm::MethodTable* mt =
        host->vm.types().primitive_array(vm::ElementKind::kUInt8);
    auto buf = std::make_shared<vm::GcRoot>(
        host->thread,
        host->vm.heap().alloc_array(mt, static_cast<std::int64_t>(bytes)));
    const int me = ctx.comm_world().rank();
    return IterationFn([host, comm, buf, me] {
      if (me == 0) {
        comm->send(buf->get(), 1, 0);
        comm->recv(buf->get(), 1, 0);
      } else {
        comm->recv(buf->get(), 0, 0);
        comm->send(buf->get(), 0, 0);
      }
    });
  };
}

/// Linked-list-of-objects fixture for Figure 10: `elements` nodes, each
/// holding a byte buffer; total payload `total_bytes` evenly distributed.
/// Total transported objects = 2 * elements (node + its array).
struct ListFixture {
  const vm::MethodTable* bytes_mt;
  const vm::MethodTable* node_mt;

  explicit ListFixture(vm::Vm& vm) {
    bytes_mt = vm.types().primitive_array(vm::ElementKind::kUInt8);
    node_mt = vm.types()
                  .define_class("LinkedArray")
                  .transportable()
                  .ref_field("array", bytes_mt, true)
                  .ref_field("next", vm.types().object_type(), true)
                  .build();
  }

  vm::Obj make(vm::Vm& vm, vm::ManagedThread& thread, int elements,
               std::size_t total_bytes) const {
    const auto per =
        static_cast<std::int64_t>(std::max<std::size_t>(
            1, total_bytes / static_cast<std::size_t>(elements)));
    vm::GcRoot head(thread, nullptr);
    for (int i = 0; i < elements; ++i) {
      vm::GcRoot arr(thread, vm.heap().alloc_array(bytes_mt, per));
      for (std::int64_t k = 0; k < per; ++k) {
        vm::set_element<std::uint8_t>(arr.get(), k,
                                      static_cast<std::uint8_t>(i + k));
      }
      vm::Obj n = vm.heap().alloc_object(node_mt);
      vm::set_ref_field(n, node_mt->field_named("array")->offset(),
                        arr.get());
      vm::set_ref_field(n, node_mt->field_named("next")->offset(),
                        head.get());
      head.set(n);
    }
    return head.get();
  }
};

}  // namespace motor::bench
