// Interconnect sweep (extension of Figure 9, motivated by §9: "The
// layered Motor architecture will allow us to port Motor to other
// platforms and interconnects"): how the Motor-vs-wrapper gap moves with
// the interconnect class. On a fast fabric the managed-call overheads
// dominate (Motor's advantage widens); on a slow WAN-ish wire everything
// converges — the crossover the paper's single-testbed evaluation cannot
// show.
#include <cstdio>

#include "series.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

struct Interconnect {
  const char* name;
  std::uint64_t latency_ns;
  std::uint64_t bandwidth_bps;  // 0 = unlimited
};

}  // namespace

int main() {
  const Interconnect nets[] = {
      {"shared-mem", 300, 0},                       // in-box
      {"myrinet-ish", 4'000, 0},                    // low-latency cluster
      {"gbe-localhost", 13'000, 0},                 // the paper's testbed
      {"wan-ish", 200'000, 12'500'000},             // 100 Mb/s, 200 us
  };

  PingPongSpec spec;
  spec.warmup_iterations = 30;
  spec.timed_iterations = 60;
  spec.repeats = 1;
  constexpr std::size_t kBytes = 1024;

  std::printf("# Interconnect sweep: %zu-byte ping-pong, us/iteration\n",
              kBytes);
  std::printf("# MotorStaged = DeviceConfig::staged_copies (pre-gather path)\n");
  std::printf("%14s %10s %10s %12s %14s %16s\n", "interconnect", "C++",
              "Motor", "MotorStaged", "IndianaSSCLI", "motor_gain_pct");

  for (const Interconnect& net : nets) {
    mpi::WorldConfig wc;
    wc.wire_latency_ns = net.latency_ns;
    wc.wire_bandwidth_bps = net.bandwidth_bps;
    mpi::WorldConfig staged_wc = wc;
    staged_wc.device.staged_copies = true;

    const double cpp = baselines::native_pingpong_us(kBytes, spec, wc);
    const double mo =
        baselines::run_pingpong_us(spec, motor_pingpong(kBytes), wc);
    const double mo_staged =
        baselines::run_pingpong_us(spec, motor_pingpong(kBytes), staged_wc);
    const double ind = baselines::run_pingpong_us(
        spec, indiana_pingpong(kBytes, vm::RuntimeProfile::sscli()), wc);
    std::printf("%14s %10.1f %10.1f %12.1f %14.1f %15.1f%%\n", net.name, cpp,
                mo, mo_staged, ind, (ind - mo) / ind * 100.0);
    std::fflush(stdout);
  }
  std::printf("\n# expectation: the relative Motor advantage GROWS as the\n");
  std::printf("# wire gets faster (fixed per-call overheads dominate) and\n");
  std::printf("# vanishes into the WAN-ish noise floor.\n");
  return 0;
}
