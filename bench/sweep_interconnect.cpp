// Interconnect sweep, two parts.
//
// Part 1 (original, full mode only): how the Motor-vs-wrapper ping-pong
// gap moves with the interconnect class (extension of Figure 9, motivated
// by §9: "The layered Motor architecture will allow us to port Motor to
// other platforms and interconnects").
//
// Part 2 (the scaling harness): weak/strong-scaling sweep of the
// collective algorithm registry (src/mpi/collectives.hpp) over
// topology-modelled fabrics — full mesh, 2-D mesh, 2-D torus, two-level
// fat tree — at 4..256 thread-ranks. Every registered algorithm of every
// collective is pinned in turn (the per-call CollAlgo override), timed at
// several message sizes on the paper's GbE-class wire model (13 us per
// hop, ~1 Gb/s per link), and its RESULT is checked against the analytic
// expectation — so the ablation also proves the registry entries are
// result-identical. bcast/reduce/allreduce rows keep the total vector
// fixed as ranks grow (strong scaling); allgather/reduce_scatter rows
// keep the per-rank block fixed (weak scaling). The harness then extracts
// the measured per-size winner, the small->large crossover point per
// (topology, world, collective), and how often the kAuto selection
// function (select_algo) picks the measured winner.
//
// Timing: rank 0's clock over `timed` back-to-back calls plus one closing
// barrier (drains the pipeline; identical overhead for every algorithm of
// a row group, so winner and crossover comparisons are unaffected).
//
// Flags (fig9/fig10 conventions): --smoke (tiny grid, exercised by
// scripts/verify.sh; exits non-zero on any result mismatch so the
// identity check cannot rot), --json=PATH (machine-readable snapshot,
// e.g. BENCH_sweep.json).
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/world.hpp"
#include "pal/clock.hpp"
#include "series.hpp"
#include "transport/topology.hpp"

namespace {

using namespace motor;
using namespace motor::bench;

// ---------------------------------------------------------------- part 1

struct Interconnect {
  const char* name;
  std::uint64_t latency_ns;
  std::uint64_t bandwidth_bps;  // 0 = unlimited
};

void run_interconnect_classes() {
  const Interconnect nets[] = {
      {"shared-mem", 300, 0},            // in-box
      {"myrinet-ish", 4'000, 0},         // low-latency cluster
      {"gbe-localhost", 13'000, 0},      // the paper's testbed
      {"wan-ish", 200'000, 12'500'000},  // 100 Mb/s, 200 us
  };

  PingPongSpec spec;
  spec.warmup_iterations = 30;
  spec.timed_iterations = 60;
  spec.repeats = 1;
  constexpr std::size_t kBytes = 1024;

  std::printf("# Interconnect sweep: %zu-byte ping-pong, us/iteration\n",
              kBytes);
  std::printf("# MotorStaged = DeviceConfig::staged_copies (pre-gather path)\n");
  std::printf("%14s %10s %10s %12s %14s %16s\n", "interconnect", "C++",
              "Motor", "MotorStaged", "IndianaSSCLI", "motor_gain_pct");

  for (const Interconnect& net : nets) {
    mpi::WorldConfig wc;
    wc.wire_latency_ns = net.latency_ns;
    wc.wire_bandwidth_bps = net.bandwidth_bps;
    mpi::WorldConfig staged_wc = wc;
    staged_wc.device.staged_copies = true;

    const double cpp = baselines::native_pingpong_us(kBytes, spec, wc);
    const double mo =
        baselines::run_pingpong_us(spec, motor_pingpong(kBytes), wc);
    const double mo_staged =
        baselines::run_pingpong_us(spec, motor_pingpong(kBytes), staged_wc);
    const double ind = baselines::run_pingpong_us(
        spec, indiana_pingpong(kBytes, vm::RuntimeProfile::sscli()), wc);
    std::printf("%14s %10.1f %10.1f %12.1f %14.1f %15.1f%%\n", net.name, cpp,
                mo, mo_staged, ind, (ind - mo) / ind * 100.0);
    std::fflush(stdout);
  }
  std::printf("\n# expectation: the relative Motor advantage GROWS as the\n");
  std::printf("# wire gets faster (fixed per-call overheads dominate) and\n");
  std::printf("# vanishes into the WAN-ish noise floor.\n\n");
}

// ---------------------------------------------------------------- part 2

struct SweepPoint {
  mpi::CollOp op;
  mpi::CollAlgo algo;
  // bcast/reduce/allreduce: TOTAL vector bytes (strong scaling);
  // allgather/reduce_scatter: PER-RANK block bytes (weak scaling).
  std::size_t bytes;
};

struct SweepRow {
  transport::TopologyKind topo{};
  int world = 0;
  SweepPoint pt{};
  double us = 0;
  bool verified = false;
  mpi::CollAlgo selected = mpi::CollAlgo::kAuto;  // what kAuto resolves to
};

const char* op_name(mpi::CollOp op) {
  switch (op) {
    case mpi::CollOp::kBcast: return "bcast";
    case mpi::CollOp::kReduce: return "reduce";
    case mpi::CollOp::kAllreduce: return "allreduce";
    case mpi::CollOp::kAllgather: return "allgather";
    case mpi::CollOp::kReduceScatter: return "reduce_scatter";
  }
  return "?";
}

bool op_is_strong_scaling(mpi::CollOp op) {
  return op == mpi::CollOp::kBcast || op == mpi::CollOp::kReduce ||
         op == mpi::CollOp::kAllreduce;
}

std::string algo_name(mpi::CollAlgo a) {
  return std::string(mpi::coll_algo_name(a));
}

/// The byte figure the dispatcher hands select_algo (total bytes moved):
/// identity for total-vector ops, block*n for per-block ops.
std::size_t selection_bytes(const SweepPoint& pt, int n) {
  return op_is_strong_scaling(pt.op) ? pt.bytes
                                     : pt.bytes * static_cast<std::size_t>(n);
}

/// Deterministic per-(rank, element) contribution; small enough that a
/// 256-way int64 sum can never overflow.
std::int64_t contrib(int rank, std::size_t j) {
  const auto r = static_cast<std::uint64_t>(rank);
  return static_cast<std::int64_t>((r * 1315423911u + j * 2654435761u) %
                                   20011) -
         10005;
}

/// Run one sweep point on the calling rank: one verified warmup call,
/// then `timed` timed calls + a closing barrier. Returns us/call on
/// rank 0 (0 elsewhere); clears `ok` on any error or result mismatch.
double run_point(mpi::Comm& comm, const SweepPoint& pt, int timed,
                 std::atomic<bool>& ok) {
  const int n = comm.size();
  const int rank = comm.rank();
  const std::size_t count = std::max<std::size_t>(1, pt.bytes / 8);
  const std::size_t step = std::max<std::size_t>(1, count / 13);
  const auto t = mpi::Datatype::kInt64;
  const auto sum = mpi::ReduceOp::kSum;

  auto check = [&ok](bool cond) {
    if (!cond) ok.store(false, std::memory_order_relaxed);
  };

  // One call of the collective; `verify` samples the result afterwards.
  std::function<void()> call;
  std::function<void()> verify;

  std::vector<std::int64_t> in;
  std::vector<std::int64_t> out;
  switch (pt.op) {
    case mpi::CollOp::kBcast:
      out.resize(count, 0);
      call = [&] {
        if (rank == 0) {
          for (std::size_t j = 0; j < count; ++j) out[j] = contrib(0, j);
        }
        check(mpi::bcast(comm, out.data(), count * 8, 0, {}, pt.algo) ==
              ErrorCode::kSuccess);
      };
      verify = [&] {
        for (std::size_t j = 0; j < count; j += step)
          check(out[j] == contrib(0, j));
      };
      break;
    case mpi::CollOp::kReduce:
      in.resize(count);
      for (std::size_t j = 0; j < count; ++j) in[j] = contrib(rank, j);
      if (rank == 0) out.resize(count);
      call = [&] {
        check(mpi::reduce(comm, in.data(), rank == 0 ? out.data() : nullptr,
                          count, t, sum, 0, {}, pt.algo) ==
              ErrorCode::kSuccess);
      };
      verify = [&] {
        if (rank != 0) return;
        for (std::size_t j = 0; j < count; j += step) {
          std::int64_t want = 0;
          for (int r = 0; r < n; ++r) want += contrib(r, j);
          check(out[j] == want);
        }
      };
      break;
    case mpi::CollOp::kAllreduce:
      in.resize(count);
      out.resize(count);
      for (std::size_t j = 0; j < count; ++j) in[j] = contrib(rank, j);
      call = [&] {
        check(mpi::allreduce(comm, in.data(), out.data(), count, t, sum, {},
                             pt.algo) == ErrorCode::kSuccess);
      };
      verify = [&] {
        for (std::size_t j = 0; j < count; j += step) {
          std::int64_t want = 0;
          for (int r = 0; r < n; ++r) want += contrib(r, j);
          check(out[j] == want);
        }
      };
      break;
    case mpi::CollOp::kAllgather:
      in.resize(count);
      out.resize(count * static_cast<std::size_t>(n));
      for (std::size_t j = 0; j < count; ++j) in[j] = contrib(rank, j);
      call = [&] {
        check(mpi::allgather(comm, in.data(), count * 8, out.data(), {},
                             pt.algo) == ErrorCode::kSuccess);
      };
      verify = [&] {
        for (int r = 0; r < n; ++r)
          for (std::size_t j = 0; j < count; j += step)
            check(out[static_cast<std::size_t>(r) * count + j] ==
                  contrib(r, j));
      };
      break;
    case mpi::CollOp::kReduceScatter:
      in.resize(count * static_cast<std::size_t>(n));
      out.resize(count);
      for (std::size_t j = 0; j < in.size(); ++j) in[j] = contrib(rank, j);
      call = [&] {
        check(mpi::reduce_scatter_block(comm, in.data(), out.data(), count, t,
                                        sum, {}, pt.algo) ==
              ErrorCode::kSuccess);
      };
      verify = [&] {
        const std::size_t base = static_cast<std::size_t>(rank) * count;
        for (std::size_t j = 0; j < count; j += step) {
          std::int64_t want = 0;
          for (int r = 0; r < n; ++r) want += contrib(r, base + j);
          check(out[j] == want);
        }
      };
      break;
  }

  call();
  verify();
  (void)mpi::barrier(comm);

  pal::Stopwatch sw;
  for (int i = 0; i < timed; ++i) call();
  (void)mpi::barrier(comm);
  return rank == 0 ? sw.elapsed_us() / timed : 0.0;
}

std::vector<SweepPoint> points_for(int n, bool smoke) {
  std::vector<SweepPoint> pts;
  auto add = [&pts](mpi::CollOp op, std::initializer_list<std::size_t> sizes) {
    for (const mpi::CollAlgo a : mpi::registered_algos(op))
      for (const std::size_t b : sizes) pts.push_back({op, a, b});
  };
  if (smoke) {
    add(mpi::CollOp::kBcast, {2048});
    add(mpi::CollOp::kAllreduce, {2048});
    add(mpi::CollOp::kAllgather, {512});
    add(mpi::CollOp::kReduceScatter, {512});
    return pts;
  }
  if (n >= 128) {
    // The 256-rank strong-scaling tail: the log-round vs linear story is
    // carried by bcast/allreduce; the per-block ops would need n*block
    // buffers per rank, so the 64-rank grid covers them.
    add(mpi::CollOp::kAllreduce, {512, 65536});
    add(mpi::CollOp::kBcast, {65536});
    return pts;
  }
  add(mpi::CollOp::kBcast, {512, 8192, 65536});
  add(mpi::CollOp::kReduce, {8192});
  add(mpi::CollOp::kAllreduce, {512, 8192, 65536});
  add(mpi::CollOp::kAllgather, {512, 4096});
  add(mpi::CollOp::kReduceScatter, {512, 4096});
  return pts;
}

mpi::WorldConfig sweep_world_config(transport::TopologyKind kind, bool smoke) {
  mpi::WorldConfig wc;
  // Bounded per-link buffers: the 256-rank worlds materialise thousands
  // of lazy links; messages larger than the ring stream through it.
  wc.channel_capacity = 64 << 10;
  // The paper's GbE-class testbed per hop; smoke keeps the wire fast so
  // scripts/verify.sh stays in the seconds range.
  wc.wire_latency_ns = smoke ? 2'000 : 13'000;
  wc.wire_bandwidth_bps = smoke ? 0 : 125'000'000;
  wc.topology.kind = kind;
  return wc;
}

void run_world(transport::TopologyKind kind, int n, bool smoke,
               std::vector<SweepRow>& rows) {
  const std::vector<SweepPoint> pts = points_for(n, smoke);
  const int timed = smoke ? 1 : (n >= 128 ? 2 : 3);
  std::vector<double> us(pts.size(), 0.0);
  std::unique_ptr<std::atomic<bool>[]> oks(new std::atomic<bool>[pts.size()]);
  for (std::size_t i = 0; i < pts.size(); ++i) oks[i].store(true);

  mpi::World world(n, sweep_world_config(kind, smoke));
  world.run([&](mpi::RankCtx& ctx) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double t = run_point(ctx.comm_world(), pts[i], timed, oks[i]);
      if (ctx.comm_world().rank() == 0) us[i] = t;
    }
  });

  transport::TopologySpec spec;
  spec.kind = kind;
  const transport::Topology topo(spec, n);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    SweepRow row;
    row.topo = kind;
    row.world = n;
    row.pt = pts[i];
    row.us = us[i];
    row.verified = oks[i].load();
    row.selected = mpi::select_algo(pts[i].op, n, selection_bytes(pts[i], n),
                                    &topo);
    rows.push_back(row);
    std::printf("%10s %6d %15s %8zu %24s %12.1f%s%s\n",
                std::string(topology_kind_name(kind)).c_str(), n,
                op_name(pts[i].op), pts[i].bytes,
                algo_name(pts[i].algo).c_str(), us[i],
                row.selected == pts[i].algo ? "  <- auto" : "",
                row.verified ? "" : "  RESULT-MISMATCH");
    std::fflush(stdout);
  }
}

struct Crossover {
  transport::TopologyKind topo{};
  int world = 0;
  mpi::CollOp op{};
  mpi::CollAlgo small_winner{};
  mpi::CollAlgo large_winner{};
  std::size_t crossover_bytes = 0;  // 0 = no winner change over the grid
};

const SweepRow* find_row(const std::vector<SweepRow>& rows,
                         transport::TopologyKind topo, int n, mpi::CollOp op,
                         mpi::CollAlgo algo, std::size_t bytes) {
  for (const SweepRow& r : rows) {
    if (r.topo == topo && r.world == n && r.pt.op == op &&
        r.pt.algo == algo && r.pt.bytes == bytes && r.verified) {
      return &r;
    }
  }
  return nullptr;
}

/// Measured winner at one grid point (verified rows only).
mpi::CollAlgo winner_at(const std::vector<SweepRow>& rows,
                        transport::TopologyKind topo, int n, mpi::CollOp op,
                        std::size_t bytes) {
  mpi::CollAlgo best = mpi::CollAlgo::kAuto;
  double best_us = 0;
  for (const SweepRow& r : rows) {
    if (r.topo != topo || r.world != n || r.pt.op != op ||
        r.pt.bytes != bytes || !r.verified) {
      continue;
    }
    if (best == mpi::CollAlgo::kAuto || r.us < best_us) {
      best = r.pt.algo;
      best_us = r.us;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  if (!smoke) run_interconnect_classes();

  std::printf("# Collective scaling sweep: every registered algorithm,\n");
  std::printf("# pinned per call; wire = %s per hop\n",
              smoke ? "2 us (smoke)" : "13 us + 1 Gb/s (GbE model)");
  std::printf("# bcast/reduce/allreduce bytes = total vector (strong "
              "scaling);\n");
  std::printf("# allgather/reduce_scatter bytes = per-rank block (weak "
              "scaling)\n");
  std::printf("%10s %6s %15s %8s %24s %12s\n", "topology", "ranks", "op",
              "bytes", "algorithm", "us/op");

  using transport::TopologyKind;
  struct WorldJob {
    TopologyKind kind;
    int n;
  };
  std::vector<WorldJob> jobs;
  if (smoke) {
    jobs = {{TopologyKind::kFullMesh, 4}, {TopologyKind::kTorus2D, 8}};
  } else {
    for (const TopologyKind kind :
         {TopologyKind::kFullMesh, TopologyKind::kMesh2D,
          TopologyKind::kTorus2D, TopologyKind::kFatTree}) {
      for (const int n : {4, 16, 64}) jobs.push_back({kind, n});
    }
    jobs.push_back({TopologyKind::kTorus2D, 256});
  }

  std::vector<SweepRow> rows;
  for (const WorldJob& job : jobs) run_world(job.kind, job.n, smoke, rows);

  // ---- crossover + selection-quality extraction ----
  std::vector<Crossover> crossovers;
  int sel_hits = 0;
  int sel_total = 0;
  {
    // Unique (topo, world, op) groups in first-appearance order.
    std::vector<std::array<int, 3>> groups;
    for (const SweepRow& r : rows) {
      const std::array<int, 3> g = {static_cast<int>(r.topo), r.world,
                                    static_cast<int>(r.pt.op)};
      if (std::find(groups.begin(), groups.end(), g) == groups.end())
        groups.push_back(g);
    }
    for (const auto& g : groups) {
      const auto topo = static_cast<transport::TopologyKind>(g[0]);
      const int n = g[1];
      const auto op = static_cast<mpi::CollOp>(g[2]);
      std::vector<std::size_t> sizes;
      for (const SweepRow& r : rows) {
        if (r.topo == topo && r.world == n && r.pt.op == op &&
            std::find(sizes.begin(), sizes.end(), r.pt.bytes) == sizes.end()) {
          sizes.push_back(r.pt.bytes);
        }
      }
      std::sort(sizes.begin(), sizes.end());
      for (const std::size_t b : sizes) {
        const mpi::CollAlgo w = winner_at(rows, topo, n, op, b);
        const SweepRow* any = nullptr;
        for (const SweepRow& r : rows) {
          if (r.topo == topo && r.world == n && r.pt.op == op &&
              r.pt.bytes == b) {
            any = &r;
            break;
          }
        }
        if (w != mpi::CollAlgo::kAuto && any != nullptr) {
          ++sel_total;
          if (any->selected == w) ++sel_hits;
        }
      }
      if (sizes.size() < 2) continue;
      Crossover c;
      c.topo = topo;
      c.world = n;
      c.op = op;
      c.small_winner = winner_at(rows, topo, n, op, sizes.front());
      c.large_winner = winner_at(rows, topo, n, op, sizes.back());
      if (c.small_winner != c.large_winner) {
        for (const std::size_t b : sizes) {
          const SweepRow* lw = find_row(rows, topo, n, op, c.large_winner, b);
          const SweepRow* sw = find_row(rows, topo, n, op, c.small_winner, b);
          if (lw != nullptr && sw != nullptr && lw->us <= sw->us) {
            c.crossover_bytes = b;
            break;
          }
        }
        crossovers.push_back(c);
      }
    }
  }

  std::printf("\n# crossovers (first size where the large-message winner "
              "overtakes the small-message winner)\n");
  for (const Crossover& c : crossovers) {
    std::printf("%10s %6d %15s  %s -> %s at %zu bytes\n",
                std::string(topology_kind_name(c.topo)).c_str(), c.world,
                op_name(c.op), algo_name(c.small_winner).c_str(),
                algo_name(c.large_winner).c_str(), c.crossover_bytes);
  }
  std::printf("# selection quality: kAuto picks the measured winner at "
              "%d/%d grid points\n",
              sel_hits, sel_total);

  // The headline acceptance number: the scalable allreduce vs the seed
  // linear reference at the largest world/size of the main grid.
  {
    const auto kind = transport::TopologyKind::kTorus2D;
    const int n = smoke ? 8 : 64;
    const std::size_t b = smoke ? 2048 : 65536;
    const SweepRow* lin =
        find_row(rows, kind, n, mpi::CollOp::kAllreduce, mpi::CollAlgo::kLinear, b);
    const mpi::CollAlgo w = winner_at(rows, kind, n, mpi::CollOp::kAllreduce, b);
    const SweepRow* best =
        find_row(rows, kind, n, mpi::CollOp::kAllreduce, w, b);
    if (lin != nullptr && best != nullptr && best->us > 0) {
      std::printf("# allreduce %d ranks, %zu bytes (torus2d): linear %.1f us"
                  " -> %s %.1f us (%.1fx)\n",
                  n, b, lin->us, algo_name(w).c_str(), best->us,
                  lin->us / best->us);
    }
  }

  bool all_verified = true;
  for (const SweepRow& r : rows) all_verified = all_verified && r.verified;
  std::printf("# result identity across registry entries: %s\n",
              all_verified ? "OK" : "FAILED");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"sweep_collectives\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"wire\": {\"latency_ns_per_hop\": %d, "
                 "\"bandwidth_bps\": %d},\n",
                 smoke ? 2000 : 13000, smoke ? 0 : 125000000);
    std::fprintf(f, "  \"all_results_identical\": %s,\n",
                 all_verified ? "true" : "false");
    std::fprintf(f, "  \"selection_optimal_points\": %d,\n", sel_hits);
    std::fprintf(f, "  \"selection_total_points\": %d,\n", sel_total);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"topology\": \"%s\", \"world\": %d, \"op\": \"%s\", "
          "\"scaling\": \"%s\", \"bytes\": %zu, \"algo\": \"%s\", "
          "\"us\": %.1f, \"auto_pick\": %s, \"verified\": %s}%s\n",
          std::string(topology_kind_name(r.topo)).c_str(), r.world,
          op_name(r.pt.op), op_is_strong_scaling(r.pt.op) ? "strong" : "weak",
          r.pt.bytes, algo_name(r.pt.algo).c_str(), r.us,
          r.selected == r.pt.algo ? "true" : "false",
          r.verified ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"crossovers\": [\n");
    for (std::size_t i = 0; i < crossovers.size(); ++i) {
      const Crossover& c = crossovers[i];
      std::fprintf(f,
                   "    {\"topology\": \"%s\", \"world\": %d, \"op\": \"%s\", "
                   "\"small_winner\": \"%s\", \"large_winner\": \"%s\", "
                   "\"crossover_bytes\": %zu}%s\n",
                   std::string(topology_kind_name(c.topo)).c_str(), c.world,
                   op_name(c.op), algo_name(c.small_winner).c_str(),
                   algo_name(c.large_winner).c_str(), c.crossover_bytes,
                   i + 1 < crossovers.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return all_verified ? 0 : 1;
}
