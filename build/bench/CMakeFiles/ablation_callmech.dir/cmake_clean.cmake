file(REMOVE_RECURSE
  "CMakeFiles/ablation_callmech.dir/ablation_callmech.cpp.o"
  "CMakeFiles/ablation_callmech.dir/ablation_callmech.cpp.o.d"
  "ablation_callmech"
  "ablation_callmech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_callmech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
