# Empty dependencies file for ablation_callmech.
# This may be replaced when dependencies are built.
