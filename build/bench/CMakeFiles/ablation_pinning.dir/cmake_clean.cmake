file(REMOVE_RECURSE
  "CMakeFiles/ablation_pinning.dir/ablation_pinning.cpp.o"
  "CMakeFiles/ablation_pinning.dir/ablation_pinning.cpp.o.d"
  "ablation_pinning"
  "ablation_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
