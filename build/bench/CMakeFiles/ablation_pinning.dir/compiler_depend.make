# Empty compiler generated dependencies file for ablation_pinning.
# This may be replaced when dependencies are built.
