# Empty dependencies file for ablation_pinning.
# This may be replaced when dependencies are built.
