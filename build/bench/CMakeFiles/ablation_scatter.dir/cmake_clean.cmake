file(REMOVE_RECURSE
  "CMakeFiles/ablation_scatter.dir/ablation_scatter.cpp.o"
  "CMakeFiles/ablation_scatter.dir/ablation_scatter.cpp.o.d"
  "ablation_scatter"
  "ablation_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
