# Empty dependencies file for ablation_scatter.
# This may be replaced when dependencies are built.
