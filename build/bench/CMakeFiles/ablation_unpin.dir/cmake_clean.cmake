file(REMOVE_RECURSE
  "CMakeFiles/ablation_unpin.dir/ablation_unpin.cpp.o"
  "CMakeFiles/ablation_unpin.dir/ablation_unpin.cpp.o.d"
  "ablation_unpin"
  "ablation_unpin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
