# Empty compiler generated dependencies file for ablation_unpin.
# This may be replaced when dependencies are built.
