file(REMOVE_RECURSE
  "CMakeFiles/ablation_visited.dir/ablation_visited.cpp.o"
  "CMakeFiles/ablation_visited.dir/ablation_visited.cpp.o.d"
  "ablation_visited"
  "ablation_visited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_visited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
