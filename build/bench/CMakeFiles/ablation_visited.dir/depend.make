# Empty dependencies file for ablation_visited.
# This may be replaced when dependencies are built.
