
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_objects.cpp" "bench/CMakeFiles/fig10_objects.dir/fig10_objects.cpp.o" "gcc" "bench/CMakeFiles/fig10_objects.dir/fig10_objects.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
