file(REMOVE_RECURSE
  "CMakeFiles/fig10_objects.dir/fig10_objects.cpp.o"
  "CMakeFiles/fig10_objects.dir/fig10_objects.cpp.o.d"
  "fig10_objects"
  "fig10_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
