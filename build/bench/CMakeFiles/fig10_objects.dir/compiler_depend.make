# Empty compiler generated dependencies file for fig10_objects.
# This may be replaced when dependencies are built.
