file(REMOVE_RECURSE
  "CMakeFiles/fig9_pingpong.dir/fig9_pingpong.cpp.o"
  "CMakeFiles/fig9_pingpong.dir/fig9_pingpong.cpp.o.d"
  "fig9_pingpong"
  "fig9_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
