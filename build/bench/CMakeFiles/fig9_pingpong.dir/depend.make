# Empty dependencies file for fig9_pingpong.
# This may be replaced when dependencies are built.
