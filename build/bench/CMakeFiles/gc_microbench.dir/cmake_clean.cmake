file(REMOVE_RECURSE
  "CMakeFiles/gc_microbench.dir/gc_microbench.cpp.o"
  "CMakeFiles/gc_microbench.dir/gc_microbench.cpp.o.d"
  "gc_microbench"
  "gc_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
