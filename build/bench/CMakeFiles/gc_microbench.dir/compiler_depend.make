# Empty compiler generated dependencies file for gc_microbench.
# This may be replaced when dependencies are built.
