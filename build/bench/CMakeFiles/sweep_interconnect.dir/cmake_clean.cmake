file(REMOVE_RECURSE
  "CMakeFiles/sweep_interconnect.dir/sweep_interconnect.cpp.o"
  "CMakeFiles/sweep_interconnect.dir/sweep_interconnect.cpp.o.d"
  "sweep_interconnect"
  "sweep_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
