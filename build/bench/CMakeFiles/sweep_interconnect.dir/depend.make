# Empty dependencies file for sweep_interconnect.
# This may be replaced when dependencies are built.
