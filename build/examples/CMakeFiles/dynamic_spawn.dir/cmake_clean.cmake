file(REMOVE_RECURSE
  "CMakeFiles/dynamic_spawn.dir/dynamic_spawn.cpp.o"
  "CMakeFiles/dynamic_spawn.dir/dynamic_spawn.cpp.o.d"
  "dynamic_spawn"
  "dynamic_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
