# Empty dependencies file for dynamic_spawn.
# This may be replaced when dependencies are built.
