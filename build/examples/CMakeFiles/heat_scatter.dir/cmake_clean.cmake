file(REMOVE_RECURSE
  "CMakeFiles/heat_scatter.dir/heat_scatter.cpp.o"
  "CMakeFiles/heat_scatter.dir/heat_scatter.cpp.o.d"
  "heat_scatter"
  "heat_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
