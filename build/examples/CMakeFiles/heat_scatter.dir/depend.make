# Empty dependencies file for heat_scatter.
# This may be replaced when dependencies are built.
