file(REMOVE_RECURSE
  "CMakeFiles/kmeans_objects.dir/kmeans_objects.cpp.o"
  "CMakeFiles/kmeans_objects.dir/kmeans_objects.cpp.o.d"
  "kmeans_objects"
  "kmeans_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
