# Empty compiler generated dependencies file for kmeans_objects.
# This may be replaced when dependencies are built.
