file(REMOVE_RECURSE
  "CMakeFiles/montecarlo_spawn.dir/montecarlo_spawn.cpp.o"
  "CMakeFiles/montecarlo_spawn.dir/montecarlo_spawn.cpp.o.d"
  "montecarlo_spawn"
  "montecarlo_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
