# Empty compiler generated dependencies file for montecarlo_spawn.
# This may be replaced when dependencies are built.
