file(REMOVE_RECURSE
  "CMakeFiles/tree_transport.dir/tree_transport.cpp.o"
  "CMakeFiles/tree_transport.dir/tree_transport.cpp.o.d"
  "tree_transport"
  "tree_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
