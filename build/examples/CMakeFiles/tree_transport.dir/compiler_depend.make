# Empty compiler generated dependencies file for tree_transport.
# This may be replaced when dependencies are built.
