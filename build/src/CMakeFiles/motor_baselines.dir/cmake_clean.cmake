file(REMOVE_RECURSE
  "CMakeFiles/motor_baselines.dir/baselines/indiana_bindings.cpp.o"
  "CMakeFiles/motor_baselines.dir/baselines/indiana_bindings.cpp.o.d"
  "CMakeFiles/motor_baselines.dir/baselines/mpijava_bindings.cpp.o"
  "CMakeFiles/motor_baselines.dir/baselines/mpijava_bindings.cpp.o.d"
  "CMakeFiles/motor_baselines.dir/baselines/native_pingpong.cpp.o"
  "CMakeFiles/motor_baselines.dir/baselines/native_pingpong.cpp.o.d"
  "CMakeFiles/motor_baselines.dir/baselines/pure_managed.cpp.o"
  "CMakeFiles/motor_baselines.dir/baselines/pure_managed.cpp.o.d"
  "libmotor_baselines.a"
  "libmotor_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
