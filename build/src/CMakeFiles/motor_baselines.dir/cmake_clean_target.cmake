file(REMOVE_RECURSE
  "libmotor_baselines.a"
)
