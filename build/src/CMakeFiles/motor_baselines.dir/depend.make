# Empty dependencies file for motor_baselines.
# This may be replaced when dependencies are built.
