file(REMOVE_RECURSE
  "CMakeFiles/motor_common.dir/common/buffer.cpp.o"
  "CMakeFiles/motor_common.dir/common/buffer.cpp.o.d"
  "CMakeFiles/motor_common.dir/common/prng.cpp.o"
  "CMakeFiles/motor_common.dir/common/prng.cpp.o.d"
  "CMakeFiles/motor_common.dir/common/status.cpp.o"
  "CMakeFiles/motor_common.dir/common/status.cpp.o.d"
  "libmotor_common.a"
  "libmotor_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
