file(REMOVE_RECURSE
  "libmotor_common.a"
)
