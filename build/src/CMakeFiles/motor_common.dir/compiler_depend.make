# Empty compiler generated dependencies file for motor_common.
# This may be replaced when dependencies are built.
