
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motor/buffer_pool.cpp" "src/CMakeFiles/motor_core.dir/motor/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/buffer_pool.cpp.o.d"
  "/root/repo/src/motor/integrity.cpp" "src/CMakeFiles/motor_core.dir/motor/integrity.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/integrity.cpp.o.d"
  "/root/repo/src/motor/motor_runtime.cpp" "src/CMakeFiles/motor_core.dir/motor/motor_runtime.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/motor_runtime.cpp.o.d"
  "/root/repo/src/motor/motor_serializer.cpp" "src/CMakeFiles/motor_core.dir/motor/motor_serializer.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/motor_serializer.cpp.o.d"
  "/root/repo/src/motor/mp_direct.cpp" "src/CMakeFiles/motor_core.dir/motor/mp_direct.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/mp_direct.cpp.o.d"
  "/root/repo/src/motor/oo_ops.cpp" "src/CMakeFiles/motor_core.dir/motor/oo_ops.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/oo_ops.cpp.o.d"
  "/root/repo/src/motor/pinning_policy.cpp" "src/CMakeFiles/motor_core.dir/motor/pinning_policy.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/pinning_policy.cpp.o.d"
  "/root/repo/src/motor/system_mp.cpp" "src/CMakeFiles/motor_core.dir/motor/system_mp.cpp.o" "gcc" "src/CMakeFiles/motor_core.dir/motor/system_mp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
