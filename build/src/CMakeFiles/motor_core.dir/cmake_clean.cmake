file(REMOVE_RECURSE
  "CMakeFiles/motor_core.dir/motor/buffer_pool.cpp.o"
  "CMakeFiles/motor_core.dir/motor/buffer_pool.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/integrity.cpp.o"
  "CMakeFiles/motor_core.dir/motor/integrity.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/motor_runtime.cpp.o"
  "CMakeFiles/motor_core.dir/motor/motor_runtime.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/motor_serializer.cpp.o"
  "CMakeFiles/motor_core.dir/motor/motor_serializer.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/mp_direct.cpp.o"
  "CMakeFiles/motor_core.dir/motor/mp_direct.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/oo_ops.cpp.o"
  "CMakeFiles/motor_core.dir/motor/oo_ops.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/pinning_policy.cpp.o"
  "CMakeFiles/motor_core.dir/motor/pinning_policy.cpp.o.d"
  "CMakeFiles/motor_core.dir/motor/system_mp.cpp.o"
  "CMakeFiles/motor_core.dir/motor/system_mp.cpp.o.d"
  "libmotor_core.a"
  "libmotor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
