file(REMOVE_RECURSE
  "libmotor_core.a"
)
