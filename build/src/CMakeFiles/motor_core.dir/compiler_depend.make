# Empty compiler generated dependencies file for motor_core.
# This may be replaced when dependencies are built.
