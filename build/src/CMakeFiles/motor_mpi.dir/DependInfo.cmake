
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/datatype.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/datatype.cpp.o.d"
  "/root/repo/src/mpi/derived.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/derived.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/derived.cpp.o.d"
  "/root/repo/src/mpi/device.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/device.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/device.cpp.o.d"
  "/root/repo/src/mpi/group.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/group.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/group.cpp.o.d"
  "/root/repo/src/mpi/pack.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/pack.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/pack.cpp.o.d"
  "/root/repo/src/mpi/packet.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/packet.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/packet.cpp.o.d"
  "/root/repo/src/mpi/persistent.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/persistent.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/persistent.cpp.o.d"
  "/root/repo/src/mpi/progress.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/progress.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/progress.cpp.o.d"
  "/root/repo/src/mpi/pt2pt.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/pt2pt.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/pt2pt.cpp.o.d"
  "/root/repo/src/mpi/request.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/request.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/request.cpp.o.d"
  "/root/repo/src/mpi/spawn.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/spawn.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/spawn.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/CMakeFiles/motor_mpi.dir/mpi/world.cpp.o" "gcc" "src/CMakeFiles/motor_mpi.dir/mpi/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
