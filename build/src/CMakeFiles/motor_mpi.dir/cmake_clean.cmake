file(REMOVE_RECURSE
  "CMakeFiles/motor_mpi.dir/mpi/collectives.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/collectives.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/comm.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/comm.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/datatype.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/datatype.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/derived.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/derived.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/device.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/device.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/group.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/group.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/pack.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/pack.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/packet.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/packet.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/persistent.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/persistent.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/progress.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/progress.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/pt2pt.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/pt2pt.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/request.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/request.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/spawn.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/spawn.cpp.o.d"
  "CMakeFiles/motor_mpi.dir/mpi/world.cpp.o"
  "CMakeFiles/motor_mpi.dir/mpi/world.cpp.o.d"
  "libmotor_mpi.a"
  "libmotor_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
