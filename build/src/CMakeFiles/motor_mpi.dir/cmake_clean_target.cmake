file(REMOVE_RECURSE
  "libmotor_mpi.a"
)
