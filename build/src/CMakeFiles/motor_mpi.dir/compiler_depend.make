# Empty compiler generated dependencies file for motor_mpi.
# This may be replaced when dependencies are built.
