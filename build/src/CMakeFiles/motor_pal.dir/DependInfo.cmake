
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pal/clock.cpp" "src/CMakeFiles/motor_pal.dir/pal/clock.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/clock.cpp.o.d"
  "/root/repo/src/pal/completion_queue.cpp" "src/CMakeFiles/motor_pal.dir/pal/completion_queue.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/completion_queue.cpp.o.d"
  "/root/repo/src/pal/critical_section.cpp" "src/CMakeFiles/motor_pal.dir/pal/critical_section.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/critical_section.cpp.o.d"
  "/root/repo/src/pal/event.cpp" "src/CMakeFiles/motor_pal.dir/pal/event.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/event.cpp.o.d"
  "/root/repo/src/pal/semaphore.cpp" "src/CMakeFiles/motor_pal.dir/pal/semaphore.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/semaphore.cpp.o.d"
  "/root/repo/src/pal/thread.cpp" "src/CMakeFiles/motor_pal.dir/pal/thread.cpp.o" "gcc" "src/CMakeFiles/motor_pal.dir/pal/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
