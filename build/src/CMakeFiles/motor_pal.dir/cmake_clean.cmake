file(REMOVE_RECURSE
  "CMakeFiles/motor_pal.dir/pal/clock.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/clock.cpp.o.d"
  "CMakeFiles/motor_pal.dir/pal/completion_queue.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/completion_queue.cpp.o.d"
  "CMakeFiles/motor_pal.dir/pal/critical_section.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/critical_section.cpp.o.d"
  "CMakeFiles/motor_pal.dir/pal/event.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/event.cpp.o.d"
  "CMakeFiles/motor_pal.dir/pal/semaphore.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/semaphore.cpp.o.d"
  "CMakeFiles/motor_pal.dir/pal/thread.cpp.o"
  "CMakeFiles/motor_pal.dir/pal/thread.cpp.o.d"
  "libmotor_pal.a"
  "libmotor_pal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
