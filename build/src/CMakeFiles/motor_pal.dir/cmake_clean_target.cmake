file(REMOVE_RECURSE
  "libmotor_pal.a"
)
