# Empty compiler generated dependencies file for motor_pal.
# This may be replaced when dependencies are built.
