
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/bandwidth_channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/bandwidth_channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/bandwidth_channel.cpp.o.d"
  "/root/repo/src/transport/channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/channel.cpp.o.d"
  "/root/repo/src/transport/fabric.cpp" "src/CMakeFiles/motor_transport.dir/transport/fabric.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/fabric.cpp.o.d"
  "/root/repo/src/transport/latency_channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/latency_channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/latency_channel.cpp.o.d"
  "/root/repo/src/transport/loopback_channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/loopback_channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/loopback_channel.cpp.o.d"
  "/root/repo/src/transport/ring_channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/ring_channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/ring_channel.cpp.o.d"
  "/root/repo/src/transport/stream_channel.cpp" "src/CMakeFiles/motor_transport.dir/transport/stream_channel.cpp.o" "gcc" "src/CMakeFiles/motor_transport.dir/transport/stream_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
