file(REMOVE_RECURSE
  "CMakeFiles/motor_transport.dir/transport/bandwidth_channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/bandwidth_channel.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/channel.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/fabric.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/fabric.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/latency_channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/latency_channel.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/loopback_channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/loopback_channel.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/ring_channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/ring_channel.cpp.o.d"
  "CMakeFiles/motor_transport.dir/transport/stream_channel.cpp.o"
  "CMakeFiles/motor_transport.dir/transport/stream_channel.cpp.o.d"
  "libmotor_transport.a"
  "libmotor_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
