file(REMOVE_RECURSE
  "libmotor_transport.a"
)
