# Empty compiler generated dependencies file for motor_transport.
# This may be replaced when dependencies are built.
