
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cpp" "src/CMakeFiles/motor_vm.dir/vm/assembler.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/assembler.cpp.o.d"
  "/root/repo/src/vm/cli_serializer.cpp" "src/CMakeFiles/motor_vm.dir/vm/cli_serializer.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/cli_serializer.cpp.o.d"
  "/root/repo/src/vm/fcall.cpp" "src/CMakeFiles/motor_vm.dir/vm/fcall.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/fcall.cpp.o.d"
  "/root/repo/src/vm/field_desc.cpp" "src/CMakeFiles/motor_vm.dir/vm/field_desc.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/field_desc.cpp.o.d"
  "/root/repo/src/vm/gc.cpp" "src/CMakeFiles/motor_vm.dir/vm/gc.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/gc.cpp.o.d"
  "/root/repo/src/vm/handles.cpp" "src/CMakeFiles/motor_vm.dir/vm/handles.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/handles.cpp.o.d"
  "/root/repo/src/vm/heap.cpp" "src/CMakeFiles/motor_vm.dir/vm/heap.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/heap.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "src/CMakeFiles/motor_vm.dir/vm/interpreter.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/interpreter.cpp.o.d"
  "/root/repo/src/vm/java_serializer.cpp" "src/CMakeFiles/motor_vm.dir/vm/java_serializer.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/java_serializer.cpp.o.d"
  "/root/repo/src/vm/managed_thread.cpp" "src/CMakeFiles/motor_vm.dir/vm/managed_thread.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/managed_thread.cpp.o.d"
  "/root/repo/src/vm/method_table.cpp" "src/CMakeFiles/motor_vm.dir/vm/method_table.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/method_table.cpp.o.d"
  "/root/repo/src/vm/object.cpp" "src/CMakeFiles/motor_vm.dir/vm/object.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/object.cpp.o.d"
  "/root/repo/src/vm/pinvoke.cpp" "src/CMakeFiles/motor_vm.dir/vm/pinvoke.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/pinvoke.cpp.o.d"
  "/root/repo/src/vm/reflection.cpp" "src/CMakeFiles/motor_vm.dir/vm/reflection.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/reflection.cpp.o.d"
  "/root/repo/src/vm/runtime_profile.cpp" "src/CMakeFiles/motor_vm.dir/vm/runtime_profile.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/runtime_profile.cpp.o.d"
  "/root/repo/src/vm/safepoint.cpp" "src/CMakeFiles/motor_vm.dir/vm/safepoint.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/safepoint.cpp.o.d"
  "/root/repo/src/vm/type_system.cpp" "src/CMakeFiles/motor_vm.dir/vm/type_system.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/type_system.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/motor_vm.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/motor_vm.dir/vm/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
