file(REMOVE_RECURSE
  "libmotor_vm.a"
)
