# Empty dependencies file for motor_vm.
# This may be replaced when dependencies are built.
