
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/motor/bindings_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/bindings_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/bindings_test.cpp.o.d"
  "/root/repo/tests/motor/comm_mgmt_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/comm_mgmt_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/comm_mgmt_test.cpp.o.d"
  "/root/repo/tests/motor/integrity_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/integrity_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/integrity_test.cpp.o.d"
  "/root/repo/tests/motor/motor_serializer_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/motor_serializer_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/motor_serializer_test.cpp.o.d"
  "/root/repo/tests/motor/oo_ops_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/oo_ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/oo_ops_test.cpp.o.d"
  "/root/repo/tests/motor/pinning_policy_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/pinning_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/pinning_policy_test.cpp.o.d"
  "/root/repo/tests/motor/spawn_motor_test.cpp" "tests/CMakeFiles/test_motor.dir/motor/spawn_motor_test.cpp.o" "gcc" "tests/CMakeFiles/test_motor.dir/motor/spawn_motor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
