file(REMOVE_RECURSE
  "CMakeFiles/test_motor.dir/motor/bindings_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/bindings_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/comm_mgmt_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/comm_mgmt_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/integrity_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/integrity_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/motor_serializer_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/motor_serializer_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/oo_ops_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/oo_ops_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/pinning_policy_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/pinning_policy_test.cpp.o.d"
  "CMakeFiles/test_motor.dir/motor/spawn_motor_test.cpp.o"
  "CMakeFiles/test_motor.dir/motor/spawn_motor_test.cpp.o.d"
  "test_motor"
  "test_motor.pdb"
  "test_motor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
