
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpi/collectives_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o.d"
  "/root/repo/tests/mpi/comm_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o.d"
  "/root/repo/tests/mpi/datatype_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/datatype_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/datatype_test.cpp.o.d"
  "/root/repo/tests/mpi/derived_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/derived_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/derived_test.cpp.o.d"
  "/root/repo/tests/mpi/device_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/device_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/device_test.cpp.o.d"
  "/root/repo/tests/mpi/extended_ops_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/extended_ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/extended_ops_test.cpp.o.d"
  "/root/repo/tests/mpi/group_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/group_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/group_test.cpp.o.d"
  "/root/repo/tests/mpi/pack_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/pack_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/pack_test.cpp.o.d"
  "/root/repo/tests/mpi/persistent_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/persistent_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/persistent_test.cpp.o.d"
  "/root/repo/tests/mpi/pt2pt_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o.d"
  "/root/repo/tests/mpi/spawn_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/spawn_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/spawn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
