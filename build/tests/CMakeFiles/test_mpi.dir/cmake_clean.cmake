file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/datatype_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/datatype_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/derived_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/derived_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/device_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/device_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/extended_ops_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/extended_ops_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/group_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/group_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/pack_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/pack_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/persistent_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/persistent_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/spawn_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/spawn_test.cpp.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
