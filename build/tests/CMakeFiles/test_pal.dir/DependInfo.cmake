
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pal/clock_test.cpp" "tests/CMakeFiles/test_pal.dir/pal/clock_test.cpp.o" "gcc" "tests/CMakeFiles/test_pal.dir/pal/clock_test.cpp.o.d"
  "/root/repo/tests/pal/completion_queue_test.cpp" "tests/CMakeFiles/test_pal.dir/pal/completion_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_pal.dir/pal/completion_queue_test.cpp.o.d"
  "/root/repo/tests/pal/event_test.cpp" "tests/CMakeFiles/test_pal.dir/pal/event_test.cpp.o" "gcc" "tests/CMakeFiles/test_pal.dir/pal/event_test.cpp.o.d"
  "/root/repo/tests/pal/semaphore_test.cpp" "tests/CMakeFiles/test_pal.dir/pal/semaphore_test.cpp.o" "gcc" "tests/CMakeFiles/test_pal.dir/pal/semaphore_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
