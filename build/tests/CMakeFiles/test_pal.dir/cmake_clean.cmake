file(REMOVE_RECURSE
  "CMakeFiles/test_pal.dir/pal/clock_test.cpp.o"
  "CMakeFiles/test_pal.dir/pal/clock_test.cpp.o.d"
  "CMakeFiles/test_pal.dir/pal/completion_queue_test.cpp.o"
  "CMakeFiles/test_pal.dir/pal/completion_queue_test.cpp.o.d"
  "CMakeFiles/test_pal.dir/pal/event_test.cpp.o"
  "CMakeFiles/test_pal.dir/pal/event_test.cpp.o.d"
  "CMakeFiles/test_pal.dir/pal/semaphore_test.cpp.o"
  "CMakeFiles/test_pal.dir/pal/semaphore_test.cpp.o.d"
  "test_pal"
  "test_pal.pdb"
  "test_pal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
