# Empty dependencies file for test_pal.
# This may be replaced when dependencies are built.
