
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/bandwidth_channel_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/bandwidth_channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/bandwidth_channel_test.cpp.o.d"
  "/root/repo/tests/transport/channel_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/channel_test.cpp.o.d"
  "/root/repo/tests/transport/fabric_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/fabric_test.cpp.o.d"
  "/root/repo/tests/transport/latency_channel_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/latency_channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/latency_channel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
