
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/bitops_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/bitops_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/bitops_test.cpp.o.d"
  "/root/repo/tests/vm/calls_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/calls_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/calls_test.cpp.o.d"
  "/root/repo/tests/vm/gc_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/gc_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/gc_test.cpp.o.d"
  "/root/repo/tests/vm/interpreter_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/interpreter_test.cpp.o.d"
  "/root/repo/tests/vm/object_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/object_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/object_test.cpp.o.d"
  "/root/repo/tests/vm/pinning_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/pinning_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/pinning_test.cpp.o.d"
  "/root/repo/tests/vm/safepoint_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/safepoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/safepoint_test.cpp.o.d"
  "/root/repo/tests/vm/serializer_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/serializer_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/serializer_test.cpp.o.d"
  "/root/repo/tests/vm/type_system_test.cpp" "tests/CMakeFiles/test_vm.dir/vm/type_system_test.cpp.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/type_system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/motor_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/motor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
