file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/vm/bitops_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/bitops_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/calls_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/calls_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/gc_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/gc_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/interpreter_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/interpreter_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/object_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/object_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/pinning_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/pinning_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/safepoint_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/safepoint_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/serializer_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/serializer_test.cpp.o.d"
  "CMakeFiles/test_vm.dir/vm/type_system_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm/type_system_test.cpp.o.d"
  "test_vm"
  "test_vm.pdb"
  "test_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
