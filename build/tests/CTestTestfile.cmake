# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pal[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_motor[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
