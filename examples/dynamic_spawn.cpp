// dynamic_spawn: MPI-2 dynamic process management under Motor (§7: "we
// have implemented selected MPI-2 functionality such as dynamic process
// management and dynamic intercommunication routines").
//
// A master rank spawns three workers at runtime; each worker boots its
// own managed VM, receives a work descriptor object over the
// parent-child intercommunicator, computes, and returns a result object.
//
//   $ ./examples/dynamic_spawn
#include <cstdio>

#include "motor/motor_runtime.hpp"
#include "mpi/collectives.hpp"

using namespace motor;

namespace {

constexpr int kWorkers = 3;

struct WorkTypes {
  const vm::MethodTable* doubles;
  const vm::MethodTable* job;

  explicit WorkTypes(vm::Vm& vm) {
    doubles = vm.types().primitive_array(vm::ElementKind::kDouble);
    job = vm.types()
              .define_class("Job")
              .transportable()
              .ref_field("samples", doubles, true)
              .field("scale", vm::ElementKind::kDouble)
              .field("id", vm::ElementKind::kInt32)
              .build();
  }
};

}  // namespace

int main() {
  mpi::World world(1);
  world.run([](mpi::RankCtx& master_ctx) {
    // Spawn the workers; each gets its own VM and talks to the master
    // over the intercommunicator via the OO operations.
    mpi::Comm inter = mpi::spawn(
        master_ctx.comm_world(), /*root=*/0, kWorkers,
        [](mpi::RankCtx& worker) {
          vm::Vm vm{};
          vm::ManagedThread thread(vm);
          WorkTypes T(vm);
          mp::MPDirect mp(vm, thread, worker.parent());

          vm::Obj job = nullptr;
          mp.orecv(0, 0, &job);
          vm::GcRoot job_root(thread, job);
          vm::Obj samples = vm::get_ref_field(
              job_root.get(), T.job->field_named("samples")->offset());
          const double scale = vm::get_field<double>(
              job_root.get(), T.job->field_named("scale")->offset());
          const auto id = vm::get_field<std::int32_t>(
              job_root.get(), T.job->field_named("id")->offset());

          double sum = 0;
          for (std::int64_t i = 0; i < vm::array_length(samples); ++i) {
            sum += vm::get_element<double>(samples, i) * scale;
          }
          std::printf("[worker %d] job %d: %lld samples, result %.2f\n",
                      worker.comm_world().rank(), id,
                      static_cast<long long>(vm::array_length(samples)), sum);

          vm::GcRoot result(thread, vm.heap().alloc_array(T.doubles, 1));
          vm::set_element<double>(result.get(), 0, sum);
          mp.send(result.get(), 0, 1);
        });

    // Master: its own VM, one Job object per worker.
    vm::Vm vm{};
    vm::ManagedThread thread(vm);
    WorkTypes T(vm);
    mp::MPDirect mp(vm, thread, inter);

    for (int w = 0; w < kWorkers; ++w) {
      vm::GcRoot samples(thread, vm.heap().alloc_array(T.doubles, 10));
      for (int i = 0; i < 10; ++i) {
        vm::set_element<double>(samples.get(), i, i + 1);
      }
      vm::GcRoot job(thread, vm.heap().alloc_object(T.job));
      vm::set_ref_field(job.get(), T.job->field_named("samples")->offset(),
                        samples.get());
      vm::set_field<double>(job.get(), T.job->field_named("scale")->offset(),
                            w + 1.0);
      vm::set_field<std::int32_t>(job.get(),
                                  T.job->field_named("id")->offset(), 100 + w);
      mp.osend(job.get(), w, 0);
    }

    double total = 0;
    for (int w = 0; w < kWorkers; ++w) {
      vm::GcRoot result(thread, vm.heap().alloc_array(T.doubles, 1));
      mp.recv(result.get(), w, 1);
      total += vm::get_element<double>(result.get(), 0);
    }
    // sum(1..10)=55; workers scale by 1,2,3 => 55*(1+2+3) = 330.
    std::printf("[master] total across %d spawned workers: %.2f (expect "
                "330.00)\n",
                kWorkers, total);
    std::printf("dynamic_spawn: %s\n", total == 330.0 ? "OK" : "MISMATCH");
  });
  return 0;
}
