// heat_scatter: a 1-D heat-diffusion solver on four Motor ranks — the
// classic scientific-kernel shape the paper's e-Science motivation is
// about (§1).
//
// The rod is scattered from rank 0 with the array-window Send overloads,
// each rank iterates a stencil on its chunk exchanging single-element
// halos with neighbours, and the result is gathered back — all through
// the System.MP bindings, on managed arrays, with the pinning policy and
// GC running underneath.
//
//   $ ./examples/heat_scatter
#include <cmath>
#include <cstdio>

#include "motor/motor_runtime.hpp"

using namespace motor;

namespace {

constexpr int kRanks = 4;
constexpr int kCells = 64;           // total rod cells
constexpr int kChunk = kCells / kRanks;
constexpr int kSteps = 200;
constexpr double kAlpha = 0.25;      // diffusion coefficient

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = kRanks;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    auto& types = ctx.vm().types();
    const vm::MethodTable* doubles =
        types.primitive_array(vm::ElementKind::kDouble);
    const int rank = ctx.rank();
    const int left = rank - 1;
    const int right = rank + 1;

    // Rank 0 initializes the rod: a hot spike in the middle.
    vm::GcRoot rod(ctx.thread(), nullptr);
    if (rank == 0) {
      rod.set(ctx.vm().heap().alloc_array(doubles, kCells));
      for (int i = 0; i < kCells; ++i) {
        vm::set_element<double>(rod.get(), i,
                                i == kCells / 2 ? 1000.0 : 0.0);
      }
    }

    // Scatter chunks using the array-window Send overloads (§4.2.1).
    // Local buffer has two halo cells: [0] and [kChunk+1].
    vm::GcRoot local(ctx.thread(),
                     ctx.vm().heap().alloc_array(doubles, kChunk + 2));
    if (rank == 0) {
      for (int r = 1; r < kRanks; ++r) {
        ctx.mp().Send(rod.get(), r * kChunk, kChunk, r, 0);
      }
      for (int i = 0; i < kChunk; ++i) {
        vm::set_element<double>(local.get(), i + 1,
                                vm::get_element<double>(rod.get(), i));
      }
    } else {
      ctx.mp().Recv(local.get(), 1, kChunk, 0, 0);
    }

    // Stencil iterations with halo exchange.
    vm::GcRoot halo(ctx.thread(), ctx.vm().heap().alloc_array(doubles, 1));
    vm::GcRoot next(ctx.thread(),
                    ctx.vm().heap().alloc_array(doubles, kChunk + 2));
    for (int step = 0; step < kSteps; ++step) {
      // Exchange boundaries (send my edge, receive neighbour's edge).
      if (left >= 0) {
        ctx.mp().Send(local.get(), 1, 1, left, 1);
        ctx.mp().Recv(local.get(), 0, 1, left, 2);
      } else {
        vm::set_element<double>(local.get(), 0, 0.0);  // fixed cold end
      }
      if (right < kRanks) {
        ctx.mp().Recv(local.get(), kChunk + 1, 1, right, 1);
        ctx.mp().Send(local.get(), kChunk, 1, right, 2);
      } else {
        vm::set_element<double>(local.get(), kChunk + 1, 0.0);
      }

      for (int i = 1; i <= kChunk; ++i) {
        const double u = vm::get_element<double>(local.get(), i);
        const double ul = vm::get_element<double>(local.get(), i - 1);
        const double ur = vm::get_element<double>(local.get(), i + 1);
        vm::set_element<double>(next.get(), i, u + kAlpha * (ul - 2 * u + ur));
      }
      for (int i = 1; i <= kChunk; ++i) {
        vm::set_element<double>(local.get(), i,
                                vm::get_element<double>(next.get(), i));
      }
      (void)halo;
    }

    // Gather chunks back to rank 0 (window Recv into the rod).
    if (rank == 0) {
      for (int i = 0; i < kChunk; ++i) {
        vm::set_element<double>(rod.get(), i,
                                vm::get_element<double>(local.get(), i + 1));
      }
      for (int r = 1; r < kRanks; ++r) {
        ctx.mp().Recv(rod.get(), r * kChunk, kChunk, r, 3);
      }
      double total = 0.0, peak = 0.0;
      int peak_at = 0;
      for (int i = 0; i < kCells; ++i) {
        const double v = vm::get_element<double>(rod.get(), i);
        total += v;
        if (v > peak) {
          peak = v;
          peak_at = i;
        }
      }
      std::printf("heat_scatter: after %d steps over %d ranks\n", kSteps,
                  kRanks);
      std::printf("  peak %.2f at cell %d (started 1000.00 at %d)\n", peak,
                  peak_at, kCells / 2);
      std::printf("  rod energy %.2f (diffused toward cold ends)\n", total);
      std::printf("  GC collections on rank 0: %llu\n",
                  static_cast<unsigned long long>(
                      ctx.vm().heap().stats().collections));
      // A rough sanity check that diffusion actually happened.
      if (peak < 1000.0 && peak_at == kCells / 2 && total > 0) {
        std::printf("heat_scatter: OK\n");
      }
    } else {
      ctx.mp().Send(local.get(), 1, kChunk, 0, 3);
    }
  });
  return 0;
}
