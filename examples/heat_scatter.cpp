// heat_scatter: a 1-D heat-diffusion solver on four Motor ranks — the
// classic scientific-kernel shape the paper's e-Science motivation is
// about (§1), ported to the typed transport.
//
// The rod is a std::vector<double>; rank 0 scatters chunk subspans with
// typed::send_span (wire-identical to the managed array-window Send, so
// a reflective rank could sit on the other end), each rank iterates a
// stencil on its chunk exchanging single-element halos with neighbours,
// and the result is gathered back — all on native storage, with the GC
// still polled on every transfer because the ranks are managed.
// (The managed-array version of this example was 135 lines; see
// DESIGN.md "Typed transport layer".)
//
//   $ ./examples/heat_scatter
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "motor/motor_runtime.hpp"
#include "motor/typed/typed.hpp"

using namespace motor;

namespace {

constexpr int kRanks = 4;
constexpr int kCells = 64;           // total rod cells
constexpr int kChunk = kCells / kRanks;
constexpr int kSteps = 200;
constexpr double kAlpha = 0.25;      // diffusion coefficient

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = kRanks;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    auto& mp = ctx.mp().direct();
    const int rank = ctx.rank();
    const int left = rank - 1;
    const int right = rank + 1;

    // Rank 0 initializes the rod (a hot spike in the middle) and scatters
    // chunk subspans; local buffers carry two halo cells: [0], [kChunk+1].
    std::vector<double> rod;
    std::vector<double> local(kChunk + 2, 0.0);
    if (rank == 0) {
      rod.assign(kCells, 0.0);
      rod[kCells / 2] = 1000.0;
      const std::span<const double> all(rod);
      for (int r = 1; r < kRanks; ++r) {
        typed::send_span(mp, all.subspan(r * kChunk, kChunk), r, 0);
      }
      for (int i = 0; i < kChunk; ++i) local[i + 1] = rod[i];
    } else {
      std::vector<double> chunk;
      typed::recv_span(mp, chunk, 0, 0);
      for (int i = 0; i < kChunk; ++i) local[i + 1] = chunk[i];
    }

    // Stencil iterations with halo exchange: single-element typed spans,
    // same send-before-recv ordering as the managed window version.
    std::vector<double> halo;
    std::vector<double> next(kChunk + 2, 0.0);
    for (int step = 0; step < kSteps; ++step) {
      if (left >= 0) {
        typed::send_span(mp, std::span<const double>(&local[1], 1), left, 1);
        typed::recv_span(mp, halo, left, 2);
        local[0] = halo[0];
      } else {
        local[0] = 0.0;  // fixed cold end
      }
      if (right < kRanks) {
        typed::recv_span(mp, halo, right, 1);
        local[kChunk + 1] = halo[0];
        typed::send_span(mp, std::span<const double>(&local[kChunk], 1),
                         right, 2);
      } else {
        local[kChunk + 1] = 0.0;
      }

      for (int i = 1; i <= kChunk; ++i) {
        const double u = local[i];
        next[i] = u + kAlpha * (local[i - 1] - 2 * u + local[i + 1]);
      }
      for (int i = 1; i <= kChunk; ++i) local[i] = next[i];
    }

    // Gather chunks back to rank 0.
    if (rank == 0) {
      for (int i = 0; i < kChunk; ++i) rod[i] = local[i + 1];
      std::vector<double> chunk;
      for (int r = 1; r < kRanks; ++r) {
        typed::recv_span(mp, chunk, r, 3);
        for (int i = 0; i < kChunk; ++i) rod[r * kChunk + i] = chunk[i];
      }
      double total = 0.0, peak = 0.0;
      int peak_at = 0;
      for (int i = 0; i < kCells; ++i) {
        total += rod[i];
        if (rod[i] > peak) {
          peak = rod[i];
          peak_at = i;
        }
      }
      std::printf("heat_scatter: after %d steps over %d ranks\n", kSteps,
                  kRanks);
      std::printf("  peak %.2f at cell %d (started 1000.00 at %d)\n", peak,
                  peak_at, kCells / 2);
      std::printf("  rod energy %.2f (diffused toward cold ends)\n", total);
      std::printf("  GC collections on rank 0: %llu\n",
                  static_cast<unsigned long long>(
                      ctx.vm().heap().stats().collections));
      // A rough sanity check that diffusion actually happened.
      if (peak < 1000.0 && peak_at == kCells / 2 && total > 0) {
        std::printf("heat_scatter: OK\n");
      }
    } else {
      typed::send_span(mp, std::span<const double>(&local[1], kChunk), 0, 3);
    }
  });
  return 0;
}
