// kmeans_objects: distributed k-means over MANAGED OBJECT data using the
// extended OO operations — the "structured scientific data" workload the
// paper's OO transport exists for (§2.4/§4.2.2).
//
// Points are managed objects (a coordinates array + a cluster label).
// Rank 0 builds the dataset and OScatters it (split representation);
// every iteration the ranks assign labels locally, Allreduce the partial
// centroid sums over regular MPI, and at the end rank 0 OGathers the
// labelled points back as one array.
//
//   $ ./examples/kmeans_objects
#include <cmath>
#include <cstdio>

#include "common/prng.hpp"
#include "motor/motor_runtime.hpp"
#include "mpi/collectives.hpp"

using namespace motor;

namespace {

constexpr int kRanks = 4;
constexpr int kPoints = 64;  // divisible by kRanks
constexpr int kClusters = 3;
constexpr int kDims = 2;
constexpr int kIterations = 12;

struct PointTypes {
  const vm::MethodTable* doubles;
  const vm::MethodTable* point;
  const vm::MethodTable* points;
  std::uint32_t coords_off, label_off;

  explicit PointTypes(vm::Vm& vm) {
    doubles = vm.types().primitive_array(vm::ElementKind::kDouble);
    point = vm.types()
                .define_class("Point")
                .transportable()
                .ref_field("coords", doubles, true)
                .field("label", vm::ElementKind::kInt32)
                .build();
    points = vm.types().ref_array(point);
    coords_off = point->field_named("coords")->offset();
    label_off = point->field_named("label")->offset();
  }
};

/// Three well-separated Gaussian-ish blobs.
double blob_coord(Prng& prng, int cluster, int dim) {
  const double centers[kClusters][kDims] = {{0, 0}, {10, 0}, {5, 9}};
  return centers[cluster][dim] + (prng.next_double() - 0.5) * 2.0;
}

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = kRanks;
  config.vm.heap.young_bytes = 2 << 20;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    PointTypes T(ctx.vm());

    // Rank 0 builds the dataset.
    vm::GcRoot dataset(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      Prng prng(2006);
      dataset.set(ctx.vm().heap().alloc_array(T.points, kPoints));
      for (int i = 0; i < kPoints; ++i) {
        const int true_cluster = i % kClusters;
        vm::GcRoot coords(ctx.thread(),
                          ctx.vm().heap().alloc_array(T.doubles, kDims));
        for (int d = 0; d < kDims; ++d) {
          vm::set_element<double>(coords.get(), d,
                                  blob_coord(prng, true_cluster, d));
        }
        vm::Obj p = ctx.vm().heap().alloc_object(T.point);
        vm::set_ref_field(p, T.coords_off, coords.get());
        vm::set_field<std::int32_t>(p, T.label_off, -1);
        vm::set_ref_element(dataset.get(), i, p);
      }
    }

    // Scatter the object array: each rank gets kPoints/kRanks points with
    // their coordinate arrays, via the split representation.
    vm::Obj mine = nullptr;
    ctx.mp().OScatter(dataset.get(), 0, &mine);
    vm::GcRoot local(ctx.thread(), mine);
    const auto n_local = vm::array_length(local.get());

    double centroids[kClusters][kDims] = {{1, 1}, {9, 1}, {4, 8}};  // seeds
    for (int iter = 0; iter < kIterations; ++iter) {
      // Assign each local point to its nearest centroid.
      double sums[kClusters][kDims] = {};
      double counts[kClusters] = {};
      for (std::int64_t i = 0; i < n_local; ++i) {
        vm::Obj p = vm::get_ref_element(local.get(), i);
        vm::Obj coords = vm::get_ref_field(p, T.coords_off);
        int best = 0;
        double best_d = 1e300;
        for (int c = 0; c < kClusters; ++c) {
          double d2 = 0;
          for (int d = 0; d < kDims; ++d) {
            const double delta =
                vm::get_element<double>(coords, d) - centroids[c][d];
            d2 += delta * delta;
          }
          if (d2 < best_d) {
            best_d = d2;
            best = c;
          }
        }
        vm::set_field<std::int32_t>(p, T.label_off, best);
        for (int d = 0; d < kDims; ++d) {
          sums[best][d] += vm::get_element<double>(coords, d);
        }
        counts[best] += 1.0;
      }

      // Global centroid update over regular MPI collectives.
      double flat[kClusters * (kDims + 1)];
      for (int c = 0; c < kClusters; ++c) {
        for (int d = 0; d < kDims; ++d) flat[c * (kDims + 1) + d] = sums[c][d];
        flat[c * (kDims + 1) + kDims] = counts[c];
      }
      double total[kClusters * (kDims + 1)];
      mpi::allreduce(ctx.mp().direct().comm(), flat, total,
                     kClusters * (kDims + 1), mpi::Datatype::kDouble,
                     mpi::ReduceOp::kSum);
      for (int c = 0; c < kClusters; ++c) {
        const double cnt = total[c * (kDims + 1) + kDims];
        if (cnt > 0) {
          for (int d = 0; d < kDims; ++d) {
            centroids[c][d] = total[c * (kDims + 1) + d] / cnt;
          }
        }
      }
    }

    // Gather the labelled object array back to rank 0.
    vm::Obj merged = nullptr;
    ctx.mp().OGather(local.get(), 0, &merged);
    if (ctx.rank() == 0) {
      int sizes[kClusters] = {};
      int mislabeled = 0;
      for (int i = 0; i < kPoints; ++i) {
        vm::Obj p = vm::get_ref_element(merged, i);
        const auto label = vm::get_field<std::int32_t>(p, T.label_off);
        ++sizes[label];
        // Ground truth: point i came from blob i % kClusters; clusters may
        // be permuted, so just report sizes.
        (void)mislabeled;
      }
      std::printf("kmeans_objects: %d points, %d ranks, %d iterations\n",
                  kPoints, kRanks, kIterations);
      std::printf("  final centroids:");
      for (int c = 0; c < kClusters; ++c) {
        std::printf(" (%.1f, %.1f)", centroids[c][0], centroids[c][1]);
      }
      std::printf("\n  cluster sizes: %d %d %d (expect ~%d each)\n", sizes[0],
                  sizes[1], sizes[2], kPoints / kClusters);
      const bool balanced = sizes[0] > 0 && sizes[1] > 0 && sizes[2] > 0;
      std::printf("kmeans_objects: %s\n", balanced ? "OK" : "DEGENERATE");
    }
  });
  return 0;
}
