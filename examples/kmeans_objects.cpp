// kmeans_objects: distributed k-means over STRUCTURED RECORDS using the
// typed transport — the "structured scientific data" workload the paper's
// OO transport exists for (§2.4/§4.2.2), on the compile-time wire plans.
//
// Points are plain C++ structs (a coordinate array + a cluster label)
// described once with MOTOR_TYPED_STRUCT_NAMED; the dataset lives in a
// std::vector. Rank 0 scatters slices with typed::send_span (one coalesced
// copy per slice — Point is a single wire run), every iteration the ranks
// assign labels locally and Allreduce the partial centroid sums over
// regular MPI, and at the end rank 0 gathers the labelled slices back.
// The wire bytes are identical to what OScatter/OGather of the managed
// twin objects would produce, so a reflective rank could join this world
// unchanged — but no VM types, GcRoots, or field offsets appear below.
// (The managed-object version of this example was 168 lines; see
// DESIGN.md "Typed transport layer".)
//
//   $ ./examples/kmeans_objects
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "common/prng.hpp"
#include "motor/motor_runtime.hpp"
#include "motor/typed/typed.hpp"
#include "mpi/collectives.hpp"

using namespace motor;

namespace {

constexpr int kRanks = 4;
constexpr int kPoints = 64;  // divisible by kRanks
constexpr int kClusters = 3;
constexpr int kDims = 2;
constexpr int kIterations = 12;
constexpr int kChunk = kPoints / kRanks;

struct Point {
  double coords[kDims];
  std::int32_t label;
};

}  // namespace

MOTOR_TYPED_STRUCT_NAMED(Point, "Point", coords, label);

namespace {

/// Three well-separated Gaussian-ish blobs.
double blob_coord(Prng& prng, int cluster, int dim) {
  const double centers[kClusters][kDims] = {{0, 0}, {10, 0}, {5, 9}};
  return centers[cluster][dim] + (prng.next_double() - 0.5) * 2.0;
}

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = kRanks;
  config.vm.heap.young_bytes = 2 << 20;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    auto& mp = ctx.mp().direct();

    // Rank 0 builds the dataset and scatters contiguous slices.
    std::vector<Point> local(kChunk);
    if (ctx.rank() == 0) {
      Prng prng(2006);
      std::vector<Point> dataset(kPoints);
      for (int i = 0; i < kPoints; ++i) {
        for (int d = 0; d < kDims; ++d) {
          dataset[i].coords[d] = blob_coord(prng, i % kClusters, d);
        }
        dataset[i].label = -1;
      }
      const std::span<const Point> all(dataset);
      for (int r = 1; r < kRanks; ++r) {
        typed::send_span(mp, all.subspan(r * kChunk, kChunk), r, 0);
      }
      std::memcpy(local.data(), dataset.data(), kChunk * sizeof(Point));
    } else {
      typed::recv_span(mp, local, 0, 0);
    }

    double centroids[kClusters][kDims] = {{1, 1}, {9, 1}, {4, 8}};  // seeds
    for (int iter = 0; iter < kIterations; ++iter) {
      // Assign each local point to its nearest centroid.
      double sums[kClusters][kDims] = {};
      double counts[kClusters] = {};
      for (Point& p : local) {
        int best = 0;
        double best_d = 1e300;
        for (int c = 0; c < kClusters; ++c) {
          double d2 = 0;
          for (int d = 0; d < kDims; ++d) {
            const double delta = p.coords[d] - centroids[c][d];
            d2 += delta * delta;
          }
          if (d2 < best_d) {
            best_d = d2;
            best = c;
          }
        }
        p.label = best;
        for (int d = 0; d < kDims; ++d) sums[best][d] += p.coords[d];
        counts[best] += 1.0;
      }

      // Global centroid update over regular MPI collectives.
      double flat[kClusters * (kDims + 1)];
      for (int c = 0; c < kClusters; ++c) {
        for (int d = 0; d < kDims; ++d) flat[c * (kDims + 1) + d] = sums[c][d];
        flat[c * (kDims + 1) + kDims] = counts[c];
      }
      double total[kClusters * (kDims + 1)];
      mpi::allreduce(mp.comm(), flat, total, kClusters * (kDims + 1),
                     mpi::Datatype::kDouble, mpi::ReduceOp::kSum);
      for (int c = 0; c < kClusters; ++c) {
        const double cnt = total[c * (kDims + 1) + kDims];
        if (cnt > 0) {
          for (int d = 0; d < kDims; ++d) {
            centroids[c][d] = total[c * (kDims + 1) + d] / cnt;
          }
        }
      }
    }

    // Gather the labelled slices back to rank 0.
    if (ctx.rank() == 0) {
      std::vector<Point> merged(local.begin(), local.end());
      std::vector<Point> slice;
      for (int r = 1; r < kRanks; ++r) {
        typed::recv_span(mp, slice, r, 3);
        merged.insert(merged.end(), slice.begin(), slice.end());
      }
      int sizes[kClusters] = {};
      for (const Point& p : merged) ++sizes[p.label];
      std::printf("kmeans_objects: %d points, %d ranks, %d iterations\n",
                  kPoints, kRanks, kIterations);
      std::printf("  final centroids:");
      for (int c = 0; c < kClusters; ++c) {
        std::printf(" (%.1f, %.1f)", centroids[c][0], centroids[c][1]);
      }
      std::printf("\n  cluster sizes: %d %d %d (expect ~%d each)\n", sizes[0],
                  sizes[1], sizes[2], kPoints / kClusters);
      const bool balanced = sizes[0] > 0 && sizes[1] > 0 && sizes[2] > 0;
      std::printf("kmeans_objects: %s\n", balanced ? "OK" : "DEGENERATE");
    } else {
      typed::send_span(mp, std::span<const Point>(local), 0, 3);
    }
  });
  return 0;
}
