// montecarlo_spawn: estimate pi with dynamically spawned Motor workers
// whose inner loop runs as MANAGED BYTECODE on the VM's interpreter —
// compile-once-run-anywhere in miniature (§1), plus the transparent
// process management extension (§9 future work).
//
// The master spawns workers; each worker assembles the sampling kernel,
// executes it on its interpreter (GC safepoints on every loop back-edge),
// and Sends its hit count home.
//
//   $ ./examples/montecarlo_spawn
#include <cstdio>

#include "motor/motor_runtime.hpp"
#include "vm/assembler.hpp"

using namespace motor;

namespace {

constexpr int kWorkers = 3;
constexpr int kSamplesPerWorker = 200'000;

/// Managed pi kernel: xorshift PRNG + hit counting, all in bytecode.
/// args: (seed i64, samples i32) -> hits i32. Locals: 0=seed 1=samples
/// 2=i 3=hits 4=x 5=y
vm::Method build_kernel() {
  vm::MethodAssembler a("sample", 2, 4);
  const int loop = a.new_label();
  const int done = a.new_label();
  const int miss = a.new_label();
  constexpr std::int64_t kMask = (std::int64_t{1} << 20) - 1;

  a.ldc_i4(0).stloc(2);
  a.ldc_i4(0).stloc(3);
  a.bind(loop);
  a.ldloc(2).ldloc(1).cge().brtrue(done);

  // xorshift64: seed ^= seed << 13; ^= seed >> 7; ^= seed << 17
  a.ldloc(0).ldloc(0).ldc_i4(13).shl().xor_().stloc(0);
  a.ldloc(0).ldloc(0).ldc_i4(7).shr().xor_().stloc(0);
  a.ldloc(0).ldloc(0).ldc_i4(17).shl().xor_().stloc(0);

  // x = (seed & kMask) / 2^20 ; y = ((seed >> 21) & kMask) / 2^20
  a.ldloc(0).ldc_i8(kMask).and_().conv_r8().ldc_r8(1048576.0).div().stloc(4);
  a.ldloc(0).ldc_i4(21).shr().ldc_i8(kMask).and_().conv_r8()
      .ldc_r8(1048576.0).div().stloc(5);

  // if (x*x + y*y <= 1.0) ++hits
  a.ldloc(4).ldloc(4).mul();
  a.ldloc(5).ldloc(5).mul();
  a.add().ldc_r8(1.0).cle().brfalse(miss);
  a.ldloc(3).ldc_i4(1).add().stloc(3);
  a.bind(miss);

  a.ldloc(2).ldc_i4(1).add().stloc(2);
  a.br(loop);
  a.bind(done);
  a.ldloc(3).ret();
  return a.build();
}

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = 1;

  mp::run_motor_world(config, [](mp::MotorContext& master) {
    mp::Communicator workers = mp::spawn_motor_workers(
        master, /*root=*/0, kWorkers, [](mp::MotorContext& worker) {
          vm::Program program;
          program.add_method(build_kernel());
          vm::Interpreter interp(worker.vm(), worker.thread());

          const vm::Value args[] = {
              vm::Value::from_i64(0x9E3779B97F4A7C15ull ^
                                  static_cast<std::uint64_t>(worker.rank() + 1)),
              vm::Value::from_i32(kSamplesPerWorker)};
          const std::int32_t hits = interp.invoke(program, 0, args).i32;
          std::printf("[worker %d] %d / %d hits (%llu bytecodes executed)\n",
                      worker.rank(), hits, kSamplesPerWorker,
                      static_cast<unsigned long long>(
                          interp.instructions_executed()));

          const vm::MethodTable* ints =
              worker.vm().types().primitive_array(vm::ElementKind::kInt32);
          vm::GcRoot out(worker.thread(),
                         worker.vm().heap().alloc_array(ints, 1));
          vm::set_element<std::int32_t>(out.get(), 0, hits);
          worker.parent_mp().Send(out.get(), 0, 0);
        });

    const vm::MethodTable* ints =
        master.vm().types().primitive_array(vm::ElementKind::kInt32);
    std::int64_t total_hits = 0;
    for (int w = 0; w < kWorkers; ++w) {
      vm::GcRoot in(master.thread(), master.vm().heap().alloc_array(ints, 1));
      workers.Recv(in.get(), w, 0);
      total_hits += vm::get_element<std::int32_t>(in.get(), 0);
    }
    const double pi = 4.0 * static_cast<double>(total_hits) /
                      (static_cast<double>(kWorkers) * kSamplesPerWorker);
    std::printf("[master] pi ~= %.4f from %d managed samples\n", pi,
                kWorkers * kSamplesPerWorker);
    std::printf("montecarlo_spawn: %s\n",
                pi > 3.10 && pi < 3.18 ? "OK" : "OUT OF RANGE");
  });
  return 0;
}
