// Quickstart: the Motor "hello world".
//
// Launches two Motor ranks (each a full managed VM wired to the shared
// fabric), sends a primitive array with the regular MPI bindings, then a
// linked object tree with the extended OO operations — the two transport
// families of paper §4.2.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "motor/motor_runtime.hpp"

using namespace motor;

int main() {
  mp::MotorWorldConfig config;
  config.ranks = 2;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    auto& types = ctx.vm().types();
    const vm::MethodTable* doubles =
        types.primitive_array(vm::ElementKind::kDouble);

    // ---- regular MPI: zero-copy transport of a primitive array ----
    vm::GcRoot data(ctx.thread(), ctx.vm().heap().alloc_array(doubles, 8));
    if (ctx.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        vm::set_element<double>(data.get(), i, i * 1.5);
      }
      ctx.mp().Send(data.get(), /*dest=*/1, /*tag=*/0);
      std::printf("[rank 0] sent 8 doubles\n");
    } else {
      mp::MpStatus status;
      ctx.mp().Recv(data.get(), /*source=*/0, /*tag=*/0, &status);
      std::printf("[rank 1] received %lld bytes from rank %d: ",
                  static_cast<long long>(status.count_bytes), status.source);
      for (int i = 0; i < 8; ++i) {
        std::printf("%.1f ", vm::get_element<double>(data.get(), i));
      }
      std::printf("\n");
    }

    // ---- OO operations: transport a small object tree ----
    // Fields marked Transportable propagate; others arrive null (§4.2.2).
    const vm::MethodTable* node =
        types.define_class("Message")
            .transportable()
            .ref_field("payload", doubles, /*transportable=*/true)
            .ref_field("reply_to", types.object_type(),
                       /*transportable=*/false)
            .field("hops", vm::ElementKind::kInt32)
            .build();

    if (ctx.rank() == 0) {
      vm::GcRoot msg(ctx.thread(), ctx.vm().heap().alloc_object(node));
      vm::set_ref_field(msg.get(), node->field_named("payload")->offset(),
                        data.get());
      vm::set_field<std::int32_t>(msg.get(),
                                  node->field_named("hops")->offset(), 1);
      ctx.mp().OSend(msg.get(), 1, 1);
      std::printf("[rank 0] OSent a Message object tree\n");
    } else {
      vm::Obj msg = ctx.mp().ORecv(0, 1);
      vm::Obj payload =
          vm::get_ref_field(msg, node->field_named("payload")->offset());
      std::printf("[rank 1] ORecv Message: hops=%d payload[3]=%.1f "
                  "reply_to=%s\n",
                  vm::get_field<std::int32_t>(
                      msg, node->field_named("hops")->offset()),
                  vm::get_element<double>(payload, 3),
                  vm::get_ref_field(
                      msg, node->field_named("reply_to")->offset()) == nullptr
                      ? "null (not Transportable)"
                      : "non-null");
    }

    ctx.mp().Barrier();
    if (ctx.rank() == 0) std::printf("quickstart: done\n");
  });
  return 0;
}
