// tree_transport: structured-data messaging with the extended OO
// operations — the paper's Figure 5 scenario made runnable.
//
// Rank 0 builds a binary expression tree of managed objects, OSends it;
// rank 1 evaluates the tree it reconstructed, mutates the leaves, and
// OSends it back. Demonstrates:
//   * opt-in propagation: only [Transportable] references travel;
//   * object identity: shared subtrees arrive shared, not duplicated;
//   * scatter of an OBJECT ARRAY via the split representation — the
//     capability other managed MPI bindings lack (§1, §2.4).
//
//   $ ./examples/tree_transport
#include <cstdio>

#include "motor/motor_runtime.hpp"

using namespace motor;

namespace {

struct ExprTypes {
  const vm::MethodTable* node;
  std::uint32_t op_off, value_off, left_off, right_off, note_off;

  explicit ExprTypes(vm::Vm& vm) {
    // note is deliberately NOT Transportable: local annotations stay home.
    node = vm.types()
               .define_class("Expr")
               .transportable()
               .field("op", vm::ElementKind::kInt32)  // 0=leaf 1=add 2=mul
               .field("value", vm::ElementKind::kDouble)
               .ref_field("left", vm.types().object_type(), true)
               .ref_field("right", vm.types().object_type(), true)
               .ref_field("note", vm.types().object_type(), false)
               .build();
    op_off = node->field_named("op")->offset();
    value_off = node->field_named("value")->offset();
    left_off = node->field_named("left")->offset();
    right_off = node->field_named("right")->offset();
    note_off = node->field_named("note")->offset();
  }

  vm::Obj leaf(vm::Vm& vm, double v) const {
    vm::Obj n = vm.heap().alloc_object(node);
    vm::set_field<std::int32_t>(n, op_off, 0);
    vm::set_field(n, value_off, v);
    return n;
  }
  vm::Obj binary(vm::Vm& vm, vm::ManagedThread& t, int op, vm::Obj l,
                 vm::Obj r) const {
    vm::GcRoot lr(t, l), rr(t, r);
    vm::Obj n = vm.heap().alloc_object(node);
    vm::set_field<std::int32_t>(n, op_off, op);
    vm::set_ref_field(n, left_off, lr.get());
    vm::set_ref_field(n, right_off, rr.get());
    return n;
  }

  double eval(vm::Obj n) const {
    switch (vm::get_field<std::int32_t>(n, op_off)) {
      case 0:
        return vm::get_field<double>(n, value_off);
      case 1:
        return eval(vm::get_ref_field(n, left_off)) +
               eval(vm::get_ref_field(n, right_off));
      default:
        return eval(vm::get_ref_field(n, left_off)) *
               eval(vm::get_ref_field(n, right_off));
    }
  }
};

}  // namespace

int main() {
  mp::MotorWorldConfig config;
  config.ranks = 2;

  mp::run_motor_world(config, [](mp::MotorContext& ctx) {
    ExprTypes T(ctx.vm());

    if (ctx.rank() == 0) {
      // (3 + 4) * (3 + 4)  — the shared subtree travels ONCE.
      vm::GcRoot shared(ctx.thread(),
                        T.binary(ctx.vm(), ctx.thread(), 1,
                                 T.leaf(ctx.vm(), 3.0),
                                 T.leaf(ctx.vm(), 4.0)));
      vm::GcRoot note(ctx.thread(), ctx.vm().heap().alloc_object(T.node));
      vm::GcRoot root(ctx.thread(),
                      T.binary(ctx.vm(), ctx.thread(), 2, shared.get(),
                               shared.get()));
      vm::set_ref_field(root.get(), T.note_off, note.get());

      std::printf("[rank 0] eval before send: %.1f\n", T.eval(root.get()));
      ctx.mp().OSend(root.get(), 1, 0);

      vm::Obj back = ctx.mp().ORecv(1, 1);
      std::printf("[rank 0] eval after peer mutation: %.1f (expect 81)\n",
                  T.eval(back));
    } else {
      vm::Obj root = ctx.mp().ORecv(0, 0);
      vm::GcRoot root_r(ctx.thread(), root);
      std::printf("[rank 1] eval received tree: %.1f (expect 49)\n",
                  T.eval(root_r.get()));

      vm::Obj l = vm::get_ref_field(root_r.get(), T.left_off);
      vm::Obj r = vm::get_ref_field(root_r.get(), T.right_off);
      std::printf("[rank 1] shared subtree preserved: %s\n",
                  l == r ? "yes (one object)" : "NO");
      std::printf("[rank 1] non-Transportable note nulled: %s\n",
                  vm::get_ref_field(root_r.get(), T.note_off) == nullptr
                      ? "yes"
                      : "NO");

      // Mutate the shared leaves: 3->4.5, 4->4.5 => (9)^2 = 81.
      vm::set_field(vm::get_ref_field(l, T.left_off), T.value_off, 4.5);
      vm::set_field(vm::get_ref_field(l, T.right_off), T.value_off, 4.5);
      ctx.mp().OSend(root_r.get(), 0, 1);
    }

    // ---- object-array scatter finale ----
    const vm::MethodTable* expr_array = ctx.vm().types().ref_array(T.node);
    vm::GcRoot batch(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      batch.set(ctx.vm().heap().alloc_array(expr_array, 4));
      for (int i = 0; i < 4; ++i) {
        vm::Obj e = T.binary(ctx.vm(), ctx.thread(), 1,
                             T.leaf(ctx.vm(), i), T.leaf(ctx.vm(), i));
        vm::set_ref_element(batch.get(), i, e);
      }
    }
    vm::Obj mine = nullptr;
    ctx.mp().OScatter(batch.get(), 0, &mine);
    double sum = 0;
    for (std::int64_t i = 0; i < vm::array_length(mine); ++i) {
      sum += T.eval(vm::get_ref_element(mine, i));
    }
    std::printf("[rank %d] OScatter piece evaluates to %.1f\n", ctx.rank(),
                sum);
    ctx.mp().Barrier();
    if (ctx.rank() == 0) std::printf("tree_transport: done\n");
  });
  return 0;
}
