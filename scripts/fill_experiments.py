#!/usr/bin/env python3
"""Splice bench_output.txt sections into EXPERIMENTS.md code blocks.

Each `<!-- MARKER -->` in EXPERIMENTS.md is replaced by the corresponding
bench section from bench_output.txt, fenced as a code block. Rerun after
regenerating bench_output.txt.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
bench = (ROOT / "bench_output.txt").read_text()

def section(name: str) -> str:
    pattern = rf"== bench/{name}\n=+\n(.*?)(?:\n=====|\Z)"
    m = re.search(pattern, bench, re.S)
    if not m:
        return f"(bench/{name} output missing — rerun scripts/run_benches.sh)"
    return m.group(1).strip()

def fenced(name: str) -> str:
    return "```\n" + section(name) + "\n```"

doc = (ROOT / "scripts" / "experiments_template.md").read_text()
markers = {
    "<!-- FIG9_TABLE -->": fenced("fig9_pingpong"),
    "<!-- FIG10_TABLE -->": fenced("fig10_objects"),
    "<!-- A1_TABLE -->": fenced("ablation_pinning"),
    "<!-- A2_TABLE -->": fenced("ablation_callmech"),
    "<!-- A3_TABLE -->": fenced("ablation_visited"),
    "<!-- A4_TABLE -->": fenced("ablation_scatter"),
    "<!-- A5_TABLE -->": fenced("ablation_unpin"),
    "<!-- GC_TABLE -->": fenced("gc_microbench"),
    "<!-- SWEEP_TABLE -->": fenced("sweep_interconnect"),
}
for marker, replacement in markers.items():
    doc = doc.replace(marker, replacement)

# E3 headline numbers from the fig9 summary.
fig9 = section("fig9_pingpong")
for key, marker in [("peak_improvement_pct", "<!-- E3_PEAK -->"),
                    ("mean_improvement_pct", "<!-- E3_MEAN -->"),
                    ("mean_improvement_gt64k_pct", "<!-- E3_LARGE -->")]:
    m = re.search(rf"{key}\s+([\d.]+)", fig9)
    doc = doc.replace(marker, f"{m.group(1)} %" if m else "n/a")

(ROOT / "EXPERIMENTS.md").write_text(doc)
print("EXPERIMENTS.md updated")
