#!/usr/bin/env bash
# Regenerate every paper figure/table and ablation. Output order matches
# the experiment index in DESIGN.md.
set -u
cd "$(dirname "$0")/.."
for b in fig9_pingpong fig10_objects ablation_pinning ablation_callmech \
         ablation_visited ablation_scatter ablation_unpin gc_microbench \
         sweep_interconnect; do
  echo "=================================================================="
  echo "== bench/$b"
  echo "=================================================================="
  ./build/bench/"$b"
  echo
done
