#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then a
# fig9 smoke run (2 sizes, enough to prove the bench pipeline links and
# the staged/gathered comparison executes). A second tree is built with
# ASan+UBSan and runs the fault-injection tier (`ctest -L fault`) — the
# reliability layer's retry/resync paths shuffle buffers aggressively, so
# they get the memory-error microscope.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

ctest --test-dir build --output-on-failure

# Serializer tier on its own label: the Motor serializer, the wire-plan
# cache, and the seeded round-trip property suite (ctest -L serializer).
# Redundant with the full run above but cheap, and it keeps the label
# wiring itself verified.
ctest --test-dir build -L serializer --output-on-failure

# Collectives tier (ctest -L collectives): the per-world-size functional
# suite plus the algorithm-registry property suite — every registered
# algorithm vs the linear reference over random sizes/roots/non-pow2
# worlds, all four topologies, and the fault-injected fail-fast pass.
ctest --test-dir build -L collectives --output-on-failure

# Parameter-server tier (ctest -L ps): push/pull round trips, object
# entries, cross-shard forwarding, the shared-pool steady state, the
# back-pressure bound, the seeded convergence property, and the faulted
# determinism suite (test_ps_fault is also under -L fault).
ctest --test-dir build -L ps --output-on-failure

# PS throughput smoke, strict (no `|| true`): a tiny coalesce-on/off grid
# whose final table is checked against the closed-form expectation — the
# binary exits non-zero on any convergence mismatch, so the coalescing
# ablation cannot rot. The JSON lands in the build tree (the committed
# BENCH_ps.json is the full sweep).
timeout 300 ./build/bench/ps_throughput --smoke --json=build/ps_smoke.json

# fig10 smoke: tiny ping-pong sizes plus the wire-plan ablation section,
# strict (no `|| true`) so the bench binary and the plan_cache toggle
# cannot rot.
timeout 300 ./build/bench/fig10_objects --smoke

# Collective sweep smoke, strict (no `|| true`): a tiny topology/algorithm
# grid with the analytic result check — exits non-zero on any registry
# entry producing a different answer, so the ablation identity cannot rot.
timeout 300 ./build/bench/sweep_interconnect --smoke

# Sanitizer tier: fault-labelled stress tests, the collective registry
# (tree/butterfly index arithmetic, in-place reduce windows), and the
# parameter server (unaligned record payloads, pooled buffer recycling,
# comm-thread handoffs) under ASan + UBSan.
cmake -B build-asan -S . -DMOTOR_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$(nproc)" --target test_fault --target test_collectives --target test_ps --target test_ps_fault
ctest --test-dir build-asan -L 'fault|collectives|ps' --output-on-failure

# fig9 smoke: the full sweep takes minutes; a capped run via the pingpong
# spec is not exposed on the CLI, so just run the cheapest ablation bench
# plus a bounded-time fig9 slice under `timeout` (the first rows print
# within seconds and prove the path works end to end).
timeout 60 ./build/bench/fig9_pingpong | head -8 || true
echo "verify: OK"
