#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then a
# fig9 smoke run (2 sizes, enough to prove the bench pipeline links and
# the staged/gathered comparison executes). A second tree is built with
# ASan+UBSan and runs the fault-injection tier (`ctest -L fault`) — the
# reliability layer's retry/resync paths shuffle buffers aggressively, so
# they get the memory-error microscope.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

ctest --test-dir build --output-on-failure

# Serializer tier on its own label: the Motor serializer, the wire-plan
# cache, and the seeded round-trip property suite (ctest -L serializer).
# Redundant with the full run above but cheap, and it keeps the label
# wiring itself verified.
ctest --test-dir build -L serializer --output-on-failure

# Collectives tier (ctest -L collectives): the per-world-size functional
# suite plus the algorithm-registry property suite — every registered
# algorithm vs the linear reference over random sizes/roots/non-pow2
# worlds, all four topologies, and the fault-injected fail-fast pass.
ctest --test-dir build -L collectives --output-on-failure

# Parameter-server tier (ctest -L ps): push/pull round trips, object
# entries, cross-shard forwarding, the shared-pool steady state, the
# back-pressure bound, the seeded convergence property, and the faulted
# determinism suite (test_ps_fault is also under -L fault).
ctest --test-dir build -L ps --output-on-failure

# Typed-transport tier (ctest -L typed): the compile-time wire plans, the
# VM-free codec, the seeded three-way byte-identity property suite
# (typed == plan-cache == reflective), typed send/recv across ranks with
# managed interop in both directions, and the PS typed hot paths.
ctest --test-dir build -L typed --output-on-failure

# Pause-bounded GC tier (ctest -L gc): incremental-vs-STW seeded
# reachable-set identity, write-barrier and remembered-set correctness,
# conditional pins held across mark slices, pin-density region decisions
# (wholesale promote / evacuate / donate), donated-region recycling, and
# serializer byte-identity across GC modes and mid-cycle.
ctest --test-dir build -L gc --output-on-failure

# Both GC schedules against the rest of the stack: MOTOR_GC_INCREMENTAL
# overrides every heap's collection mode at construction, so the ps and
# fault tiers (comm threads, pooled buffers, pinned serializer sends)
# and the A1 pinning ablation also run against the incremental
# collector. The unprefixed runs above cover the stop-the-world default.
# (The gc label itself must NOT run with the override: its property
# suites pin one mode per world to compare the two.)
MOTOR_GC_INCREMENTAL=1 ctest --test-dir build -L 'ps|fault' --output-on-failure
timeout 300 ./build/bench/ablation_pinning >/dev/null
MOTOR_GC_INCREMENTAL=1 timeout 300 ./build/bench/ablation_pinning >/dev/null

# PS throughput smoke, strict (no `|| true`): a tiny coalesce-on/off grid
# whose final table is checked against the closed-form expectation — the
# binary exits non-zero on any convergence mismatch, so the coalescing
# ablation cannot rot. The JSON lands in the build tree (the committed
# BENCH_ps.json is the full sweep).
timeout 300 ./build/bench/ps_throughput --smoke --json=build/ps_smoke.json

# GC pause smoke, strict (no `|| true`): live PS traffic against a heap
# at three GC settings (off / stop-the-world / incremental). The binary
# exits non-zero if any run fails its closed-form convergence check, a
# GC mode fails to collect inside the measurement window, or the
# incremental max pause exceeds the stop-the-world max — so the
# pause-bounding claim cannot rot. The JSON lands in the build tree (the
# committed BENCH_gc.json is the full 256 MiB run).
timeout 300 ./build/bench/gc_microbench --smoke --json=build/gc_smoke.json
python3 - <<'EOF'
import json
gc = json.load(open("build/gc_smoke.json"))
assert gc["gates_pass"] is True
rows = {r["gc"]: r for r in gc["rows"]}
assert set(rows) == {"off", "stw", "inc"}, rows.keys()
assert rows["inc"]["incremental_cycles"] > 0
assert rows["inc"]["mark_slices"] > 0
assert rows["stw"]["pause_max_ms"] >= rows["inc"]["pause_max_ms"]
print(f"gc smoke OK: stw max {rows['stw']['pause_max_ms']:.1f} ms, "
      f"inc max {rows['inc']['pause_max_ms']:.1f} ms over "
      f"{rows['inc']['mark_slices']} mark slices")
EOF

# fig10 smoke: tiny ping-pong sizes plus the wire-plan ablation and the
# typed-transport ablation, strict (no `|| true`): the binary exits
# non-zero if the typed/plan-cache/reflective streams ever diverge
# byte-wise or the perf ordering typed <= plan <= reflective breaks, so
# the zero-overhead claim cannot rot.
timeout 300 ./build/bench/fig10_objects --smoke

# Collective sweep smoke, strict (no `|| true`): a tiny topology/algorithm
# grid with the analytic result check — exits non-zero on any registry
# entry producing a different answer, so the ablation identity cannot rot.
timeout 300 ./build/bench/sweep_interconnect --smoke

# Cross-process tier (ctest -L procs): channel conformance for all eight
# channel implementations, the motor_launch end-to-end suite over
# socket/tcp/shm (pingpong, collectives, PS), the crash-containment
# suite (a rank dies mid-collective / mid-push; survivors must error out
# within the grace window, never hang), and the seeded socket/shm fault
# determinism suite.
ctest --test-dir build -L procs --output-on-failure

# fig9 across real process boundaries, strict: both transports must
# produce JSON structurally identical to each other (same schema the
# thread mode emits), and shm must beat the socket at the largest size —
# the whole point of having two wires.
timeout 600 ./build/bench/fig9_pingpong --transport=socket --smoke \
    --json=build/fig9_socket_smoke.json
timeout 600 ./build/bench/fig9_pingpong --transport=shm --smoke \
    --json=build/fig9_shm_smoke.json
python3 - <<'EOF'
import json
def shape(v):
    if isinstance(v, dict): return {k: shape(x) for k, x in sorted(v.items())}
    if isinstance(v, list): return [shape(x) for x in v]
    return type(v).__name__
sock = json.load(open("build/fig9_socket_smoke.json"))
shm = json.load(open("build/fig9_shm_smoke.json"))
assert shape(sock) == shape(shm), "fig9 JSON schemas diverge across transports"
last = lambda d: d["rows"][-1]
s, m = last(sock), last(shm)
assert s["bytes"] == m["bytes"]
assert m["motor_mbps"] > s["motor_mbps"], (
    f"shm ({m['motor_mbps']} MB/s) did not beat socket ({s['motor_mbps']} MB/s)")
print(f"fig9 procs OK: shm {m['motor_mbps']:.0f} MB/s > "
      f"socket {s['motor_mbps']:.0f} MB/s at {s['bytes']} B")
EOF

# Sanitizer tier: fault-labelled stress tests, the collective registry
# (tree/butterfly index arithmetic, in-place reduce windows), the
# parameter server (unaligned record payloads, pooled buffer recycling,
# comm-thread handoffs), the typed transport (reinterpret-cast leaf
# gathers, in-place payload references, twin layout verification), and
# the cross-process tier (shm ring index discipline, socket partial-write
# resync, launcher teardown) under ASan + UBSan.
cmake -B build-asan -S . -DMOTOR_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$(nproc)" --target test_fault --target test_collectives --target test_ps --target test_ps_fault --target test_typed --target test_channel_conformance --target test_proc_fault --target test_launch --target launch_rank_helper --target test_gc
ctest --test-dir build-asan -L 'fault|collectives|ps|procs|typed|gc' --output-on-failure

# Race tier: the same GC suite plus the parameter server under
# ThreadSanitizer. The write barrier runs on mutator and PS comm threads
# concurrently with GC slices; the side-mark design (bitmap + flat set
# behind mark_mu_, no header-word marking) is exactly the part TSan can
# falsify, so it gets its own tree.
cmake -B build-tsan -S . -DMOTOR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target test_gc --target test_ps --target test_ps_fault
ctest --test-dir build-tsan -L 'gc|ps' --output-on-failure

# fig9 smoke: the full sweep takes minutes; a capped run via the pingpong
# spec is not exposed on the CLI, so just run the cheapest ablation bench
# plus a bounded-time fig9 slice under `timeout` (the first rows print
# within seconds and prove the path works end to end).
timeout 60 ./build/bench/fig9_pingpong | head -8 || true
echo "verify: OK"
