#include "baselines/indiana_bindings.hpp"

#include "motor/integrity.hpp"
#include "mpi/device.hpp"
#include "mpi/pt2pt.hpp"
#include "pal/clock.hpp"

namespace motor::baselines {

namespace {

/// The P/Invoke transition into native MPI: marshal, charge the
/// transition, run the body in preemptive mode (no GC polling — the
/// runtime cannot see into native code).
template <typename Body>
auto pinvoke_call(vm::Vm& vm, vm::ManagedThread& thread, Body&& body) {
  thread.poll_gc();
  if (vm.profile().pinvoke_transition_ns > 0) {
    pal::spin_for_ns(vm.profile().pinvoke_transition_ns);
  }
  {
    vm::NativeRegion native(vm.safepoints());
    body();
  }
  thread.poll_gc();
}

}  // namespace

IndianaCommunicator::IndianaCommunicator(vm::Vm& vm, vm::ManagedThread& thread,
                                         mpi::Comm comm)
    : vm_(vm), thread_(thread), comm_(std::move(comm)), serializer_(vm) {}

Status IndianaCommunicator::transfer_raw(Dir dir, std::byte* data,
                                         std::size_t bytes, int peer, int tag,
                                         std::size_t* received) {
  ++pinvoke_calls_;
  ErrorCode err = ErrorCode::kSuccess;
  pinvoke_call(vm_, thread_, [&] {
    if (dir == Dir::kSend) {
      err = mpi::send(comm_, data, bytes, peer, tag);
    } else {
      mpi::MsgStatus st;
      err = mpi::recv(comm_, data, bytes, peer, tag, &st);
      if (received != nullptr) *received = st.count_bytes;
    }
  });
  return Status(err);
}

Status IndianaCommunicator::transfer(Dir dir, vm::Obj pin_target,
                                     std::byte* data, std::size_t bytes,
                                     int peer, int tag) {
  // "Pinning is performed for each MPI operation" (§8): pin before the
  // native call, unpin after, no generation check, no deferral.
  if (pin_target != nullptr) {
    vm_.heap().pin(pin_target);
    if (vm_.profile().pin_extra_ns > 0) {
      pal::spin_for_ns(vm_.profile().pin_extra_ns);
    }
  }
  Status st = transfer_raw(dir, data, bytes, peer, tag, nullptr);
  if (pin_target != nullptr) vm_.heap().unpin(pin_target);
  return st;
}

Status IndianaCommunicator::send(vm::Obj obj, int dst, int tag) {
  mp::TransportView view;
  MOTOR_RETURN_IF_ERROR(mp::transport_view(obj, &view));
  return transfer(Dir::kSend, obj, view.data, view.bytes, dst, tag);
}

Status IndianaCommunicator::recv(vm::Obj obj, int src, int tag) {
  mp::TransportView view;
  MOTOR_RETURN_IF_ERROR(mp::transport_view(obj, &view));
  return transfer(Dir::kRecv, obj, view.data, view.bytes, src, tag);
}

Status IndianaCommunicator::send_object_tree(vm::Obj root, int dst, int tag) {
  // Standard CLI binary serialization to a temporary buffer (§8): the
  // buffer is native memory, so only the serializer touches the heap.
  ByteBuffer buf;
  MOTOR_RETURN_IF_ERROR(serializer_.serialize(root, buf));
  std::uint64_t size = buf.size();
  MOTOR_RETURN_IF_ERROR(transfer_raw(Dir::kSend,
                                     reinterpret_cast<std::byte*>(&size),
                                     sizeof size, dst, tag, nullptr));
  return transfer_raw(Dir::kSend, buf.data(), buf.size(), dst, tag, nullptr);
}

Status IndianaCommunicator::recv_object_tree(int src, int tag, vm::Obj* out) {
  std::uint64_t size = 0;
  MOTOR_RETURN_IF_ERROR(transfer_raw(Dir::kRecv,
                                     reinterpret_cast<std::byte*>(&size),
                                     sizeof size, src, tag, nullptr));
  ByteBuffer buf;
  buf.resize(size);
  MOTOR_RETURN_IF_ERROR(
      transfer_raw(Dir::kRecv, buf.data(), size, src, tag, nullptr));
  buf.seek(0);
  return serializer_.deserialize(buf, thread_, out);
}

}  // namespace motor::baselines
