// The Indiana University C# MPI bindings, reproduced (paper §2.1/§8).
//
// Architecture per the paper: a managed wrapper that P/Invokes an
// underlying native MPI (here: the same Message Passing Core Motor uses,
// so every measured difference is the wrapper architecture, not the MPI).
// Binding behaviour per the paper's Figure 9 setup:
//   * "Pinning is performed for each MPI operation" — the bindings pin
//     the buffer up front and unpin at completion, unconditionally;
//   * every call pays the P/Invoke transition (marshalling + security);
//   * the native call runs in preemptive mode (no GC polling) — which is
//     precisely why the unconditional pin is mandatory;
//   * object trees travel via the standard CLI binary serializer over
//     regular MPI (Figure 10's "Indiana" series).
// Host quality (SSCLI vs commercial .NET) comes from the Vm's
// RuntimeProfile.
#pragma once

#include "mpi/comm.hpp"
#include "vm/cli_serializer.hpp"
#include "vm/vm.hpp"

namespace motor::baselines {

class IndianaCommunicator {
 public:
  IndianaCommunicator(vm::Vm& vm, vm::ManagedThread& thread, mpi::Comm comm);

  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int size() const { return comm_.size(); }

  /// Regular buffer transport of a reference-free object or primitive
  /// array (the C# bindings do not police integrity — paper §2.4 — but we
  /// reuse the view helper for layout).
  Status send(vm::Obj obj, int dst, int tag);
  Status recv(vm::Obj obj, int src, int tag);

  /// Object-tree transport: CLI binary serialization into a byte buffer,
  /// moved with regular MPI (size first, then payload).
  Status send_object_tree(vm::Obj root, int dst, int tag);
  Status recv_object_tree(int src, int tag, vm::Obj* out);

  [[nodiscard]] std::uint64_t pinvoke_calls() const noexcept {
    return pinvoke_calls_;
  }

 private:
  enum class Dir { kSend, kRecv };
  Status transfer(Dir dir, vm::Obj pin_target, std::byte* data,
                  std::size_t bytes, int peer, int tag);
  Status transfer_raw(Dir dir, std::byte* data, std::size_t bytes, int peer,
                      int tag, std::size_t* received);

  vm::Vm& vm_;
  vm::ManagedThread& thread_;
  mpi::Comm comm_;
  vm::CliBinarySerializer serializer_;
  std::uint64_t pinvoke_calls_ = 0;
};

}  // namespace motor::baselines
