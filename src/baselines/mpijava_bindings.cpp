#include "baselines/mpijava_bindings.hpp"

#include "motor/integrity.hpp"
#include "mpi/pt2pt.hpp"
#include "pal/clock.hpp"

namespace motor::baselines {

MpiJavaCommunicator::MpiJavaCommunicator(vm::Vm& vm, vm::ManagedThread& thread,
                                         mpi::Comm comm)
    : vm_(vm), thread_(thread), comm_(std::move(comm)), serializer_(vm) {}

Status MpiJavaCommunicator::jni_transfer(Dir dir, vm::Obj pin_target,
                                         std::byte* data, std::size_t bytes,
                                         int peer, int tag) {
  ++jni_calls_;
  thread_.poll_gc();
  if (vm_.profile().jni_transition_ns > 0) {
    pal::spin_for_ns(vm_.profile().jni_transition_ns);
  }
  // JNI pins the array for the duration of the native call, automatically.
  if (pin_target != nullptr) {
    vm_.heap().pin(pin_target);
    if (vm_.profile().pin_extra_ns > 0) {
      pal::spin_for_ns(vm_.profile().pin_extra_ns);
    }
  }
  ErrorCode err = ErrorCode::kSuccess;
  {
    vm::NativeRegion native(vm_.safepoints());
    if (dir == Dir::kSend) {
      err = mpi::send(comm_, data, bytes, peer, tag);
    } else {
      err = mpi::recv(comm_, data, bytes, peer, tag);
    }
  }
  if (pin_target != nullptr) vm_.heap().unpin(pin_target);
  thread_.poll_gc();
  return Status(err);
}

Status MpiJavaCommunicator::send(vm::Obj arr, int dst, int tag) {
  mp::TransportView view;
  MOTOR_RETURN_IF_ERROR(mp::transport_view(arr, &view));
  return jni_transfer(Dir::kSend, arr, view.data, view.bytes, dst, tag);
}

Status MpiJavaCommunicator::recv(vm::Obj arr, int src, int tag) {
  mp::TransportView view;
  MOTOR_RETURN_IF_ERROR(mp::transport_view(arr, &view));
  return jni_transfer(Dir::kRecv, arr, view.data, view.bytes, src, tag);
}

Status MpiJavaCommunicator::send_object(vm::Obj root, int dst, int tag) {
  ByteBuffer buf;
  MOTOR_RETURN_IF_ERROR(serializer_.serialize(root, buf));
  std::uint64_t size = buf.size();
  MOTOR_RETURN_IF_ERROR(jni_transfer(Dir::kSend, nullptr,
                                     reinterpret_cast<std::byte*>(&size),
                                     sizeof size, dst, tag));
  return jni_transfer(Dir::kSend, nullptr, buf.data(), buf.size(), dst, tag);
}

Status MpiJavaCommunicator::recv_object(int src, int tag, vm::Obj* out) {
  std::uint64_t size = 0;
  MOTOR_RETURN_IF_ERROR(jni_transfer(Dir::kRecv, nullptr,
                                     reinterpret_cast<std::byte*>(&size),
                                     sizeof size, src, tag));
  ByteBuffer buf;
  buf.resize(size);
  MOTOR_RETURN_IF_ERROR(
      jni_transfer(Dir::kRecv, nullptr, buf.data(), size, src, tag));
  buf.seek(0);
  return serializer_.deserialize(buf, thread_, out);
}

}  // namespace motor::baselines
