// mpiJava reproduced (paper §2.1/§8): a Java wrapper over native MPI via
// JNI.
//
// Behavioural signature per the paper:
//   * every call crosses JNI (transition cost + automatic pin/unpin of
//     the buffer — "the JNI interface automatically pins and unpins
//     objects", §2.3);
//   * the MPI.OBJECT datatype serializes with the STANDARD Java
//     serialization mechanism (JavaSerializer: recursive, class
//     descriptors, handle-table switch) — the Figure 10 series with the
//     mid-range bump and the stack-overflow failure past 1024 objects;
//   * the serialized length is sent ahead of the payload (§7.5 notes
//     mpiJava does this too).
#pragma once

#include "mpi/comm.hpp"
#include "vm/java_serializer.hpp"
#include "vm/vm.hpp"

namespace motor::baselines {

class MpiJavaCommunicator {
 public:
  MpiJavaCommunicator(vm::Vm& vm, vm::ManagedThread& thread, mpi::Comm comm);

  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int size() const { return comm_.size(); }

  /// Simple-type array transport (MPI.BYTE et al.).
  Status send(vm::Obj arr, int dst, int tag);
  Status recv(vm::Obj arr, int src, int tag);

  /// MPI.OBJECT transport: standard Java serialization, length-prefixed.
  /// Deep structures fail with kStackOverflow, as mpiJava did.
  Status send_object(vm::Obj root, int dst, int tag);
  Status recv_object(int src, int tag, vm::Obj* out);

  [[nodiscard]] std::uint64_t jni_calls() const noexcept { return jni_calls_; }

 private:
  enum class Dir { kSend, kRecv };
  Status jni_transfer(Dir dir, vm::Obj pin_target, std::byte* data,
                      std::size_t bytes, int peer, int tag);

  vm::Vm& vm_;
  vm::ManagedThread& thread_;
  mpi::Comm comm_;
  vm::JavaSerializer serializer_;
  std::uint64_t jni_calls_ = 0;
};

}  // namespace motor::baselines
