#include "baselines/native_pingpong.hpp"

#include <atomic>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "pal/clock.hpp"

namespace motor::baselines {

double run_pingpong_us(const PingPongSpec& spec, const RankSetup& setup,
                       const mpi::WorldConfig& world_config) {
  double total_us = 0.0;
  for (int repeat = 0; repeat < spec.repeats; ++repeat) {
    std::atomic<double> measured{0.0};
    mpi::World world(2, world_config);
    world.run([&](mpi::RankCtx& ctx) {
      IterationFn iteration = setup(ctx);
      mpi::barrier(ctx.comm_world());
      for (int i = 0; i < spec.warmup_iterations; ++i) iteration();
      mpi::barrier(ctx.comm_world());
      pal::Stopwatch sw;
      for (int i = 0; i < spec.timed_iterations; ++i) iteration();
      if (ctx.comm_world().rank() == 0) {
        measured.store(sw.elapsed_us() / spec.timed_iterations,
                       std::memory_order_relaxed);
      }
      mpi::barrier(ctx.comm_world());
    });
    total_us += measured.load(std::memory_order_relaxed);
  }
  return total_us / spec.repeats;
}

double native_pingpong_us(std::size_t buffer_bytes, PingPongSpec spec,
                          const mpi::WorldConfig& world_config) {
  return run_pingpong_us(spec, [buffer_bytes](mpi::RankCtx& ctx) {
    auto buffer = std::make_shared<std::vector<std::uint8_t>>(
        buffer_bytes, static_cast<std::uint8_t>(ctx.world_rank()));
    mpi::Comm* comm = &ctx.comm_world();
    const int me = comm->rank();
    const int peer = 1 - me;
    return IterationFn([buffer, comm, me, peer] {
      if (me == 0) {
        mpi::send(*comm, buffer->data(), buffer->size(), peer, 0);
        mpi::recv(*comm, buffer->data(), buffer->size(), peer, 0);
      } else {
        mpi::recv(*comm, buffer->data(), buffer->size(), peer, 0);
        mpi::send(*comm, buffer->data(), buffer->size(), peer, 0);
      }
    });
  }, world_config);
}

}  // namespace motor::baselines
