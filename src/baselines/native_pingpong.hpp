// The native C++ baseline and the shared ping-pong harness used by the
// Figure 9 / Figure 10 benchmarks (paper §8).
//
// Methodology follows the paper exactly: "Each experiment performed 200
// iterations, the last 100 of which were timed. ... Each buffer size was
// tested three times. The average time in microseconds per iteration was
// calculated for all three experiments." A single node is used — the
// paper's evaluation isolates MPI-implementation cost from transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "mpi/world.hpp"

namespace motor::baselines {

struct PingPongSpec {
  int warmup_iterations = 100;
  int timed_iterations = 100;
  int repeats = 3;  // experiments averaged
};

/// One round trip of the ping-pong on one rank (rank 0 sends first).
using IterationFn = std::function<void()>;

/// Per-rank setup: build buffers/VMs/bindings, return the iteration body.
using RankSetup = std::function<IterationFn(mpi::RankCtx&)>;

/// Run the paper's timing protocol around `setup` on a fresh two-rank
/// world per repeat; returns mean microseconds per round trip, averaged
/// over `repeats` experiments.
double run_pingpong_us(const PingPongSpec& spec, const RankSetup& setup,
                       const mpi::WorldConfig& world_config = mpi::WorldConfig{});

/// Native C++ over the MPI core: the fastest series in Figure 9.
/// Round-trips `buffer_bytes` between two ranks; returns us/iteration.
double native_pingpong_us(std::size_t buffer_bytes,
                          PingPongSpec spec = PingPongSpec{},
                          const mpi::WorldConfig& world_config = mpi::WorldConfig{});

}  // namespace motor::baselines
