#include "baselines/pure_managed.hpp"

#include "vm/handles.hpp"

#include "mpi/pt2pt.hpp"

namespace motor::baselines {

namespace {

/// Managed array accessors with the bounds-check + tag-dispatch shape the
/// interpreter's ldelem/stelem path has. Marked noinline so the per-element
/// call cost is not optimized away — this IS the measured inefficiency.
[[gnu::noinline]] std::uint8_t managed_load(vm::Obj arr, std::int64_t i) {
  MOTOR_CHECK(i >= 0 && i < vm::array_length(arr), "index out of range");
  return vm::get_element<std::uint8_t>(arr, i);
}

[[gnu::noinline]] void managed_store(vm::Obj arr, std::int64_t i,
                                     std::uint8_t v) {
  MOTOR_CHECK(i >= 0 && i < vm::array_length(arr), "index out of range");
  vm::set_element(arr, i, v);
}

}  // namespace

PureManagedCommunicator::PureManagedCommunicator(vm::Vm& vm,
                                                 vm::ManagedThread& thread,
                                                 mpi::Comm comm)
    : vm_(vm), thread_(thread), comm_(std::move(comm)) {}

Status PureManagedCommunicator::send(vm::Obj byte_array, int dst, int tag) {
  if (byte_array == nullptr || !vm::obj_mt(byte_array)->is_array()) {
    return Status(ErrorCode::kTypeError, "pure-managed send needs an array");
  }
  const std::int64_t n = vm::array_length(byte_array);

  // Managed staging copy, element by element (poll-safe: roots held).
  vm::GcRoot src_root(thread_, byte_array);
  const vm::MethodTable* bytes_mt =
      vm_.types().primitive_array(vm::ElementKind::kUInt8, 1);
  vm::GcRoot staging_root(thread_, vm_.heap().alloc_array(bytes_mt, n));
  for (std::int64_t i = 0; i < n; ++i) {
    managed_store(staging_root.get(), i, managed_load(src_root.get(), i));
    ++element_copies_;
    if ((i & 0x3FF) == 0) thread_.poll_gc();
  }

  // The staging array may move at any poll; hand the transport stable
  // native memory instead (one more copy — the pure-managed tax).
  std::vector<std::byte> wire(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    wire[static_cast<std::size_t>(i)] =
        static_cast<std::byte>(managed_load(staging_root.get(), i));
    ++element_copies_;
  }
  return Status(mpi::send(comm_, wire.data(), wire.size(), dst, tag,
                          [this] { thread_.poll_gc(); }));
}

Status PureManagedCommunicator::recv(vm::Obj byte_array, int src, int tag) {
  if (byte_array == nullptr || !vm::obj_mt(byte_array)->is_array()) {
    return Status(ErrorCode::kTypeError, "pure-managed recv needs an array");
  }
  vm::GcRoot dst_root(thread_, byte_array);
  const std::int64_t n = vm::array_length(byte_array);
  std::vector<std::byte> wire(static_cast<std::size_t>(n));
  ErrorCode err = mpi::recv(comm_, wire.data(), wire.size(), src, tag,
                            nullptr, [this] { thread_.poll_gc(); });
  if (err != ErrorCode::kSuccess) return Status(err);
  for (std::int64_t i = 0; i < n; ++i) {
    managed_store(dst_root.get(), i,
                  static_cast<std::uint8_t>(wire[static_cast<std::size_t>(i)]));
    ++element_copies_;
    if ((i & 0x3FF) == 0) thread_.poll_gc();
  }
  return Status::ok();
}

}  // namespace motor::baselines
