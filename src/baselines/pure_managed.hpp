// A pure-managed MPI in the JMPI/jmpi mould (paper §2.1): the library
// runs ENTIRELY as managed code over managed communication primitives —
// fully portable, but with no access to the native transport, so every
// payload byte moves through managed byte-array accessors.
//
// "Pure managed implementations are portable but suffer from
// inefficiency ... Efficient MPI implementations require direct access to
// the underlying operating system or interconnect, which a pure Java or
// .NET implementation is unable to provide" (§2.1-2.2). The element-wise
// managed copies below are that inefficiency, executed for real.
#pragma once

#include "mpi/comm.hpp"
#include "vm/vm.hpp"

namespace motor::baselines {

class PureManagedCommunicator {
 public:
  PureManagedCommunicator(vm::Vm& vm, vm::ManagedThread& thread,
                          mpi::Comm comm);

  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int size() const { return comm_.size(); }

  /// Byte-array transport through a managed staging buffer: each element
  /// crosses a managed accessor (bounds check + tagged value), and the
  /// staging array is a fresh managed allocation per operation — the
  /// structural costs of a runtime-hosted MPI.
  Status send(vm::Obj byte_array, int dst, int tag);
  Status recv(vm::Obj byte_array, int src, int tag);

  [[nodiscard]] std::uint64_t managed_element_copies() const noexcept {
    return element_copies_;
  }

 private:
  vm::Vm& vm_;
  vm::ManagedThread& thread_;
  mpi::Comm comm_;
  std::uint64_t element_copies_ = 0;
};

}  // namespace motor::baselines
