#include "common/buffer.hpp"

// ByteBuffer is header-only; this TU anchors the library target.
namespace motor {}
