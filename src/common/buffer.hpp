// Byte-buffer primitives used throughout the transport, MPI core and
// serializers. ByteBuffer is a growable owning buffer with explicit
// little-endian scalar accessors (the wire format is defined, not
// host-dependent, so serialized representations are comparable in tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace motor {

using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

inline ByteSpan as_bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::byte*>(p), n};
}
inline MutableByteSpan as_writable_bytes_of(void* p, std::size_t n) {
  return {static_cast<std::byte*>(p), n};
}

/// Growable owning byte buffer with a read cursor. Writers append at the
/// end; readers consume from the cursor. Scalars are stored little-endian.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve_bytes) { reserve(reserve_bytes); }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return data_.capacity();
  }
  /// Number of capacity-increasing events (storage reallocations) over the
  /// buffer's lifetime, including explicit reserve()/resize() growth.
  /// Survives clear() — pooled buffers accumulate across reuse, which is
  /// exactly why warm pool buffers stop growing at all.
  [[nodiscard]] std::uint64_t growth_count() const noexcept {
    return growths_;
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] const std::byte* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::byte* data() noexcept { return data_.data(); }
  [[nodiscard]] ByteSpan span() const noexcept { return {data_.data(), data_.size()}; }

  void clear() noexcept {
    data_.clear();
    cursor_ = 0;
  }
  void reserve(std::size_t n) {
    note_growth(n);
    data_.reserve(n);
  }
  void resize(std::size_t n) {
    note_growth(n);
    data_.resize(n);
  }

  // ---- writing ----
  void append(ByteSpan bytes) {
    note_growth(data_.size() + bytes.size());
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void append_raw(const void* p, std::size_t n) {
    append(as_bytes_of(p, n));
  }
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte tmp[sizeof(T)];
    std::memcpy(tmp, &value, sizeof(T));
    append({tmp, sizeof(T)});
  }
  void put_u8(std::uint8_t v) { put(v); }
  void put_u16(std::uint16_t v) { put(v); }
  void put_u32(std::uint32_t v) { put(v); }
  void put_u64(std::uint64_t v) { put(v); }
  void put_i32(std::int32_t v) { put(v); }
  void put_i64(std::int64_t v) { put(v); }

  /// Overwrite previously written bytes (e.g. back-patching a length slot).
  void overwrite(std::size_t offset, ByteSpan bytes) {
    MOTOR_CHECK(offset + bytes.size() <= data_.size(), "overwrite out of range");
    std::memcpy(data_.data() + offset, bytes.data(), bytes.size());
  }
  template <typename T>
  void overwrite_at(std::size_t offset, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte tmp[sizeof(T)];
    std::memcpy(tmp, &value, sizeof(T));
    overwrite(offset, {tmp, sizeof(T)});
  }

  // ---- reading ----
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  void seek(std::size_t pos) {
    MOTOR_CHECK(pos <= data_.size(), "seek past end");
    cursor_ = pos;
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - cursor_;
  }

  Status read(MutableByteSpan out) {
    if (out.size() > remaining()) {
      return Status(ErrorCode::kSerialization, "buffer underrun");
    }
    std::memcpy(out.data(), data_.data() + cursor_, out.size());
    cursor_ += out.size();
    return Status::ok();
  }
  template <typename T>
  Status get(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte tmp[sizeof(T)];
    MOTOR_RETURN_IF_ERROR(read({tmp, sizeof(T)}));
    std::memcpy(&out, tmp, sizeof(T));
    return Status::ok();
  }
  /// Unchecked get for hot paths; fatals on underrun.
  template <typename T>
  T get_or_die() {
    T v{};
    Status st = get(v);
    MOTOR_CHECK(st.is_ok(), "buffer underrun");
    return v;
  }

 private:
  void note_growth(std::size_t needed) {
    if (needed > data_.capacity()) ++growths_;
  }

  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
  std::uint64_t growths_ = 0;
};

}  // namespace motor
