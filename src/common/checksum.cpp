#include "common/checksum.hpp"

#include <array>
#include <cstring>

namespace motor {

namespace {

// Reflected CRC-32C, polynomial 0x1EDC6F41 (reversed: 0x82F63B78).
constexpr std::uint32_t kPolyReversed = 0x82F63B78u;

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] advances a byte that sits k positions deeper in the
// 8-byte block, letting the hot loop fold 8 bytes per iteration with
// eight independent loads instead of a serial byte chain.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPolyReversed ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kT = make_tables();

}  // namespace

std::uint32_t crc32c(ByteSpan bytes, std::uint32_t seed) noexcept {
  // The pre/post inversion keeps the incremental property: the seed is a
  // finished CRC, un-inverted here and re-inverted on return.
  std::uint32_t crc = ~seed;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();

  while (n >= 8) {
    std::uint64_t block;
    std::memcpy(&block, p, 8);
    block ^= crc;  // fold the running CRC into the low 4 bytes
    crc = kT[7][block & 0xFF] ^ kT[6][(block >> 8) & 0xFF] ^
          kT[5][(block >> 16) & 0xFF] ^ kT[4][(block >> 24) & 0xFF] ^
          kT[3][(block >> 32) & 0xFF] ^ kT[2][(block >> 40) & 0xFF] ^
          kT[1][(block >> 48) & 0xFF] ^ kT[0][(block >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kT[0][(crc ^ static_cast<std::uint8_t>(*p++)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace motor
