// CRC-32C (Castagnoli) — the frame-integrity primitive of the reliability
// layer. Software table implementation: portable, no SSE4.2 requirement,
// and fast enough that the cost is dominated by the memory traffic it
// rides along with. Incremental: feed fragments in order, seeding each
// call with the previous return value, and the result equals the CRC of
// the concatenation — which is exactly what the scatter-gather send path
// needs (checksum the gather list without flattening it).
#pragma once

#include <cstdint>

#include "common/buffer.hpp"

namespace motor {

/// CRC-32C of `bytes`, continuing from `seed` (0 for a fresh checksum).
/// crc32c(b, crc32c(a)) == crc32c(a ++ b).
std::uint32_t crc32c(ByteSpan bytes, std::uint32_t seed = 0) noexcept;

}  // namespace motor
