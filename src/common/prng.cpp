#include "common/prng.hpp"

namespace motor {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Prng::reseed(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Prng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Prng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Prng::next_bool(double p) noexcept { return next_double() < p; }

}  // namespace motor
