// Deterministic PRNG (splitmix64 + xoshiro256**) for workload generation.
// Tests and benchmarks must be reproducible, so no std::random_device here.
#pragma once

#include <cstdint>

namespace motor {

class Prng {
 public:
  explicit Prng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli with probability p.
  bool next_bool(double p = 0.5) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace motor
