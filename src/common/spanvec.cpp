#include "common/spanvec.hpp"

#include <algorithm>
#include <cstring>

namespace motor {

SpanVec SpanVec::slice(std::size_t offset, std::size_t len) const {
  SpanVec out;
  std::size_t skip = offset;
  std::size_t want = std::min(len, total_ > offset ? total_ - offset : 0);
  for (ByteSpan p : parts_) {
    if (want == 0) break;
    if (skip >= p.size()) {
      skip -= p.size();
      continue;
    }
    const std::size_t take = std::min(p.size() - skip, want);
    out.append(p.subspan(skip, take));
    skip = 0;
    want -= take;
  }
  return out;
}

std::size_t SpanVec::copy_to(MutableByteSpan out, std::size_t offset) const {
  std::size_t skip = offset;
  std::size_t copied = 0;
  for (ByteSpan p : parts_) {
    if (copied == out.size()) break;
    if (skip >= p.size()) {
      skip -= p.size();
      continue;
    }
    const std::size_t take =
        std::min(p.size() - skip, out.size() - copied);
    std::memcpy(out.data() + copied, p.data() + skip, take);
    skip = 0;
    copied += take;
  }
  return copied;
}

}  // namespace motor
