// SpanVec: an ordered gather list of read-only byte spans describing one
// logical message without flattening it — the iovec of the data path.
//
// The transport accepts a SpanVec wherever it used to accept a single
// contiguous payload, so producers (the device's packet writer, the Motor
// serializer's split representation) can hand header + payload fragments
// to the channel in one operation with zero staging copies. A SpanVec
// owns only the span *descriptors*; the bytes belong to the producer,
// which must keep them valid (for managed heap memory: pinned) until the
// transfer drains.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/buffer.hpp"

namespace motor {

class SpanVec {
 public:
  SpanVec() = default;
  explicit SpanVec(ByteSpan single) { append(single); }
  SpanVec(std::initializer_list<ByteSpan> parts) {
    for (ByteSpan p : parts) append(p);
  }

  /// Append one fragment. Empty fragments are dropped (they carry no
  /// bytes and would only slow the per-part write loops).
  void append(ByteSpan part) {
    if (part.empty()) return;
    parts_.push_back(part);
    total_ += part.size();
  }

  void clear() noexcept {
    parts_.clear();
    total_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t part_count() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return total_; }
  [[nodiscard]] std::span<const ByteSpan> parts() const noexcept {
    return parts_;
  }

  /// Gather list covering bytes [offset, offset + len) of the logical
  /// message. Used to carve rendezvous DATA packets out of a message
  /// without touching the underlying bytes.
  [[nodiscard]] SpanVec slice(std::size_t offset, std::size_t len) const;

  /// Flatten bytes [offset, offset + out.size()) into `out`; returns the
  /// number of bytes copied (less than out.size() only past the end).
  /// This is the staging fallback — hot paths should hand the parts to
  /// the channel instead.
  std::size_t copy_to(MutableByteSpan out, std::size_t offset = 0) const;

 private:
  std::vector<ByteSpan> parts_;
  std::size_t total_ = 0;
};

}  // namespace motor
