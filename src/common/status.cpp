#include "common/status.hpp"

namespace motor {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kSuccess: return "kSuccess";
    case ErrorCode::kBufferError: return "kBufferError";
    case ErrorCode::kCountError: return "kCountError";
    case ErrorCode::kTypeError: return "kTypeError";
    case ErrorCode::kTagError: return "kTagError";
    case ErrorCode::kCommError: return "kCommError";
    case ErrorCode::kRankError: return "kRankError";
    case ErrorCode::kRequestError: return "kRequestError";
    case ErrorCode::kTruncate: return "kTruncate";
    case ErrorCode::kPending: return "kPending";
    case ErrorCode::kNoMem: return "kNoMem";
    case ErrorCode::kIntegrity: return "kIntegrity";
    case ErrorCode::kSerialization: return "kSerialization";
    case ErrorCode::kStackOverflow: return "kStackOverflow";
    case ErrorCode::kCancelled: return "kCancelled";
    case ErrorCode::kNotImplemented: return "kNotImplemented";
    case ErrorCode::kInternal: return "kInternal";
  }
  return "<unknown>";
}

std::string Status::to_string() const {
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void fatal(std::string_view subsystem, std::string_view what) {
  std::string msg = "[motor/";
  msg.append(subsystem);
  msg += "] fatal: ";
  msg.append(what);
  throw FatalError(msg);
}

}  // namespace motor
