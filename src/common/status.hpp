// Status/error kernel shared by every Motor subsystem.
//
// Two error regimes coexist in this codebase, mirroring the systems it
// reproduces:
//   * MPI-facing entry points return `ErrorCode` (MPI-style int results);
//   * internal invariant violations (heap corruption, protocol bugs) throw
//     `FatalError` — in a managed runtime these would tear down the process,
//     so they are not meant to be caught except by tests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace motor {

/// MPI-flavoured error codes. Success is zero, as in every MPI ABI.
enum class ErrorCode : int {
  kSuccess = 0,
  kBufferError,       // bad buffer pointer / size
  kCountError,        // negative or overflowing count
  kTypeError,         // datatype mismatch or integrity-violating type
  kTagError,          // tag out of range
  kCommError,         // bad communicator
  kRankError,         // peer rank out of range
  kRequestError,      // invalid / already-freed request
  kTruncate,          // receive buffer smaller than incoming message
  kPending,           // operation not yet complete
  kNoMem,             // allocation failure
  kIntegrity,         // would break the managed object model
  kSerialization,     // (de)serialization failure
  kStackOverflow,     // recursion limit exceeded (Java serializer parity)
  kCancelled,         // request was cancelled
  kNotImplemented,
  kInternal,
};

/// Human-readable name for an error code (stable, for logs and tests).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A result status: an error code plus optional context message.
class Status {
 public:
  Status() noexcept : code_(ErrorCode::kSuccess) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == ErrorCode::kSuccess;
  }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "kSuccess" or "kTruncate: buffer too small (16 < 64)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Thrown on unrecoverable runtime-integrity violations. A real VM would
/// FailFast; tests assert on the message instead.
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void fatal(std::string_view subsystem, std::string_view what);

}  // namespace motor

/// Invariant check that survives NDEBUG: these guard managed-heap integrity,
/// which must never be compiled out.
#define MOTOR_CHECK(cond, what)                          \
  do {                                                   \
    if (!(cond)) [[unlikely]] {                          \
      ::motor::fatal("check", std::string(what) +        \
                                  " [" #cond "] at " +   \
                                  __FILE__ + ":" +       \
                                  std::to_string(__LINE__)); \
    }                                                    \
  } while (0)

#define MOTOR_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::motor::Status st_ = (expr);               \
    if (!st_.is_ok()) return st_;               \
  } while (0)
