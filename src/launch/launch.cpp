#include "launch/launch.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <unordered_map>

#include <arpa/inet.h>
#include <csignal>
#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/status.hpp"
#include "pal/clock.hpp"
#include "pal/thread.hpp"
#include "transport/shm_channel.hpp"
#include "transport/socket_channel.hpp"

namespace motor::launch {

namespace {

constexpr std::uint64_t kWireUpTimeoutNs = 30ull * 1000 * 1000 * 1000;

std::string env_or(const char* key, const std::string& fallback) {
  const char* v = std::getenv(key);
  return v != nullptr ? std::string(v) : fallback;
}

std::string sock_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".sock";
}

std::string port_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".port";
}

std::string shm_link_name(const std::string& prefix, int from, int to) {
  return prefix + "." + std::to_string(from) + "." + std::to_string(to);
}

[[noreturn]] void fatal(const std::string& what) {
  throw FatalError("launch: " + what);
}

// ---- blocking-with-deadline socket helpers (rendezvous only; the
// channels themselves are non-blocking) ----

void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    fatal("hello write failed");
  }
}

bool read_all_deadline(int fd, void* buf, std::size_t n,
                       std::uint64_t deadline_ns) {
  char* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    pollfd pf{fd, POLLIN, 0};
    const int pr = ::poll(&pf, 1, 50);
    if (pr < 0 && errno != EINTR) return false;
    if (pr <= 0) {
      if (pal::monotonic_ns() >= deadline_ns) return false;
      continue;
    }
    const ssize_t r = ::read(fd, p + off, n - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or error mid-hello
  }
  return true;
}

int make_unix_listener(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MOTOR_CHECK(fd >= 0, "launch: socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MOTOR_CHECK(path.size() < sizeof(addr.sun_path),
              "launch: rendezvous path too long for AF_UNIX");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  MOTOR_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "launch: bind(AF_UNIX) failed");
  MOTOR_CHECK(::listen(fd, backlog) == 0, "launch: listen failed");
  return fd;
}

int make_tcp_listener(const std::string& dir, int rank, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MOTOR_CHECK(fd >= 0, "launch: socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  MOTOR_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "launch: bind(127.0.0.1) failed");
  MOTOR_CHECK(::listen(fd, backlog) == 0, "launch: listen failed");
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  MOTOR_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                            &blen) == 0,
              "launch: getsockname failed");
  // Publish the port via atomic rename so readers never see a torn file.
  const std::string tmp = port_path(dir, rank) + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  MOTOR_CHECK(f != nullptr, "launch: cannot write port file");
  std::fprintf(f, "%u\n", static_cast<unsigned>(ntohs(bound.sin_port)));
  std::fclose(f);
  MOTOR_CHECK(::rename(tmp.c_str(), port_path(dir, rank).c_str()) == 0,
              "launch: port file rename failed");
  return fd;
}

int connect_unix_deadline(const std::string& path, std::uint64_t deadline_ns) {
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    MOTOR_CHECK(fd >= 0, "launch: socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (errno != ENOENT && errno != ECONNREFUSED && errno != EINTR) {
      fatal("connect(AF_UNIX) failed");
    }
    if (pal::monotonic_ns() >= deadline_ns) {
      fatal("timed out connecting to " + path);
    }
    pal::Thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int connect_tcp_deadline(const std::string& dir, int peer,
                         std::uint64_t deadline_ns) {
  // First wait for the peer's port file.
  unsigned port = 0;
  for (;;) {
    FILE* f = std::fopen(port_path(dir, peer).c_str(), "r");
    if (f != nullptr) {
      const bool got = std::fscanf(f, "%u", &port) == 1;
      std::fclose(f);
      if (got && port != 0) break;
    }
    if (pal::monotonic_ns() >= deadline_ns) {
      fatal("timed out waiting for rank " + std::to_string(peer) + " port");
    }
    pal::Thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    MOTOR_CHECK(fd >= 0, "launch: socket(AF_INET) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    if (errno != ECONNREFUSED && errno != EINTR) {
      fatal("connect(127.0.0.1) failed");
    }
    if (pal::monotonic_ns() >= deadline_ns) {
      fatal("timed out connecting to rank " + std::to_string(peer));
    }
    pal::Thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int accept_deadline(int listen_fd, std::uint64_t deadline_ns) {
  for (;;) {
    pollfd pf{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pf, 1, 50);
    if (pr > 0) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) return fd;
      if (errno != EINTR && errno != EAGAIN) fatal("accept failed");
    } else if (pr < 0 && errno != EINTR) {
      fatal("poll(listener) failed");
    }
    if (pal::monotonic_ns() >= deadline_ns) {
      fatal("timed out accepting peer connections");
    }
  }
}

/// One full-duplex socket per unordered pair: connect to lower ranks
/// (hello carries our rank), accept from higher ranks. Returns peer -> fd.
std::unordered_map<int, int> wire_up_sockets(const RankEnv& env) {
  const bool tcp = env.transport == "tcp";
  const std::uint64_t deadline = pal::monotonic_ns() + kWireUpTimeoutNs;
  const int listen_fd =
      tcp ? make_tcp_listener(env.rendezvous_dir, env.rank, env.world_size)
          : make_unix_listener(sock_path(env.rendezvous_dir, env.rank),
                               env.world_size);

  std::unordered_map<int, int> fds;
  for (int peer = 0; peer < env.rank; ++peer) {
    const int fd =
        tcp ? connect_tcp_deadline(env.rendezvous_dir, peer, deadline)
            : connect_unix_deadline(sock_path(env.rendezvous_dir, peer),
                                    deadline);
    const std::uint32_t hello = static_cast<std::uint32_t>(env.rank);
    write_all(fd, &hello, sizeof(hello));
    fds.emplace(peer, fd);
  }
  for (int n = env.rank + 1; n < env.world_size; ++n) {
    const int fd = accept_deadline(listen_fd, deadline);
    if (tcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    std::uint32_t hello = 0;
    if (!read_all_deadline(fd, &hello, sizeof(hello), deadline)) {
      fatal("peer hello never arrived");
    }
    const int peer = static_cast<int>(hello);
    MOTOR_CHECK(peer > env.rank && peer < env.world_size && !fds.count(peer),
                "launch: bad hello rank");
    fds.emplace(peer, fd);
  }
  ::close(listen_fd);
  if (!tcp) ::unlink(sock_path(env.rendezvous_dir, env.rank).c_str());
  return fds;
}

/// Key for the prebuilt-channel map the link factory consumes from.
std::uint64_t link_key(int from, int to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

using ChannelMap =
    std::unordered_map<std::uint64_t, std::unique_ptr<transport::Channel>>;

/// Build both directed channels for every peer, eagerly, into a map the
/// fabric's link factory hands out. Eager build is what makes rendezvous
/// synchronous: when this returns, every pair connection exists.
std::shared_ptr<ChannelMap> build_channels(const RankEnv& env) {
  auto map = std::make_shared<ChannelMap>();
  if (env.transport == "shm") {
    // Producer side first (create never blocks), then attach to every
    // peer's ring with a deadline — no ordering deadlock possible.
    std::vector<std::unique_ptr<transport::ShmChannel>> mine;
    for (int peer = 0; peer < env.world_size; ++peer) {
      if (peer == env.rank) continue;
      (*map)[link_key(env.rank, peer)] = transport::ShmChannel::create(
          shm_link_name(env.shm_prefix, env.rank, peer),
          env.channel_capacity, transport::ShmChannel::Role::kProducer);
    }
    for (int peer = 0; peer < env.world_size; ++peer) {
      if (peer == env.rank) continue;
      auto in = transport::ShmChannel::open(
          shm_link_name(env.shm_prefix, peer, env.rank),
          transport::ShmChannel::Role::kConsumer, kWireUpTimeoutNs);
      if (!in) fatal("shm ring from rank " + std::to_string(peer) +
                     " never appeared");
      (*map)[link_key(peer, env.rank)] = std::move(in);
    }
    return map;
  }
  std::unordered_map<int, int> fds = wire_up_sockets(env);
  for (auto& [peer, fd] : fds) {
    const int wdup = ::dup(fd);
    MOTOR_CHECK(wdup >= 0, "launch: dup failed");
    // Outbound channel drives the write half via a dup; inbound owns the
    // original and reads. shutdown(SHUT_WR) on the dup still reaches the
    // peer as EOF — dup shares the socket, which is exactly the close()
    // semantics a directed channel wants.
    (*map)[link_key(env.rank, peer)] =
        std::make_unique<transport::SocketChannel>(wdup, -1);
    (*map)[link_key(peer, env.rank)] =
        std::make_unique<transport::SocketChannel>(-1, fd);
  }
  return map;
}

}  // namespace

bool in_rank_process() { return std::getenv("MOTOR_RANK") != nullptr; }

RankEnv rank_env() {
  RankEnv env;
  const char* rank = std::getenv("MOTOR_RANK");
  MOTOR_CHECK(rank != nullptr, "rank_env: MOTOR_RANK not set");
  env.rank = std::atoi(rank);
  env.world_size = std::atoi(env_or("MOTOR_WORLD_SIZE", "1").c_str());
  env.transport = env_or("MOTOR_TRANSPORT", "socket");
  env.rendezvous_dir = env_or("MOTOR_RENDEZVOUS_DIR", "/tmp");
  env.shm_prefix = env_or("MOTOR_SHM_PREFIX", "/motor_shm");
  env.channel_capacity = static_cast<std::size_t>(
      std::atoll(env_or("MOTOR_CHANNEL_CAP", "1048576").c_str()));
  MOTOR_CHECK(env.rank >= 0 && env.rank < env.world_size,
              "rank_env: rank out of range");
  MOTOR_CHECK(env.transport == "socket" || env.transport == "tcp" ||
                  env.transport == "shm",
              "rank_env: unknown MOTOR_TRANSPORT");
  return env;
}

int run_rank(const mpi::WorldConfig& base,
             const std::function<void(mpi::RankCtx&)>& rank_main) {
  try {
    const RankEnv env = rank_env();
    std::shared_ptr<ChannelMap> channels = build_channels(env);

    mpi::WorldConfig config = base;
    config.link_factory =
        [channels](int from, int to) -> std::unique_ptr<transport::Channel> {
      auto it = channels->find(link_key(from, to));
      if (it == channels->end()) return nullptr;  // fall back (loopback etc.)
      return std::move(it->second);
    };

    mpi::World world(env.world_size, config);
    // Materialise this rank's full row/column up front: the prebuilt
    // channels move into the fabric and the device's first snapshot sees
    // every peer (no lazy wire-up races across processes).
    for (int peer = 0; peer < env.world_size; ++peer) {
      if (peer == env.rank) continue;
      world.fabric().link(env.rank, peer);
      world.fabric().link(peer, env.rank);
    }
    world.run_rank(env.rank, rank_main);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "motor rank failed: %s\n", e.what());
    return 1;
  }
}

LaunchResult launch_world(const LaunchConfig& config) {
  MOTOR_CHECK(config.n_ranks >= 1, "launch_world: need at least one rank");
  MOTOR_CHECK(!config.program.empty(), "launch_world: empty program argv");
  MOTOR_CHECK(config.transport == "socket" || config.transport == "tcp" ||
                  config.transport == "shm",
              "launch_world: unknown transport");

  std::string dir = config.rendezvous_dir;
  bool own_dir = false;
  if (dir.empty()) {
    char tmpl[] = "/tmp/motor.XXXXXX";
    MOTOR_CHECK(::mkdtemp(tmpl) != nullptr, "launch_world: mkdtemp failed");
    dir = tmpl;
    own_dir = true;
  }
  const std::string shm_prefix =
      "/motor_" + std::to_string(pal::current_pid()) + "_" +
      std::to_string(pal::monotonic_ns() % 1000000);

  LaunchResult result;
  result.ranks.resize(static_cast<std::size_t>(config.n_ranks));
  std::vector<pal::Process> procs;
  procs.reserve(static_cast<std::size_t>(config.n_ranks));
  for (int r = 0; r < config.n_ranks; ++r) {
    std::vector<std::string> env = config.extra_env;
    env.push_back("MOTOR_RANK=" + std::to_string(r));
    env.push_back("MOTOR_WORLD_SIZE=" + std::to_string(config.n_ranks));
    env.push_back("MOTOR_TRANSPORT=" + config.transport);
    env.push_back("MOTOR_RENDEZVOUS_DIR=" + dir);
    env.push_back("MOTOR_SHM_PREFIX=" + shm_prefix);
    env.push_back("MOTOR_CHANNEL_CAP=" +
                  std::to_string(config.channel_capacity));
    procs.push_back(pal::Process::spawn(config.program, env));
    result.ranks[static_cast<std::size_t>(r)].rank = r;
    result.ranks[static_cast<std::size_t>(r)].pid = procs.back().pid();
  }

  // Monitor: reap as ranks finish; on the first failure give survivors a
  // grace window to observe the dead peer (kCommError) and exit cleanly,
  // then escalate SIGTERM -> SIGKILL. The watchdog bounds everything.
  const std::uint64_t start = pal::monotonic_ns();
  std::uint64_t first_fail_ns = 0;
  bool sent_term = false;
  bool sent_kill = false;
  for (;;) {
    int running = 0;
    for (int r = 0; r < config.n_ranks; ++r) {
      pal::Process& p = procs[static_cast<std::size_t>(r)];
      if (!p.running()) continue;
      auto st = p.try_wait();
      if (!st.has_value()) {
        ++running;
        continue;
      }
      result.ranks[static_cast<std::size_t>(r)].status = *st;
      if (!st->ok() && first_fail_ns == 0) first_fail_ns = pal::monotonic_ns();
    }
    if (running == 0) break;

    const std::uint64_t now = pal::monotonic_ns();
    if (config.watchdog_ns != 0 && now - start > config.watchdog_ns) {
      result.timed_out = true;
      for (auto& p : procs) p.kill(SIGKILL);
      for (auto& p : procs) p.wait();
      for (int r = 0; r < config.n_ranks; ++r) {
        auto st = procs[static_cast<std::size_t>(r)].try_wait();
        if (st) result.ranks[static_cast<std::size_t>(r)].status = *st;
      }
      break;
    }
    if (first_fail_ns != 0) {
      if (!sent_term && now - first_fail_ns > config.fail_grace_ns) {
        for (auto& p : procs) p.kill(SIGTERM);
        sent_term = true;
        first_fail_ns = now;  // reuse as the SIGTERM timestamp
      } else if (sent_term && !sent_kill &&
                 now - first_fail_ns > config.term_grace_ns) {
        for (auto& p : procs) p.kill(SIGKILL);
        sent_kill = true;
      }
    }
    pal::Thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Rendezvous cleanup: sockets/port files the ranks left behind, the
  // mkdtemp dir if we made it, and every possible shm segment (a killed
  // rank never runs its destructors).
  for (int r = 0; r < config.n_ranks; ++r) {
    ::unlink(sock_path(dir, r).c_str());
    ::unlink(port_path(dir, r).c_str());
  }
  if (own_dir) ::rmdir(dir.c_str());
  if (config.transport == "shm") {
    for (int i = 0; i < config.n_ranks; ++i) {
      for (int j = 0; j < config.n_ranks; ++j) {
        if (i != j) pal::SharedMemory::unlink(shm_link_name(shm_prefix, i, j));
      }
    }
  }

  // Per-rank report + exit code.
  for (const RankReport& rr : result.ranks) {
    result.summary += "rank " + std::to_string(rr.rank) + ": pid " +
                      std::to_string(rr.pid);
    if (rr.status.exited) {
      result.summary += " exit " + std::to_string(rr.status.exit_code);
    } else if (rr.status.signalled) {
      result.summary += " signal " + std::to_string(rr.status.term_signal);
    } else {
      result.summary += " unknown";
    }
    result.summary += "\n";
    if (!rr.status.ok() && result.exit_code == 0) {
      result.exit_code = rr.status.exited ? rr.status.exit_code : 1;
    }
  }
  if (result.timed_out) {
    result.summary += "launch: watchdog expired, world killed\n";
    if (result.exit_code == 0) result.exit_code = 1;
  }
  return result;
}

}  // namespace motor::launch
