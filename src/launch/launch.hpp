// Cross-process world bootstrap — the MatlabMPI-style minimum: a launcher
// that spawns one OS process per rank, an environment contract telling
// each rank who it is, and a file/name rendezvous that wires every rank
// pair with a real transport (AF_UNIX or TCP socket, or a POSIX shm
// ring). The MPI/Motor stack above is transport-agnostic, so once the
// fabric's link factory hands out these channels, eager/rendezvous,
// gather sends, reliability and the collectives run unchanged across
// process boundaries.
//
// Environment contract (set by the launcher, read by run_rank):
//   MOTOR_RANK            this process's world rank
//   MOTOR_WORLD_SIZE      number of ranks
//   MOTOR_TRANSPORT       "socket" (AF_UNIX) | "tcp" | "shm"
//   MOTOR_RENDEZVOUS_DIR  directory for listener sockets / port files
//   MOTOR_SHM_PREFIX      per-launch shm name prefix (shm transport)
//   MOTOR_CHANNEL_CAP     shm ring capacity in bytes
//
// Rendezvous protocol:
//   socket/tcp  every rank first publishes a listener (an AF_UNIX path
//               "rank<r>.sock", or an ephemeral TCP port written to
//               "rank<r>.port" via atomic rename), then connects to every
//               LOWER rank (retrying until the peer's listener appears)
//               and accepts from every HIGHER rank; the connector opens
//               with a 4-byte little-endian hello carrying its rank. One
//               full-duplex connection serves the pair: each directed
//               channel owns a dup()'d fd and uses one half.
//   shm         rank i creates segment "<prefix>.<i>.<j>" (it is the
//               producer) and opens "<prefix>.<j>.<i>" with retry.
//
// Failure semantics: any rank exiting non-zero (or by signal) fails the
// launch. The launcher leaves survivors a grace window to observe the
// dead peer themselves (broken links surface as kCommError through the
// device), then escalates SIGTERM -> SIGKILL, and always reports
// per-rank outcomes. A global watchdog bounds total wall time, so a
// wedged world can never hang the caller.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mpi/world.hpp"
#include "pal/process.hpp"

namespace motor::launch {

struct LaunchConfig {
  int n_ranks = 2;
  /// "socket" (AF_UNIX), "tcp" (127.0.0.1), or "shm".
  std::string transport = "socket";
  /// Ring capacity per directed shm link.
  std::size_t channel_capacity = 1 << 20;
  /// argv of the rank program (argv[0] = executable path). Every rank
  /// runs the same argv; ranks differentiate via MOTOR_RANK.
  std::vector<std::string> program;
  /// Extra "KEY=VALUE" entries for the rank environment.
  std::vector<std::string> extra_env;
  /// Rendezvous directory; empty = a fresh mkdtemp under /tmp, removed
  /// at teardown.
  std::string rendezvous_dir;
  /// After the first rank failure, how long survivors get to notice the
  /// dead peer and exit on their own before SIGTERM.
  std::uint64_t fail_grace_ns = 10ull * 1000 * 1000 * 1000;
  /// SIGTERM -> SIGKILL escalation gap.
  std::uint64_t term_grace_ns = 2ull * 1000 * 1000 * 1000;
  /// Global deadline for the whole world, 0 = none. On expiry every rank
  /// is killed and the launch reports a timeout.
  std::uint64_t watchdog_ns = 0;
};

struct RankReport {
  int rank = -1;
  std::int64_t pid = -1;
  pal::ExitStatus status;
};

struct LaunchResult {
  /// 0 when every rank exited 0 in time; otherwise the first failing
  /// rank's exit code (or 1 for signals/timeouts).
  int exit_code = 0;
  bool timed_out = false;
  std::vector<RankReport> ranks;
  /// Human-readable per-rank report (one line per rank).
  std::string summary;
};

/// Spawn `config.n_ranks` processes of `config.program`, monitor them to
/// completion (or failure/watchdog), tear down, clean up rendezvous
/// state, and report.
LaunchResult launch_world(const LaunchConfig& config);

// ---- rank-process side ----

/// True when this process was started by launch_world (MOTOR_RANK set).
bool in_rank_process();

/// The environment contract, parsed. Fatal if malformed.
struct RankEnv {
  int rank = 0;
  int world_size = 1;
  std::string transport;
  std::string rendezvous_dir;
  std::string shm_prefix;
  std::size_t channel_capacity = 1 << 20;
};
RankEnv rank_env();

/// Wire up this rank's links to every peer per the rendezvous protocol,
/// build the (per-process) World over them, and run `rank_main` as this
/// rank on the calling thread. `base` supplies device/channel tuning;
/// its link factory is overwritten. Returns the process exit code: 0 on
/// clean return, 1 on exception (printed to stderr).
int run_rank(const mpi::WorldConfig& base,
             const std::function<void(mpi::RankCtx&)>& rank_main);

}  // namespace motor::launch
