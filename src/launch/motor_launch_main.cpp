// motor_launch: spawn an N-rank Motor world as real OS processes.
//
//   motor_launch -n 4 --transport=shm -- ./my_rank_program arg1 arg2
//
// Everything after "--" is the rank program argv; each rank process reads
// the MOTOR_* environment (see launch/launch.hpp) and typically calls
// motor::launch::run_rank(). Exits with 0 when every rank exited 0,
// otherwise non-zero, after printing a per-rank report to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "launch/launch.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: motor_launch [-n RANKS] [--transport=socket|tcp|shm]\n"
      "                    [--capacity=BYTES] [--watchdog-ms=MS]\n"
      "                    -- PROGRAM [ARGS...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  motor::launch::LaunchConfig cfg;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--") {
      ++i;
      break;
    }
    if (a == "-n" && i + 1 < argc) {
      cfg.n_ranks = std::atoi(argv[++i]);
    } else if (a.rfind("--transport=", 0) == 0) {
      cfg.transport = a.substr(12);
    } else if (a.rfind("--capacity=", 0) == 0) {
      cfg.channel_capacity = static_cast<std::size_t>(
          std::atoll(a.substr(11).c_str()));
    } else if (a.rfind("--watchdog-ms=", 0) == 0) {
      cfg.watchdog_ns =
          static_cast<std::uint64_t>(std::atoll(a.substr(14).c_str())) *
          1'000'000ull;
    } else {
      usage();
      return 2;
    }
  }
  for (; i < argc; ++i) cfg.program.push_back(argv[i]);
  if (cfg.program.empty() || cfg.n_ranks < 1) {
    usage();
    return 2;
  }

  const motor::launch::LaunchResult result = motor::launch::launch_world(cfg);
  std::fprintf(stderr, "%s", result.summary.c_str());
  return result.exit_code;
}
