// Batched delivery hooks — the native-thread slice of MPDirect used by
// the parameter-server comm thread (src/ps).
//
// Contrast with oo_ops.cpp: the OO operations run on the managed rank
// thread under the FCall discipline (GC polls, pinning policy) and frame
// every transfer as size-message + payload-message. These hooks are the
// opposite corner: a dedicated native thread moving pooled native
// buffers, one wire message per batch with the framing inside the
// payload. No GC poll may run here — the calling thread owns no managed
// state — and no pinning is ever needed (§7.4/§7.5 static-buffer rule).
//
// Thread-safety contract: while a comm thread drives these hooks, it is
// the device's single driver; the managed owner thread must not issue
// operations on any communicator sharing the device until the comm
// thread is joined.
#include "motor/mp_direct.hpp"
#include "mpi/device.hpp"
#include "mpi/pt2pt.hpp"

namespace motor::mp {

MPRequest MPDirect::isend_batch(ByteSpan bytes, int dst, int tag) {
  mpi::Request req = mpi::isend(comm_, bytes.data(), bytes.size(), dst, tag);
  if (req != nullptr) {
    ++batch_stats_.batches_sent;
    batch_stats_.batch_bytes_sent += bytes.size();
  }
  return MPRequest{std::move(req)};
}

bool MPDirect::test_batch(MPRequest& request, MpStatus* status) {
  if (!request.valid()) return false;
  if (!comm_.device().test(request.req)) return false;
  fill_status(comm_, request.req, status);
  if (status != nullptr) status->error = request.req->error;
  return true;
}

bool MPDirect::try_recv_batch(ByteBuffer& into, int tag, MpStatus* status) {
  mpi::MsgStatus st;
  if (!mpi::iprobe(comm_, mpi::kAnySource, tag, &st)) {
    ++batch_stats_.probe_misses;
    return false;
  }
  ++batch_stats_.probe_hits;
  // Receive exactly the probed envelope: the directed (source, tag) pair
  // cannot match a different message because per-peer channels are FIFO
  // and this thread is the only receiver on the context.
  into.clear();
  into.resize(st.count_bytes);
  mpi::MsgStatus recv_st;
  const ErrorCode err = mpi::recv(comm_, into.data(), into.size(), st.source,
                                  st.tag, &recv_st);
  ++batch_stats_.batches_received;
  batch_stats_.batch_bytes_received += into.size();
  if (status != nullptr) {
    status->source = st.source;
    status->tag = st.tag;
    status->error = err;
    status->count_bytes = static_cast<std::int64_t>(into.size());
  }
  return true;
}

void MPDirect::progress_batch() { comm_.device().progress(); }

std::vector<int> MPDirect::take_failed_peers() {
  return comm_.device().take_failed_peers();
}

}  // namespace motor::mp
