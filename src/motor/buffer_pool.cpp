#include "motor/buffer_pool.hpp"

namespace motor::mp {

PooledBuffer::~PooledBuffer() {
  if (buf_ != nullptr) pool_->release(std::move(buf_));
}

BufferPool::BufferPool(vm::ManagedHeap& heap) : heap_(heap) {
  heap_.add_gc_hook(&BufferPool::gc_hook, this);
}

PooledBuffer BufferPool::acquire() {
  std::unique_ptr<ByteBuffer> buf;
  {
    std::lock_guard lk(mu_);
    if (!stack_.empty()) {
      buf = std::move(stack_.back().buf);
      stack_.pop_back();
      ++reused_;
    }
  }
  if (buf == nullptr) {
    buf = std::make_unique<ByteBuffer>();
    ++created_;
  }
  buf->clear();
  return PooledBuffer(*this, std::move(buf));
}

void BufferPool::release(std::unique_ptr<ByteBuffer> buf) {
  std::lock_guard lk(mu_);
  stack_.push_back(Idle{std::move(buf), heap_.epoch()});
}

std::size_t BufferPool::idle_count() const {
  std::lock_guard lk(mu_);
  return stack_.size();
}

void BufferPool::gc_hook(void* ctx, std::uint64_t epoch) {
  static_cast<BufferPool*>(ctx)->on_gc(epoch);
}

void BufferPool::on_gc(std::uint64_t epoch) {
  // Trim buffers that have sat idle across a full collection cycle:
  // released before the previous collection and untouched since.
  if (epoch < 2) return;
  std::lock_guard lk(mu_);
  auto keep = stack_.begin();
  for (Idle& idle : stack_) {
    if (idle.released_epoch + 2 <= epoch) {
      ++trimmed_;
      continue;  // unique_ptr frees the buffer
    }
    *keep++ = std::move(idle);
  }
  stack_.erase(keep, stack_.end());
}

}  // namespace motor::mp
