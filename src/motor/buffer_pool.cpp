#include "motor/buffer_pool.hpp"

namespace motor::mp {

PooledBuffer::~PooledBuffer() {
  if (pool_ != nullptr) pool_->put(std::move(buf_));
}

BufferPool::BufferPool(vm::ManagedHeap& heap) : heap_(heap) {
  heap_.add_gc_hook(&BufferPool::gc_hook, this);
}

PooledBuffer BufferPool::acquire() { return PooledBuffer(*this, take()); }

ByteBuffer BufferPool::take() {
  {
    std::lock_guard lk(mu_);
    if (!stack_.empty()) {
      ByteBuffer buf = std::move(stack_.back().buf);
      stack_.pop_back();
      reused_.fetch_add(1, std::memory_order_relaxed);
      buf.clear();
      return buf;
    }
  }
  created_.fetch_add(1, std::memory_order_relaxed);
  return ByteBuffer{};
}

void BufferPool::put(ByteBuffer&& buf) {
  buf.clear();
  std::lock_guard lk(mu_);
  stack_.push_back(Idle{std::move(buf), heap_.epoch()});
}

std::size_t BufferPool::idle_count() const {
  std::lock_guard lk(mu_);
  return stack_.size();
}

void BufferPool::gc_hook(void* ctx, std::uint64_t epoch) {
  static_cast<BufferPool*>(ctx)->on_gc(epoch);
}

void BufferPool::on_gc(std::uint64_t epoch) {
  // Trim buffers that have sat idle across a full collection cycle:
  // released before the previous collection and untouched since.
  if (epoch < 2) return;
  std::lock_guard lk(mu_);
  auto keep = stack_.begin();
  for (Idle& idle : stack_) {
    if (idle.released_epoch + 2 <= epoch) {
      trimmed_.fetch_add(1, std::memory_order_relaxed);
      continue;  // storage freed as the slot is dropped
    }
    *keep++ = std::move(idle);
  }
  stack_.erase(keep, stack_.end());
}

}  // namespace motor::mp
