// Static (native) buffers for the OO message-passing operations —
// paper §7.5: "Motor provides buffers for object oriented message passing
// operations, which are allocated from static runtime memory. They are
// created on demand and stored in a stack for later use. At garbage
// collection the stack is checked for buffers which are unused since the
// last garbage collection and these are unallocated."
//
// Because these buffers live outside the managed heap, OO operations need
// no pinning at all (§7.4).
//
// The pool is shared by every native-buffer hot path of a rank: the OO
// serializer ops (orecv/obcast/oscatter and the gathered osend metadata
// stream) and the parameter-server coalescer/comm thread (src/ps). Buffers
// move by VALUE (ByteBuffer is a moved vector) so steady state performs no
// heap allocation at all — a warm buffer keeps its capacity across
// take()/put() cycles, which the pool-stats counters (`created`, `reused`)
// make assertable in tests. All entry points are thread-safe: the comm
// thread and the managed rank thread share one pool.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "common/buffer.hpp"
#include "vm/heap.hpp"

namespace motor::mp {

class BufferPool;

/// RAII lease on a pooled buffer; returns it to the pool's stack on
/// destruction.
class PooledBuffer {
 public:
  PooledBuffer(BufferPool& pool, ByteBuffer buf)
      : pool_(&pool), buf_(std::move(buf)) {}
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), buf_(std::move(other.buf_)) {
    other.pool_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&&) = delete;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  ByteBuffer& operator*() { return buf_; }
  ByteBuffer* operator->() { return &buf_; }

 private:
  BufferPool* pool_;
  ByteBuffer buf_;
};

class BufferPool {
 public:
  /// Registers the GC-epoch hook that trims idle buffers.
  explicit BufferPool(vm::ManagedHeap& heap);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pop a buffer from the stack (or create one). The buffer comes back
  /// cleared.
  PooledBuffer acquire();

  /// Value form of acquire(): callers that hand buffers across threads
  /// (the coalescer / comm-thread pipeline) move the ByteBuffer itself and
  /// return it with put() when the wire is done with it.
  ByteBuffer take();
  void put(ByteBuffer&& buf);

  [[nodiscard]] std::size_t idle_count() const;
  [[nodiscard]] std::uint64_t created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reused() const noexcept {
    return reused_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t trimmed() const noexcept {
    return trimmed_.load(std::memory_order_relaxed);
  }

 private:
  void on_gc(std::uint64_t epoch);
  static void gc_hook(void* ctx, std::uint64_t epoch);

  struct Idle {
    ByteBuffer buf;
    std::uint64_t released_epoch;
  };

  vm::ManagedHeap& heap_;
  mutable std::mutex mu_;
  std::vector<Idle> stack_;
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> trimmed_{0};
};

}  // namespace motor::mp
