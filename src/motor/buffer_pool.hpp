// Static (native) buffers for the OO message-passing operations —
// paper §7.5: "Motor provides buffers for object oriented message passing
// operations, which are allocated from static runtime memory. They are
// created on demand and stored in a stack for later use. At garbage
// collection the stack is checked for buffers which are unused since the
// last garbage collection and these are unallocated."
//
// Because these buffers live outside the managed heap, OO operations need
// no pinning at all (§7.4).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/buffer.hpp"
#include "vm/heap.hpp"

namespace motor::mp {

class BufferPool;

/// RAII lease on a pooled buffer; returns it to the pool's stack on
/// destruction.
class PooledBuffer {
 public:
  PooledBuffer(BufferPool& pool, std::unique_ptr<ByteBuffer> buf)
      : pool_(&pool), buf_(std::move(buf)) {}
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&&) = default;
  PooledBuffer& operator=(PooledBuffer&&) = delete;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  ByteBuffer& operator*() { return *buf_; }
  ByteBuffer* operator->() { return buf_.get(); }

 private:
  BufferPool* pool_;
  std::unique_ptr<ByteBuffer> buf_;
};

class BufferPool {
 public:
  /// Registers the GC-epoch hook that trims idle buffers.
  explicit BufferPool(vm::ManagedHeap& heap);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pop a buffer from the stack (or create one). The buffer comes back
  /// cleared.
  PooledBuffer acquire();

  [[nodiscard]] std::size_t idle_count() const;
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }
  [[nodiscard]] std::uint64_t trimmed() const noexcept { return trimmed_; }

 private:
  friend class PooledBuffer;
  void release(std::unique_ptr<ByteBuffer> buf);
  void on_gc(std::uint64_t epoch);
  static void gc_hook(void* ctx, std::uint64_t epoch);

  struct Idle {
    std::unique_ptr<ByteBuffer> buf;
    std::uint64_t released_epoch;
  };

  vm::ManagedHeap& heap_;
  mutable std::mutex mu_;
  std::vector<Idle> stack_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t trimmed_ = 0;
};

}  // namespace motor::mp
