#include "motor/integrity.hpp"

namespace motor::mp {

Status check_transport_type(const vm::MethodTable* mt) {
  if (mt == nullptr) {
    return Status(ErrorCode::kTypeError, "null type");
  }
  if (mt->is_array()) {
    if (mt->element_kind() == vm::ElementKind::kObjectRef) {
      return Status(ErrorCode::kIntegrity,
                    "arrays of object references require the OO operations");
    }
    return Status::ok();
  }
  if (!mt->reference_offsets().empty()) {
    return Status(ErrorCode::kIntegrity,
                  "type " + mt->name() +
                      " holds object references; use the OO operations");
  }
  return Status::ok();
}

Status transport_view(vm::Obj obj, TransportView* out) {
  if (obj == nullptr) {
    return Status(ErrorCode::kBufferError, "null transport object");
  }
  const vm::MethodTable* mt = vm::obj_mt(obj);
  MOTOR_RETURN_IF_ERROR(check_transport_type(mt));
  if (mt->is_array()) {
    out->data = vm::array_data(obj);
    out->bytes = vm::array_payload_bytes(obj);
  } else {
    out->data = vm::obj_data(obj);
    out->bytes = mt->instance_bytes();
  }
  return Status::ok();
}

Status transport_view_array(vm::Obj arr, std::int64_t offset,
                            std::int64_t count, TransportView* out) {
  if (arr == nullptr) {
    return Status(ErrorCode::kBufferError, "null transport array");
  }
  const vm::MethodTable* mt = vm::obj_mt(arr);
  if (!mt->is_array()) {
    return Status(ErrorCode::kIntegrity,
                  "offset transport is only defined for arrays");
  }
  MOTOR_RETURN_IF_ERROR(check_transport_type(mt));
  const std::int64_t length = vm::array_length(arr);
  if (offset < 0 || count < 0 || offset + count > length) {
    return Status(ErrorCode::kCountError,
                  "array window out of bounds: the transport would "
                  "overwrite the next object's header");
  }
  out->data = vm::array_data(arr) +
              static_cast<std::size_t>(offset) * mt->element_bytes();
  out->bytes = static_cast<std::size_t>(count) * mt->element_bytes();
  return Status::ok();
}

}  // namespace motor::mp
