// Object-model integrity rules for the regular (buffer-to-buffer) Motor
// MPI bindings — paper §2.4/§4.2.1.
//
// A raw transport may only touch memory that contains no object
// references: otherwise a receive could overwrite a reference with data
// and crash the runtime at the next collection. Motor therefore restricts
// regular Send/Recv to:
//   * class instances whose type has NO reference fields, or
//   * arrays of simple types (any rank — true multidimensional arrays are
//     one contiguous object and transport fine).
// Offsets into objects are rejected ("there is no safe way to refer to a
// subset of an object"); offsets into arrays are allowed via the
// overloads carrying (offset, count).
#pragma once

#include "common/status.hpp"
#include "vm/object.hpp"

namespace motor::mp {

/// The raw-memory window a regular MPI operation may hand the transport.
struct TransportView {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
};

/// Is `mt` legal for regular (zero-copy) transport at all?
Status check_transport_type(const vm::MethodTable* mt);

/// Whole-object view (count == 1 semantics; the count parameter was
/// removed from the bindings, §4.2.1).
Status transport_view(vm::Obj obj, TransportView* out);

/// Array-portion view: elements [offset, offset + count).
Status transport_view_array(vm::Obj arr, std::int64_t offset,
                            std::int64_t count, TransportView* out);

}  // namespace motor::mp
