#include "motor/motor_runtime.hpp"

namespace motor::mp {

MotorContext::MotorContext(mpi::RankCtx& rank_ctx,
                           const MotorWorldConfig& config)
    : rank_ctx_(rank_ctx),
      vm_(config.vm),
      thread_(vm_),
      comm_(vm_, thread_, rank_ctx.comm_world(), config.mp) {
  if (!rank_ctx.parent().is_null()) {
    parent_mp_.emplace(vm_, thread_, rank_ctx.parent(), config.mp);
  }
}

int MotorContext::register_mp_fcalls() {
  vm::FCallTable& table = vm_.fcalls();
  Communicator* mp = &comm_;

  const int first = table.register_fcall(
      "MP.Rank", [mp](vm::Vm&, vm::ManagedThread&,
                      std::span<const vm::Value>) {
        return vm::Value::from_i32(mp->Rank());
      });
  table.register_fcall("MP.Size", [mp](vm::Vm&, vm::ManagedThread&,
                                       std::span<const vm::Value>) {
    return vm::Value::from_i32(mp->Size());
  });
  table.register_fcall("MP.Barrier", [mp](vm::Vm&, vm::ManagedThread&,
                                          std::span<const vm::Value>) {
    mp->Barrier();
    return vm::Value::from_i32(0);
  });
  // MP.Send(obj, dest, tag) -> error code
  table.register_fcall(
      "MP.Send", [mp](vm::Vm&, vm::ManagedThread&,
                      std::span<const vm::Value> args) {
        MOTOR_CHECK(args.size() == 3 && args[0].is_ref(), "MP.Send args");
        Status st = mp->Send(args[0].ref, args[1].i32, args[2].i32);
        return vm::Value::from_i32(static_cast<std::int32_t>(st.code()));
      });
  // MP.Recv(obj, source, tag) -> error code
  table.register_fcall(
      "MP.Recv", [mp](vm::Vm&, vm::ManagedThread&,
                      std::span<const vm::Value> args) {
        MOTOR_CHECK(args.size() == 3 && args[0].is_ref(), "MP.Recv args");
        Status st = mp->Recv(args[0].ref, args[1].i32, args[2].i32);
        return vm::Value::from_i32(static_cast<std::int32_t>(st.code()));
      });
  return first;
}

Communicator spawn_motor_workers(
    MotorContext& ctx, int root, int n_workers,
    const std::function<void(MotorContext&)>& worker_main,
    const MotorWorldConfig& worker_config) {
  mpi::Comm inter = mpi::spawn(
      ctx.rank_ctx().comm_world(), root, n_workers,
      [worker_config, worker_main](mpi::RankCtx& child) {
        MotorContext worker_ctx(child, worker_config);
        worker_main(worker_ctx);
      });
  return Communicator(ctx.vm(), ctx.thread(), std::move(inter));
}

void run_motor_world(const MotorWorldConfig& config,
                     const std::function<void(MotorContext&)>& rank_main) {
  run_motor_world(config, {}, rank_main);
}

void run_motor_world(const MotorWorldConfig& config,
                     const std::function<void(mpi::World&)>& world_setup,
                     const std::function<void(MotorContext&)>& rank_main) {
  mpi::World world(config.ranks, config.world);
  if (world_setup) world_setup(world);
  world.run([&config, &rank_main](mpi::RankCtx& rank_ctx) {
    MotorContext ctx(rank_ctx, config);
    rank_main(ctx);
  });
}

}  // namespace motor::mp
