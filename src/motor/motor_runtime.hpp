// MotorRuntime: rank bootstrap for the integrated VM+MPI system.
//
// Each rank owns a complete managed runtime (Vm: heap, GC, types, call
// tables) plus its System.MP communicator wired to the rank's device —
// the full Figure 2 stack. run_motor_world launches N such ranks over one
// fabric.
#pragma once

#include <functional>
#include <optional>

#include "motor/system_mp.hpp"
#include "mpi/world.hpp"
#include "vm/interpreter.hpp"

namespace motor::mp {

struct MotorWorldConfig {
  int ranks = 2;
  mpi::WorldConfig world;
  vm::VmConfig vm;
  MPDirectConfig mp;
};

/// Everything a Motor rank's "main" sees: its VM, its managed main
/// thread, its communicator, and the underlying MPI rank context.
class MotorContext {
 public:
  MotorContext(mpi::RankCtx& rank_ctx, const MotorWorldConfig& config);

  MotorContext(const MotorContext&) = delete;
  MotorContext& operator=(const MotorContext&) = delete;

  [[nodiscard]] vm::Vm& vm() noexcept { return vm_; }
  [[nodiscard]] vm::ManagedThread& thread() noexcept { return thread_; }
  [[nodiscard]] Communicator& mp() noexcept { return comm_; }
  [[nodiscard]] mpi::RankCtx& rank_ctx() noexcept { return rank_ctx_; }
  [[nodiscard]] int rank() const { return comm_.Rank(); }
  [[nodiscard]] int size() const { return comm_.Size(); }

  /// Register the System.MP InternalCall set on this VM's FCall table so
  /// interpreted (bytecode) programs can message-pass; returns the index
  /// of the first entry. Names: "MP.Rank", "MP.Size", "MP.Barrier",
  /// "MP.Send", "MP.Recv" (whole-object forms).
  int register_mp_fcalls();

  /// For ranks created by spawn_motor_workers: the intercommunicator to
  /// the spawning group, already bound to this rank's VM.
  [[nodiscard]] bool has_parent() const noexcept {
    return parent_mp_.has_value();
  }
  [[nodiscard]] Communicator& parent_mp() {
    MOTOR_CHECK(parent_mp_.has_value(), "rank was not spawned");
    return *parent_mp_;
  }

 private:
  mpi::RankCtx& rank_ctx_;
  vm::Vm vm_;
  vm::ManagedThread thread_;
  Communicator comm_;
  std::optional<Communicator> parent_mp_;
};

/// Transparent process management — the paper's stated future work (§9:
/// "we plan to integrate the Motor MPI library more closely with other
/// runtime services to provide transparent process management").
/// Collectively (over ctx's world) spawns `n_workers` new Motor ranks:
/// each worker transparently receives a fully initialized managed runtime
/// (VM, heap, System.MP) before `worker_main` runs, and reaches the
/// parents via MotorContext::parent_mp(). Returns the parent-side
/// intercommunicator bound to the calling rank's VM.
Communicator spawn_motor_workers(
    MotorContext& ctx, int root, int n_workers,
    const std::function<void(MotorContext&)>& worker_main,
    const MotorWorldConfig& worker_config = MotorWorldConfig{});

/// Launch `config.ranks` Motor ranks, each running `rank_main`, and join.
void run_motor_world(const MotorWorldConfig& config,
                     const std::function<void(MotorContext&)>& rank_main);

/// As above, but `world_setup` runs on the constructed World BEFORE any
/// rank starts — the window where transport decorators must be attached
/// (e.g. Fabric::inject_faults for the PS fault suite).
void run_motor_world(const MotorWorldConfig& config,
                     const std::function<void(mpi::World&)>& world_setup,
                     const std::function<void(MotorContext&)>& rank_main);

}  // namespace motor::mp
