#include "motor/motor_serializer.hpp"

#include <cstring>

#include "vm/serial_util.hpp"
#include "vm/vm.hpp"

namespace motor::mp {

// Stream magic kWireMagic lives in wire_ops.hpp, shared with the typed
// codec (typed/codec.hpp) which emits the same stream from native types.

const WirePlan& MotorSerializer::plan_of(const vm::MethodTable* mt) {
  bool built = false;
  const WirePlan& plan = plans_.plan_for(mt, &built);
  if (built) ++stats_.plan_builds;
  return plan;
}

std::int32_t MotorSerializer::VisitedSet::find(vm::Obj obj) {
  ++stats_.visited_lookups;
  if (mode_ == VisitedMode::kLinear) {
    // The paper's current implementation: O(n) scan per lookup. The scan
    // itself is a tight pointer compare; step accounting happens outside
    // the loop so instrumentation does not inflate the measured cost.
    for (std::size_t i = 0; i < linear_.size(); ++i) {
      if (linear_[i] == obj) {
        stats_.visited_scan_steps += i + 1;
        return static_cast<std::int32_t>(i);
      }
    }
    stats_.visited_scan_steps += linear_.size();
    return -1;
  }
  auto it = hashed_.find(obj);
  return it == hashed_.end() ? -1 : it->second;
}

void MotorSerializer::VisitedSet::insert(vm::Obj obj, std::int32_t index) {
  if (mode_ == VisitedMode::kLinear) {
    MOTOR_CHECK(index == static_cast<std::int32_t>(linear_.size()),
                "visited indices must be dense");
    linear_.push_back(obj);
  } else {
    hashed_.emplace(obj, index);
  }
}

Status MotorSerializer::serialize(vm::Obj root, ByteBuffer& out) {
  return serialize_impl(root, std::nullopt, out);
}

Status MotorSerializer::serialize_array_window(vm::Obj arr,
                                               std::int64_t offset,
                                               std::int64_t count,
                                               ByteBuffer& out) {
  if (arr == nullptr || !vm::obj_mt(arr)->is_array()) {
    return Status(ErrorCode::kTypeError, "window serialization needs an array");
  }
  if (offset < 0 || count < 0 || offset + count > vm::array_length(arr)) {
    return Status(ErrorCode::kCountError, "array window out of bounds");
  }
  return serialize_impl(arr, Window{offset, count}, out);
}

Status MotorSerializer::serialize_impl(vm::Obj root,
                                       std::optional<Window> window,
                                       ByteBuffer& out,
                                       std::vector<RawPart>* raw) {
  VisitedSet visited(mode_, stats_);
  std::vector<vm::Obj> order;       // id -> object
  std::vector<std::uint16_t> type_refs;
  std::vector<const vm::MethodTable*> type_table;
  std::unordered_map<const vm::MethodTable*, std::uint16_t> type_ids;

  // Hoisted plan lookup: object graphs are overwhelmingly homogeneous, so
  // the per-object cost is a pointer compare, not a hash probe.
  const vm::MethodTable* plan_mt = nullptr;
  const WirePlan* plan_hot = nullptr;
  auto plan_for = [&](const vm::MethodTable* mt) -> const WirePlan& {
    if (mt != plan_mt) {
      plan_hot = &plan_of(mt);
      plan_mt = mt;
    }
    return *plan_hot;
  };

  std::size_t name_bytes = 0;    // length-prefixed type-name table
  std::size_t record_bytes = 0;  // per-record stream bytes (plan path)
  auto type_ref_of = [&](const vm::MethodTable* mt) -> std::uint16_t {
    auto it = type_ids.find(mt);
    if (it != type_ids.end()) return it->second;
    const auto id = static_cast<std::uint16_t>(type_table.size());
    type_table.push_back(mt);
    type_ids.emplace(mt, id);
    name_bytes += 2 + mt->name().size();
    return id;
  };

  // Discovery: assign dense ids under the Transportable propagation rules.
  auto discover = [&](vm::Obj obj) -> std::int32_t {
    if (obj == nullptr) return -1;
    std::int32_t id = visited.find(obj);
    if (id >= 0) return id;
    id = static_cast<std::int32_t>(order.size());
    visited.insert(obj, id);
    order.push_back(obj);
    type_refs.push_back(type_ref_of(vm::obj_mt(obj)));
    return id;
  };

  if (root != nullptr) discover(root);
  for (std::size_t head = 0; head < order.size(); ++head) {
    vm::Obj obj = order[head];
    const vm::MethodTable* mt = vm::obj_mt(obj);
    if (mt->is_array()) {
      const bool windowed_root = head == 0 && window.has_value();
      std::int64_t lo = 0, len = vm::array_length(obj);
      if (windowed_root) {
        lo = window->offset;
        len = window->count;
      }
      if (mt->element_kind() == vm::ElementKind::kObjectRef) {
        // Arrays propagate their entries by default (§4.2.2).
        for (std::int64_t i = lo; i < lo + len; ++i) {
          discover(vm::get_ref_element(obj, i));
        }
        if (use_plans_) record_bytes += static_cast<std::size_t>(len) * 4;
      } else if (use_plans_) {
        const std::size_t bytes =
            static_cast<std::size_t>(len) * mt->element_bytes();
        // Payloads the gather path references in place (raw mode,
        // >= kGatherInlineMax) never enter the metadata stream.
        if (raw == nullptr || bytes < kGatherInlineMax) record_bytes += bytes;
      }
      if (use_plans_) {
        record_bytes += 2;  // type ref
        record_bytes += mt->rank() > 1 && !windowed_root
                            ? 1 + 4 * static_cast<std::size_t>(mt->rank())
                            : 1 + 8;
      }
    } else if (use_plans_) {
      // The plan's ref list carries only the reference slots, so the
      // discovery pass skips every primitive field instead of testing
      // each FieldDesc.
      const WirePlan& plan = plan_for(mt);
      for (const RefSlot& r : plan.refs) {
        if (!r.transportable) {
          ++stats_.null_swapped_refs;  // written as null on the wire
          continue;
        }
        discover(vm::get_ref_field(obj, r.offset));
      }
      record_bytes += 2 + plan.wire_bytes;
    } else {
      for (const vm::FieldDesc& f : mt->fields()) {
        if (!f.is_reference()) continue;
        if (!f.is_transportable()) {
          ++stats_.null_swapped_refs;  // written as null on the wire
          continue;
        }
        discover(vm::get_ref_field(obj, f.offset()));
      }
    }
  }

  if (use_plans_) {
    // Plan-derived size precomputation, accumulated record by record
    // during discovery (which already touched every object once),
    // mirroring the emit loop below byte for byte: one reserve()
    // provisions the whole stream, so the hot loop never regrows the
    // buffer.
    out.reserve(out.size() + 4 + 2 + name_bytes + 4 + 4 + record_bytes);
  }

  // Emit: type table, then object records side by side.
  out.put_u32(kWireMagic);
  out.put_u16(static_cast<std::uint16_t>(type_table.size()));
  for (const vm::MethodTable* mt : type_table) {
    vm::detail::write_string(out, mt->name());
  }
  out.put_u32(static_cast<std::uint32_t>(order.size()));
  out.put_i32(root == nullptr ? -1 : 0);

  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    vm::Obj obj = order[idx];
    const vm::MethodTable* mt = vm::obj_mt(obj);

    if (use_plans_ && !mt->is_array()) {
      const WirePlan& plan = plan_for(mt);
      if (plan.single_run) {
        // All-primitive fast path: the record is one bulk copy, and the
        // elements of an object-array window hold consecutive ids, so
        // this inner loop drains the whole window as u16 + memcpy
        // records with no per-field dispatch at all.
        const std::uint16_t tref = type_refs[idx];
        const std::uint16_t run_fields =
            plan.ops.empty() ? 0 : plan.ops[0].fields;
        while (true) {
          out.put_u16(tref);
          out.append_raw(vm::obj_data(order[idx]) + plan.run_offset,
                         plan.wire_bytes);
          ++stats_.plan_hits;
          if (plan.wire_bytes > 0) {
            ++stats_.runs_copied;
            stats_.fields_copied += run_fields;
          }
          if (idx + 1 >= order.size() || type_refs[idx + 1] != tref) break;
          ++idx;
        }
        continue;
      }
      out.put_u16(type_refs[idx]);
      ++stats_.plan_hits;
      for (const WireOp& op : plan.ops) {
        if (op.kind == WireOp::Kind::kRun) {
          out.append_raw(vm::obj_data(obj) + op.offset, op.bytes);
          ++stats_.runs_copied;
          stats_.fields_copied += op.fields;
        } else {
          vm::Obj target =
              op.transportable ? vm::get_ref_field(obj, op.offset) : nullptr;
          out.put_i32(target == nullptr ? -1 : visited.find(target));
        }
      }
      continue;
    }

    out.put_u16(type_refs[idx]);

    if (mt->is_array()) {
      std::int64_t lo = 0, len = vm::array_length(obj);
      if (idx == 0 && window.has_value()) {
        lo = window->offset;
        len = window->count;
      }
      if (mt->rank() > 1 && !(idx == 0 && window.has_value())) {
        out.put_u8(1);  // dims present
        for (int d = 0; d < mt->rank(); ++d) {
          out.put_i32(vm::array_dim(obj, d));
        }
      } else {
        out.put_u8(0);
        out.put_i64(len);
      }
      if (mt->element_kind() == vm::ElementKind::kObjectRef) {
        for (std::int64_t i = lo; i < lo + len; ++i) {
          vm::Obj elem = vm::get_ref_element(obj, i);
          out.put_i32(elem == nullptr ? -1 : visited.find(elem));
        }
      } else {
        const std::byte* src =
            vm::array_data(obj) +
            static_cast<std::size_t>(lo) * mt->element_bytes();
        const std::size_t bytes =
            static_cast<std::size_t>(len) * mt->element_bytes();
        if (raw != nullptr && bytes >= kGatherInlineMax) {
          // Gathered mode: reference the payload where it lives instead of
          // copying it into the metadata stream.
          raw->push_back(RawPart{out.size(), src, bytes, obj});
        } else {
          out.append_raw(src, bytes);
        }
      }
      continue;
    }

    for (const vm::FieldDesc& f : mt->fields()) {
      if (f.is_reference()) {
        vm::Obj target =
            f.is_transportable() ? vm::get_ref_field(obj, f.offset()) : nullptr;
        out.put_i32(target == nullptr ? -1 : visited.find(target));
      } else {
        out.append_raw(vm::obj_data(obj) + f.offset(), f.size());
      }
    }
  }

  stats_.objects_serialized += order.size();
  return Status::ok();
}

Status MotorSerializer::serialize_split(vm::Obj arr,
                                        const std::vector<std::int64_t>& counts,
                                        std::vector<ByteBuffer>& pieces) {
  if (arr == nullptr || !vm::obj_mt(arr)->is_array()) {
    return Status(ErrorCode::kTypeError, "split serialization needs an array");
  }
  std::int64_t total = 0;
  for (std::int64_t c : counts) {
    if (c < 0) return Status(ErrorCode::kCountError, "negative piece count");
    total += c;
  }
  if (total != vm::array_length(arr)) {
    return Status(ErrorCode::kCountError,
                  "piece counts do not cover the array");
  }
  pieces.clear();
  pieces.resize(counts.size());
  std::int64_t offset = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // "A single split representation is constructed of many regular
    // representations, each with an individual type table and each
    // individually deserialisable" (§7.5).
    MOTOR_RETURN_IF_ERROR(
        serialize_array_window(arr, offset, counts[i], pieces[i]));
    offset += counts[i];
  }
  return Status::ok();
}

Status MotorSerializer::gather_impl(vm::Obj root, std::optional<Window> window,
                                    GatherRep& out) {
  out.meta.clear();
  out.spans.clear();
  out.backing.clear();
  std::vector<RawPart> raws;
  MOTOR_RETURN_IF_ERROR(serialize_impl(root, window, out.meta, &raws));

  // Interleave owned metadata segments with in-place payload references,
  // in wire order. The concatenation of the spans is byte-identical to
  // what flat serialize() would have produced. Span construction happens
  // only now, after the meta buffer stopped growing, so the segment
  // pointers are stable (GatherRep is move-only for the same reason).
  std::size_t cursor = 0;
  for (const RawPart& part : raws) {
    if (part.meta_pos > cursor) {
      out.spans.append({out.meta.data() + cursor, part.meta_pos - cursor});
      cursor = part.meta_pos;
    }
    out.spans.append({part.data, part.len});
    out.backing.push_back(part.obj);
  }
  if (out.meta.size() > cursor) {
    out.spans.append({out.meta.data() + cursor, out.meta.size() - cursor});
  }
  return Status::ok();
}

Status MotorSerializer::serialize_gather(vm::Obj root, GatherRep& out) {
  return gather_impl(root, std::nullopt, out);
}

Status MotorSerializer::serialize_window_gather(vm::Obj arr,
                                                std::int64_t offset,
                                                std::int64_t count,
                                                GatherRep& out) {
  if (arr == nullptr || !vm::obj_mt(arr)->is_array()) {
    return Status(ErrorCode::kTypeError, "window serialization needs an array");
  }
  if (offset < 0 || count < 0 || offset + count > vm::array_length(arr)) {
    return Status(ErrorCode::kCountError, "array window out of bounds");
  }
  return gather_impl(arr, Window{offset, count}, out);
}

Status MotorSerializer::serialize_split_gather(
    vm::Obj arr, const std::vector<std::int64_t>& counts,
    std::vector<GatherRep>& pieces) {
  if (arr == nullptr || !vm::obj_mt(arr)->is_array()) {
    return Status(ErrorCode::kTypeError, "split serialization needs an array");
  }
  std::int64_t total = 0;
  for (std::int64_t c : counts) {
    if (c < 0) return Status(ErrorCode::kCountError, "negative piece count");
    total += c;
  }
  if (total != vm::array_length(arr)) {
    return Status(ErrorCode::kCountError,
                  "piece counts do not cover the array");
  }
  pieces.clear();
  pieces.resize(counts.size());
  std::int64_t offset = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    MOTOR_RETURN_IF_ERROR(
        serialize_window_gather(arr, offset, counts[i], pieces[i]));
    offset += counts[i];
  }
  return Status::ok();
}

Status MotorSerializer::deserialize(ByteBuffer& in, vm::ManagedThread& thread,
                                    vm::Obj* out) {
  std::uint32_t magic = 0;
  MOTOR_RETURN_IF_ERROR(in.get(magic));
  if (magic != kWireMagic) {
    return Status(ErrorCode::kSerialization, "bad Motor serializer magic");
  }
  std::uint16_t type_count = 0;
  MOTOR_RETURN_IF_ERROR(in.get(type_count));
  std::vector<const vm::MethodTable*> types(type_count);
  for (auto& mt : types) {
    std::string name;
    MOTOR_RETURN_IF_ERROR(vm::detail::read_string(in, name));
    mt = vm_.types().find(name);
    if (mt == nullptr) {
      return Status(ErrorCode::kSerialization, "unknown type " + name);
    }
  }

  // Per-stream type info, resolved once per distinct type: the class
  // record size comes from the MethodTable's load-time cache (the old
  // code re-walked the FieldDesc list for every object record), and on
  // the plan path pass 2 executes the compiled wire program.
  struct TypeInfo {
    std::size_t class_bytes = 0;
    const WirePlan* plan = nullptr;
  };
  std::vector<TypeInfo> infos(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i]->is_array()) continue;
    infos[i].class_bytes = types[i]->wire_bytes();
    if (use_plans_) infos[i].plan = &plan_of(types[i]);
  }

  std::uint32_t object_count = 0;
  std::int32_t root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(object_count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  // Every record is at least a u16 type ref + one payload/shape byte: a
  // damaged count must not size multi-gigabyte bookkeeping tables.
  if (object_count > in.remaining() / 3 + 1) {
    return Status(ErrorCode::kSerialization, "object count exceeds stream");
  }

  // Pass 1: create objects, note payload cursors.
  vm::RootRange table(thread);
  std::vector<std::size_t> payload_pos(object_count);
  std::vector<std::uint16_t> obj_trefs(object_count);
  for (std::uint32_t id = 0; id < object_count; ++id) {
    std::uint16_t tref = 0;
    MOTOR_RETURN_IF_ERROR(in.get(tref));
    if (tref >= types.size()) {
      return Status(ErrorCode::kSerialization, "bad type ref");
    }
    obj_trefs[id] = tref;
    const vm::MethodTable* mt = types[tref];
    vm::Obj obj = nullptr;
    std::size_t payload = 0;
    if (mt->is_array()) {
      std::uint8_t has_dims = 0;
      MOTOR_RETURN_IF_ERROR(in.get(has_dims));
      std::int64_t length = 0;
      if (has_dims != 0) {
        std::vector<std::int32_t> dims(static_cast<std::size_t>(mt->rank()));
        std::int64_t total_elems = 1;
        for (auto& d : dims) {
          MOTOR_RETURN_IF_ERROR(in.get(d));
          if (d < 0) return Status(ErrorCode::kSerialization, "bad dim");
          total_elems *= d;
        }
        const std::size_t wire_per_elem =
            mt->element_kind() == vm::ElementKind::kObjectRef
                ? 4
                : mt->element_bytes();
        if (static_cast<std::size_t>(total_elems) * wire_per_elem >
            in.remaining()) {
          return Status(ErrorCode::kSerialization,
                        "announced array exceeds stream");
        }
        obj = vm_.heap().alloc_md_array(mt, dims);
        length = vm::array_length(obj);
      } else {
        MOTOR_RETURN_IF_ERROR(in.get(length));
        if (length < 0) {
          return Status(ErrorCode::kSerialization, "negative length");
        }
        // Sanity before allocation: a damaged length must not drive a
        // giant allocation; the payload has to fit in what remains.
        const std::size_t wire_per_elem =
            mt->element_kind() == vm::ElementKind::kObjectRef
                ? 4
                : mt->element_bytes();
        if (static_cast<std::size_t>(length) * wire_per_elem >
            in.remaining()) {
          return Status(ErrorCode::kSerialization,
                        "announced array exceeds stream");
        }
        // Window pieces always deserialize as rank-1 arrays of `count`
        // elements, whatever the source rank.
        const vm::MethodTable* alloc_mt =
            mt->rank() == 1
                ? mt
                : (mt->element_kind() == vm::ElementKind::kObjectRef
                       ? vm_.types().ref_array(mt->element_type(), 1)
                       : vm_.types().primitive_array(mt->element_kind(), 1));
        obj = vm_.heap().alloc_array(alloc_mt, length);
      }
      payload = static_cast<std::size_t>(length) *
                (mt->element_kind() == vm::ElementKind::kObjectRef
                     ? 4
                     : mt->element_bytes());
    } else {
      obj = vm_.heap().alloc_object(mt);
      payload = infos[tref].class_bytes;
    }
    table.add(obj);
    payload_pos[id] = in.cursor();
    if (in.remaining() < payload) {
      return Status(ErrorCode::kSerialization, "truncated record");
    }
    in.seek(in.cursor() + payload);
  }
  const std::size_t end_pos = in.cursor();

  auto resolve = [&](std::int32_t id) -> vm::Obj {
    return id < 0 ? nullptr : table.at(static_cast<std::size_t>(id));
  };

  // Pass 2: fill payloads.
  for (std::uint32_t id = 0; id < object_count; ++id) {
    vm::Obj obj = table.at(id);
    const vm::MethodTable* mt = vm::obj_mt(obj);
    in.seek(payload_pos[id]);
    if (mt->is_array()) {
      if (mt->element_kind() == vm::ElementKind::kObjectRef) {
        const std::int64_t n = vm::array_length(obj);
        for (std::int64_t i = 0; i < n; ++i) {
          std::int32_t rid = 0;
          MOTOR_RETURN_IF_ERROR(in.get(rid));
          if (rid >= static_cast<std::int32_t>(object_count)) {
            return Status(ErrorCode::kSerialization, "bad object ref");
          }
          vm_.heap().store_ref_element(obj, i, resolve(rid));
        }
      } else {
        MOTOR_RETURN_IF_ERROR(
            in.read({vm::array_data(obj), vm::array_payload_bytes(obj)}));
      }
      continue;
    }
    if (const WirePlan* plan = infos[obj_trefs[id]].plan; plan != nullptr) {
      ++stats_.plan_hits;
      if (plan->single_run) {
        MOTOR_RETURN_IF_ERROR(in.read(
            {vm::obj_data(obj) + plan->run_offset, plan->wire_bytes}));
        if (plan->wire_bytes > 0) {
          ++stats_.runs_copied;
          stats_.fields_copied += plan->ops[0].fields;
        }
        continue;
      }
      for (const WireOp& op : plan->ops) {
        if (op.kind == WireOp::Kind::kRun) {
          MOTOR_RETURN_IF_ERROR(
              in.read({vm::obj_data(obj) + op.offset, op.bytes}));
          ++stats_.runs_copied;
          stats_.fields_copied += op.fields;
        } else {
          std::int32_t rid = 0;
          MOTOR_RETURN_IF_ERROR(in.get(rid));
          if (rid >= static_cast<std::int32_t>(object_count)) {
            return Status(ErrorCode::kSerialization, "bad object ref");
          }
          vm_.heap().store_ref_field(obj, op.offset, resolve(rid));
        }
      }
      continue;
    }
    for (const vm::FieldDesc& f : mt->fields()) {
      if (f.is_reference()) {
        std::int32_t rid = 0;
        MOTOR_RETURN_IF_ERROR(in.get(rid));
        if (rid >= static_cast<std::int32_t>(object_count)) {
          return Status(ErrorCode::kSerialization, "bad object ref");
        }
        vm_.heap().store_ref_field(obj, f.offset(), resolve(rid));
      } else {
        MOTOR_RETURN_IF_ERROR(
            in.read({vm::obj_data(obj) + f.offset(), f.size()}));
      }
    }
  }

  in.seek(end_pos);
  stats_.objects_deserialized += object_count;
  *out = resolve(root_id);
  return Status::ok();
}

Status MotorSerializer::deserialize_merge(std::span<ByteBuffer> pieces,
                                          vm::ManagedThread& thread,
                                          vm::Obj* out) {
  if (pieces.empty()) {
    return Status(ErrorCode::kCountError, "merge of zero pieces");
  }
  vm::RootRange parts(thread);
  std::int64_t total = 0;
  const vm::MethodTable* arr_mt = nullptr;
  for (ByteBuffer& piece : pieces) {
    vm::Obj sub = nullptr;
    MOTOR_RETURN_IF_ERROR(deserialize(piece, thread, &sub));
    if (sub == nullptr || !vm::obj_mt(sub)->is_array()) {
      return Status(ErrorCode::kSerialization, "piece is not an array");
    }
    if (arr_mt == nullptr) {
      arr_mt = vm::obj_mt(sub);
    } else if (vm::obj_mt(sub) != arr_mt) {
      return Status(ErrorCode::kSerialization, "heterogeneous pieces");
    }
    total += vm::array_length(sub);
    parts.add(sub);
  }

  vm::Obj merged = vm_.heap().alloc_array(arr_mt, total);
  vm::GcRoot merged_root(thread, merged);
  std::int64_t at = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    vm::Obj sub = parts.at(p);
    const std::int64_t n = vm::array_length(sub);
    merged = merged_root.get();  // re-read in case a collection moved it
    if (arr_mt->element_kind() == vm::ElementKind::kObjectRef) {
      for (std::int64_t i = 0; i < n; ++i) {
        vm_.heap().store_ref_element(merged, at + i,
                                     vm::get_ref_element(sub, i));
      }
    } else {
      std::memcpy(vm::array_data(merged) +
                      static_cast<std::size_t>(at) * arr_mt->element_bytes(),
                  vm::array_data(sub),
                  static_cast<std::size_t>(n) * arr_mt->element_bytes());
    }
    at += n;
  }
  *out = merged_root.get();
  return Status::ok();
}

}  // namespace motor::mp
