// The Motor custom serialization mechanism — paper §7.5.
//
// Produces a flat object-tree representation with two parts: a TYPE TABLE
// (class information) and OBJECT DATA (records laid side-by-side, each
// prefixed with an internal type reference; object references exchanged
// for local indices; references outside the serialization swapped to
// null).
//
// Traversal (§4.2.2):
//   * single objects: simple data only; reference fields propagate ONLY
//     when their FieldDesc carries the Transportable bit (opt-in);
//   * arrays: propagated together with their array-entry objects;
//   * trees: Transportable-marked references followed recursively
//     (iteratively here — runtime-internal code has no stack budget
//     problem, unlike the Java baseline).
//
// The visited-object structure is selectable: kLinear reproduces the
// paper's implementation ("we employ a linear structure to record objects
// visited. This causes excessive search times with large numbers of
// objects" — the Figure 10 fall-off past ~2048 objects); kHashed is the
// fix the paper says is planned (ablation A3) and is the DEFAULT — the
// linear structure is opted into explicitly by the Figure 10 reproduction
// and the A3 ablation benches.
//
// For scatter/gather the serializer produces a SPLIT representation: many
// regular representations, each with an individual type table, each
// independently deserializable (§7.5).
//
// GATHERED representation: serialize_gather() produces the same wire bytes
// as serialize(), but large primitive-array payloads are *referenced in
// place* on the managed heap instead of being copied into the metadata
// buffer. The result is a SpanVec the device can push to the wire in one
// scatter-gather operation — object-array payloads never flatten.
//
// WIRE PLANS (wire_plan.hpp): by default the serializer compiles each
// class type's FieldDesc list once into a program of coalesced primitive
// runs + reference slots and executes that program on both the serialize
// and deserialize hot paths, with the output buffer pre-reserved from the
// plan-derived exact stream size. The wire format is UNCHANGED — plans
// only change how the bytes are produced/consumed. Construct with
// plan_cache = false for the paper-faithful per-field ablation path.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/spanvec.hpp"
#include "motor/wire_plan.hpp"
#include "vm/handles.hpp"
#include "vm/object.hpp"

namespace motor::vm {
class Vm;
}

namespace motor::mp {

enum class VisitedMode { kLinear, kHashed };

struct SerializerStats {
  std::uint64_t objects_serialized = 0;
  std::uint64_t objects_deserialized = 0;
  std::uint64_t visited_lookups = 0;
  std::uint64_t visited_scan_steps = 0;  // linear-mode comparisons
  std::uint64_t null_swapped_refs = 0;   // non-Transportable refs nulled
  // ---- wire-plan cache (see wire_plan.hpp) ----
  std::uint64_t plan_builds = 0;    // plans compiled (bounded by types)
  std::uint64_t plan_hits = 0;      // class records executed via a plan
  std::uint64_t runs_copied = 0;    // coalesced primitive-run memcpys
  std::uint64_t fields_copied = 0;  // FieldDescs those runs covered
};

/// Gathered serialized form. The wire bytes are the concatenation of
/// `spans` and are byte-identical to the flat serialize() output, so any
/// receiver deserializes them with the regular path. Metadata segments
/// live in `meta` (owned); large primitive-array payloads are spans
/// aliasing the managed heap. `backing` lists the heap objects those raw
/// spans alias — the caller must pin them (see PinningPolicy) before the
/// next GC poll and keep them pinned until the send drains.
/// Move-only: the spans alias `meta`'s storage, which copying would break.
struct GatherRep {
  ByteBuffer meta;
  SpanVec spans;
  std::vector<vm::Obj> backing;

  GatherRep() = default;
  GatherRep(GatherRep&&) = default;
  GatherRep& operator=(GatherRep&&) = default;
  GatherRep(const GatherRep&) = delete;
  GatherRep& operator=(const GatherRep&) = delete;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return spans.total_bytes();
  }
};

class MotorSerializer {
 public:
  /// Primitive-array payloads below this many bytes are copied into the
  /// metadata buffer rather than carried as separate gather parts.
  static constexpr std::size_t kGatherInlineMax = 256;

  /// `plan_cache = false` is the ablation configuration: every record
  /// re-walks its FieldDesc list, as the paper's implementation did.
  explicit MotorSerializer(vm::Vm& vm, VisitedMode mode = VisitedMode::kHashed,
                           bool plan_cache = true)
      : vm_(vm), mode_(mode), use_plans_(plan_cache) {}

  /// Regular representation of the graph reachable from `root` under the
  /// Transportable rules.
  Status serialize(vm::Obj root, ByteBuffer& out);

  /// Array-window representation: elements [offset, offset+count) of
  /// `arr`, plus their referenced objects for reference arrays. The piece
  /// deserializes to a free-standing array of length `count`.
  Status serialize_array_window(vm::Obj arr, std::int64_t offset,
                                std::int64_t count, ByteBuffer& out);

  /// Split representation for scatter: piece i carries counts[i] elements.
  /// Sum of counts must equal the array length.
  Status serialize_split(vm::Obj arr, const std::vector<std::int64_t>& counts,
                         std::vector<ByteBuffer>& pieces);

  // ---- gathered (zero-copy) variants ----

  /// Regular representation with in-place payload references (see
  /// GatherRep). Wire bytes identical to serialize().
  Status serialize_gather(vm::Obj root, GatherRep& out);

  /// Gathered form of serialize_array_window().
  Status serialize_window_gather(vm::Obj arr, std::int64_t offset,
                                 std::int64_t count, GatherRep& out);

  /// Gathered form of serialize_split(): one GatherRep per piece.
  Status serialize_split_gather(vm::Obj arr,
                                const std::vector<std::int64_t>& counts,
                                std::vector<GatherRep>& pieces);

  /// Rebuild a regular (or window) representation in this VM's heap.
  Status deserialize(ByteBuffer& in, vm::ManagedThread& thread, vm::Obj* out);

  /// Gather: fuse piece representations into one array in rank order.
  Status deserialize_merge(std::span<ByteBuffer> pieces,
                           vm::ManagedThread& thread, vm::Obj* out);

  [[nodiscard]] const SerializerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] VisitedMode mode() const noexcept { return mode_; }
  [[nodiscard]] bool plan_cache_enabled() const noexcept { return use_plans_; }

 private:
  struct Window {
    std::int64_t offset;
    std::int64_t count;
  };

  /// The visited-object structure (paper §8 discussion).
  class VisitedSet {
   public:
    VisitedSet(VisitedMode mode, SerializerStats& stats)
        : mode_(mode), stats_(stats) {}
    /// Index of obj, or -1.
    std::int32_t find(vm::Obj obj);
    void insert(vm::Obj obj, std::int32_t index);

   private:
    VisitedMode mode_;
    SerializerStats& stats_;
    std::vector<vm::Obj> linear_;
    std::unordered_map<vm::Obj, std::int32_t> hashed_;
  };

  // A primitive-array payload referenced in place instead of copied:
  // `meta_pos` is where the bytes belong inside the metadata stream.
  struct RawPart {
    std::size_t meta_pos;
    const std::byte* data;
    std::size_t len;
    vm::Obj obj;
  };

  Status serialize_impl(vm::Obj root, std::optional<Window> window,
                        ByteBuffer& out, std::vector<RawPart>* raw = nullptr);
  Status gather_impl(vm::Obj root, std::optional<Window> window,
                     GatherRep& out);
  /// Cached plan lookup; charges plan_builds on first compile of a type.
  const WirePlan& plan_of(const vm::MethodTable* mt);

  vm::Vm& vm_;
  VisitedMode mode_;
  bool use_plans_;
  WirePlanCache plans_;
  SerializerStats stats_;
};

}  // namespace motor::mp
