#include "motor/mp_direct.hpp"

#include "mpi/collectives.hpp"
#include "mpi/device.hpp"
#include "mpi/pt2pt.hpp"
#include "pal/clock.hpp"

namespace motor::mp {

/// RAII FCall discipline: GC poll on entry and exit plus the (small)
/// trusted-transition cost (§5.1). Every MPDirect entry point opens one.
class FCallScope {
 public:
  explicit FCallScope(MPDirect& direct) : direct_(direct) {
    ++direct_.fcall_invocations_;
    direct_.thread_.poll_gc();
    if (direct_.vm_.profile().fcall_transition_ns > 0) {
      pal::spin_for_ns(direct_.vm_.profile().fcall_transition_ns);
    }
  }
  ~FCallScope() { direct_.thread_.poll_gc(); }

  FCallScope(const FCallScope&) = delete;
  FCallScope& operator=(const FCallScope&) = delete;

 private:
  MPDirect& direct_;
};

MPDirect::MPDirect(vm::Vm& vm, vm::ManagedThread& thread, mpi::Comm comm,
                   MPDirectConfig config)
    : vm_(vm),
      thread_(thread),
      comm_(std::move(comm)),
      config_(config),
      policy_(vm.heap(), config.pin_mode),
      serializer_(vm, config.visited_mode, config.plan_cache),
      pool_(vm.heap()) {}

mpi::PollHook MPDirect::gc_poll_hook() {
  return [this] { thread_.poll_gc(); };
}

void MPDirect::fill_status(mpi::Comm& comm, const mpi::Request& req,
                           MpStatus* status) {
  if (status == nullptr) return;
  const mpi::MsgStatus st = mpi::Device::status_of(req);
  status->source = st.source >= 0 ? comm.peer_comm_rank(st.source) : st.source;
  status->tag = st.tag;
  status->error = st.error;
  status->count_bytes = static_cast<std::int64_t>(st.count_bytes);
}

Status MPDirect::blocking_transfer(const mpi::Request& req, vm::Obj obj,
                                   MpStatus* status) {
  if (req == nullptr) return Status(ErrorCode::kRankError, "invalid argument");
  mpi::Device& dev = comm_.device();

  // kAlwaysPin (the wrapper-bindings ablation) pins before anything else —
  // "pinning is performed for each MPI operation" (§8).
  bool pinned = false;
  if (policy_.mode() == PinMode::kAlwaysPin) {
    pinned = policy_.pin_for_polling_wait(obj);
  }

  // Fast path: "many blocking MPI operations complete quickly and never
  // need to enter the polling-wait. These operations do not need to pin
  // because without entering the polling-wait there is no opportunity for
  // garbage collection" (§7.4). Note: no poll_gc between posting and the
  // pin decision — that is what makes the deferred pin safe.
  for (int i = 0; i < config_.fast_attempts && !req->is_complete(); ++i) {
    dev.progress();
  }
  if (req->is_complete()) {
    if (pinned) policy_.unpin(obj);
    policy_.note_fast_completion(obj);
    fill_status(comm_, req, status);
    return Status(req->error);
  }

  // Slow path: pin (per policy) for the duration of the polling-wait.
  if (!pinned) pinned = policy_.pin_for_polling_wait(obj);
  dev.wait(req, gc_poll_hook());
  if (pinned) policy_.unpin(obj);
  fill_status(comm_, req, status);
  return Status(req->error);
}

Status MPDirect::send(vm::Obj obj, int dst, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view(obj, &view));
  mpi::Request req = mpi::isend(comm_, view.data, view.bytes, dst, tag);
  return blocking_transfer(req, obj, nullptr);
}

Status MPDirect::send(vm::Obj arr, std::int64_t offset, std::int64_t count,
                      int dst, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view_array(arr, offset, count, &view));
  mpi::Request req = mpi::isend(comm_, view.data, view.bytes, dst, tag);
  return blocking_transfer(req, arr, nullptr);
}

Status MPDirect::ssend(vm::Obj obj, int dst, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view(obj, &view));
  mpi::Request req = mpi::issend(comm_, view.data, view.bytes, dst, tag);
  return blocking_transfer(req, obj, nullptr);
}

Status MPDirect::recv(vm::Obj obj, int src, int tag, MpStatus* status) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view(obj, &view));
  mpi::Request req = mpi::irecv(comm_, view.data, view.bytes, src, tag);
  return blocking_transfer(req, obj, status);
}

Status MPDirect::recv(vm::Obj arr, std::int64_t offset, std::int64_t count,
                      int src, int tag, MpStatus* status) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view_array(arr, offset, count, &view));
  mpi::Request req = mpi::irecv(comm_, view.data, view.bytes, src, tag);
  return blocking_transfer(req, arr, status);
}

MPRequest MPDirect::isend(vm::Obj obj, int dst, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  if (!transport_view(obj, &view).is_ok()) return MPRequest{};
  mpi::Request req = mpi::isend(comm_, view.data, view.bytes, dst, tag);
  if (req != nullptr) policy_.protect_nonblocking(obj, req);
  return MPRequest{std::move(req)};
}

MPRequest MPDirect::isend(vm::Obj arr, std::int64_t offset, std::int64_t count,
                          int dst, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  if (!transport_view_array(arr, offset, count, &view).is_ok()) {
    return MPRequest{};
  }
  mpi::Request req = mpi::isend(comm_, view.data, view.bytes, dst, tag);
  if (req != nullptr) policy_.protect_nonblocking(arr, req);
  return MPRequest{std::move(req)};
}

MPRequest MPDirect::irecv(vm::Obj obj, int src, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  if (!transport_view(obj, &view).is_ok()) return MPRequest{};
  mpi::Request req = mpi::irecv(comm_, view.data, view.bytes, src, tag);
  if (req != nullptr) policy_.protect_nonblocking(obj, req);
  return MPRequest{std::move(req)};
}

MPRequest MPDirect::irecv(vm::Obj arr, std::int64_t offset, std::int64_t count,
                          int src, int tag) {
  FCallScope fcall(*this);
  TransportView view;
  if (!transport_view_array(arr, offset, count, &view).is_ok()) {
    return MPRequest{};
  }
  mpi::Request req = mpi::irecv(comm_, view.data, view.bytes, src, tag);
  if (req != nullptr) policy_.protect_nonblocking(arr, req);
  return MPRequest{std::move(req)};
}

Status MPDirect::wait(MPRequest& request, MpStatus* status) {
  FCallScope fcall(*this);
  if (!request.valid()) {
    return Status(ErrorCode::kRequestError, "wait on invalid request");
  }
  comm_.device().wait(request.req, gc_poll_hook());
  fill_status(comm_, request.req, status);
  return Status(request.req->error);
}

bool MPDirect::test(MPRequest& request, MpStatus* status) {
  FCallScope fcall(*this);
  if (!request.valid()) return false;
  if (!comm_.device().test(request.req)) return false;
  fill_status(comm_, request.req, status);
  return true;
}

bool MPDirect::iprobe(int src, int tag, MpStatus* status) {
  FCallScope fcall(*this);
  mpi::MsgStatus st;
  if (!mpi::iprobe(comm_, src, tag, &st)) return false;
  if (status != nullptr) {
    status->source = st.source;
    status->tag = st.tag;
    status->error = st.error;
    status->count_bytes = static_cast<std::int64_t>(st.count_bytes);
  }
  return true;
}

Status MPDirect::probe(int src, int tag, MpStatus* status) {
  FCallScope fcall(*this);
  const mpi::MsgStatus st = mpi::probe(comm_, src, tag, gc_poll_hook());
  if (status != nullptr) {
    status->source = st.source;
    status->tag = st.tag;
    status->error = st.error;
    status->count_bytes = static_cast<std::int64_t>(st.count_bytes);
  }
  return Status(st.error);
}

Status MPDirect::barrier() {
  FCallScope fcall(*this);
  return Status(mpi::barrier(comm_, gc_poll_hook()));
}

mpi::Comm MPDirect::dup_comm() {
  FCallScope fcall(*this);
  return mpi::comm_dup(comm_);
}

mpi::Comm MPDirect::split_comm(int color, int key) {
  FCallScope fcall(*this);
  return mpi::comm_split(comm_, color, key);
}

Status MPDirect::bcast(vm::Obj obj, int root) {
  FCallScope fcall(*this);
  TransportView view;
  MOTOR_RETURN_IF_ERROR(transport_view(obj, &view));
  // Collectives interleave many sends/receives on the buffer: pin for the
  // whole operation when the policy demands it.
  const bool pinned = policy_.pin_for_polling_wait(obj);
  const ErrorCode err =
      mpi::bcast(comm_, view.data, view.bytes, root, gc_poll_hook());
  if (pinned) policy_.unpin(obj);
  return Status(err);
}

}  // namespace motor::mp
