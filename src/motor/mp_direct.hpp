// MPDirect: the InternalCall boundary between the managed System.MP
// library and the Message Passing Core inside the runtime (paper §7.2/
// §7.3). Every operation follows the FCall discipline — GC poll on entry
// and exit, trusted (unmarshalled) transition — and implements:
//   * parameter checking and object-model integrity enforcement (§7.3),
//   * the pinning policy for blocking and non-blocking operations (§7.4),
//   * the extended OO operations over the custom serializer and the
//     static buffer pool (§7.5, bodies in oo_ops.cpp).
#pragma once

#include "motor/buffer_pool.hpp"
#include "motor/integrity.hpp"
#include "motor/motor_serializer.hpp"
#include "motor/pinning_policy.hpp"
#include "mpi/comm.hpp"
#include "mpi/pt2pt.hpp"
#include "vm/vm.hpp"

namespace motor::mp {

/// Managed-facing completion record (System.MP.Status analog). Ranks are
/// communicator ranks.
struct MpStatus {
  int source = -1;
  int tag = -1;
  ErrorCode error = ErrorCode::kSuccess;
  std::int64_t count_bytes = 0;
};

/// Handle for a non-blocking Motor operation. No unpin is ever required:
/// young buffers are protected by a conditional pin the collector retires
/// by itself once the request completes (§4.3).
struct MPRequest {
  mpi::Request req;
  [[nodiscard]] bool valid() const noexcept { return req != nullptr; }
};

/// Counters for the batched (single-message) delivery hooks below —
/// the parameter-server comm thread's traffic. Distinct from the OO ops'
/// two-message size+payload protocol: a batch rides the wire as ONE
/// message whose framing lives inside the payload, so per-message device
/// overhead (header, packetization, progress wakeups) is paid once per
/// batch instead of once per record.
struct BatchStats {
  std::uint64_t batches_sent = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t batch_bytes_sent = 0;
  std::uint64_t batch_bytes_received = 0;
  std::uint64_t probe_hits = 0;
  std::uint64_t probe_misses = 0;
};

struct MPDirectConfig {
  PinMode pin_mode = PinMode::kMotorPolicy;
  VisitedMode visited_mode = VisitedMode::kHashed;
  /// Compiled per-type wire plans (wire_plan.hpp); false = the ablation
  /// path that re-walks FieldDescs per record, as the paper's serializer
  /// did. The wire format is identical either way.
  bool plan_cache = true;
  /// Progress attempts before a blocking op gives up on the fast path and
  /// enters the (pin + polling-wait) slow path.
  int fast_attempts = 2;
};

class MPDirect {
 public:
  MPDirect(vm::Vm& vm, vm::ManagedThread& thread, mpi::Comm comm,
           MPDirectConfig config = MPDirectConfig{});

  MPDirect(const MPDirect&) = delete;
  MPDirect& operator=(const MPDirect&) = delete;

  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int size() const { return comm_.size(); }
  [[nodiscard]] mpi::Comm& comm() noexcept { return comm_; }
  [[nodiscard]] PinningPolicy& policy() noexcept { return policy_; }
  [[nodiscard]] MotorSerializer& serializer() noexcept { return serializer_; }
  [[nodiscard]] BufferPool& pool() noexcept { return pool_; }
  [[nodiscard]] vm::Vm& vm() noexcept { return vm_; }
  [[nodiscard]] vm::ManagedThread& thread() noexcept { return thread_; }

  // ---- regular MPI operations (§4.2.1) ----
  Status send(vm::Obj obj, int dst, int tag);
  Status send(vm::Obj arr, std::int64_t offset, std::int64_t count, int dst,
              int tag);
  Status ssend(vm::Obj obj, int dst, int tag);
  Status recv(vm::Obj obj, int src, int tag, MpStatus* status = nullptr);
  Status recv(vm::Obj arr, std::int64_t offset, std::int64_t count, int src,
              int tag, MpStatus* status = nullptr);
  MPRequest isend(vm::Obj obj, int dst, int tag);
  MPRequest isend(vm::Obj arr, std::int64_t offset, std::int64_t count,
                  int dst, int tag);
  MPRequest irecv(vm::Obj obj, int src, int tag);
  MPRequest irecv(vm::Obj arr, std::int64_t offset, std::int64_t count,
                  int src, int tag);
  Status wait(MPRequest& request, MpStatus* status = nullptr);
  bool test(MPRequest& request, MpStatus* status = nullptr);

  // ---- probing ----
  bool iprobe(int src, int tag, MpStatus* status = nullptr);
  Status probe(int src, int tag, MpStatus* status = nullptr);

  // ---- regular collectives on integrity-checked objects ----
  Status barrier();
  Status bcast(vm::Obj obj, int root);

  // ---- communicator management (§7: "selected communicator routines") ----
  /// MPI_Comm_dup: same group, isolated context. Collective.
  mpi::Comm dup_comm();
  /// MPI_Comm_split. Collective; color < 0 yields a null comm.
  mpi::Comm split_comm(int color, int key);

  // ---- extended object-oriented operations (§4.2.2, oo_ops.cpp) ----
  Status osend(vm::Obj obj, int dst, int tag);
  Status osend(vm::Obj arr, std::int64_t offset, std::int64_t count, int dst,
               int tag);
  Status orecv(int src, int tag, vm::Obj* out, MpStatus* status = nullptr);
  Status obcast(vm::Obj* inout, int root);
  /// Root scatters `arr` (object or primitive array) evenly; every rank
  /// receives its piece in *my_piece. Requires size() | length.
  Status oscatter(vm::Obj arr, int root, vm::Obj* my_piece);
  /// Every rank contributes an array; root receives the fused array.
  Status ogather(vm::Obj my_piece, int root, vm::Obj* merged);
  /// OGather to rank 0 followed by an OBcast of the fusion: every rank
  /// ends with the complete array (extension beyond the paper's list).
  Status oallgather(vm::Obj my_piece, vm::Obj* merged);

  // ---- batched delivery hooks (batch_io.cpp) ----
  //
  // Native-thread entry points for the parameter-server comm thread
  // (src/ps): raw byte batches, single-message framing, NO FCall/GC
  // discipline and NO pinning — callers move only native (pooled)
  // buffers, never managed objects. While a comm thread drives these, the
  // managed owner thread must not use this MPDirect (or any other comm
  // sharing its device): the device keeps its single-driver rule, the
  // driver just changes for the attach window.

  /// Start sending `bytes` as one wire message. The storage must stay
  /// valid until the request completes.
  MPRequest isend_batch(ByteSpan bytes, int dst, int tag);
  /// Drive progress once; true when `request` completed (status filled).
  bool test_batch(MPRequest& request, MpStatus* status = nullptr);
  /// Probe (any source) for a batch on `tag`; when one is available,
  /// receive it whole into `into` (resized to the message) and fill
  /// `status`. False when nothing is pending.
  bool try_recv_batch(ByteBuffer& into, int tag, MpStatus* status = nullptr);
  /// One pump of the device progress engine.
  void progress_batch();
  /// Peers whose device flow newly failed since the last call (see
  /// Device::take_failed_peers). Lets a polling client with no pending
  /// operations observe peer death instead of waiting out its timeout.
  std::vector<int> take_failed_peers();
  [[nodiscard]] const BatchStats& batch_stats() const noexcept {
    return batch_stats_;
  }

  [[nodiscard]] std::uint64_t fcall_invocations() const noexcept {
    return fcall_invocations_;
  }

 private:
  friend class FCallScope;

  Status blocking_transfer(const mpi::Request& req, vm::Obj obj,
                           MpStatus* status);
  static void fill_status(mpi::Comm& comm, const mpi::Request& req,
                          MpStatus* status);
  mpi::PollHook gc_poll_hook();

  // OO helpers (oo_ops.cpp).
  Status send_buffer(ByteBuffer& buf, int dst, int tag);
  Status recv_buffer(ByteBuffer& buf, int src, int tag, MpStatus* status);
  /// Gathered OO send: pins the rep's backing objects, pushes size then
  /// the gather list straight to the wire (no flattening), unpins.
  Status send_gathered(GatherRep& rep, int dst, int tag);

  vm::Vm& vm_;
  vm::ManagedThread& thread_;
  mpi::Comm comm_;
  MPDirectConfig config_;
  PinningPolicy policy_;
  MotorSerializer serializer_;
  BufferPool pool_;
  std::uint64_t fcall_invocations_ = 0;
  BatchStats batch_stats_;
};

}  // namespace motor::mp
