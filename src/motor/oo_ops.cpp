// Extended object-oriented operations (paper §4.2.2/§7.5): OSend/ORecv/
// OBcast/OScatter/OGather over the Motor custom serializer and the static
// buffer pool.
//
// Send paths use the GATHERED representation: metadata segments plus
// in-place references to large primitive-array payloads, pushed to the
// wire as one scatter-gather message with no flattening. The gather spans
// alias the managed heap, so — unlike the flat path, which copies into
// native buffers and needs no pinning (§7.4) — the backing objects are
// pinned for the duration of the send (span pointers are captured at
// serialize time, before any GC poll can run).
//
// Wire protocol per transfer: the byte size first, then the serialized
// representation — "Before sending the serialized buffer, Motor sends the
// size of the buffer. This ensures the receiver can prepare a sufficient
// buffer" (§7.5).
#include "motor/mp_direct.hpp"
#include "mpi/device.hpp"
#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "pal/clock.hpp"

namespace motor::mp {

namespace {

/// Local FCall discipline (see mp_direct.cpp's FCallScope; duplicated here
/// because the class is file-local there by design — entry points in this
/// TU charge the same transition).
class OoFCallScope {
 public:
  OoFCallScope(vm::Vm& vm, vm::ManagedThread& thread)
      : vm_(vm), thread_(thread) {
    thread_.poll_gc();
    if (vm_.profile().fcall_transition_ns > 0) {
      pal::spin_for_ns(vm_.profile().fcall_transition_ns);
    }
  }
  ~OoFCallScope() { thread_.poll_gc(); }

 private:
  vm::Vm& vm_;
  vm::ManagedThread& thread_;
};

}  // namespace

Status MPDirect::send_buffer(ByteBuffer& buf, int dst, int tag) {
  const std::uint64_t size = buf.size();
  ErrorCode err = mpi::send(comm_, &size, sizeof size, dst, tag,
                            gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);
  return Status(mpi::send(comm_, buf.data(), buf.size(), dst, tag,
                          gc_poll_hook()));
}

Status MPDirect::recv_buffer(ByteBuffer& buf, int src, int tag,
                             MpStatus* status) {
  std::uint64_t size = 0;
  mpi::MsgStatus size_st;
  ErrorCode err = mpi::recv(comm_, &size, sizeof size, src, tag, &size_st,
                            gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);

  // Pin down the actual peer/tag so a wildcard receive pairs the payload
  // with the size message it belongs to (per-peer FIFO guarantees order).
  const int actual_src = size_st.source;
  const int actual_tag = size_st.tag;
  buf.clear();
  buf.resize(size);
  mpi::MsgStatus payload_st;
  err = mpi::recv(comm_, buf.data(), buf.size(), actual_src, actual_tag,
                  &payload_st, gc_poll_hook());
  if (status != nullptr) {
    status->source = actual_src;
    status->tag = actual_tag;
    status->error = err;
    status->count_bytes = static_cast<std::int64_t>(size);
  }
  return Status(err);
}

Status MPDirect::send_gathered(GatherRep& rep, int dst, int tag) {
  // Pin BEFORE the first GC poll after serialization: the gather spans
  // were captured pointing at the arrays' current addresses, so a moving
  // collection between here and the drain would invalidate them. The
  // deferred-pin scheme of the flat blocking path does not apply.
  std::vector<vm::Obj> pinned;
  policy_.pin_backing(rep.backing, &pinned);
  const std::uint64_t size = rep.total_bytes();
  ErrorCode err =
      mpi::send(comm_, &size, sizeof size, dst, tag, gc_poll_hook());
  if (err == ErrorCode::kSuccess) {
    err = mpi::send_v(comm_, rep.spans, dst, tag, gc_poll_hook());
  }
  policy_.unpin_backing(pinned);
  return Status(err);
}

Status MPDirect::osend(vm::Obj obj, int dst, int tag) {
  OoFCallScope fcall(vm_, thread_);
  // The gather metadata stream recycles through the same static pool as
  // the flat OO buffers and the parameter-server coalescer: a warm pool
  // buffer keeps its capacity, so steady-state osend allocates nothing.
  GatherRep rep;
  rep.meta = pool_.take();
  Status st = serializer_.serialize_gather(obj, rep);
  if (st.is_ok()) st = send_gathered(rep, dst, tag);
  pool_.put(std::move(rep.meta));
  return st;
}

Status MPDirect::osend(vm::Obj arr, std::int64_t offset, std::int64_t count,
                       int dst, int tag) {
  OoFCallScope fcall(vm_, thread_);
  GatherRep rep;
  rep.meta = pool_.take();
  Status st = serializer_.serialize_window_gather(arr, offset, count, rep);
  if (st.is_ok()) st = send_gathered(rep, dst, tag);
  pool_.put(std::move(rep.meta));
  return st;
}

Status MPDirect::orecv(int src, int tag, vm::Obj* out, MpStatus* status) {
  OoFCallScope fcall(vm_, thread_);
  PooledBuffer buf = pool_.acquire();
  MOTOR_RETURN_IF_ERROR(recv_buffer(*buf, src, tag, status));
  buf->seek(0);
  return serializer_.deserialize(*buf, thread_, out);
}

Status MPDirect::obcast(vm::Obj* inout, int root) {
  OoFCallScope fcall(vm_, thread_);
  PooledBuffer buf = pool_.acquire();
  std::uint64_t size = 0;
  if (comm_.rank() == root) {
    MOTOR_RETURN_IF_ERROR(serializer_.serialize(*inout, *buf));
    size = buf->size();
  }
  ErrorCode err = mpi::bcast(comm_, &size, sizeof size, root, gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);
  if (comm_.rank() != root) buf->resize(size);
  err = mpi::bcast(comm_, buf->data(), size, root, gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);
  if (comm_.rank() != root) {
    buf->seek(0);
    return serializer_.deserialize(*buf, thread_, inout);
  }
  return Status::ok();
}

Status MPDirect::oscatter(vm::Obj arr, int root, vm::Obj* my_piece) {
  OoFCallScope fcall(vm_, thread_);
  const int n = comm_.size();
  const int tag = comm_.next_collective_tag();

  if (comm_.rank() == root) {
    if (arr == nullptr || !vm::obj_mt(arr)->is_array()) {
      return Status(ErrorCode::kTypeError, "OScatter requires an array");
    }
    const std::int64_t length = vm::array_length(arr);
    if (length % n != 0) {
      return Status(ErrorCode::kCountError,
                    "OScatter requires rank-count-divisible arrays");
    }
    // "For scatter operations the serialization mechanism automatically
    // splits the array and flattens referenced objects" (§7.5). Remote
    // pieces go out gathered — each window's payload is referenced in
    // place, serialized immediately before its send so the span pointers
    // meet no GC poll unpinned. The root's own piece is serialized flat:
    // it is deserialized locally and never touches the wire.
    const std::int64_t per_rank = length / n;
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      GatherRep piece;
      piece.meta = pool_.take();  // same warm buffer cycles every iteration
      Status st = serializer_.serialize_window_gather(arr, per_rank * r,
                                                      per_rank, piece);
      if (st.is_ok()) st = send_gathered(piece, r, tag);
      pool_.put(std::move(piece.meta));
      MOTOR_RETURN_IF_ERROR(st);
    }
    PooledBuffer mine = pool_.acquire();
    MOTOR_RETURN_IF_ERROR(serializer_.serialize_array_window(
        arr, per_rank * root, per_rank, *mine));
    mine->seek(0);
    return serializer_.deserialize(*mine, thread_, my_piece);
  }

  std::uint64_t size = 0;
  ErrorCode err =
      mpi::recv(comm_, &size, sizeof size, root, tag, nullptr, gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);
  PooledBuffer buf = pool_.acquire();
  buf->resize(size);
  err = mpi::recv(comm_, buf->data(), size, root, tag, nullptr,
                  gc_poll_hook());
  if (err != ErrorCode::kSuccess) return Status(err);
  buf->seek(0);
  return serializer_.deserialize(*buf, thread_, my_piece);
}

Status MPDirect::ogather(vm::Obj my_piece, int root, vm::Obj* merged) {
  OoFCallScope fcall(vm_, thread_);
  const int n = comm_.size();
  const int tag = comm_.next_collective_tag();

  if (my_piece == nullptr || !vm::obj_mt(my_piece)->is_array()) {
    return Status(ErrorCode::kTypeError, "OGather requires arrays");
  }

  if (comm_.rank() != root) {
    GatherRep rep;
    rep.meta = pool_.take();
    Status st = serializer_.serialize_window_gather(
        my_piece, 0, vm::array_length(my_piece), rep);
    if (st.is_ok()) st = send_gathered(rep, root, tag);
    pool_.put(std::move(rep.meta));
    return st;
  }

  // Root: collect pieces in rank order, then fuse — "the deserialization
  // mechanism takes many split representations and reconstructs them into
  // a single array" (§7.5).
  std::vector<ByteBuffer> pieces(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    ByteBuffer& piece = pieces[static_cast<std::size_t>(r)];
    if (r == root) {
      MOTOR_RETURN_IF_ERROR(serializer_.serialize_array_window(
          my_piece, 0, vm::array_length(my_piece), piece));
      continue;
    }
    std::uint64_t size = 0;
    ErrorCode err =
        mpi::recv(comm_, &size, sizeof size, r, tag, nullptr, gc_poll_hook());
    if (err != ErrorCode::kSuccess) return Status(err);
    piece.resize(size);
    err = mpi::recv(comm_, piece.data(), size, r, tag, nullptr,
                    gc_poll_hook());
    if (err != ErrorCode::kSuccess) return Status(err);
  }
  for (ByteBuffer& piece : pieces) piece.seek(0);
  return serializer_.deserialize_merge(pieces, thread_, merged);
}

Status MPDirect::oallgather(vm::Obj my_piece, vm::Obj* merged) {
  vm::Obj fused = nullptr;
  MOTOR_RETURN_IF_ERROR(ogather(my_piece, 0, &fused));
  if (comm_.rank() == 0) {
    vm::GcRoot fused_root(thread_, fused);
    MOTOR_RETURN_IF_ERROR(obcast(&fused, 0));
    *merged = fused_root.get();
    return Status::ok();
  }
  MOTOR_RETURN_IF_ERROR(obcast(&fused, 0));
  *merged = fused;
  return Status::ok();
}

}  // namespace motor::mp
