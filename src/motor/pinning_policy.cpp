#include "motor/pinning_policy.hpp"

namespace motor::mp {

bool PinningPolicy::pin_for_polling_wait(vm::Obj obj) {
  if (obj == nullptr) return false;
  switch (mode_) {
    case PinMode::kNeverPin:
      return false;
    case PinMode::kAlwaysPin:
      heap_.pin(obj);
      ++stats_.blocking_pinned;
      return true;
    case PinMode::kMotorPolicy:
      // "Motor checks the object's internal memory address against the
      // boundaries of the younger generation" (§7.4).
      if (!heap_.in_young(obj)) {
        ++stats_.blocking_elder_skip;
        return false;
      }
      heap_.pin(obj);
      ++stats_.blocking_pinned;
      return true;
  }
  return false;
}

void PinningPolicy::note_fast_completion(vm::Obj obj) {
  if (obj == nullptr) return;
  if (mode_ == PinMode::kMotorPolicy) ++stats_.blocking_fast_path;
}

void PinningPolicy::protect_nonblocking(vm::Obj obj, const mpi::Request& req) {
  if (obj == nullptr) return;
  switch (mode_) {
    case PinMode::kNeverPin:
      return;
    case PinMode::kAlwaysPin:
      // Wrapper-style behaviour: pin now; release via a conditional entry
      // so this mode needs no explicit unpin either (it measures the
      // up-front pin cost, not a different lifetime).
      heap_.add_conditional_pin(obj, req);
      ++stats_.conditional_registered;
      return;
    case PinMode::kMotorPolicy:
      if (!heap_.in_young(obj)) {
        ++stats_.nonblocking_elder_skip;
        return;
      }
      heap_.add_conditional_pin(obj, req);
      ++stats_.conditional_registered;
      return;
  }
}

void PinningPolicy::pin_backing(std::span<const vm::Obj> objs,
                                std::vector<vm::Obj>* pinned) {
  for (vm::Obj obj : objs) {
    if (obj == nullptr) continue;
    switch (mode_) {
      case PinMode::kNeverPin:
        continue;
      case PinMode::kAlwaysPin:
        break;
      case PinMode::kMotorPolicy:
        if (!heap_.in_young(obj)) {
          ++stats_.backing_elder_skip;
          continue;
        }
        break;
    }
    heap_.pin(obj);
    ++stats_.backing_pinned;
    if (pinned != nullptr) pinned->push_back(obj);
  }
}

void PinningPolicy::unpin_backing(std::span<const vm::Obj> pinned) {
  for (vm::Obj obj : pinned) heap_.unpin(obj);
}

}  // namespace motor::mp
