// The Motor pinning policy — paper §4.3/§7.4.
//
// Pinning is required only when (a) a collection might occur during the
// transport and (b) the object could move in that collection. The policy:
//   * Elder-generation objects never move → never pinned.
//   * Blocking operations on young objects DEFER the pin until the
//     operation actually enters its polling-wait; fast-completing
//     operations never pin because there is no GC opportunity before
//     completion.
//   * Non-blocking operations on young objects register a CONDITIONAL pin
//     with the collector, resolved against request status at mark time —
//     no unpin call is ever needed.
//
// kAlwaysPin and kNeverPin exist for the ablation study (bench A1):
// kAlwaysPin is what the wrapper bindings do; kNeverPin demonstrates why
// the policy is not merely an optimization (GC corrupts in-flight
// buffers — tests assert this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/request.hpp"
#include "vm/heap.hpp"

namespace motor::mp {

enum class PinMode {
  kMotorPolicy,
  kAlwaysPin,
  kNeverPin,
};

struct PinStats {
  std::uint64_t blocking_fast_path = 0;   // completed before polling-wait
  std::uint64_t blocking_elder_skip = 0;  // already promoted, no pin
  std::uint64_t blocking_pinned = 0;      // deferred pin taken
  std::uint64_t conditional_registered = 0;
  std::uint64_t nonblocking_elder_skip = 0;
  std::uint64_t backing_pinned = 0;       // gathered-send backing objects
  std::uint64_t backing_elder_skip = 0;
};

class PinningPolicy {
 public:
  PinningPolicy(vm::ManagedHeap& heap, PinMode mode = PinMode::kMotorPolicy)
      : heap_(heap), mode_(mode) {}

  [[nodiscard]] PinMode mode() const noexcept { return mode_; }
  [[nodiscard]] const PinStats& stats() const noexcept { return stats_; }

  /// Blocking-path decision once the operation failed to complete on its
  /// first progress attempts and is about to enter the polling-wait.
  /// Returns true if the object was pinned (caller unpins after the wait).
  bool pin_for_polling_wait(vm::Obj obj);

  /// Blocking-path bookkeeping when the operation completed before any
  /// polling-wait (no pin was ever needed).
  void note_fast_completion(vm::Obj obj);

  /// Non-blocking path: arrange protection for the request's lifetime.
  void protect_nonblocking(vm::Obj obj, const mpi::Request& req);

  void unpin(vm::Obj obj) { heap_.unpin(obj); }

  /// Gathered-send path: a GatherRep's spans alias these heap objects, and
  /// the span POINTERS were captured at serialize time — so unlike the
  /// deferred blocking-path pin, the pin must be taken before the *next*
  /// GC poll, not merely before a polling-wait. Objects actually pinned
  /// are appended to `pinned` (elder objects never move and are skipped
  /// under kMotorPolicy); pass that list to unpin_backing afterwards.
  void pin_backing(std::span<const vm::Obj> objs,
                   std::vector<vm::Obj>* pinned);

  void unpin_backing(std::span<const vm::Obj> pinned);

 private:
  vm::ManagedHeap& heap_;
  PinMode mode_;
  PinStats stats_;
};

}  // namespace motor::mp
