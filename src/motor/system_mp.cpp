#include "motor/system_mp.hpp"

// Communicator is a header-only forwarding facade over MPDirect (the
// managed System.MP layer is deliberately thin, paper §7.2); this TU
// anchors the library target.
namespace motor::mp {}
