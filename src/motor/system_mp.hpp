// System.MP — the managed message-passing library surface (paper §7.2).
//
// In Motor this layer is C# code in the System.MP namespace whose every
// member forwards to an MPDirect InternalCall; here it is the public C++
// facade with the same shape: the paper's simplified MPI bindings
// (§4.2.1 — no count, no MPI_Datatype, integrity-protected) plus the
// extended object-oriented operations (§4.2.2 — the "O" prefix family).
//
// Naming follows the paper's bindings (Send/Recv/OSend/ORecv...) so the
// examples read like Figure 3/4.
#pragma once

#include <memory>

#include "motor/mp_direct.hpp"

namespace motor::mp {

inline constexpr int kAnySource = mpi::kAnySource;
inline constexpr int kAnyTag = mpi::kAnyTag;

class Communicator {
 public:
  /// Null communicator (the result of Split with a negative color).
  Communicator() = default;

  Communicator(vm::Vm& vm, vm::ManagedThread& thread, mpi::Comm comm,
               MPDirectConfig config = MPDirectConfig{})
      : direct_(std::make_unique<MPDirect>(vm, thread, std::move(comm),
                                           config)) {}

  Communicator(Communicator&&) = default;
  Communicator& operator=(Communicator&&) = default;

  [[nodiscard]] int Rank() const { return direct_->rank(); }
  [[nodiscard]] int Size() const { return direct_->size(); }

  // ---- regular MPI operations (Figure 3) ----
  Status Send(vm::Obj obj, int dest, int tag) {
    return direct_->send(obj, dest, tag);
  }
  Status Send(vm::Obj arr, std::int64_t offset, std::int64_t count, int dest,
              int tag) {
    return direct_->send(arr, offset, count, dest, tag);
  }
  Status Ssend(vm::Obj obj, int dest, int tag) {
    return direct_->ssend(obj, dest, tag);
  }
  Status Recv(vm::Obj obj, int source, int tag, MpStatus* status = nullptr) {
    return direct_->recv(obj, source, tag, status);
  }
  Status Recv(vm::Obj arr, std::int64_t offset, std::int64_t count, int source,
              int tag, MpStatus* status = nullptr) {
    return direct_->recv(arr, offset, count, source, tag, status);
  }
  MPRequest ISend(vm::Obj obj, int dest, int tag) {
    return direct_->isend(obj, dest, tag);
  }
  MPRequest ISend(vm::Obj arr, std::int64_t offset, std::int64_t count,
                  int dest, int tag) {
    return direct_->isend(arr, offset, count, dest, tag);
  }
  MPRequest IRecv(vm::Obj obj, int source, int tag) {
    return direct_->irecv(obj, source, tag);
  }
  MPRequest IRecv(vm::Obj arr, std::int64_t offset, std::int64_t count,
                  int source, int tag) {
    return direct_->irecv(arr, offset, count, source, tag);
  }
  Status Wait(MPRequest& request, MpStatus* status = nullptr) {
    return direct_->wait(request, status);
  }
  bool Test(MPRequest& request, MpStatus* status = nullptr) {
    return direct_->test(request, status);
  }
  Status Barrier() { return direct_->barrier(); }
  Status Bcast(vm::Obj obj, int root) { return direct_->bcast(obj, root); }
  bool IProbe(int source, int tag, MpStatus* status = nullptr) {
    return direct_->iprobe(source, tag, status);
  }
  Status Probe(int source, int tag, MpStatus* status = nullptr) {
    return direct_->probe(source, tag, status);
  }

  /// Clone this communicator with an isolated context (collective); the
  /// clone shares the VM and the calling thread.
  Communicator Dup() {
    return Communicator(direct_->vm(), direct_->thread(), direct_->dup_comm());
  }
  /// Partition by color (collective); returns a null-comm Communicator for
  /// color < 0 — check IsNull() before use.
  Communicator Split(int color, int key) {
    mpi::Comm sub = direct_->split_comm(color, key);
    if (sub.is_null()) return Communicator();
    return Communicator(direct_->vm(), direct_->thread(), std::move(sub));
  }
  [[nodiscard]] bool IsNull() const noexcept { return direct_ == nullptr; }

  // ---- extended object-oriented operations (Figure 4) ----
  Status OSend(vm::Obj obj, int dest, int tag) {
    return direct_->osend(obj, dest, tag);
  }
  Status OSend(vm::Obj arr, std::int64_t offset, std::int64_t numcomponents,
               int dest, int tag) {
    return direct_->osend(arr, offset, numcomponents, dest, tag);
  }
  /// Returns the reconstructed object (null on error; see status).
  vm::Obj ORecv(int source, int tag, MpStatus* status = nullptr) {
    vm::Obj out = nullptr;
    Status st = direct_->orecv(source, tag, &out, status);
    if (!st.is_ok() && status != nullptr) status->error = st.code();
    return st.is_ok() ? out : nullptr;
  }
  Status OBcast(vm::Obj* inout, int root) {
    return direct_->obcast(inout, root);
  }
  Status OScatter(vm::Obj arr, int root, vm::Obj* my_piece) {
    return direct_->oscatter(arr, root, my_piece);
  }
  Status OGather(vm::Obj my_piece, int root, vm::Obj* merged) {
    return direct_->ogather(my_piece, root, merged);
  }
  Status OAllgather(vm::Obj my_piece, vm::Obj* merged) {
    return direct_->oallgather(my_piece, merged);
  }

  /// The runtime-internal layer (tests, benchmarks, diagnostics).
  [[nodiscard]] MPDirect& direct() noexcept { return *direct_; }

 private:
  std::unique_ptr<MPDirect> direct_;
};

}  // namespace motor::mp
