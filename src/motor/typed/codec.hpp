// The typed Motor-stream codec: serialize/deserialize native C++ values
// BYTE-IDENTICALLY to the reflective serializer (§7.5 wire format), with
// the whole plan known at compile time.
//
// A `std::span<const float>` encodes to exactly the stream the managed
// serializer produces for a `float[]` heap array; a `std::span<const T>`
// of a MOTOR_TYPED_STRUCT-described T encodes to the stream of the
// managed `T[]` object array (type table "T[]" + "T", array record of
// element ids, then one record per element executing the wire plan). The
// identity is load-bearing, not cosmetic: a typed sender can talk to a
// reflective receiver (e.g. the parameter server deserializing PutObject
// payloads into its own VM) and the property suite diffs the bytes.
//
// Zero overhead claims, concretely:
//   * zero reflection       — no MethodTable, no FieldDesc, no VM at all;
//   * zero plan lookup      — TypedPlan<T> is a constexpr table;
//   * zero discovery pass   — counts and sizes are closed-form, so every
//                             serialize does exactly ONE reserve();
//   * zero intermediate copy— contiguous payloads memcpy straight from
//                             the caller's storage, and the gather
//                             variants reference them in place (SpanVec).
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/spanvec.hpp"
#include "motor/typed/plan.hpp"
#include "motor/typed/traits.hpp"
#include "motor/wire_ops.hpp"
#include "vm/serial_util.hpp"

namespace motor::typed {

/// Payloads at or above this many bytes are referenced in place by the
/// gather variants instead of copied into the metadata buffer (same
/// threshold as MotorSerializer::kGatherInlineMax).
inline constexpr std::size_t kGatherInlineMax = 256;

namespace detail {

/// Wire type-name of a scalar array: e.g. "float[]", "int32[]".
template <motor_scalar T>
std::string scalar_array_name() {
  std::string name(vm::element_kind_name(kind_of<T>()));
  name += "[]";
  return name;
}

template <motor_described T>
std::string object_array_name() {
  std::string name(Describe<std::remove_cv_t<T>>::name);
  name += "[]";
  return name;
}

inline Status check_magic(ByteBuffer& in) {
  std::uint32_t magic = 0;
  MOTOR_RETURN_IF_ERROR(in.get(magic));
  if (magic != mp::kWireMagic) {
    return Status(ErrorCode::kSerialization, "bad Motor serializer magic");
  }
  return Status::ok();
}

inline Status expect_name(ByteBuffer& in, std::string_view want) {
  std::string got;
  MOTOR_RETURN_IF_ERROR(vm::detail::read_string(in, got));
  if (got != want) {
    return Status(ErrorCode::kSerialization,
                  "typed stream type mismatch: stream carries '" + got +
                      "', caller expects '" + std::string(want) + "'");
  }
  return Status::ok();
}

/// Read and validate the array record header (tref 0, rank-1 shape);
/// returns the element count through `len`.
inline Status read_array_header(ByteBuffer& in, std::int64_t* len) {
  std::uint16_t tref = 0;
  MOTOR_RETURN_IF_ERROR(in.get(tref));
  if (tref != 0) {
    return Status(ErrorCode::kSerialization, "typed stream: root is not id 0");
  }
  std::uint8_t has_dims = 0;
  MOTOR_RETURN_IF_ERROR(in.get(has_dims));
  if (has_dims != 0) {
    return Status(ErrorCode::kSerialization,
                  "typed decode of a multidimensional array");
  }
  MOTOR_RETURN_IF_ERROR(in.get(*len));
  if (*len < 0) {
    return Status(ErrorCode::kSerialization, "negative length");
  }
  return Status::ok();
}

}  // namespace detail

// ---- scalar spans (managed twin: a primitive heap array) --------------

/// Exact stream size serialize_span() will produce for `count` elements —
/// closed form, so callers (and the PS wire) can budget buffers without a
/// dry run.
template <motor_scalar T>
std::size_t span_stream_bytes(std::size_t count) {
  // magic + type count + (len + "kind[]") + object count + root id
  // + array record (tref + shape tag + i64 len + payload).
  const std::size_t name_len = detail::scalar_array_name<T>().size();
  return 4 + 2 + (2 + name_len) + 4 + 4 + (2 + 1 + 8 + count * sizeof(T));
}

/// Encode `data` exactly as the reflective serializer encodes the managed
/// primitive array holding the same elements. One reserve, one memcpy.
template <motor_scalar T>
void serialize_span(std::span<const T> data, ByteBuffer& out) {
  const std::string name = detail::scalar_array_name<T>();
  const std::size_t payload = data.size() * sizeof(T);
  out.reserve(out.size() + 4 + 2 + (2 + name.size()) + 4 + 4 +
              (2 + 1 + 8 + payload));
  out.put_u32(mp::kWireMagic);
  out.put_u16(1);
  vm::detail::write_string(out, name);
  out.put_u32(1);  // one object: the array
  out.put_i32(0);  // root id
  out.put_u16(0);  // array type ref
  out.put_u8(0);   // rank-1 shape
  out.put_i64(static_cast<std::int64_t>(data.size()));
  out.append_raw(data.data(), payload);
}

/// Gathered serialize_span: metadata lands in `meta`, and payloads >=
/// kGatherInlineMax are referenced in place — `sv`'s concatenation is
/// byte-identical to serialize_span(). `meta` must not grow afterwards
/// (the spans alias it), and `data` must stay valid until the send drains.
template <motor_scalar T>
void serialize_span_gather(std::span<const T> data, ByteBuffer& meta,
                           SpanVec& sv) {
  const std::size_t payload = data.size() * sizeof(T);
  if (payload < kGatherInlineMax) {
    serialize_span(data, meta);
    sv.append(meta.span());
    return;
  }
  const std::string name = detail::scalar_array_name<T>();
  meta.reserve(meta.size() + 4 + 2 + (2 + name.size()) + 4 + 4 + (2 + 1 + 8));
  meta.put_u32(mp::kWireMagic);
  meta.put_u16(1);
  vm::detail::write_string(meta, name);
  meta.put_u32(1);
  meta.put_i32(0);
  meta.put_u16(0);
  meta.put_u8(0);
  meta.put_i64(static_cast<std::int64_t>(data.size()));
  sv.append(meta.span());
  sv.append(as_bytes_of(data.data(), payload));
}

/// Decode a scalar-array stream into `out` (resized to the stream's
/// element count). Accepts streams from serialize_span() or from the
/// reflective serializer — they are the same bytes.
template <motor_scalar T>
Status deserialize_span(ByteBuffer& in, std::vector<T>& out) {
  MOTOR_RETURN_IF_ERROR(detail::check_magic(in));
  std::uint16_t type_count = 0;
  MOTOR_RETURN_IF_ERROR(in.get(type_count));
  if (type_count != 1) {
    return Status(ErrorCode::kSerialization,
                  "typed scalar decode: stream carries multiple types");
  }
  MOTOR_RETURN_IF_ERROR(
      detail::expect_name(in, detail::scalar_array_name<T>()));
  std::uint32_t object_count = 0;
  std::int32_t root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(object_count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  if (object_count != 1 || root_id != 0) {
    return Status(ErrorCode::kSerialization,
                  "typed scalar decode: not a single-array stream");
  }
  std::int64_t len = 0;
  MOTOR_RETURN_IF_ERROR(detail::read_array_header(in, &len));
  const std::size_t payload = static_cast<std::size_t>(len) * sizeof(T);
  if (payload > in.remaining()) {
    return Status(ErrorCode::kSerialization, "announced array exceeds stream");
  }
  out.resize(static_cast<std::size_t>(len));
  return in.read(as_writable_bytes_of(out.data(), payload));
}

/// Decode into caller-owned storage; the stream's element count must
/// equal `out.size()` exactly (the Pull-into-preallocated-buffer path).
template <motor_scalar T>
Status deserialize_span_into(ByteBuffer& in, std::span<T> out) {
  MOTOR_RETURN_IF_ERROR(detail::check_magic(in));
  std::uint16_t type_count = 0;
  MOTOR_RETURN_IF_ERROR(in.get(type_count));
  if (type_count != 1) {
    return Status(ErrorCode::kSerialization,
                  "typed scalar decode: stream carries multiple types");
  }
  MOTOR_RETURN_IF_ERROR(
      detail::expect_name(in, detail::scalar_array_name<T>()));
  std::uint32_t object_count = 0;
  std::int32_t root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(object_count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  if (object_count != 1 || root_id != 0) {
    return Status(ErrorCode::kSerialization,
                  "typed scalar decode: not a single-array stream");
  }
  std::int64_t len = 0;
  MOTOR_RETURN_IF_ERROR(detail::read_array_header(in, &len));
  if (static_cast<std::size_t>(len) != out.size()) {
    return Status(ErrorCode::kCountError,
                  "typed decode length does not match the caller's buffer");
  }
  return in.read(as_writable_bytes_of(out.data(), out.size() * sizeof(T)));
}

// ---- described-struct spans (managed twin: an object array) -----------

/// Exact stream size serialize_span() produces for `count` records of T.
template <motor_described T>
std::size_t span_stream_bytes(std::size_t count) {
  const std::size_t aname = detail::object_array_name<T>().size();
  const std::size_t cname =
      count > 0 ? Describe<std::remove_cv_t<T>>::name.size() : 0;
  return 4 + 2 + (2 + aname) + (count > 0 ? 2 + cname : 0) + 4 + 4 +
         (2 + 1 + 8 + 4 * count) + count * (2 + TypedPlan<T>::wire_bytes);
}

/// Encode a span of described structs exactly as the reflective
/// serializer encodes the managed T[] object array: array record first
/// (element ids 1..n in order), then one record per element, each
/// executing the compile-time wire plan. A packed T (contiguous plan)
/// costs one memcpy per record with zero per-field dispatch; a padded T
/// costs one memcpy per run, skipping the holes.
template <motor_described T>
void serialize_span(std::span<const T> data, ByteBuffer& out) {
  using Plan = TypedPlan<T>;
  const std::string aname = detail::object_array_name<T>();
  constexpr std::string_view cname = Describe<std::remove_cv_t<T>>::name;
  const std::size_t n = data.size();
  out.reserve(out.size() + 4 + 2 + (2 + aname.size()) +
              (n > 0 ? 2 + cname.size() : 0) + 4 + 4 + (2 + 1 + 8 + 4 * n) +
              n * (2 + Plan::wire_bytes));
  out.put_u32(mp::kWireMagic);
  // Type table in discovery order: the array type, then (iff any element
  // record was discovered) the element class.
  out.put_u16(static_cast<std::uint16_t>(n > 0 ? 2 : 1));
  vm::detail::write_string(out, aname);
  if (n > 0) vm::detail::write_string(out, cname);
  out.put_u32(static_cast<std::uint32_t>(1 + n));
  out.put_i32(0);  // root: the array
  out.put_u16(0);  // array record
  out.put_u8(0);
  out.put_i64(static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    out.put_i32(static_cast<std::int32_t>(1 + i));
  }
  constexpr auto view = Plan::view();
  for (const T& elem : data) {
    out.put_u16(1);
    mp::emit_runs(view, reinterpret_cast<const std::byte*>(&elem), out);
  }
}

/// Encode one described value exactly as the managed single-object stream.
template <motor_described T>
void serialize_value(const T& value, ByteBuffer& out) {
  using Plan = TypedPlan<T>;
  constexpr std::string_view cname = Describe<std::remove_cv_t<T>>::name;
  out.reserve(out.size() + 4 + 2 + (2 + cname.size()) + 4 + 4 +
              (2 + Plan::wire_bytes));
  out.put_u32(mp::kWireMagic);
  out.put_u16(1);
  vm::detail::write_string(out, cname);
  out.put_u32(1);
  out.put_i32(0);
  out.put_u16(0);
  mp::emit_runs(Plan::view(), reinterpret_cast<const std::byte*>(&value), out);
}

/// Decode an object-array stream into `out` (resized). The element
/// records must be in dense discovery order (ids 1..n matching array
/// positions) — true of every stream this repository produces; a
/// permuted stream (hand-crafted) is rejected rather than misdecoded.
template <motor_described T>
Status deserialize_span(ByteBuffer& in, std::vector<T>& out) {
  using Plan = TypedPlan<T>;
  MOTOR_RETURN_IF_ERROR(detail::check_magic(in));
  std::uint16_t type_count = 0;
  MOTOR_RETURN_IF_ERROR(in.get(type_count));
  if (type_count != 1 && type_count != 2) {
    return Status(ErrorCode::kSerialization,
                  "typed object decode: unexpected type table");
  }
  MOTOR_RETURN_IF_ERROR(
      detail::expect_name(in, detail::object_array_name<T>()));
  if (type_count == 2) {
    MOTOR_RETURN_IF_ERROR(
        detail::expect_name(in, Describe<std::remove_cv_t<T>>::name));
  }
  std::uint32_t object_count = 0;
  std::int32_t root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(object_count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  if (root_id != 0 || object_count == 0) {
    return Status(ErrorCode::kSerialization,
                  "typed object decode: root is not the array");
  }
  std::int64_t len = 0;
  MOTOR_RETURN_IF_ERROR(detail::read_array_header(in, &len));
  const auto n = static_cast<std::size_t>(len);
  if (object_count != 1 + n) {
    return Status(ErrorCode::kSerialization,
                  "typed object decode: object count disagrees with length");
  }
  if (n * (4 + 2 + Plan::wire_bytes) > in.remaining()) {
    return Status(ErrorCode::kSerialization, "announced array exceeds stream");
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t id = 0;
    MOTOR_RETURN_IF_ERROR(in.get(id));
    if (id != static_cast<std::int32_t>(1 + i)) {
      return Status(ErrorCode::kSerialization,
                    "typed object decode: non-dense element ids");
    }
  }
  out.resize(n);
  constexpr auto view = Plan::view();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t tref = 0;
    MOTOR_RETURN_IF_ERROR(in.get(tref));
    if (tref != 1) {
      return Status(ErrorCode::kSerialization,
                    "typed object decode: heterogeneous element records");
    }
    MOTOR_RETURN_IF_ERROR(
        mp::read_runs(view, reinterpret_cast<std::byte*>(&out[i]), in));
  }
  return Status::ok();
}

/// Decode one described value (inverse of serialize_value / the managed
/// single-object stream).
template <motor_described T>
Status deserialize_value(ByteBuffer& in, T* out) {
  using Plan = TypedPlan<T>;
  MOTOR_RETURN_IF_ERROR(detail::check_magic(in));
  std::uint16_t type_count = 0;
  MOTOR_RETURN_IF_ERROR(in.get(type_count));
  if (type_count != 1) {
    return Status(ErrorCode::kSerialization,
                  "typed value decode: stream carries multiple types");
  }
  MOTOR_RETURN_IF_ERROR(
      detail::expect_name(in, Describe<std::remove_cv_t<T>>::name));
  std::uint32_t object_count = 0;
  std::int32_t root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(object_count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  if (object_count != 1 || root_id != 0) {
    return Status(ErrorCode::kSerialization,
                  "typed value decode: not a single-object stream");
  }
  std::uint16_t tref = 0;
  MOTOR_RETURN_IF_ERROR(in.get(tref));
  if (tref != 0) {
    return Status(ErrorCode::kSerialization, "typed value decode: bad record");
  }
  return mp::read_runs(Plan::view(), reinterpret_cast<std::byte*>(out), in);
}

// ---- range conveniences ----------------------------------------------

/// serialize_span over any contiguous range (vector, array, C array).
template <motor_span_like R>
void serialize_range(const R& range, ByteBuffer& out) {
  using T = std::remove_cv_t<std::ranges::range_value_t<R>>;
  serialize_span<T>(
      std::span<const T>(std::ranges::data(range), std::ranges::size(range)),
      out);
}

}  // namespace motor::typed
