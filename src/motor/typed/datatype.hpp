// Lowering compile-time wire plans into MPI derived datatypes.
//
// typed_datatype<T>() turns TypedPlan<T> into the DatatypeDef the native
// layer already understands (MPI_Type_create_struct semantics): the same
// leaf list that drives the typed codec becomes the datatype's type map,
// so send_derived/recv_derived, pack/unpack and the MPI baselines move
// described structs without anyone re-declaring the layout. For a packed
// T the result is contiguous and DatatypeDef's fast paths (single memcpy,
// zero-copy send) engage automatically; for padded T the run-coalesced
// pack loop skips the holes — the identical runs the wire plan computed.
#pragma once

#include "motor/typed/plan.hpp"
#include "motor/typed/traits.hpp"
#include "mpi/derived.hpp"

namespace motor::typed {

namespace detail {

constexpr mpi::Datatype datatype_of(vm::ElementKind kind) {
  switch (kind) {
    case vm::ElementKind::kBool: return mpi::Datatype::kUInt8;
    case vm::ElementKind::kChar: return mpi::Datatype::kUInt16;
    case vm::ElementKind::kInt8: return mpi::Datatype::kInt8;
    case vm::ElementKind::kUInt8: return mpi::Datatype::kUInt8;
    case vm::ElementKind::kInt16: return mpi::Datatype::kInt16;
    case vm::ElementKind::kUInt16: return mpi::Datatype::kUInt16;
    case vm::ElementKind::kInt32: return mpi::Datatype::kInt32;
    case vm::ElementKind::kUInt32: return mpi::Datatype::kUInt32;
    case vm::ElementKind::kInt64: return mpi::Datatype::kInt64;
    case vm::ElementKind::kUInt64: return mpi::Datatype::kUInt64;
    case vm::ElementKind::kFloat: return mpi::Datatype::kFloat;
    case vm::ElementKind::kDouble: return mpi::Datatype::kDouble;
    case vm::ElementKind::kObjectRef: break;  // unreachable for leaves
  }
  return mpi::Datatype::kByte;
}

}  // namespace detail

/// The derived datatype of a wireable T: extent sizeof(T), type map the
/// compile-time leaf list. Build once, reuse freely (DatatypeDef is a
/// value).
template <motor_wireable T>
mpi::DatatypeDef typed_datatype() {
  if constexpr (motor_scalar<T>) {
    return mpi::DatatypeDef::basic(detail::datatype_of(kind_of<T>()));
  } else {
    constexpr auto leaves = detail::leaves_of<T>();
    std::array<std::pair<std::size_t, mpi::Datatype>, leaves.size()> fields{};
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      fields[i] = {leaves[i].offset, detail::datatype_of(leaves[i].kind)};
    }
    return mpi::DatatypeDef::structure(fields, sizeof(T));
  }
}

}  // namespace motor::typed
