// Managed twins of described native structs.
//
// The typed codec's byte-identity with the reflective serializer only
// pays off if both sides can actually name the same type: a typed sender
// emitting "Point" records can hand them to a reflective receiver (the
// parameter server's object table, a managed rank) iff that receiver's
// TypeSystem defines a class "Point" with the SAME field layout. This
// header derives that class mechanically from Describe<T>, so the two
// definitions cannot drift.
//
// Layout equivalence is not assumed, it is checked: ClassBuilder assigns
// offsets in declaration order under natural alignment — the same rule
// the Itanium ABI applies to standard-layout structs — so each managed
// field must land exactly at its C++ leaf's offsetof. register twin
// MOTOR_CHECKs every offset; an exotic layout (alignas-overaligned
// members) fails loudly at registration, never silently on the wire.
#pragma once

#include <string>

#include "motor/typed/plan.hpp"
#include "motor/typed/traits.hpp"
#include "vm/type_system.hpp"

namespace motor::typed {

/// Define (or look up) the managed class equivalent of T in `ts`. Field
/// names are positional ("f0", "f1", ...) — the Motor wire format never
/// carries field names, only type names, so positional names cannot
/// break interop. Idempotent per TypeSystem; verified against the
/// compile-time leaf list on every call.
template <motor_described T>
const vm::MethodTable* register_managed_twin(vm::TypeSystem& ts) {
  constexpr auto leaves = detail::leaves_of<T>();
  const std::string name(Describe<std::remove_cv_t<T>>::name);
  const vm::MethodTable* mt = ts.find(name);
  if (mt == nullptr) {
    vm::ClassBuilder builder = ts.define_class(name);
    builder.transportable();
    std::size_t i = 0;
    for (LeafField f : leaves) {
      builder.field("f" + std::to_string(i++), f.kind);
    }
    mt = builder.build();
  }
  MOTOR_CHECK(!mt->is_array(), "managed twin name collides with an array");
  MOTOR_CHECK(mt->fields().size() == leaves.size(),
              "managed twin '" + name + "' has a different field count");
  std::size_t i = 0;
  for (LeafField f : leaves) {
    const vm::FieldDesc& fd = mt->fields()[i++];
    MOTOR_CHECK(fd.kind() == f.kind && fd.offset() == f.offset,
                "managed twin '" + name +
                    "' layout diverges from the C++ struct (overaligned "
                    "member?) — typed/reflective interop would corrupt data");
  }
  MOTOR_CHECK(mt->wire_bytes() == TypedPlan<T>::wire_bytes,
              "managed twin wire size diverges from the typed plan");
  return mt;
}

}  // namespace motor::typed
