// Compile-time wire plans.
//
// TypedPlan<T> lowers a wireable type's leaf list (typed/traits.hpp) into
// the SAME wire-program representation the runtime plan cache compiles
// from FieldDescs (motor/wire_ops.hpp) — coalesced primitive runs — but
// at compile time, as a constexpr std::array<WireOp, N> in static
// storage. The coalescing rule is the same one WirePlan::compile applies
// (FieldDesc::follows_contiguously): a leaf whose storage starts exactly
// where the previous leaf ends extends the previous run. Padding holes
// break runs, so padded structs serialize as a few memcpys skipping the
// holes; packed structs collapse to a single run covering sizeof(T), in
// which case the codec can reference payloads in place with zero copies.
//
// TypedPlan<T>::view() returns a WireProgramView — the identical currency
// WirePlan::view() returns — so every executor downstream (the typed
// codec, the run executors, derived-datatype lowering) is shared between
// the compile-time and runtime compilers.
#pragma once

#include <array>
#include <cstdint>

#include "motor/typed/traits.hpp"
#include "motor/wire_ops.hpp"

namespace motor::typed {

namespace detail {

/// The flattened leaf list of any wireable T (scalars: one leaf at 0).
template <motor_wireable T>
consteval auto leaves_of() {
  if constexpr (motor_scalar<T>) {
    return std::array<LeafField, 1>{LeafField{0, kind_of<T>()}};
  } else {
    return Describe<std::remove_cv_t<T>>::fields();
  }
}

/// Number of coalesced runs the leaf list lowers to.
template <motor_wireable T>
consteval std::size_t run_count() {
  constexpr auto leaves = leaves_of<T>();
  std::size_t runs = 0;
  std::uint32_t end = 0;  // one past the previous leaf's storage
  bool open = false;
  for (LeafField f : leaves) {
    if (!open || f.offset != end) ++runs;
    open = true;
    end = f.offset + static_cast<std::uint32_t>(f.size());
  }
  return runs;
}

/// Lower the leaf list into runs — the consteval twin of
/// WirePlan::compile's coalescing loop.
template <motor_wireable T>
consteval auto make_ops() {
  constexpr auto leaves = leaves_of<T>();
  std::array<mp::WireOp, run_count<T>()> ops{};
  std::size_t n = 0;
  std::uint32_t end = 0;
  for (LeafField f : leaves) {
    const auto sz = static_cast<std::uint32_t>(f.size());
    if (n > 0 && f.offset == end) {
      ops[n - 1].bytes += sz;
      ++ops[n - 1].fields;
    } else {
      ops[n].kind = mp::WireOp::Kind::kRun;
      ops[n].offset = f.offset;
      ops[n].bytes = sz;
      ops[n].fields = 1;
      ++n;
    }
    end = f.offset + sz;
  }
  return ops;
}

template <motor_wireable T>
consteval std::uint32_t wire_bytes_of() {
  std::uint32_t total = 0;
  for (LeafField f : leaves_of<T>()) {
    total += static_cast<std::uint32_t>(f.size());
  }
  return total;
}

}  // namespace detail

/// The compile-time wire plan of T. Everything here is a constant the
/// optimizer folds: serializing a span of T becomes a fixed sequence of
/// memcpys with no plan lookup, no dispatch, and no per-call branching.
template <motor_wireable T>
struct TypedPlan {
  /// Ordered run program, in static storage for the WireProgramView.
  static constexpr auto ops = detail::make_ops<T>();
  /// Record payload size on the wire (padding stripped).
  static constexpr std::uint32_t wire_bytes = detail::wire_bytes_of<T>();
  /// Whole record is one contiguous run starting at run_offset.
  static constexpr bool single_run = ops.size() == 1;
  static constexpr std::uint32_t run_offset = ops[0].offset;
  /// Wire bytes == object bytes: records can be memcpy'd (or referenced
  /// in place) straight from an array of T with no per-record gather.
  static constexpr bool contiguous =
      single_run && run_offset == 0 && wire_bytes == sizeof(T);

  /// The same program view WirePlan::view() produces at run time —
  /// executable by the shared run executors in wire_ops.hpp.
  static constexpr mp::WireProgramView view() noexcept {
    return mp::WireProgramView{{ops.data(), ops.size()},
                               wire_bytes,
                               single_run,
                               run_offset};
  }
};

}  // namespace motor::typed
