// Concepts and compile-time type description for the typed transport
// layer (motor::typed).
//
// The reflective serializer learns a type's layout from FieldDescs at run
// time; this header teaches the compiler the same facts at compile time:
//
//   * motor_scalar      — an arithmetic type with a CTS ElementKind;
//   * motor_trivial     — memcpy-safe as raw bytes (standard layout,
//                         trivially copyable, no padding indeterminism);
//   * motor_described   — a struct registered with MOTOR_TYPED_STRUCT,
//                         whose members flatten to a constexpr leaf list;
//   * motor_wireable    — scalar or described: has a compile-time wire
//                         plan (typed/plan.hpp);
//   * motor_span_like   — a contiguous range of wireable elements.
//
// MOTOR_TYPED_STRUCT(Type, members...) is the one-line registration that
// replaces ClassBuilder for native structs. It hard-errors (static_assert)
// on non-standard-layout or non-trivially-copyable types — the failure
// the byte APIs only catch with a runtime assert deep in the serializer.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <ranges>
#include <span>
#include <string_view>
#include <type_traits>

#include "vm/field_desc.hpp"

namespace motor::typed {

// ---- scalar kinds ----------------------------------------------------

namespace detail {

template <class T>
inline constexpr bool is_scalar_candidate =
    (std::is_integral_v<T> || std::is_floating_point_v<T>) &&
    !std::is_same_v<T, long double> && sizeof(T) <= 8;

}  // namespace detail

/// An arithmetic type representable as one CTS element (vm::ElementKind):
/// bool, the sized integers (incl. char variants), float, double.
template <class T>
concept motor_scalar = detail::is_scalar_candidate<std::remove_cv_t<T>>;

/// The CTS element kind of a scalar — the same enum FieldDesc carries, so
/// typed leaves and reflective fields agree on wire width by construction.
template <motor_scalar T>
consteval vm::ElementKind kind_of() {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, bool>) {
    return vm::ElementKind::kBool;
  } else if constexpr (std::is_same_v<U, char16_t>) {
    return vm::ElementKind::kChar;  // CLI char is UTF-16
  } else if constexpr (std::is_same_v<U, float>) {
    return vm::ElementKind::kFloat;
  } else if constexpr (std::is_same_v<U, double>) {
    return vm::ElementKind::kDouble;
  } else if constexpr (sizeof(U) == 1) {
    return std::is_signed_v<U> ? vm::ElementKind::kInt8
                               : vm::ElementKind::kUInt8;
  } else if constexpr (sizeof(U) == 2) {
    return std::is_signed_v<U> ? vm::ElementKind::kInt16
                               : vm::ElementKind::kUInt16;
  } else if constexpr (sizeof(U) == 4) {
    return std::is_signed_v<U> ? vm::ElementKind::kInt32
                               : vm::ElementKind::kUInt32;
  } else {
    return std::is_signed_v<U> ? vm::ElementKind::kInt64
                               : vm::ElementKind::kUInt64;
  }
}

// ---- raw-bytes safety ------------------------------------------------

/// Safe to put on the wire as raw object representation: standard layout,
/// trivially copyable, every bit pattern meaningful (no padding bytes
/// leaking uninitialised memory), and no pointers (addresses are
/// meaningless in another process).
template <class T>
concept motor_trivial =
    std::is_trivially_copyable_v<T> && std::is_standard_layout_v<T> &&
    std::has_unique_object_representations_v<T> && !std::is_pointer_v<T> &&
    !std::is_member_pointer_v<T>;

// ---- described aggregates --------------------------------------------

/// One flattened scalar member: where it lives in the C++ object and what
/// CTS kind it is. The typed analog of a (non-reference) FieldDesc.
struct LeafField {
  std::uint32_t offset = 0;
  vm::ElementKind kind = vm::ElementKind::kBool;

  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return vm::element_size(kind);
  }
};

/// Customization point: specialized by MOTOR_TYPED_STRUCT. A
/// specialization provides
///   static constexpr std::string_view name;   // managed twin type name
///   static consteval auto fields();           // std::array<LeafField, N>
template <class T>
struct Describe;  // primary template intentionally undefined

template <class T>
concept motor_described = requires {
  { Describe<std::remove_cv_t<T>>::name } -> std::convertible_to<std::string_view>;
  Describe<std::remove_cv_t<T>>::fields();
};

/// Anything the typed layer can compute a wire plan for.
template <class T>
concept motor_wireable = motor_scalar<T> || motor_described<T>;

/// A contiguous, sized range whose elements are wireable — std::span,
/// std::vector, std::array, C arrays of scalars or described structs.
template <class R>
concept motor_span_like =
    std::ranges::contiguous_range<R> && std::ranges::sized_range<R> &&
    motor_wireable<std::remove_cv_t<std::ranges::range_value_t<R>>>;

// ---- member flattening -----------------------------------------------

namespace detail {

template <class>
inline constexpr bool dependent_false = false;

/// Number of scalar leaves a member of type M contributes.
template <class M>
consteval std::size_t leaf_count() {
  using U = std::remove_cv_t<M>;
  if constexpr (motor_scalar<U>) {
    return 1;
  } else if constexpr (std::is_bounded_array_v<U>) {
    return std::extent_v<U> * leaf_count<std::remove_extent_t<U>>();
  } else if constexpr (motor_described<U>) {
    return Describe<U>::fields().size();
  } else {
    static_assert(dependent_false<M>,
                  "member type is not typed-transportable: scalar, bounded "
                  "array, or MOTOR_TYPED_STRUCT-described struct required "
                  "(pointers and references cannot cross address spaces)");
    return 0;
  }
}

/// Flattened leaves of one member located at byte `base` in the
/// enclosing struct: scalars are one leaf, arrays repeat their element's
/// leaves stride by stride, nested described structs inline their own
/// leaf list shifted by `base`.
template <class M>
consteval auto member_leaves(std::size_t base) {
  using U = std::remove_cv_t<M>;
  std::array<LeafField, leaf_count<M>()> out{};
  if constexpr (motor_scalar<U>) {
    out[0] = LeafField{static_cast<std::uint32_t>(base), kind_of<U>()};
  } else if constexpr (std::is_bounded_array_v<U>) {
    using E = std::remove_extent_t<U>;
    std::size_t i = 0;
    for (std::size_t e = 0; e < std::extent_v<U>; ++e) {
      for (LeafField f : member_leaves<E>(base + e * sizeof(E))) {
        out[i++] = f;
      }
    }
  } else {
    std::size_t i = 0;
    for (LeafField f : Describe<U>::fields()) {
      out[i++] = LeafField{static_cast<std::uint32_t>(base) + f.offset, f.kind};
    }
  }
  return out;
}

/// Concatenate per-member leaf arrays into the struct's full leaf list.
template <std::size_t... Ns>
consteval auto concat(std::array<LeafField, Ns>... parts) {
  std::array<LeafField, (Ns + ... + 0)> out{};
  std::size_t i = 0;
  auto add = [&](const auto& a) {
    for (LeafField f : a) out[i++] = f;
  };
  (add(parts), ...);
  return out;
}

}  // namespace detail

}  // namespace motor::typed

// ---- MOTOR_TYPED_STRUCT ----------------------------------------------
//
// MOTOR_TYPED_STRUCT(Point, x, y, label) at namespace scope registers
// `Point` with the typed layer: its members (in declaration order) become
// the constexpr leaf list from which typed/plan.hpp derives the wire
// plan, and `Point` becomes usable with every typed entry point,
// including as the element type of spans/vectors. The struct must be
// standard-layout and trivially copyable — enforced right here at compile
// time, not by a runtime assert deep in the serializer.

#define MOTOR_TYPED_LEAVES_OF(TYPE, member)                       \
  motor::typed::detail::member_leaves<decltype(TYPE::member)>(    \
      offsetof(TYPE, member))

// FOR_EACH over up to 16 members, expanding F(TYPE, member) per member.
#define MOTOR_TYPED_FE_1(F, T, a) F(T, a)
#define MOTOR_TYPED_FE_2(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_1(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_3(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_2(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_4(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_3(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_5(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_4(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_6(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_5(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_7(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_6(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_8(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_7(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_9(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_8(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_10(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_9(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_11(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_10(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_12(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_11(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_13(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_12(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_14(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_13(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_15(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_14(F, T, __VA_ARGS__)
#define MOTOR_TYPED_FE_16(F, T, a, ...) \
  F(T, a), MOTOR_TYPED_FE_15(F, T, __VA_ARGS__)

#define MOTOR_TYPED_NARG(...)                                                \
  MOTOR_TYPED_NARG_(__VA_ARGS__, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, \
                    4, 3, 2, 1)
#define MOTOR_TYPED_NARG_(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11, _12, \
                          _13, _14, _15, _16, N, ...)                        \
  N

#define MOTOR_TYPED_CAT(a, b) MOTOR_TYPED_CAT_(a, b)
#define MOTOR_TYPED_CAT_(a, b) a##b

#define MOTOR_TYPED_FOR_EACH(F, T, ...)                                   \
  MOTOR_TYPED_CAT(MOTOR_TYPED_FE_, MOTOR_TYPED_NARG(__VA_ARGS__))(F, T,  \
                                                                  __VA_ARGS__)

/// Register NAME (a string literal — the managed twin's class name) for
/// TYPE. Use MOTOR_TYPED_STRUCT when the C++ type name IS the wire name.
#define MOTOR_TYPED_STRUCT_NAMED(TYPE, NAME, ...)                            \
  template <>                                                                \
  struct motor::typed::Describe<TYPE> {                                      \
    static_assert(std::is_standard_layout_v<TYPE>,                           \
                  #TYPE                                                      \
                  " is not standard-layout: the typed transport layer "      \
                  "cannot compute a wire plan for it");                      \
    static_assert(std::is_trivially_copyable_v<TYPE>,                        \
                  #TYPE                                                      \
                  " is not trivially copyable: the typed transport layer "   \
                  "moves bytes, not constructors");                          \
    using type = TYPE;                                                       \
    static constexpr std::string_view name = NAME;                           \
    static consteval auto fields() {                                         \
      return motor::typed::detail::concat(                                   \
          MOTOR_TYPED_FOR_EACH(MOTOR_TYPED_LEAVES_OF, TYPE, __VA_ARGS__));   \
    }                                                                        \
  }

#define MOTOR_TYPED_STRUCT(TYPE, ...) \
  MOTOR_TYPED_STRUCT_NAMED(TYPE, #TYPE, __VA_ARGS__)
