// Typed transport entry points.
//
// These speak the OO operations' wire protocol — a u64 size message, then
// the serialized representation as one (possibly gathered) message
// (§7.5) — but produce/consume the stream with the compile-time codec
// instead of the reflective serializer. Because the stream bytes are
// identical, the pairings compose freely:
//
//   typed::send_span(comm, span<float>) --> managed rank's ORecv()
//   managed rank's OSend(float_array)   --> typed::recv_span<float>()
//
// Large payloads go to the wire through the same scatter-gather path as
// the managed gathered sends (SpanVec + mpi::send_v): the payload is
// referenced in the caller's storage, never staged. Native storage needs
// no pinning — the pinning policy exists for movable managed heap memory;
// a std::span's bytes cannot move.
//
// The MPDirect overloads run the same transfers from a managed rank,
// polling GC on every progress iteration exactly like the FCall-bound
// operations, so a typed send never blocks a collection.
#pragma once

#include <span>
#include <vector>

#include "motor/mp_direct.hpp"
#include "motor/typed/codec.hpp"
#include "mpi/pt2pt.hpp"

namespace motor::typed {

// ---- over a raw communicator (native threads) ------------------------

/// Blocking typed send: encode `data` (one reserve, gather for large
/// payloads) and ship it under the size-then-payload protocol.
template <motor_wireable T>
Status send_span(mpi::Comm& comm, std::span<const T> data, int dst, int tag,
                 const mpi::PollHook& poll = {}) {
  ByteBuffer meta;
  SpanVec sv;
  if constexpr (motor_scalar<T>) {
    serialize_span_gather(data, meta, sv);
  } else {
    serialize_span(data, meta);
    sv.append(meta.span());
  }
  const std::uint64_t size = sv.total_bytes();
  ErrorCode err = mpi::send(comm, &size, sizeof size, dst, tag, poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  return Status(mpi::send_v(comm, sv, dst, tag, poll));
}

/// Blocking typed receive into `out` (resized to the sender's count).
template <motor_wireable T>
Status recv_span(mpi::Comm& comm, std::vector<T>& out, int src, int tag,
                 mpi::MsgStatus* status = nullptr,
                 const mpi::PollHook& poll = {}) {
  std::uint64_t size = 0;
  mpi::MsgStatus size_st;
  ErrorCode err = mpi::recv(comm, &size, sizeof size, src, tag, &size_st,
                            poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  ByteBuffer buf;
  buf.resize(size);
  err = mpi::recv(comm, buf.data(), buf.size(), size_st.source, size_st.tag,
                  status, poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  return deserialize_span<T>(buf, out);
}

/// Blocking typed send of one described value.
template <motor_described T>
Status send_value(mpi::Comm& comm, const T& value, int dst, int tag,
                  const mpi::PollHook& poll = {}) {
  ByteBuffer buf;
  serialize_value(value, buf);
  const std::uint64_t size = buf.size();
  ErrorCode err = mpi::send(comm, &size, sizeof size, dst, tag, poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  return Status(mpi::send(comm, buf.data(), buf.size(), dst, tag, poll));
}

/// Blocking typed receive of one described value.
template <motor_described T>
Status recv_value(mpi::Comm& comm, T* out, int src, int tag,
                  mpi::MsgStatus* status = nullptr,
                  const mpi::PollHook& poll = {}) {
  std::uint64_t size = 0;
  mpi::MsgStatus size_st;
  ErrorCode err = mpi::recv(comm, &size, sizeof size, src, tag, &size_st,
                            poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  ByteBuffer buf;
  buf.resize(size);
  err = mpi::recv(comm, buf.data(), buf.size(), size_st.source, size_st.tag,
                  status, poll);
  if (err != ErrorCode::kSuccess) return Status(err);
  return deserialize_value<T>(buf, out);
}

// ---- over MPDirect (managed ranks) -----------------------------------

namespace detail {

inline mpi::PollHook gc_poll(mp::MPDirect& mp) {
  return [&mp] { mp.thread().poll_gc(); };
}

}  // namespace detail

/// Typed send from a managed rank: same wire traffic as the Comm variant,
/// with the GC polled on every progress iteration (§7.4 discipline).
template <motor_wireable T>
Status send_span(mp::MPDirect& mp, std::span<const T> data, int dst,
                 int tag) {
  return send_span(mp.comm(), data, dst, tag, detail::gc_poll(mp));
}

template <motor_wireable T>
Status recv_span(mp::MPDirect& mp, std::vector<T>& out, int src, int tag,
                 mpi::MsgStatus* status = nullptr) {
  return recv_span(mp.comm(), out, src, tag, status, detail::gc_poll(mp));
}

template <motor_described T>
Status send_value(mp::MPDirect& mp, const T& value, int dst, int tag) {
  return send_value(mp.comm(), value, dst, tag, detail::gc_poll(mp));
}

template <motor_described T>
Status recv_value(mp::MPDirect& mp, T* out, int src, int tag,
                  mpi::MsgStatus* status = nullptr) {
  return recv_value(mp.comm(), out, src, tag, status, detail::gc_poll(mp));
}

// ---- range conveniences ----------------------------------------------

template <motor_span_like R, class Endpoint>
Status send_range(Endpoint& ep, const R& range, int dst, int tag) {
  using T = std::remove_cv_t<std::ranges::range_value_t<R>>;
  return send_span<T>(
      ep, std::span<const T>(std::ranges::data(range), std::ranges::size(range)),
      dst, tag);
}

}  // namespace motor::typed
