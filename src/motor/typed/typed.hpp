// Umbrella header for the typed transport layer (motor::typed).
//
// One include gives the whole compile-time data path:
//   traits.hpp       — concepts + MOTOR_TYPED_STRUCT registration
//   plan.hpp         — TypedPlan<T>: consteval wire programs (WireOp runs)
//   codec.hpp        — Motor-stream serialize/deserialize, byte-identical
//                      to the reflective serializer
//   transport.hpp    — send/recv over Comm and MPDirect (OO-ops protocol)
//   managed_twin.hpp — derive the managed class equivalent of a struct
//   datatype.hpp     — lower a plan to an MPI derived datatype
#pragma once

#include "motor/typed/codec.hpp"
#include "motor/typed/datatype.hpp"
#include "motor/typed/managed_twin.hpp"
#include "motor/typed/plan.hpp"
#include "motor/typed/traits.hpp"
#include "motor/typed/transport.hpp"
