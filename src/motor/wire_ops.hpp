// The wire-program representation shared by BOTH plan compilers.
//
// Motor has two ways to know a type's layout:
//
//   * the runtime plan cache (wire_plan.hpp) lowers a MethodTable's
//     FieldDesc list into a wire program on first serialization;
//   * the typed layer (typed/plan.hpp) computes the same lowering at
//     COMPILE TIME from a `Describe<T>` member list via consteval.
//
// Both produce the exact same instruction set — ordered WireOps of
// coalesced primitive RUNS and reference SLOTS — and both are executed by
// the same inline run executors below. This header is deliberately
// independent of the VM headers so the typed layer's constexpr tables can
// be built in any translation unit without dragging in MethodTable.
#pragma once

#include <cstdint>
#include <span>

#include "common/buffer.hpp"

namespace motor::mp {

/// Stream magic of the Motor custom serialization format (§7.5): "MOTR".
/// Shared by the reflective serializer, the plan-cache path, and the
/// typed codec — all three emit byte-identical streams.
inline constexpr std::uint32_t kWireMagic = 0x4D4F5452;

/// One step of a compiled class-record wire program.
struct WireOp {
  enum class Kind : std::uint8_t { kRun, kRef };
  Kind kind = Kind::kRun;
  /// kRef: the field's Transportable bit (non-transportable references
  /// are null-swapped on the wire without touching the heap slot's
  /// referent graph).
  bool transportable = false;
  /// kRun: how many fields were coalesced into this copy.
  std::uint16_t fields = 0;
  /// Byte offset within the object's instance data.
  std::uint32_t offset = 0;
  /// kRun: bytes to copy (heap bytes == wire bytes for primitive runs).
  std::uint32_t bytes = 0;
};

/// A reference slot, extracted for the discovery pass (which only needs
/// the references, not the primitive layout).
struct RefSlot {
  std::uint32_t offset = 0;
  bool transportable = false;
};

/// Non-owning view of a wire program — the common currency between the
/// runtime WirePlan (WirePlan::view()) and the typed layer's constexpr
/// plans (TypedPlan<T>::view()). Consumers executing a view cannot tell
/// which compiler produced it.
struct WireProgramView {
  std::span<const WireOp> ops;
  /// Record payload size on the wire.
  std::uint32_t wire_bytes = 0;
  /// Whole record is one contiguous primitive run starting at
  /// `run_offset`: serialize/deserialize as a single memcpy.
  bool single_run = false;
  std::uint32_t run_offset = 0;
};

/// Emit one record payload from `base` (the start of the record's storage)
/// through a REFERENCE-FREE program. Both plan compilers guarantee their
/// all-primitive programs collapse padding gaps into the minimal run list,
/// so this loop is a handful of memcpys — one, for packed layouts.
inline void emit_runs(const WireProgramView& v, const std::byte* base,
                      ByteBuffer& out) {
  if (v.single_run) {
    out.append_raw(base + v.run_offset, v.wire_bytes);
    return;
  }
  for (const WireOp& op : v.ops) {
    out.append_raw(base + op.offset, op.bytes);
  }
}

/// Inverse of emit_runs: scatter one wire record back into `base`.
inline Status read_runs(const WireProgramView& v, std::byte* base,
                        ByteBuffer& in) {
  if (v.single_run) {
    return in.read({base + v.run_offset, v.wire_bytes});
  }
  for (const WireOp& op : v.ops) {
    MOTOR_RETURN_IF_ERROR(in.read({base + op.offset, op.bytes}));
  }
  return Status::ok();
}

}  // namespace motor::mp
