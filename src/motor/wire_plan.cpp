#include "motor/wire_plan.hpp"

#include "common/status.hpp"

namespace motor::mp {

WirePlan WirePlan::compile(const vm::MethodTable& mt) {
  MOTOR_CHECK(!mt.is_array(), "wire plans describe class records only");
  WirePlan plan;
  plan.type = &mt;

  const vm::FieldDesc* prev = nullptr;
  for (const vm::FieldDesc& f : mt.fields()) {
    if (f.is_reference()) {
      WireOp op;
      op.kind = WireOp::Kind::kRef;
      op.transportable = f.is_transportable();
      op.offset = f.offset();
      plan.ops.push_back(op);
      plan.refs.push_back(RefSlot{f.offset(), f.is_transportable()});
    } else if (!plan.ops.empty() &&
               plan.ops.back().kind == WireOp::Kind::kRun &&
               prev != nullptr && f.follows_contiguously(*prev)) {
      // Coalesce: extends the previous run's heap window, and primitive
      // wire layout is always gapless, so one memcpy covers both.
      WireOp& run = plan.ops.back();
      run.bytes += static_cast<std::uint32_t>(f.size());
      ++run.fields;
    } else {
      WireOp op;
      op.kind = WireOp::Kind::kRun;
      op.offset = f.offset();
      op.bytes = static_cast<std::uint32_t>(f.size());
      op.fields = 1;
      plan.ops.push_back(op);
    }
    plan.wire_bytes += static_cast<std::uint32_t>(f.wire_bytes());
    prev = &f;
  }

  // Zero-field records are vacuously a single (empty) run.
  plan.single_run =
      plan.refs.empty() &&
      (plan.ops.empty() || (plan.ops.size() == 1 &&
                            plan.ops[0].kind == WireOp::Kind::kRun));
  if (plan.single_run && !plan.ops.empty()) {
    plan.run_offset = plan.ops[0].offset;
  }
  MOTOR_CHECK(plan.wire_bytes == mt.wire_bytes(),
              "wire plan disagrees with MethodTable layout");
  return plan;
}

const WirePlan& WirePlanCache::plan_for(const vm::MethodTable* mt,
                                        bool* built) {
  auto it = plans_.find(mt);
  if (it != plans_.end()) {
    if (built != nullptr) *built = false;
    return it->second;
  }
  if (built != nullptr) *built = true;
  return plans_.emplace(mt, WirePlan::compile(*mt)).first->second;
}

}  // namespace motor::mp
