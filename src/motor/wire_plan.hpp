// Compiled per-type wire plans for the Motor serializer.
//
// The paper's custom serializer (§7.5) walks the FieldDesc list of every
// object it visits, per object, per send. Managed serializers that stay
// fast compile a per-type marshalling layout once and reuse it (the JIT
// stub approach of the mpiJava/Indiana-style bindings); this module is
// that compilation step for Motor. On the first serialization of a class
// type its FieldDesc list is lowered into an ordered WIRE PROGRAM of
//
//   * RUNS  — maximal groups of adjacent primitive fields whose heap
//             storage is contiguous (no alignment gap, no interleaved
//             reference); a run serializes as ONE memcpy,
//   * REFS  — reference slots, serialized as 4-byte object indices,
//
// plus the precomputed record wire size. Both the serialize and the
// deserialize hot loops execute the program instead of re-walking
// FieldDescs; an all-primitive type whose layout is fully packed
// collapses to a single bulk record copy.
//
// Cache properties: keyed by MethodTable* (method tables are immutable
// after type load, so there is no invalidation), GC-safe (plans hold
// layout integers and MethodTable pointers only — never Obj references,
// so a moving collection cannot dangle a plan).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "motor/wire_ops.hpp"
#include "vm/method_table.hpp"

namespace motor::mp {

// WireOp / RefSlot / WireProgramView live in wire_ops.hpp: the typed
// layer (typed/plan.hpp) builds the same representation at compile time
// and must not depend on the VM headers.

/// Compiled wire program for one class MethodTable.
struct WirePlan {
  const vm::MethodTable* type = nullptr;
  /// Ordered program; executing it front to back reproduces the exact
  /// byte sequence the FieldDesc walk would have produced.
  std::vector<WireOp> ops;
  /// Just the reference slots, in field order (discovery pass).
  std::vector<RefSlot> refs;
  /// Record payload size on the wire (== MethodTable::wire_bytes()).
  std::uint32_t wire_bytes = 0;
  /// Whole record is one contiguous primitive run: serialize/deserialize
  /// it as a single memcpy starting at `run_offset`.
  bool single_run = false;
  std::uint32_t run_offset = 0;

  /// The plan as the shared program representation executed by the run
  /// executors in wire_ops.hpp — the same view TypedPlan<T> produces at
  /// compile time.
  [[nodiscard]] WireProgramView view() const noexcept {
    return WireProgramView{ops, wire_bytes, single_run, run_offset};
  }

  /// Lower `mt`'s FieldDesc list into a wire program. `mt` must be a
  /// class (non-array) type.
  static WirePlan compile(const vm::MethodTable& mt);
};

/// Per-serializer plan cache. Lookup is one hash probe; values are
/// node-stable, so returned references survive later insertions.
class WirePlanCache {
 public:
  /// The plan for `mt`, compiling it on first use. `*built` reports
  /// whether this call compiled (for the serializer's plan_builds stat).
  const WirePlan& plan_for(const vm::MethodTable* mt, bool* built);

  [[nodiscard]] std::size_t size() const noexcept { return plans_.size(); }

 private:
  std::unordered_map<const vm::MethodTable*, WirePlan> plans_;
};

}  // namespace motor::mp
