// Collective algorithm identifiers and the per-device tuning override.
//
// Split out of collectives.hpp so DeviceConfig can carry a
// CollectiveTuning without a device.hpp <-> collectives.hpp include
// cycle. The registry and selection function live in collectives.hpp.
#pragma once

#include <cstdint>
#include <string_view>

namespace motor::mpi {

/// One entry per implemented collective algorithm. Not every algorithm
/// applies to every collective; registered_algos() (collectives.hpp)
/// enumerates the valid set per operation.
enum class CollAlgo : std::uint8_t {
  kAuto,                    // pick via select_algo(world, bytes, topology)
  kLinear,                  // rooted linear / reduce+scatter reference path
  kBinomial,                // binomial tree (short messages)
  kScatterAllgather,        // bcast: binomial scatter + ring allgather
  kRecursiveDoubling,       // allreduce: log2 rounds of pairwise exchange
  kReduceScatterAllgather,  // allreduce: Rabenseifner (halving + doubling)
  kRing,                    // allgather: neighbour ring
  kBruck,                   // allgather: Bruck log-round displacement
  kPairwise,                // reduce_scatter: pairwise exchange
  kTwoLevel,                // topology-aware leader collectives
};

std::string_view coll_algo_name(CollAlgo algo) noexcept;

/// Per-device algorithm override, MPDirectConfig-style: kAuto (default)
/// defers to the size/world/topology selection function; anything else
/// pins that collective to one registry entry — the ablation switch the
/// scaling sweep uses to measure crossover points.
struct CollectiveTuning {
  CollAlgo bcast = CollAlgo::kAuto;
  CollAlgo reduce = CollAlgo::kAuto;
  CollAlgo allreduce = CollAlgo::kAuto;
  CollAlgo allgather = CollAlgo::kAuto;
  CollAlgo reduce_scatter = CollAlgo::kAuto;
};

}  // namespace motor::mpi
