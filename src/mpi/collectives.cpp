#include "mpi/collectives.hpp"

#include <cstring>

namespace motor::mpi {

namespace {

ErrorCode require_intra(const Comm& comm) {
  if (comm.is_null()) return ErrorCode::kCommError;
  if (comm.is_inter()) return ErrorCode::kCommError;
  return ErrorCode::kSuccess;
}

}  // namespace

ErrorCode barrier(Comm& comm, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  // Dissemination barrier: log2(size) rounds of zero-byte exchanges.
  for (int dist = 1; dist < size; dist <<= 1) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist + size) % size;
    ErrorCode err = sendrecv(comm, nullptr, 0, to, tag, nullptr, 0, from, tag,
                             nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

ErrorCode bcast(Comm& comm, void* buf, std::size_t bytes, int root,
                const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();
  if (size == 1) return ErrorCode::kSuccess;

  // Binomial tree rooted at `root` (the MPICH2 short-message algorithm).
  const int relrank = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (relrank & mask) {
      const int src = (relrank - mask + root) % size;
      ErrorCode err = recv(comm, buf, bytes, src, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relrank + mask < size) {
      const int dst = (relrank + mask + root) % size;
      ErrorCode err = send(comm, buf, bytes, dst, tag, poll);
      if (err != ErrorCode::kSuccess) return err;
    }
    mask >>= 1;
  }
  return ErrorCode::kSuccess;
}

ErrorCode scatter(Comm& comm, const void* send_buf, std::size_t block_bytes,
                  void* recv_buf, int root, const PollHook& poll) {
  const int size = comm.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(size), block_bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    displs[static_cast<std::size_t>(i)] =
        static_cast<std::size_t>(i) * block_bytes;
  }
  return scatterv(comm, send_buf, counts, displs, recv_buf, block_bytes, root,
                  poll);
}

ErrorCode scatterv(Comm& comm, const void* send_buf,
                   const std::vector<std::size_t>& counts,
                   const std::vector<std::size_t>& displs, void* recv_buf,
                   std::size_t recv_bytes, int root, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();

  if (rank == root) {
    if (counts.size() != static_cast<std::size_t>(size) ||
        displs.size() != static_cast<std::size_t>(size)) {
      return ErrorCode::kCountError;
    }
    const auto* base = static_cast<const std::byte*>(send_buf);
    std::vector<Request> reqs;
    for (int i = 0; i < size; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (i == rank) continue;
      reqs.push_back(isend(comm, base + displs[idx], counts[idx], i, tag));
    }
    const auto self = static_cast<std::size_t>(rank);
    const std::size_t n = std::min(counts[self], recv_bytes);
    if (n > 0 && recv_buf != nullptr) {
      std::memcpy(recv_buf, base + displs[self], n);
    }
    waitall(comm, reqs, poll);
    return counts[self] > recv_bytes ? ErrorCode::kTruncate
                                     : ErrorCode::kSuccess;
  }
  return recv(comm, recv_buf, recv_bytes, root, tag, nullptr, poll);
}

ErrorCode gather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                 void* recv_buf, int root, const PollHook& poll) {
  const int size = comm.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(size), block_bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    displs[static_cast<std::size_t>(i)] =
        static_cast<std::size_t>(i) * block_bytes;
  }
  return gatherv(comm, send_buf, block_bytes, recv_buf, counts, displs, root,
                 poll);
}

ErrorCode gatherv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, const std::vector<std::size_t>& counts,
                  const std::vector<std::size_t>& displs, int root,
                  const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();

  if (rank == root) {
    if (counts.size() != static_cast<std::size_t>(size) ||
        displs.size() != static_cast<std::size_t>(size)) {
      return ErrorCode::kCountError;
    }
    auto* base = static_cast<std::byte*>(recv_buf);
    std::vector<Request> reqs;
    for (int i = 0; i < size; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (i == rank) continue;
      reqs.push_back(irecv(comm, base + displs[idx], counts[idx], i, tag));
    }
    const auto self = static_cast<std::size_t>(rank);
    const std::size_t n = std::min(counts[self], send_bytes);
    if (n > 0 && send_buf != nullptr) {
      std::memcpy(base + displs[self], send_buf, n);
    }
    waitall(comm, reqs, poll);
    return ErrorCode::kSuccess;
  }
  return send(comm, send_buf, send_bytes, root, tag, poll);
}

ErrorCode allgather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                    void* recv_buf, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  auto* base = static_cast<std::byte*>(recv_buf);
  std::memcpy(base + static_cast<std::size_t>(rank) * block_bytes, send_buf,
              block_bytes);
  // Ring: in step s, pass along the block that originated s hops upstream.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const int send_block = (rank - s + size) % size;
    const int recv_block = (rank - s - 1 + size) % size;
    ErrorCode err = sendrecv(
        comm, base + static_cast<std::size_t>(send_block) * block_bytes,
        block_bytes, right, tag,
        base + static_cast<std::size_t>(recv_block) * block_bytes, block_bytes,
        left, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

ErrorCode reduce(Comm& comm, const void* send_buf, void* recv_buf,
                 std::size_t count, Datatype t, ReduceOp op, int root,
                 const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();
  const std::size_t bytes = count * datatype_size(t);

  // Running accumulator starts as a copy of this rank's contribution.
  std::vector<std::byte> accum(bytes);
  std::memcpy(accum.data(), send_buf, bytes);
  std::vector<std::byte> incoming(bytes);

  // Binomial tree: children fold into parents, root ends with the total.
  const int relrank = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (relrank & mask) {
      const int dst = ((relrank & ~mask) + root) % size;
      ErrorCode err = send(comm, accum.data(), bytes, dst, tag, poll);
      if (err != ErrorCode::kSuccess) return err;
      break;
    }
    const int src_rel = relrank | mask;
    if (src_rel < size) {
      const int src = (src_rel + root) % size;
      ErrorCode err =
          recv(comm, incoming.data(), bytes, src, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      reduce_apply(op, t, incoming.data(), accum.data(), count);
    }
    mask <<= 1;
  }
  if (rank == root) std::memcpy(recv_buf, accum.data(), bytes);
  return ErrorCode::kSuccess;
}

ErrorCode allreduce(Comm& comm, const void* send_buf, void* recv_buf,
                    std::size_t count, Datatype t, ReduceOp op,
                    const PollHook& poll) {
  ErrorCode err = reduce(comm, send_buf, recv_buf, count, t, op, 0, poll);
  if (err != ErrorCode::kSuccess) return err;
  return bcast(comm, recv_buf, count * datatype_size(t), 0, poll);
}

ErrorCode scan(Comm& comm, const void* send_buf, void* recv_buf,
               std::size_t count, Datatype t, ReduceOp op,
               const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  const std::size_t bytes = count * datatype_size(t);

  // Linear pipeline: receive the running prefix from the left neighbour,
  // fold in this rank's contribution, pass the result to the right.
  std::memcpy(recv_buf, send_buf, bytes);
  if (rank > 0) {
    std::vector<std::byte> incoming(bytes);
    ErrorCode err =
        recv(comm, incoming.data(), bytes, rank - 1, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
    reduce_apply(op, t, incoming.data(), recv_buf, count);
  }
  if (rank + 1 < size) {
    ErrorCode err = send(comm, recv_buf, bytes, rank + 1, tag, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

ErrorCode reduce_scatter_block(Comm& comm, const void* send_buf,
                               void* recv_buf, std::size_t count, Datatype t,
                               ReduceOp op, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const std::size_t total = count * static_cast<std::size_t>(size);
  std::vector<std::byte> full(total * datatype_size(t));
  ErrorCode err = reduce(comm, send_buf, full.data(), total, t, op, 0, poll);
  if (err != ErrorCode::kSuccess) return err;
  return scatter(comm, full.data(), count * datatype_size(t), recv_buf, 0,
                 poll);
}

ErrorCode alltoall(Comm& comm, const void* send_buf, std::size_t block_bytes,
                   void* recv_buf, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  const auto* sbase = static_cast<const std::byte*>(send_buf);
  auto* rbase = static_cast<std::byte*>(recv_buf);
  std::memcpy(rbase + static_cast<std::size_t>(rank) * block_bytes,
              sbase + static_cast<std::size_t>(rank) * block_bytes,
              block_bytes);

  std::vector<Request> reqs;
  for (int i = 0; i < size; ++i) {
    if (i == rank) continue;
    reqs.push_back(irecv(comm,
                         rbase + static_cast<std::size_t>(i) * block_bytes,
                         block_bytes, i, tag));
  }
  for (int i = 0; i < size; ++i) {
    if (i == rank) continue;
    reqs.push_back(isend(comm,
                         sbase + static_cast<std::size_t>(i) * block_bytes,
                         block_bytes, i, tag));
  }
  waitall(comm, reqs, poll);
  return ErrorCode::kSuccess;
}

}  // namespace motor::mpi
