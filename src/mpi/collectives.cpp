#include "mpi/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "mpi/device.hpp"
#include "transport/fabric.hpp"
#include "transport/topology.hpp"

namespace motor::mpi {

namespace {

using transport::Topology;
using transport::TopologyKind;

ErrorCode require_intra(const Comm& comm) {
  if (comm.is_null()) return ErrorCode::kCommError;
  if (comm.is_inter()) return ErrorCode::kCommError;
  return ErrorCode::kSuccess;
}

const Topology* comm_topology(Comm& comm) {
  return &comm.device().fabric().topology();
}

bool algo_registered(CollOp op, CollAlgo algo) {
  const auto algos = registered_algos(op);
  return std::find(algos.begin(), algos.end(), algo) != algos.end();
}

/// Explicit argument beats device tuning beats the selection function.
CollAlgo resolve_algo(CollAlgo explicit_algo, CollAlgo tuned, CollOp op,
                      Comm& comm, std::size_t total_bytes) {
  if (explicit_algo != CollAlgo::kAuto) return explicit_algo;
  if (tuned != CollAlgo::kAuto) return tuned;
  return select_algo(op, comm.size(), total_bytes, comm_topology(comm));
}

int index_of(std::span<const int> ranks, int rank) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (ranks[i] == rank) return static_cast<int>(i);
  }
  return -1;
}

// ---- algorithms over explicit rank lists ---------------------------------
//
// The two-level collectives run the same binomial / recursive-doubling
// cores over sub-groups (one node's ranks, or the per-node leaders), so
// the cores take a rank list and work in index space; the full-comm
// algorithms pass the identity list. A rank absent from the list returns
// success without touching the wire.

/// Binomial broadcast across `ranks`, rooted at index `root_idx`.
ErrorCode bcast_over(Comm& comm, void* buf, std::size_t bytes,
                     std::span<const int> ranks, int root_idx, int tag,
                     const PollHook& poll) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) return ErrorCode::kSuccess;
  const int my_idx = index_of(ranks, comm.rank());
  if (my_idx < 0) return ErrorCode::kSuccess;

  const int rel = (my_idx - root_idx + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = ranks[static_cast<std::size_t>((rel - mask + root_idx) % n)];
      ErrorCode err = recv(comm, buf, bytes, src, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst = ranks[static_cast<std::size_t>((rel + mask + root_idx) % n)];
      ErrorCode err = send(comm, buf, bytes, dst, tag, poll);
      if (err != ErrorCode::kSuccess) return err;
    }
    mask >>= 1;
  }
  return ErrorCode::kSuccess;
}

/// Binomial reduction across `ranks` into `out` at index `root_idx`.
/// `out` is written only at the root (and may be null elsewhere).
ErrorCode reduce_over(Comm& comm, const void* contrib, void* out,
                      std::size_t count, const ReduceKernel& k,
                      std::span<const int> ranks, int root_idx, int tag,
                      const PollHook& poll) {
  const int n = static_cast<int>(ranks.size());
  const int my_idx = index_of(ranks, comm.rank());
  if (my_idx < 0) return ErrorCode::kSuccess;
  const std::size_t bytes = count * k.elem_size;
  if (n <= 1) {
    if (my_idx == root_idx && bytes > 0) std::memcpy(out, contrib, bytes);
    return ErrorCode::kSuccess;
  }

  std::vector<std::byte> accum(bytes);
  std::vector<std::byte> incoming(bytes);
  if (bytes > 0) std::memcpy(accum.data(), contrib, bytes);

  const int rel = (my_idx - root_idx + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int dst = ranks[static_cast<std::size_t>(((rel & ~mask) + root_idx) % n)];
      ErrorCode err = send(comm, accum.data(), bytes, dst, tag, poll);
      if (err != ErrorCode::kSuccess) return err;
      break;
    }
    const int src_rel = rel | mask;
    if (src_rel < n) {
      const int src = ranks[static_cast<std::size_t>((src_rel + root_idx) % n)];
      ErrorCode err =
          recv(comm, incoming.data(), bytes, src, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(incoming.data(), accum.data(), count);
    }
    mask <<= 1;
  }
  if (my_idx == root_idx && bytes > 0) std::memcpy(out, accum.data(), bytes);
  return ErrorCode::kSuccess;
}

/// Recursive-doubling allreduce across `ranks`, in place on `data`.
/// Handles non-power-of-two sizes with the MPICH fold-in pre/post phase.
ErrorCode allreduce_rd_over(Comm& comm, void* data, std::size_t count,
                            const ReduceKernel& k, std::span<const int> ranks,
                            int tag, const PollHook& poll) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) return ErrorCode::kSuccess;
  const int my_idx = index_of(ranks, comm.rank());
  if (my_idx < 0) return ErrorCode::kSuccess;

  const std::size_t bytes = count * k.elem_size;
  std::vector<std::byte> tmp(bytes);
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  // Surplus ranks fold their vector into an odd partner and idle until the
  // post phase; survivors renumber into a dense [0, pof2) index space.
  int newidx;
  if (my_idx < 2 * rem) {
    if (my_idx % 2 == 0) {
      ErrorCode err = send(comm, data, bytes,
                           ranks[static_cast<std::size_t>(my_idx + 1)], tag,
                           poll);
      if (err != ErrorCode::kSuccess) return err;
      newidx = -1;
    } else {
      ErrorCode err = recv(comm, tmp.data(), bytes,
                           ranks[static_cast<std::size_t>(my_idx - 1)], tag,
                           nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(tmp.data(), data, count);
      newidx = my_idx / 2;
    }
  } else {
    newidx = my_idx - rem;
  }

  if (newidx >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newidx ^ mask;
      const int partner_idx =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      const int partner = ranks[static_cast<std::size_t>(partner_idx)];
      ErrorCode err = sendrecv(comm, data, bytes, partner, tag, tmp.data(),
                               bytes, partner, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(tmp.data(), data, count);
    }
  }

  if (my_idx < 2 * rem) {
    if (my_idx % 2 == 0) {
      return recv(comm, data, bytes,
                  ranks[static_cast<std::size_t>(my_idx + 1)], tag, nullptr,
                  poll);
    }
    return send(comm, data, bytes, ranks[static_cast<std::size_t>(my_idx - 1)],
                tag, poll);
  }
  return ErrorCode::kSuccess;
}

/// Rabenseifner allreduce across `ranks`, in place on `data`: recursive
/// halving reduce-scatter, then recursive doubling allgather. Bandwidth
/// term is 2*(p-1)/p * n bytes instead of recursive doubling's p*n.
/// Falls back to recursive doubling when the vector is too short to split.
ErrorCode allreduce_rsag_over(Comm& comm, void* data, std::size_t count,
                              const ReduceKernel& k, std::span<const int> ranks,
                              int tag, const PollHook& poll) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) return ErrorCode::kSuccess;
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  if (pof2 < 2 || count < static_cast<std::size_t>(pof2)) {
    return allreduce_rd_over(comm, data, count, k, ranks, tag, poll);
  }
  const int my_idx = index_of(ranks, comm.rank());
  if (my_idx < 0) return ErrorCode::kSuccess;

  const std::size_t es = k.elem_size;
  const std::size_t bytes = count * es;
  auto* base = static_cast<std::byte*>(data);
  std::vector<std::byte> tmp(bytes);
  const int rem = n - pof2;

  int newidx;
  if (my_idx < 2 * rem) {
    if (my_idx % 2 == 0) {
      ErrorCode err = send(comm, data, bytes,
                           ranks[static_cast<std::size_t>(my_idx + 1)], tag,
                           poll);
      if (err != ErrorCode::kSuccess) return err;
      newidx = -1;
    } else {
      ErrorCode err = recv(comm, tmp.data(), bytes,
                           ranks[static_cast<std::size_t>(my_idx - 1)], tag,
                           nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(tmp.data(), data, count);
      newidx = my_idx / 2;
    }
  } else {
    newidx = my_idx - rem;
  }
  const auto real_rank = [&](int ni) {
    return ranks[static_cast<std::size_t>(ni < rem ? ni * 2 + 1 : ni + rem)];
  };

  // Element offsets of the pof2 scatter blocks (first count%pof2 blocks
  // get one extra element).
  std::vector<std::size_t> off(static_cast<std::size_t>(pof2) + 1, 0);
  {
    const std::size_t q = count / static_cast<std::size_t>(pof2);
    const std::size_t r = count % static_cast<std::size_t>(pof2);
    for (int i = 0; i < pof2; ++i) {
      const auto u = static_cast<std::size_t>(i);
      off[u + 1] = off[u] + q + (u < r ? 1 : 0);
    }
  }

  if (newidx >= 0) {
    // Recursive halving: each round trades away the half of the current
    // window the partner owns and folds in the received half.
    int lo = 0;
    int hi = pof2;
    for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
      const int mid = lo + (hi - lo) / 2;
      const bool upper = (newidx & mask) != 0;
      const int keep_lo = upper ? mid : lo;
      const int keep_hi = upper ? hi : mid;
      const int give_lo = upper ? lo : mid;
      const int give_hi = upper ? mid : hi;
      const int partner = real_rank(newidx ^ mask);
      const auto gl = static_cast<std::size_t>(give_lo);
      const auto gh = static_cast<std::size_t>(give_hi);
      const auto kl = static_cast<std::size_t>(keep_lo);
      const auto kh = static_cast<std::size_t>(keep_hi);
      ErrorCode err = sendrecv(comm, base + off[gl] * es,
                               (off[gh] - off[gl]) * es, partner, tag,
                               tmp.data(), (off[kh] - off[kl]) * es, partner,
                               tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(tmp.data(), base + off[kl] * es, off[kh] - off[kl]);
      lo = keep_lo;
      hi = keep_hi;
    }
    // Window is now the single fully-reduced block `newidx`; recursive
    // doubling gathers the rest back, widening the owned window each round.
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newidx ^ mask;
      const int partner = real_rank(partner_new);
      const auto my_lo = static_cast<std::size_t>(newidx & ~(mask - 1));
      const auto pa_lo = static_cast<std::size_t>(partner_new & ~(mask - 1));
      const auto w = static_cast<std::size_t>(mask);
      ErrorCode err = sendrecv(
          comm, base + off[my_lo] * es, (off[my_lo + w] - off[my_lo]) * es,
          partner, tag, base + off[pa_lo] * es,
          (off[pa_lo + w] - off[pa_lo]) * es, partner, tag, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
    }
  }

  if (my_idx < 2 * rem) {
    if (my_idx % 2 == 0) {
      return recv(comm, data, bytes,
                  ranks[static_cast<std::size_t>(my_idx + 1)], tag, nullptr,
                  poll);
    }
    return send(comm, data, bytes, ranks[static_cast<std::size_t>(my_idx - 1)],
                tag, poll);
  }
  return ErrorCode::kSuccess;
}

// ---- node grouping (two-level collectives) -------------------------------

/// Comm ranks bucketed by topology node. Dense node ids are assigned in
/// order of first appearance over comm ranks 0..size-1, so every rank
/// derives the identical grouping; the leader of a node is its lowest
/// comm rank (members are built in ascending rank order).
struct Grouping {
  std::vector<int> node_of;                // comm rank -> dense node id
  std::vector<std::vector<int>> members;   // dense node id -> comm ranks
  std::vector<int> leaders;                // dense node id -> leader rank
  int my_node = 0;
};

Grouping build_grouping(Comm& comm) {
  const Topology& topo = comm.device().fabric().topology();
  const int size = comm.size();
  Grouping g;
  g.node_of.resize(static_cast<std::size_t>(size));
  std::unordered_map<int, int> dense;
  for (int r = 0; r < size; ++r) {
    const int topo_node = topo.node_of(comm.peer_world_rank(r));
    const auto [it, fresh] =
        dense.emplace(topo_node, static_cast<int>(g.members.size()));
    if (fresh) g.members.emplace_back();
    g.node_of[static_cast<std::size_t>(r)] = it->second;
    g.members[static_cast<std::size_t>(it->second)].push_back(r);
    if (r == comm.rank()) g.my_node = it->second;
  }
  g.leaders.reserve(g.members.size());
  for (const auto& m : g.members) g.leaders.push_back(m.front());
  return g;
}

// ---- bcast algorithms ----------------------------------------------------

ErrorCode bcast_linear(Comm& comm, void* buf, std::size_t bytes, int root,
                       const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  if (rank == root) {
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size) - 1);
    for (int i = 0; i < size; ++i) {
      if (i == root) continue;
      reqs.push_back(isend(comm, buf, bytes, i, tag));
    }
    waitall(comm, reqs, poll);
    return ErrorCode::kSuccess;
  }
  return recv(comm, buf, bytes, root, tag, nullptr, poll);
}

ErrorCode bcast_binomial(Comm& comm, void* buf, std::size_t bytes, int root,
                         const PollHook& poll) {
  const int tag = comm.next_collective_tag();
  std::vector<int> everyone(static_cast<std::size_t>(comm.size()));
  std::iota(everyone.begin(), everyone.end(), 0);
  return bcast_over(comm, buf, bytes, everyone, root, tag, poll);
}

/// MPICH long-message bcast: binomial scatter of ceiling(bytes/size)
/// chunks down the tree, then a ring allgather over the chunks. Moves
/// ~2*bytes per rank instead of the binomial tree's log2(p)*bytes.
ErrorCode bcast_scatter_allgather(Comm& comm, void* buf, std::size_t bytes,
                                  int root, const PollHook& poll) {
  const int tag_scatter = comm.next_collective_tag();
  const int tag_gather = comm.next_collective_tag();
  const int size = comm.size();
  const int rank = comm.rank();
  if (size <= 1 || bytes == 0) return ErrorCode::kSuccess;

  auto* base = static_cast<std::byte*>(buf);
  const std::size_t s = (bytes + static_cast<std::size_t>(size) - 1) /
                        static_cast<std::size_t>(size);
  // Chunk i (relative-rank space) is bytes [off(i), off(i+1)); trailing
  // chunks may be empty when bytes doesn't fill the ceiling grid.
  const auto chunk_off = [&](int i) {
    return std::min(bytes, static_cast<std::size_t>(i) * s);
  };
  const int rel = (rank - root + size) % size;
  const auto abs_rank = [&](int r) { return (r + root) % size; };

  // Binomial scatter: each subtree root receives its subtree's byte span.
  std::size_t curr = (rel == 0) ? bytes : 0;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const std::size_t start = chunk_off(rel);
      const std::size_t span = std::min(static_cast<std::size_t>(mask) * s,
                                        bytes > start ? bytes - start : 0);
      if (span > 0) {
        ErrorCode err = recv(comm, base + start, span, abs_rank(rel - mask),
                             tag_scatter, nullptr, poll);
        if (err != ErrorCode::kSuccess) return err;
      }
      curr = span;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const std::size_t my_start = chunk_off(rel);
      const std::size_t child_start = chunk_off(rel + mask);
      if (my_start + curr > child_start) {
        const std::size_t send_b = my_start + curr - child_start;
        ErrorCode err = send(comm, base + child_start, send_b,
                             abs_rank(rel + mask), tag_scatter, poll);
        if (err != ErrorCode::kSuccess) return err;
        curr -= send_b;
      }
    }
    mask >>= 1;
  }

  // Ring allgather over the chunks (empty chunks still sync the ring).
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_chunk = (rel - step + size) % size;
    const int recv_chunk = (rel - step - 1 + size) % size;
    ErrorCode err = sendrecv(
        comm, base + chunk_off(send_chunk),
        chunk_off(send_chunk + 1) - chunk_off(send_chunk), right, tag_gather,
        base + chunk_off(recv_chunk),
        chunk_off(recv_chunk + 1) - chunk_off(recv_chunk), left, tag_gather,
        nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

/// Topology-aware bcast: root -> its node leader, binomial across the
/// leaders, binomial within each node. Crosses the slow inter-node links
/// only log2(#nodes) times instead of log2(p).
ErrorCode bcast_two_level(Comm& comm, void* buf, std::size_t bytes, int root,
                          const PollHook& poll) {
  const int tag_up = comm.next_collective_tag();
  const int tag_leaders = comm.next_collective_tag();
  const int tag_down = comm.next_collective_tag();
  const int rank = comm.rank();

  const Grouping g = build_grouping(comm);
  const auto& members = g.members[static_cast<std::size_t>(g.my_node)];
  if (g.members.size() <= 1) {
    return bcast_over(comm, buf, bytes, members, index_of(members, root),
                      tag_down, poll);
  }

  const int root_leader =
      g.leaders[static_cast<std::size_t>(
          g.node_of[static_cast<std::size_t>(root)])];
  if (root != root_leader) {
    if (rank == root) {
      ErrorCode err = send(comm, buf, bytes, root_leader, tag_up, poll);
      if (err != ErrorCode::kSuccess) return err;
    } else if (rank == root_leader) {
      ErrorCode err = recv(comm, buf, bytes, root, tag_up, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
    }
  }
  if (rank == members.front()) {
    ErrorCode err = bcast_over(comm, buf, bytes, g.leaders,
                               index_of(g.leaders, root_leader), tag_leaders,
                               poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  // Intra-node phase is rooted at the leader; in the root's node the root
  // redundantly re-receives the bytes it already holds, which keeps the
  // tree shape uniform across nodes.
  return bcast_over(comm, buf, bytes, members, 0, tag_down, poll);
}

// ---- allreduce algorithms ------------------------------------------------

/// Deterministic reference: rank-order linear fold at rank 0, binomial
/// bcast of the result. The only entry with a defined operand order, so
/// the property test uses it as the float reference.
ErrorCode allreduce_linear(Comm& comm, const void* send_buf, void* recv_buf,
                           std::size_t count, const ReduceKernel& k,
                           const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag_reduce = comm.next_collective_tag();
  const std::size_t bytes = count * k.elem_size;

  if (rank == 0) {
    std::vector<std::byte> incoming(bytes);
    if (bytes > 0) std::memcpy(recv_buf, send_buf, bytes);
    for (int r = 1; r < size; ++r) {
      ErrorCode err =
          recv(comm, incoming.data(), bytes, r, tag_reduce, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(incoming.data(), recv_buf, count);
    }
  } else {
    ErrorCode err = send(comm, send_buf, bytes, 0, tag_reduce, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return bcast_binomial(comm, recv_buf, bytes, 0, poll);
}

/// Topology-aware allreduce: binomial reduce to each node leader,
/// recursive doubling across the leaders, binomial bcast back down.
ErrorCode allreduce_two_level(Comm& comm, const void* send_buf, void* recv_buf,
                              std::size_t count, const ReduceKernel& k,
                              const PollHook& poll) {
  const int tag_up = comm.next_collective_tag();
  const int tag_leaders = comm.next_collective_tag();
  const int tag_down = comm.next_collective_tag();

  const Grouping g = build_grouping(comm);
  const auto& members = g.members[static_cast<std::size_t>(g.my_node)];
  ErrorCode err = reduce_over(comm, send_buf, recv_buf, count, k, members,
                              /*root_idx=*/0, tag_up, poll);
  if (err != ErrorCode::kSuccess) return err;
  if (comm.rank() == members.front()) {
    err = allreduce_rd_over(comm, recv_buf, count, k, g.leaders, tag_leaders,
                            poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return bcast_over(comm, recv_buf, count * k.elem_size, members, 0, tag_down,
                    poll);
}

// ---- allgather algorithms ------------------------------------------------

ErrorCode allgather_ring(Comm& comm, const void* send_buf,
                         std::size_t block_bytes, void* recv_buf,
                         const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  auto* base = static_cast<std::byte*>(recv_buf);
  std::memcpy(base + static_cast<std::size_t>(rank) * block_bytes, send_buf,
              block_bytes);
  // Ring: in step s, pass along the block that originated s hops upstream.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const int send_block = (rank - s + size) % size;
    const int recv_block = (rank - s - 1 + size) % size;
    ErrorCode err = sendrecv(
        comm, base + static_cast<std::size_t>(send_block) * block_bytes,
        block_bytes, right, tag,
        base + static_cast<std::size_t>(recv_block) * block_bytes, block_bytes,
        left, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

/// Bruck allgather: ceil(log2(p)) rounds of doubling block transfers on a
/// rotated buffer, then one rotation back into rank order. Latency term
/// log2(p)*alpha vs the ring's (p-1)*alpha — wins for small blocks.
ErrorCode allgather_bruck(Comm& comm, const void* send_buf,
                          std::size_t block_bytes, void* recv_buf,
                          const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  std::vector<std::byte> tmp(static_cast<std::size_t>(size) * block_bytes);
  std::memcpy(tmp.data(), send_buf, block_bytes);
  // Invariant: after processing distance `curr`, tmp[i] holds the block
  // contributed by rank (rank + i) % size for i in [0, curr).
  for (int curr = 1; curr < size; curr <<= 1) {
    const int cnt = std::min(curr, size - curr);
    const int dst = (rank - curr + size) % size;
    const int src = (rank + curr) % size;
    ErrorCode err = sendrecv(
        comm, tmp.data(), static_cast<std::size_t>(cnt) * block_bytes, dst,
        tag, tmp.data() + static_cast<std::size_t>(curr) * block_bytes,
        static_cast<std::size_t>(cnt) * block_bytes, src, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  auto* base = static_cast<std::byte*>(recv_buf);
  for (int i = 0; i < size; ++i) {
    const int block = (rank + i) % size;
    std::memcpy(base + static_cast<std::size_t>(block) * block_bytes,
                tmp.data() + static_cast<std::size_t>(i) * block_bytes,
                block_bytes);
  }
  return ErrorCode::kSuccess;
}

ErrorCode allgather_linear(Comm& comm, const void* send_buf,
                           std::size_t block_bytes, void* recv_buf,
                           const PollHook& poll) {
  ErrorCode err =
      gather(comm, send_buf, block_bytes, recv_buf, /*root=*/0, poll);
  if (err != ErrorCode::kSuccess) return err;
  return bcast_binomial(comm, recv_buf,
                        static_cast<std::size_t>(comm.size()) * block_bytes, 0,
                        poll);
}

// ---- reduce_scatter algorithms -------------------------------------------

/// Pairwise exchange: rank i accumulates only its own block; step d trades
/// block (i-d) for block i with ranks i-d / i+d. Peak working state is one
/// block, never the full size()*count vector.
ErrorCode reduce_scatter_pairwise(Comm& comm, const void* send_buf,
                                  void* recv_buf, std::size_t count,
                                  const ReduceKernel& k, const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  const std::size_t block_b = count * k.elem_size;

  const auto* sbase = static_cast<const std::byte*>(send_buf);
  if (block_b > 0) {
    std::memcpy(recv_buf, sbase + static_cast<std::size_t>(rank) * block_b,
                block_b);
  }
  std::vector<std::byte> tmp(block_b);
  for (int d = 1; d < size; ++d) {
    const int src = (rank + d) % size;
    const int dst = (rank - d + size) % size;
    ErrorCode err = sendrecv(
        comm, sbase + static_cast<std::size_t>(dst) * block_b, block_b, dst,
        tag, tmp.data(), block_b, src, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
    k.apply(tmp.data(), recv_buf, count);
  }
  return ErrorCode::kSuccess;
}

/// Reference path: rank-order linear fold at rank 0, then scatter. Only
/// rank 0 materialises the full reduced vector (the seed version allocated
/// it on every rank).
ErrorCode reduce_scatter_linear(Comm& comm, const void* send_buf,
                                void* recv_buf, std::size_t count,
                                const ReduceKernel& k, const PollHook& poll) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag_reduce = comm.next_collective_tag();
  const std::size_t total = count * static_cast<std::size_t>(size);
  const std::size_t total_b = total * k.elem_size;

  std::vector<std::byte> full;
  if (rank == 0) {
    full.resize(total_b);
    std::vector<std::byte> incoming(total_b);
    if (total_b > 0) std::memcpy(full.data(), send_buf, total_b);
    for (int r = 1; r < size; ++r) {
      ErrorCode err =
          recv(comm, incoming.data(), total_b, r, tag_reduce, nullptr, poll);
      if (err != ErrorCode::kSuccess) return err;
      k.apply(incoming.data(), full.data(), total);
    }
  } else {
    ErrorCode err = send(comm, send_buf, total_b, 0, tag_reduce, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return scatter(comm, full.data(), count * k.elem_size, recv_buf, 0, poll);
}

}  // namespace

// ---- registry & selection ------------------------------------------------

std::string_view coll_algo_name(CollAlgo algo) noexcept {
  switch (algo) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kScatterAllgather: return "scatter_allgather";
    case CollAlgo::kRecursiveDoubling: return "recursive_doubling";
    case CollAlgo::kReduceScatterAllgather: return "reduce_scatter_allgather";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kBruck: return "bruck";
    case CollAlgo::kPairwise: return "pairwise";
    case CollAlgo::kTwoLevel: return "two_level";
  }
  return "unknown";
}

namespace {
constexpr CollAlgo kBcastAlgos[] = {
    CollAlgo::kLinear, CollAlgo::kBinomial, CollAlgo::kScatterAllgather,
    CollAlgo::kTwoLevel};
constexpr CollAlgo kReduceAlgos[] = {CollAlgo::kLinear, CollAlgo::kBinomial};
constexpr CollAlgo kAllreduceAlgos[] = {
    CollAlgo::kLinear, CollAlgo::kRecursiveDoubling,
    CollAlgo::kReduceScatterAllgather, CollAlgo::kTwoLevel};
constexpr CollAlgo kAllgatherAlgos[] = {CollAlgo::kLinear, CollAlgo::kRing,
                                        CollAlgo::kBruck};
constexpr CollAlgo kReduceScatterAlgos[] = {CollAlgo::kLinear,
                                            CollAlgo::kPairwise};
}  // namespace

std::span<const CollAlgo> registered_algos(CollOp op) noexcept {
  switch (op) {
    case CollOp::kBcast: return kBcastAlgos;
    case CollOp::kReduce: return kReduceAlgos;
    case CollOp::kAllreduce: return kAllreduceAlgos;
    case CollOp::kAllgather: return kAllgatherAlgos;
    case CollOp::kReduceScatter: return kReduceScatterAlgos;
  }
  return {};
}

CollAlgo select_algo(CollOp op, int world_size, std::size_t total_bytes,
                     const transport::Topology* topo) noexcept {
  // A topology is "hierarchical" when inter-node hops are genuinely more
  // expensive than intra-node ones — a flat full mesh never is, whatever
  // its nominal node grouping.
  const bool hierarchical = topo != nullptr &&
                            topo->kind() != TopologyKind::kFullMesh &&
                            topo->node_count() > 1 &&
                            topo->ranks_per_node() > 1;
  switch (op) {
    case CollOp::kBcast:
      // Binomial moves log2(p) full copies — fine until the bandwidth term
      // dominates; then scatter+allgather (2x bytes/rank), with the
      // leader variant when inter-node links are the bottleneck.
      if (world_size <= 8 || total_bytes <= 16384) return CollAlgo::kBinomial;
      return hierarchical ? CollAlgo::kTwoLevel : CollAlgo::kScatterAllgather;
    case CollOp::kReduce:
      return CollAlgo::kBinomial;
    case CollOp::kAllreduce:
      if (total_bytes <= 16384) {
        return (hierarchical && world_size >= 16) ? CollAlgo::kTwoLevel
                                                  : CollAlgo::kRecursiveDoubling;
      }
      return CollAlgo::kReduceScatterAllgather;
    case CollOp::kAllgather:
      // Bruck's log2(p) latency wins while blocks are small; the ring's
      // contiguous neighbour traffic wins on bandwidth.
      if (world_size <= 2) return CollAlgo::kRing;
      return total_bytes <= 32768 ? CollAlgo::kBruck : CollAlgo::kRing;
    case CollOp::kReduceScatter:
      return CollAlgo::kPairwise;
  }
  return CollAlgo::kLinear;
}

// ---- public collectives --------------------------------------------------

ErrorCode barrier(Comm& comm, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  // Dissemination barrier: log2(size) rounds of zero-byte exchanges.
  for (int dist = 1; dist < size; dist <<= 1) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist + size) % size;
    ErrorCode err = sendrecv(comm, nullptr, 0, to, tag, nullptr, 0, from, tag,
                             nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

ErrorCode bcast(Comm& comm, void* buf, std::size_t bytes, int root,
                const PollHook& poll, CollAlgo algo) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  if (root < 0 || root >= comm.size()) return ErrorCode::kRankError;
  if (comm.size() == 1) return ErrorCode::kSuccess;
  const CollAlgo a =
      resolve_algo(algo, comm.device().config().collectives.bcast,
                   CollOp::kBcast, comm, bytes);
  if (!algo_registered(CollOp::kBcast, a)) return ErrorCode::kNotImplemented;
  switch (a) {
    case CollAlgo::kLinear: return bcast_linear(comm, buf, bytes, root, poll);
    case CollAlgo::kBinomial:
      return bcast_binomial(comm, buf, bytes, root, poll);
    case CollAlgo::kScatterAllgather:
      return bcast_scatter_allgather(comm, buf, bytes, root, poll);
    case CollAlgo::kTwoLevel:
      return bcast_two_level(comm, buf, bytes, root, poll);
    default: return ErrorCode::kNotImplemented;
  }
}

ErrorCode scatter(Comm& comm, const void* send_buf, std::size_t block_bytes,
                  void* recv_buf, int root, const PollHook& poll) {
  const int size = comm.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(size), block_bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    displs[static_cast<std::size_t>(i)] =
        static_cast<std::size_t>(i) * block_bytes;
  }
  return scatterv(comm, send_buf, counts, displs, recv_buf, block_bytes, root,
                  poll);
}

ErrorCode scatterv(Comm& comm, const void* send_buf,
                   const std::vector<std::size_t>& counts,
                   const std::vector<std::size_t>& displs, void* recv_buf,
                   std::size_t recv_bytes, int root, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();

  if (rank == root) {
    if (counts.size() != static_cast<std::size_t>(size) ||
        displs.size() != static_cast<std::size_t>(size)) {
      return ErrorCode::kCountError;
    }
    const auto* base = static_cast<const std::byte*>(send_buf);
    std::vector<Request> reqs;
    for (int i = 0; i < size; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (i == rank) continue;
      reqs.push_back(isend(comm, base + displs[idx], counts[idx], i, tag));
    }
    const auto self = static_cast<std::size_t>(rank);
    const std::size_t n = std::min(counts[self], recv_bytes);
    if (n > 0 && recv_buf != nullptr) {
      std::memcpy(recv_buf, base + displs[self], n);
    }
    waitall(comm, reqs, poll);
    return counts[self] > recv_bytes ? ErrorCode::kTruncate
                                     : ErrorCode::kSuccess;
  }
  return recv(comm, recv_buf, recv_bytes, root, tag, nullptr, poll);
}

ErrorCode gather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                 void* recv_buf, int root, const PollHook& poll) {
  const int size = comm.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(size), block_bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    displs[static_cast<std::size_t>(i)] =
        static_cast<std::size_t>(i) * block_bytes;
  }
  return gatherv(comm, send_buf, block_bytes, recv_buf, counts, displs, root,
                 poll);
}

ErrorCode gatherv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, const std::vector<std::size_t>& counts,
                  const std::vector<std::size_t>& displs, int root,
                  const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const int tag = comm.next_collective_tag();

  if (rank == root) {
    if (counts.size() != static_cast<std::size_t>(size) ||
        displs.size() != static_cast<std::size_t>(size)) {
      return ErrorCode::kCountError;
    }
    auto* base = static_cast<std::byte*>(recv_buf);
    std::vector<Request> reqs;
    for (int i = 0; i < size; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (i == rank) continue;
      reqs.push_back(irecv(comm, base + displs[idx], counts[idx], i, tag));
    }
    const auto self = static_cast<std::size_t>(rank);
    const std::size_t n = std::min(counts[self], send_bytes);
    if (n > 0 && send_buf != nullptr) {
      std::memcpy(base + displs[self], send_buf, n);
    }
    waitall(comm, reqs, poll);
    return ErrorCode::kSuccess;
  }
  return send(comm, send_buf, send_bytes, root, tag, poll);
}

ErrorCode allgather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                    void* recv_buf, const PollHook& poll, CollAlgo algo) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const std::size_t total =
      static_cast<std::size_t>(comm.size()) * block_bytes;
  const CollAlgo a =
      resolve_algo(algo, comm.device().config().collectives.allgather,
                   CollOp::kAllgather, comm, total);
  if (!algo_registered(CollOp::kAllgather, a)) {
    return ErrorCode::kNotImplemented;
  }
  switch (a) {
    case CollAlgo::kLinear:
      return allgather_linear(comm, send_buf, block_bytes, recv_buf, poll);
    case CollAlgo::kRing:
      return allgather_ring(comm, send_buf, block_bytes, recv_buf, poll);
    case CollAlgo::kBruck:
      return allgather_bruck(comm, send_buf, block_bytes, recv_buf, poll);
    default: return ErrorCode::kNotImplemented;
  }
}

ErrorCode reduce(Comm& comm, const void* send_buf, void* recv_buf,
                 std::size_t count, Datatype t, ReduceOp op, int root,
                 const PollHook& poll, CollAlgo algo) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  if (root < 0 || root >= size) return ErrorCode::kRankError;
  const ReduceKernel k = resolve_reduce(op, t);
  const std::size_t bytes = count * k.elem_size;
  const CollAlgo a =
      resolve_algo(algo, comm.device().config().collectives.reduce,
                   CollOp::kReduce, comm, bytes);
  if (!algo_registered(CollOp::kReduce, a)) return ErrorCode::kNotImplemented;

  if (a == CollAlgo::kLinear) {
    // Rank-order fold at the root: the deterministic reference.
    const int tag = comm.next_collective_tag();
    if (rank == root) {
      std::vector<std::byte> incoming(bytes);
      bool first = true;
      for (int r = 0; r < size; ++r) {
        if (r == root) {
          if (first && bytes > 0) std::memcpy(recv_buf, send_buf, bytes);
          else if (bytes > 0) k.apply(send_buf, recv_buf, count);
          first = false;
          continue;
        }
        ErrorCode err =
            recv(comm, incoming.data(), bytes, r, tag, nullptr, poll);
        if (err != ErrorCode::kSuccess) return err;
        if (first && bytes > 0) std::memcpy(recv_buf, incoming.data(), bytes);
        else k.apply(incoming.data(), recv_buf, count);
        first = false;
      }
      return ErrorCode::kSuccess;
    }
    return send(comm, send_buf, bytes, root, tag, poll);
  }

  // Binomial tree: children fold into parents, root ends with the total.
  const int tag = comm.next_collective_tag();
  std::vector<int> everyone(static_cast<std::size_t>(size));
  std::iota(everyone.begin(), everyone.end(), 0);
  return reduce_over(comm, send_buf, recv_buf, count, k, everyone, root, tag,
                     poll);
}

ErrorCode allreduce(Comm& comm, const void* send_buf, void* recv_buf,
                    std::size_t count, Datatype t, ReduceOp op,
                    const PollHook& poll, CollAlgo algo) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const ReduceKernel k = resolve_reduce(op, t);
  const std::size_t bytes = count * k.elem_size;
  const CollAlgo a =
      resolve_algo(algo, comm.device().config().collectives.allreduce,
                   CollOp::kAllreduce, comm, bytes);
  if (!algo_registered(CollOp::kAllreduce, a)) {
    return ErrorCode::kNotImplemented;
  }
  if (a == CollAlgo::kLinear) {
    return allreduce_linear(comm, send_buf, recv_buf, count, k, poll);
  }
  if (a == CollAlgo::kTwoLevel) {
    return allreduce_two_level(comm, send_buf, recv_buf, count, k, poll);
  }
  if (bytes > 0) std::memcpy(recv_buf, send_buf, bytes);
  const int tag = comm.next_collective_tag();
  std::vector<int> everyone(static_cast<std::size_t>(comm.size()));
  std::iota(everyone.begin(), everyone.end(), 0);
  if (a == CollAlgo::kRecursiveDoubling) {
    return allreduce_rd_over(comm, recv_buf, count, k, everyone, tag, poll);
  }
  return allreduce_rsag_over(comm, recv_buf, count, k, everyone, tag, poll);
}

ErrorCode scan(Comm& comm, const void* send_buf, void* recv_buf,
               std::size_t count, Datatype t, ReduceOp op,
               const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  const ReduceKernel k = resolve_reduce(op, t);
  const std::size_t bytes = count * k.elem_size;

  // Linear pipeline: receive the running prefix from the left neighbour,
  // fold in this rank's contribution, pass the result to the right.
  std::memcpy(recv_buf, send_buf, bytes);
  if (rank > 0) {
    std::vector<std::byte> incoming(bytes);
    ErrorCode err =
        recv(comm, incoming.data(), bytes, rank - 1, tag, nullptr, poll);
    if (err != ErrorCode::kSuccess) return err;
    k.apply(incoming.data(), recv_buf, count);
  }
  if (rank + 1 < size) {
    ErrorCode err = send(comm, recv_buf, bytes, rank + 1, tag, poll);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

ErrorCode reduce_scatter_block(Comm& comm, const void* send_buf,
                               void* recv_buf, std::size_t count, Datatype t,
                               ReduceOp op, const PollHook& poll,
                               CollAlgo algo) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const ReduceKernel k = resolve_reduce(op, t);
  const std::size_t total_bytes =
      count * static_cast<std::size_t>(comm.size()) * k.elem_size;
  const CollAlgo a =
      resolve_algo(algo, comm.device().config().collectives.reduce_scatter,
                   CollOp::kReduceScatter, comm, total_bytes);
  if (!algo_registered(CollOp::kReduceScatter, a)) {
    return ErrorCode::kNotImplemented;
  }
  if (a == CollAlgo::kLinear) {
    return reduce_scatter_linear(comm, send_buf, recv_buf, count, k, poll);
  }
  return reduce_scatter_pairwise(comm, send_buf, recv_buf, count, k, poll);
}

ErrorCode alltoall(Comm& comm, const void* send_buf, std::size_t block_bytes,
                   void* recv_buf, const PollHook& poll) {
  if (ErrorCode err_ = require_intra(comm); err_ != ErrorCode::kSuccess) {
    return err_;
  }
  const int size = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  const auto* sbase = static_cast<const std::byte*>(send_buf);
  auto* rbase = static_cast<std::byte*>(recv_buf);
  std::memcpy(rbase + static_cast<std::size_t>(rank) * block_bytes,
              sbase + static_cast<std::size_t>(rank) * block_bytes,
              block_bytes);

  std::vector<Request> reqs;
  for (int i = 0; i < size; ++i) {
    if (i == rank) continue;
    reqs.push_back(irecv(comm,
                         rbase + static_cast<std::size_t>(i) * block_bytes,
                         block_bytes, i, tag));
  }
  for (int i = 0; i < size; ++i) {
    if (i == rank) continue;
    reqs.push_back(isend(comm,
                         sbase + static_cast<std::size_t>(i) * block_bytes,
                         block_bytes, i, tag));
  }
  waitall(comm, reqs, poll);
  return ErrorCode::kSuccess;
}

}  // namespace motor::mpi
