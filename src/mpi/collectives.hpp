// Collective operations over intracommunicators, built on pt2pt with the
// algorithms MPICH2 uses at small scale: dissemination barrier, binomial
// broadcast/reduce, ring allgather, linear rooted scatter/gather.
//
// All ranks of the communicator must call each collective in the same
// order (standard MPI requirement); internal tags are sequenced per
// communicator on that assumption.
#pragma once

#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/pt2pt.hpp"

namespace motor::mpi {

ErrorCode barrier(Comm& comm, const PollHook& poll = {});

/// Root's `buf` [bytes] is replicated into every rank's `buf`.
ErrorCode bcast(Comm& comm, void* buf, std::size_t bytes, int root,
                const PollHook& poll = {});

/// Root holds size()*block_bytes; rank i receives block i into recv_buf.
ErrorCode scatter(Comm& comm, const void* send_buf, std::size_t block_bytes,
                  void* recv_buf, int root, const PollHook& poll = {});

/// Variable-size scatter; counts/displacements in bytes, root-significant.
ErrorCode scatterv(Comm& comm, const void* send_buf,
                   const std::vector<std::size_t>& counts,
                   const std::vector<std::size_t>& displs, void* recv_buf,
                   std::size_t recv_bytes, int root, const PollHook& poll = {});

/// Rank i's send_buf [block_bytes] lands in root's recv_buf at block i.
ErrorCode gather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                 void* recv_buf, int root, const PollHook& poll = {});

ErrorCode gatherv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, const std::vector<std::size_t>& counts,
                  const std::vector<std::size_t>& displs, int root,
                  const PollHook& poll = {});

/// Every rank ends with all ranks' blocks, in rank order.
ErrorCode allgather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                    void* recv_buf, const PollHook& poll = {});

/// Element-wise reduction of count elements of type t into root's recv_buf.
ErrorCode reduce(Comm& comm, const void* send_buf, void* recv_buf,
                 std::size_t count, Datatype t, ReduceOp op, int root,
                 const PollHook& poll = {});

ErrorCode allreduce(Comm& comm, const void* send_buf, void* recv_buf,
                    std::size_t count, Datatype t, ReduceOp op,
                    const PollHook& poll = {});

/// Rank i sends block j of send_buf to rank j, receiving into block i.
ErrorCode alltoall(Comm& comm, const void* send_buf, std::size_t block_bytes,
                   void* recv_buf, const PollHook& poll = {});

/// Inclusive prefix reduction: rank i receives op(rank 0 .. rank i).
ErrorCode scan(Comm& comm, const void* send_buf, void* recv_buf,
               std::size_t count, Datatype t, ReduceOp op,
               const PollHook& poll = {});

/// Reduce size()*count elements, then scatter `count` elements to each
/// rank (MPI_Reduce_scatter_block).
ErrorCode reduce_scatter_block(Comm& comm, const void* send_buf,
                               void* recv_buf, std::size_t count, Datatype t,
                               ReduceOp op, const PollHook& poll = {});

}  // namespace motor::mpi
