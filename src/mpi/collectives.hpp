// Collective operations over intracommunicators, built on pt2pt around an
// algorithm registry in the MPICH2 style: every collective owns a set of
// interchangeable algorithms (registered_algos), and a selection function
// picks one per call from (world size, message size, topology). Callers can
// pin an algorithm per call (trailing argument) or per device
// (DeviceConfig::collectives) for ablation; kAuto defers to selection.
//
// Registered algorithms per operation:
//   bcast           linear | binomial | scatter_allgather | two_level
//   reduce          linear | binomial
//   allreduce       linear | recursive_doubling | reduce_scatter_allgather
//                   | two_level
//   allgather       linear | ring | bruck
//   reduce_scatter  linear | pairwise
//
// The `linear` entries are the deterministic reference paths (rank-order
// fold for reductions); every other entry must produce identical results
// for commutative/associative operator+data combinations — the property
// test (tests/mpi/collectives_property_test.cpp) enforces this.
//
// All ranks of the communicator must call each collective in the same
// order with the same resolved algorithm (standard MPI requirement);
// internal tags are sequenced per communicator on that assumption.
#pragma once

#include <span>
#include <vector>

#include "mpi/coll_algo.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/pt2pt.hpp"

namespace motor::transport {
class Topology;
}  // namespace motor::transport

namespace motor::mpi {

/// Collectives with more than one registered algorithm.
enum class CollOp : std::uint8_t {
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kReduceScatter,
};

/// The algorithms implemented for `op`, reference (`linear`) entry first.
[[nodiscard]] std::span<const CollAlgo> registered_algos(CollOp op) noexcept;

/// The size/world/topology-aware selection function: what kAuto resolves
/// to for a collective moving `total_bytes` across `world_size` ranks.
/// `topo` may be null (treated as a flat full mesh). Pure — the scaling
/// sweep calls it directly to check measured crossovers against the model.
[[nodiscard]] CollAlgo select_algo(CollOp op, int world_size,
                                   std::size_t total_bytes,
                                   const transport::Topology* topo) noexcept;

ErrorCode barrier(Comm& comm, const PollHook& poll = {});

/// Root's `buf` [bytes] is replicated into every rank's `buf`.
ErrorCode bcast(Comm& comm, void* buf, std::size_t bytes, int root,
                const PollHook& poll = {}, CollAlgo algo = CollAlgo::kAuto);

/// Root holds size()*block_bytes; rank i receives block i into recv_buf.
ErrorCode scatter(Comm& comm, const void* send_buf, std::size_t block_bytes,
                  void* recv_buf, int root, const PollHook& poll = {});

/// Variable-size scatter; counts/displacements in bytes, root-significant.
ErrorCode scatterv(Comm& comm, const void* send_buf,
                   const std::vector<std::size_t>& counts,
                   const std::vector<std::size_t>& displs, void* recv_buf,
                   std::size_t recv_bytes, int root, const PollHook& poll = {});

/// Rank i's send_buf [block_bytes] lands in root's recv_buf at block i.
ErrorCode gather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                 void* recv_buf, int root, const PollHook& poll = {});

ErrorCode gatherv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, const std::vector<std::size_t>& counts,
                  const std::vector<std::size_t>& displs, int root,
                  const PollHook& poll = {});

/// Every rank ends with all ranks' blocks, in rank order.
ErrorCode allgather(Comm& comm, const void* send_buf, std::size_t block_bytes,
                    void* recv_buf, const PollHook& poll = {},
                    CollAlgo algo = CollAlgo::kAuto);

/// Element-wise reduction of count elements of type t into root's recv_buf.
/// recv_buf is significant only at root (non-root may pass nullptr).
ErrorCode reduce(Comm& comm, const void* send_buf, void* recv_buf,
                 std::size_t count, Datatype t, ReduceOp op, int root,
                 const PollHook& poll = {}, CollAlgo algo = CollAlgo::kAuto);

ErrorCode allreduce(Comm& comm, const void* send_buf, void* recv_buf,
                    std::size_t count, Datatype t, ReduceOp op,
                    const PollHook& poll = {},
                    CollAlgo algo = CollAlgo::kAuto);

/// Rank i sends block j of send_buf to rank j, receiving into block i.
ErrorCode alltoall(Comm& comm, const void* send_buf, std::size_t block_bytes,
                   void* recv_buf, const PollHook& poll = {});

/// Inclusive prefix reduction: rank i receives op(rank 0 .. rank i).
ErrorCode scan(Comm& comm, const void* send_buf, void* recv_buf,
               std::size_t count, Datatype t, ReduceOp op,
               const PollHook& poll = {});

/// Reduce size()*count elements, then scatter `count` elements to each
/// rank (MPI_Reduce_scatter_block). The default pairwise algorithm never
/// materialises the full reduced vector — each rank holds at most one
/// `count`-element block of working state.
ErrorCode reduce_scatter_block(Comm& comm, const void* send_buf,
                               void* recv_buf, std::size_t count, Datatype t,
                               ReduceOp op, const PollHook& poll = {},
                               CollAlgo algo = CollAlgo::kAuto);

}  // namespace motor::mpi
