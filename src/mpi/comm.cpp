#include "mpi/comm.hpp"

#include <algorithm>

#include "mpi/collectives.hpp"
#include "mpi/device.hpp"
#include "mpi/pt2pt.hpp"
#include "mpi/world.hpp"

namespace motor::mpi {

Comm::Comm(World* world, Device* device, Group local, int context_id)
    : world_(world),
      device_(device),
      local_(std::move(local)),
      context_id_(context_id) {
  rank_ = local_.rank_of(device_->world_rank()).value_or(-1);
  MOTOR_CHECK(rank_ >= 0, "intracomm: this rank is not a group member");
}

Comm::Comm(World* world, Device* device, Group local, Group remote,
           int context_id)
    : world_(world),
      device_(device),
      local_(std::move(local)),
      remote_(std::move(remote)),
      context_id_(context_id) {
  rank_ = local_.rank_of(device_->world_rank()).value_or(-1);
  MOTOR_CHECK(rank_ >= 0, "intercomm: this rank is not a local group member");
}

int Comm::peer_world_rank(int comm_rank) const {
  const Group& peers = is_inter() ? remote_ : local_;
  return peers.world_rank(comm_rank);
}

int Comm::peer_comm_rank(int world_rank) const {
  const Group& peers = is_inter() ? remote_ : local_;
  return peers.rank_of(world_rank).value_or(-1);
}

int Comm::next_collective_tag() {
  return kCollectiveTagBase + (coll_seq_++ & 0x0FFFFFFF);
}

Comm comm_dup(Comm& comm) {
  MOTOR_CHECK(!comm.is_null(), "dup of null communicator");
  int ctx = comm.rank() == 0 ? comm.world().allocate_context() : 0;
  bcast(comm, &ctx, sizeof ctx, 0);
  return Comm(&comm.world(), &comm.device(), comm.group(), ctx);
}

Comm comm_split(Comm& comm, int color, int key) {
  MOTOR_CHECK(!comm.is_null(), "split of null communicator");
  const int size = comm.size();
  const int rank = comm.rank();

  struct Triple {
    int color, key, rank;
  };
  std::vector<Triple> all(static_cast<std::size_t>(size));
  const Triple mine{color, key, rank};
  allgather(comm, &mine, sizeof(Triple), all.data());

  // Distinct non-negative colors in sorted order define the context block.
  std::vector<int> colors;
  for (const Triple& t : all) {
    if (t.color >= 0) colors.push_back(t.color);
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

  int base = 0;
  if (rank == 0 && !colors.empty()) {
    base = comm.world().allocate_context_block(
        static_cast<int>(colors.size()));
  }
  bcast(comm, &base, sizeof base, 0);

  if (color < 0) return Comm{};  // MPI_UNDEFINED

  std::vector<Triple> members;
  for (const Triple& t : all) {
    if (t.color == color) members.push_back(t);
  }
  std::sort(members.begin(), members.end(), [](const Triple& a, const Triple& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> world_ranks;
  world_ranks.reserve(members.size());
  for (const Triple& t : members) {
    world_ranks.push_back(comm.group().world_rank(t.rank));
  }
  const auto color_index = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
  return Comm(&comm.world(), &comm.device(), Group(std::move(world_ranks)),
              base + color_index);
}

Comm comm_create(Comm& comm, const Group& group) {
  MOTOR_CHECK(!comm.is_null(), "create on null communicator");
  int ctx = comm.rank() == 0 ? comm.world().allocate_context() : 0;
  bcast(comm, &ctx, sizeof ctx, 0);
  if (!group.rank_of(comm.device().world_rank()).has_value()) return Comm{};
  return Comm(&comm.world(), &comm.device(), group, ctx);
}

Comm intercomm_merge(Comm& inter, bool high) {
  MOTOR_CHECK(inter.is_inter(), "merge requires an intercommunicator");
  // A production MPI runs a leader exchange to agree on the fused context
  // id; with every rank sharing one World the agreed value comes from a
  // keyed allocator (same inputs -> same id) — see DESIGN.md.
  const auto key = static_cast<std::uint64_t>(inter.context_id());
  const int ctx = inter.world().shared_context_for((key << 8) | 0x4Du);
  Group merged = high ? inter.remote_group().set_union(inter.group())
                      : inter.group().set_union(inter.remote_group());
  return Comm(&inter.world(), &inter.device(), std::move(merged), ctx);
}

}  // namespace motor::mpi
