// Communicators: a context id (isolating tag spaces), a local group, and —
// for intercommunicators — a remote group, per MPI-1/MPI-2 semantics.
//
// Comm objects are per-rank values (each rank holds its own Comm describing
// the same communicator); equality of communicator identity is equality of
// context id.
#pragma once

#include <memory>

#include "mpi/group.hpp"
#include "mpi/request.hpp"

namespace motor::mpi {

class Device;
class World;

/// Tags >= kCollectiveTagBase are reserved for internal collective traffic.
inline constexpr int kMaxUserTag = (1 << 29) - 1;
inline constexpr int kCollectiveTagBase = 1 << 30;

class Comm {
 public:
  Comm() = default;  // null communicator

  /// Intracommunicator.
  Comm(World* world, Device* device, Group local, int context_id);

  /// Intercommunicator: pt2pt ranks address the remote group.
  Comm(World* world, Device* device, Group local, Group remote,
       int context_id);

  [[nodiscard]] bool is_null() const noexcept { return device_ == nullptr; }
  [[nodiscard]] bool is_inter() const noexcept { return !remote_.members().empty(); }

  /// My rank within the local group.
  [[nodiscard]] int rank() const noexcept { return rank_; }
  /// Local group size.
  [[nodiscard]] int size() const noexcept { return local_.size(); }
  /// Remote group size (intercommunicators; 0 otherwise).
  [[nodiscard]] int remote_size() const noexcept { return remote_.size(); }

  [[nodiscard]] int context_id() const noexcept { return context_id_; }
  [[nodiscard]] const Group& group() const noexcept { return local_; }
  [[nodiscard]] const Group& remote_group() const noexcept { return remote_; }

  [[nodiscard]] Device& device() const {
    MOTOR_CHECK(device_ != nullptr, "null communicator");
    return *device_;
  }
  [[nodiscard]] World& world() const {
    MOTOR_CHECK(world_ != nullptr, "null communicator");
    return *world_;
  }

  /// World rank of pt2pt peer `comm_rank` (remote group on intercomms).
  [[nodiscard]] int peer_world_rank(int comm_rank) const;

  /// Comm rank corresponding to a world rank in the peer group, for
  /// translating MsgStatus.source back to communicator terms.
  [[nodiscard]] int peer_comm_rank(int world_rank) const;

  /// Sequenced internal tag for the next collective operation. All ranks
  /// invoke collectives on a communicator in the same order (an MPI
  /// requirement), so the sequence agrees across ranks.
  int next_collective_tag();

 private:
  World* world_ = nullptr;
  Device* device_ = nullptr;
  Group local_;
  Group remote_;
  int context_id_ = 0;
  int rank_ = -1;
  int coll_seq_ = 0;
};

/// MPI_Comm_dup: same group, fresh context id. Collective.
Comm comm_dup(Comm& comm);

/// MPI_Comm_split: partition by color (color < 0 -> no new communicator),
/// order by (key, parent rank). Collective.
Comm comm_split(Comm& comm, int color, int key);

/// MPI_Comm_create: communicator over `group` (a subset of comm's group);
/// ranks outside the group receive a null Comm. Collective.
Comm comm_create(Comm& comm, const Group& group);

/// MPI_Intercomm_merge: fuse an intercommunicator into an intracommunicator.
/// `high` orders this side's ranks after the remote side. Collective over
/// both sides.
Comm intercomm_merge(Comm& inter, bool high);

}  // namespace motor::mpi
