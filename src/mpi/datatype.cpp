#include "mpi/datatype.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace motor::mpi {

std::size_t datatype_size(Datatype t) noexcept {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kChar:
    case Datatype::kInt8:
    case Datatype::kUInt8:
    case Datatype::kPacked:
      return 1;
    case Datatype::kInt16:
    case Datatype::kUInt16:
      return 2;
    case Datatype::kInt32:
    case Datatype::kUInt32:
    case Datatype::kFloat:
      return 4;
    case Datatype::kInt64:
    case Datatype::kUInt64:
    case Datatype::kDouble:
      return 8;
  }
  return 1;
}

std::string_view datatype_name(Datatype t) noexcept {
  switch (t) {
    case Datatype::kByte: return "byte";
    case Datatype::kChar: return "char";
    case Datatype::kInt8: return "int8";
    case Datatype::kUInt8: return "uint8";
    case Datatype::kInt16: return "int16";
    case Datatype::kUInt16: return "uint16";
    case Datatype::kInt32: return "int32";
    case Datatype::kUInt32: return "uint32";
    case Datatype::kInt64: return "int64";
    case Datatype::kUInt64: return "uint64";
    case Datatype::kFloat: return "float";
    case Datatype::kDouble: return "double";
    case Datatype::kPacked: return "packed";
  }
  return "<unknown>";
}

namespace {

template <typename T>
void apply_typed(ReduceOp op, const T* in, T* inout, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] = inout[i] + in[i];
      return;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] = inout[i] * in[i];
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      return;
    case ReduceOp::kLogicalAnd:
    case ReduceOp::kLogicalOr:
    case ReduceOp::kBitAnd:
    case ReduceOp::kBitOr:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < count; ++i) {
          switch (op) {
            case ReduceOp::kLogicalAnd:
              inout[i] = static_cast<T>((inout[i] != 0) && (in[i] != 0));
              break;
            case ReduceOp::kLogicalOr:
              inout[i] = static_cast<T>((inout[i] != 0) || (in[i] != 0));
              break;
            case ReduceOp::kBitAnd:
              inout[i] = static_cast<T>(inout[i] & in[i]);
              break;
            case ReduceOp::kBitOr:
              inout[i] = static_cast<T>(inout[i] | in[i]);
              break;
            default:
              break;
          }
        }
      } else {
        fatal("mpi", "logical/bitwise reduce on floating datatype");
      }
      return;
  }
  fatal("mpi", "unknown reduce op");
}

}  // namespace

void reduce_apply(ReduceOp op, Datatype t, const void* in, void* inout,
                  std::size_t count) {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kUInt8:
    case Datatype::kPacked:
      apply_typed(op, static_cast<const std::uint8_t*>(in),
                  static_cast<std::uint8_t*>(inout), count);
      return;
    case Datatype::kChar:
    case Datatype::kInt8:
      apply_typed(op, static_cast<const std::int8_t*>(in),
                  static_cast<std::int8_t*>(inout), count);
      return;
    case Datatype::kInt16:
      apply_typed(op, static_cast<const std::int16_t*>(in),
                  static_cast<std::int16_t*>(inout), count);
      return;
    case Datatype::kUInt16:
      apply_typed(op, static_cast<const std::uint16_t*>(in),
                  static_cast<std::uint16_t*>(inout), count);
      return;
    case Datatype::kInt32:
      apply_typed(op, static_cast<const std::int32_t*>(in),
                  static_cast<std::int32_t*>(inout), count);
      return;
    case Datatype::kUInt32:
      apply_typed(op, static_cast<const std::uint32_t*>(in),
                  static_cast<std::uint32_t*>(inout), count);
      return;
    case Datatype::kInt64:
      apply_typed(op, static_cast<const std::int64_t*>(in),
                  static_cast<std::int64_t*>(inout), count);
      return;
    case Datatype::kUInt64:
      apply_typed(op, static_cast<const std::uint64_t*>(in),
                  static_cast<std::uint64_t*>(inout), count);
      return;
    case Datatype::kFloat:
      apply_typed(op, static_cast<const float*>(in), static_cast<float*>(inout),
                  count);
      return;
    case Datatype::kDouble:
      apply_typed(op, static_cast<const double*>(in),
                  static_cast<double*>(inout), count);
      return;
  }
}

}  // namespace motor::mpi
