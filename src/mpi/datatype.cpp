#include "mpi/datatype.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace motor::mpi {

std::size_t datatype_size(Datatype t) noexcept {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kChar:
    case Datatype::kInt8:
    case Datatype::kUInt8:
    case Datatype::kPacked:
      return 1;
    case Datatype::kInt16:
    case Datatype::kUInt16:
      return 2;
    case Datatype::kInt32:
    case Datatype::kUInt32:
    case Datatype::kFloat:
      return 4;
    case Datatype::kInt64:
    case Datatype::kUInt64:
    case Datatype::kDouble:
      return 8;
  }
  return 1;
}

std::string_view datatype_name(Datatype t) noexcept {
  switch (t) {
    case Datatype::kByte: return "byte";
    case Datatype::kChar: return "char";
    case Datatype::kInt8: return "int8";
    case Datatype::kUInt8: return "uint8";
    case Datatype::kInt16: return "int16";
    case Datatype::kUInt16: return "uint16";
    case Datatype::kInt32: return "int32";
    case Datatype::kUInt32: return "uint32";
    case Datatype::kInt64: return "int64";
    case Datatype::kUInt64: return "uint64";
    case Datatype::kFloat: return "float";
    case Datatype::kDouble: return "double";
    case Datatype::kPacked: return "packed";
  }
  return "<unknown>";
}

namespace {

// One fully-typed loop per (op, element type) pair, instantiated once at
// compile time. resolve_reduce picks the instantiation; the loops
// themselves carry zero dispatch.
template <typename T, ReduceOp Op>
void kernel_loop(const void* in_v, void* inout_v, std::size_t count) {
  const T* in = static_cast<const T*>(in_v);
  T* inout = static_cast<T*>(inout_v);
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (Op == ReduceOp::kSum) {
      inout[i] = inout[i] + in[i];
    } else if constexpr (Op == ReduceOp::kProd) {
      inout[i] = inout[i] * in[i];
    } else if constexpr (Op == ReduceOp::kMin) {
      inout[i] = std::min(inout[i], in[i]);
    } else if constexpr (Op == ReduceOp::kMax) {
      inout[i] = std::max(inout[i], in[i]);
    } else if constexpr (Op == ReduceOp::kLogicalAnd) {
      inout[i] = static_cast<T>((inout[i] != 0) && (in[i] != 0));
    } else if constexpr (Op == ReduceOp::kLogicalOr) {
      inout[i] = static_cast<T>((inout[i] != 0) || (in[i] != 0));
    } else if constexpr (Op == ReduceOp::kBitAnd) {
      inout[i] = static_cast<T>(inout[i] & in[i]);
    } else if constexpr (Op == ReduceOp::kBitOr) {
      inout[i] = static_cast<T>(inout[i] | in[i]);
    }
  }
}

template <typename T>
ReduceKernel kernel_for(ReduceOp op) {
  ReduceKernel k;
  k.elem_size = sizeof(T);
  switch (op) {
    case ReduceOp::kSum: k.fn = kernel_loop<T, ReduceOp::kSum>; return k;
    case ReduceOp::kProd: k.fn = kernel_loop<T, ReduceOp::kProd>; return k;
    case ReduceOp::kMin: k.fn = kernel_loop<T, ReduceOp::kMin>; return k;
    case ReduceOp::kMax: k.fn = kernel_loop<T, ReduceOp::kMax>; return k;
    case ReduceOp::kLogicalAnd:
    case ReduceOp::kLogicalOr:
    case ReduceOp::kBitAnd:
    case ReduceOp::kBitOr:
      if constexpr (std::is_integral_v<T>) {
        switch (op) {
          case ReduceOp::kLogicalAnd:
            k.fn = kernel_loop<T, ReduceOp::kLogicalAnd>; return k;
          case ReduceOp::kLogicalOr:
            k.fn = kernel_loop<T, ReduceOp::kLogicalOr>; return k;
          case ReduceOp::kBitAnd:
            k.fn = kernel_loop<T, ReduceOp::kBitAnd>; return k;
          default:
            k.fn = kernel_loop<T, ReduceOp::kBitOr>; return k;
        }
      } else {
        fatal("mpi", "logical/bitwise reduce on floating datatype");
      }
  }
  fatal("mpi", "unknown reduce op");
}

}  // namespace

ReduceKernel resolve_reduce(ReduceOp op, Datatype t) {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kUInt8:
    case Datatype::kPacked:
      return kernel_for<std::uint8_t>(op);
    case Datatype::kChar:
    case Datatype::kInt8:
      return kernel_for<std::int8_t>(op);
    case Datatype::kInt16:
      return kernel_for<std::int16_t>(op);
    case Datatype::kUInt16:
      return kernel_for<std::uint16_t>(op);
    case Datatype::kInt32:
      return kernel_for<std::int32_t>(op);
    case Datatype::kUInt32:
      return kernel_for<std::uint32_t>(op);
    case Datatype::kInt64:
      return kernel_for<std::int64_t>(op);
    case Datatype::kUInt64:
      return kernel_for<std::uint64_t>(op);
    case Datatype::kFloat:
      return kernel_for<float>(op);
    case Datatype::kDouble:
      return kernel_for<double>(op);
  }
  return kernel_for<std::uint8_t>(op);
}

void reduce_apply(ReduceOp op, Datatype t, const void* in, void* inout,
                  std::size_t count) {
  resolve_reduce(op, t).apply(in, inout, count);
}

}  // namespace motor::mpi
