// MPI basic datatypes and reduction operators.
//
// The Motor bindings (paper §4.2.1) drop the MPI_Datatype parameter from the
// managed surface — object type is self-describing — but the MPI core below
// the FCall boundary still speaks datatypes, exactly as MPICH2 does, and the
// native baseline uses them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace motor::mpi {

enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt8,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
  kPacked,  // produced by pack(); element size 1
};

/// Size in bytes of one element of `t`.
std::size_t datatype_size(Datatype t) noexcept;

/// Stable name for diagnostics.
std::string_view datatype_name(Datatype t) noexcept;

enum class ReduceOp : std::uint8_t {
  kSum,
  kProd,
  kMin,
  kMax,
  kLogicalAnd,
  kLogicalOr,
  kBitAnd,
  kBitOr,
};

/// inout[i] = op(inout[i], in[i]) for count elements of type t.
/// Logical/bitwise ops are invalid on floating types (checked).
void reduce_apply(ReduceOp op, Datatype t, const void* in, void* inout,
                  std::size_t count);

/// A reduction resolved to a direct function pointer plus element size.
/// Collectives resolve (op, t) ONCE per call and run every inner loop
/// through `fn` — no per-application datatype/op dispatch.
struct ReduceKernel {
  void (*fn)(const void* in, void* inout, std::size_t count) = nullptr;
  std::size_t elem_size = 0;

  void apply(const void* in, void* inout, std::size_t count) const {
    fn(in, inout, count);
  }
};

/// Resolve the (op, t) pair to its typed kernel. Fatals on invalid
/// combinations (logical/bitwise on floating types), like reduce_apply.
ReduceKernel resolve_reduce(ReduceOp op, Datatype t);

}  // namespace motor::mpi
