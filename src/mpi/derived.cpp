#include "mpi/derived.hpp"

#include <algorithm>
#include <cstring>

#include "mpi/pt2pt.hpp"

namespace motor::mpi {

void DatatypeDef::coalesce_runs() {
  // Same lowering the serializer's wire plans apply to FieldDesc lists
  // (and the typed layer applies at compile time): a map entry whose
  // storage starts exactly where the previous one ends extends the
  // previous run. Wire layout is gapless, so heap adjacency in map order
  // is the only condition. Entry order is preserved — it IS the wire
  // order.
  runs_.clear();
  for (const auto& [off, t] : map_) {
    const std::size_t sz = datatype_size(t);
    if (!runs_.empty() && off == runs_.back().offset + runs_.back().bytes) {
      runs_.back().bytes += sz;
    } else {
      runs_.push_back(Run{off, sz});
    }
  }
}

DatatypeDef DatatypeDef::basic(Datatype t) {
  DatatypeDef def;
  def.map_.emplace_back(0, t);
  def.size_ = datatype_size(t);
  def.extent_ = def.size_;
  def.coalesce_runs();
  return def;
}

DatatypeDef DatatypeDef::contiguous(int count, const DatatypeDef& old) {
  MOTOR_CHECK(count >= 0, "contiguous: negative count");
  DatatypeDef def;
  def.map_.reserve(static_cast<std::size_t>(count) * old.map_.size());
  for (int i = 0; i < count; ++i) {
    const std::size_t shift = static_cast<std::size_t>(i) * old.extent_;
    for (const auto& [off, t] : old.map_) def.map_.emplace_back(shift + off, t);
  }
  def.size_ = old.size_ * static_cast<std::size_t>(count);
  def.extent_ = old.extent_ * static_cast<std::size_t>(count);
  def.coalesce_runs();
  return def;
}

DatatypeDef DatatypeDef::vector(int count, int blocklength, int stride,
                                const DatatypeDef& old) {
  MOTOR_CHECK(count >= 0 && blocklength >= 0, "vector: negative shape");
  DatatypeDef def;
  for (int b = 0; b < count; ++b) {
    const std::size_t block_base =
        static_cast<std::size_t>(b) * static_cast<std::size_t>(stride) *
        old.extent_;
    for (int e = 0; e < blocklength; ++e) {
      const std::size_t shift =
          block_base + static_cast<std::size_t>(e) * old.extent_;
      for (const auto& [off, t] : old.map_) {
        def.map_.emplace_back(shift + off, t);
      }
    }
  }
  def.size_ = old.size_ * static_cast<std::size_t>(count) *
              static_cast<std::size_t>(blocklength);
  // MPI extent: from the first byte to the end of the last block.
  if (count > 0 && blocklength > 0) {
    def.extent_ = (static_cast<std::size_t>(count - 1) *
                       static_cast<std::size_t>(stride) +
                   static_cast<std::size_t>(blocklength)) *
                  old.extent_;
  }
  def.coalesce_runs();
  return def;
}

DatatypeDef DatatypeDef::indexed(std::span<const int> blocklengths,
                                 std::span<const int> displacements,
                                 const DatatypeDef& old) {
  MOTOR_CHECK(blocklengths.size() == displacements.size(),
              "indexed: mismatched block arrays");
  DatatypeDef def;
  std::size_t max_end = 0;
  for (std::size_t b = 0; b < blocklengths.size(); ++b) {
    MOTOR_CHECK(blocklengths[b] >= 0 && displacements[b] >= 0,
                "indexed: negative block shape");
    const std::size_t block_base =
        static_cast<std::size_t>(displacements[b]) * old.extent_;
    for (int e = 0; e < blocklengths[b]; ++e) {
      const std::size_t shift =
          block_base + static_cast<std::size_t>(e) * old.extent_;
      for (const auto& [off, t] : old.map_) {
        def.map_.emplace_back(shift + off, t);
      }
    }
    def.size_ += old.size_ * static_cast<std::size_t>(blocklengths[b]);
    max_end = std::max(max_end,
                       block_base + static_cast<std::size_t>(blocklengths[b]) *
                                        old.extent_);
  }
  std::sort(def.map_.begin(), def.map_.end());
  def.extent_ = max_end;
  def.coalesce_runs();
  return def;
}

DatatypeDef DatatypeDef::structure(
    std::span<const std::pair<std::size_t, Datatype>> fields,
    std::size_t extent_bytes) {
  DatatypeDef def;
  for (const auto& [off, t] : fields) {
    def.map_.emplace_back(off, t);
    def.size_ += datatype_size(t);
    MOTOR_CHECK(off + datatype_size(t) <= extent_bytes,
                "structure: field outside extent");
  }
  std::sort(def.map_.begin(), def.map_.end());
  def.extent_ = extent_bytes;
  def.coalesce_runs();
  return def;
}

bool DatatypeDef::is_contiguous() const noexcept {
  return size_ == extent_ && runs_.size() <= 1 &&
         (runs_.empty() || runs_[0].offset == 0);
}

void DatatypeDef::pack(const void* base, std::size_t count,
                       ByteBuffer& out) const {
  const auto* b = static_cast<const std::byte*>(base);
  out.reserve(out.size() + count * size_);
  if (is_contiguous()) {
    // Gapless type map: all `count` elements are one byte range.
    out.append_raw(b, count * size_);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::byte* elem = b + i * extent_;
    for (const Run& r : runs_) {
      out.append_raw(elem + r.offset, r.bytes);
    }
  }
}

Status DatatypeDef::unpack(ByteBuffer& in, void* base,
                           std::size_t count) const {
  auto* b = static_cast<std::byte*>(base);
  if (is_contiguous()) {
    return in.read({b, count * size_});
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::byte* elem = b + i * extent_;
    for (const Run& r : runs_) {
      MOTOR_RETURN_IF_ERROR(in.read({elem + r.offset, r.bytes}));
    }
  }
  return Status::ok();
}

ErrorCode send_derived(Comm& comm, const void* base, std::size_t count,
                       const DatatypeDef& type, int dst, int tag) {
  if (type.is_contiguous()) {
    // Contiguous types go straight through the zero-copy path.
    return send(comm, base, count * type.size(), dst, tag);
  }
  ByteBuffer packed;
  packed.reserve(count * type.size());
  type.pack(base, count, packed);
  return send(comm, packed.data(), packed.size(), dst, tag);
}

ErrorCode recv_derived(Comm& comm, void* base, std::size_t count,
                       const DatatypeDef& type, int src, int tag,
                       MsgStatus* status) {
  const std::size_t wire_bytes = count * type.size();
  if (type.is_contiguous()) {
    return recv(comm, base, wire_bytes, src, tag, status);
  }
  ByteBuffer staging;
  staging.resize(wire_bytes);
  MsgStatus st;
  const ErrorCode err =
      recv(comm, staging.data(), wire_bytes, src, tag, &st);
  if (status != nullptr) *status = st;
  if (err != ErrorCode::kSuccess) return err;
  staging.seek(0);
  Status unpacked = type.unpack(staging, base, count);
  return unpacked.is_ok() ? ErrorCode::kSuccess : unpacked.code();
}

}  // namespace motor::mpi
