// Derived datatypes: the MPI type-map model (MPI-1 §3.12), MPICH2-style.
//
// A derived datatype is a recipe — a list of (byte offset, basic type)
// pairs plus an extent — describing where a logical element's data lives
// relative to a base address. Constructors mirror the MPI calls:
//   contiguous(count, old)                  MPI_Type_contiguous
//   vector(count, blocklength, stride, old) MPI_Type_vector
//   indexed(blocklengths, displs, old)      MPI_Type_indexed
// Types compose (a vector of contiguous of double, etc.).
//
// Motor's managed bindings deliberately dropped MPI_Datatype (§4.2.1);
// derived types live at the native layer, where the C++ baseline and
// tests use them to move strided data (e.g. matrix columns).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/buffer.hpp"
#include "mpi/datatype.hpp"
#include "mpi/request.hpp"

namespace motor::mpi {

class DatatypeDef {
 public:
  /// One basic element at offset 0.
  static DatatypeDef basic(Datatype t);

  /// `count` consecutive copies of `old` (MPI_Type_contiguous).
  static DatatypeDef contiguous(int count, const DatatypeDef& old);

  /// `count` blocks of `blocklength` copies of `old`, block i starting at
  /// i * stride extents of `old` (MPI_Type_vector; stride in elements).
  static DatatypeDef vector(int count, int blocklength, int stride,
                            const DatatypeDef& old);

  /// Blocks of varying length at varying displacements, both in units of
  /// `old`'s extent (MPI_Type_indexed).
  static DatatypeDef indexed(std::span<const int> blocklengths,
                             std::span<const int> displacements,
                             const DatatypeDef& old);

  /// Struct-like: explicit byte displacements of basic fields
  /// (MPI_Type_create_struct restricted to basic members).
  static DatatypeDef structure(
      std::span<const std::pair<std::size_t, Datatype>> fields,
      std::size_t extent_bytes);

  /// Total bytes of actual data per element (sum of basic sizes).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Span covered by one element, gaps included; element i of an array
  /// of this type starts at base + i * extent().
  [[nodiscard]] std::size_t extent() const noexcept { return extent_; }

  /// The flattened (offset, basic) map for one element.
  [[nodiscard]] const std::vector<std::pair<std::size_t, Datatype>>& typemap()
      const noexcept {
    return map_;
  }

  /// The map coalesced into maximal contiguous byte runs — the same
  /// lowering the serializer's wire plans apply to FieldDescs. pack and
  /// unpack move one memcpy per run, not one per map entry.
  struct Run {
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] const std::vector<Run>& runs() const noexcept { return runs_; }

  [[nodiscard]] bool is_contiguous() const noexcept;

  /// Gather `count` elements starting at `base` into a contiguous buffer.
  /// One reserve up front, one memcpy per coalesced run (one total for
  /// fully contiguous types).
  void pack(const void* base, std::size_t count, ByteBuffer& out) const;

  /// Scatter `count` elements from `in` back to their mapped offsets.
  Status unpack(ByteBuffer& in, void* base, std::size_t count) const;

 private:
  DatatypeDef() = default;

  /// Recompute runs_ from map_ (factories call this after building map_).
  void coalesce_runs();

  std::vector<std::pair<std::size_t, Datatype>> map_;  // sorted by offset
  std::vector<Run> runs_;                              // coalesced map_
  std::size_t size_ = 0;
  std::size_t extent_ = 0;
};

class Comm;

/// Send `count` elements of a derived type: packed into a temporary
/// contiguous buffer, then moved with the regular byte path (MPICH2's
/// non-contiguous fallback).
ErrorCode send_derived(Comm& comm, const void* base, std::size_t count,
                       const DatatypeDef& type, int dst, int tag);

/// Receive `count` derived elements into `base` (unpacks the wire bytes
/// into the type map).
ErrorCode recv_derived(Comm& comm, void* base, std::size_t count,
                       const DatatypeDef& type, int src, int tag,
                       MsgStatus* status = nullptr);

}  // namespace motor::mpi
