#include "mpi/device.hpp"

#include <algorithm>
#include <cstring>

#include "pal/thread.hpp"

namespace motor::mpi {

namespace {

bool envelope_matches(const Request& recv, const PacketHeader& hdr) {
  if (recv->context != hdr.context) return false;
  if (recv->tag != kAnyTag && recv->tag != hdr.tag) return false;
  if (recv->peer != kAnySource && recv->peer != hdr.src) return false;
  return true;
}

bool is_eager(PacketType t) {
  return t == PacketType::kEager || t == PacketType::kEagerSync;
}

}  // namespace

Device::Device(transport::Fabric& fabric, int world_rank, DeviceConfig config)
    : fabric_(fabric), my_rank_(world_rank), config_(config) {
  MOTOR_CHECK(world_rank >= 0 && world_rank < fabric.size(),
              "device rank outside fabric");
}

Request Device::post_send(ByteSpan data, int dst, int tag, int context,
                          bool sync) {
  return post_send(SpanVec(data), dst, tag, context, sync);
}

Request Device::post_send(SpanVec data, int dst, int tag, int context,
                          bool sync) {
  MOTOR_CHECK(dst >= 0 && dst < fabric_.size(), "send to bad rank");
  auto req = std::make_shared<RequestState>();
  req->kind = RequestKind::kSend;
  req->id = next_req_id_++;
  req->peer = dst;
  req->tag = tag;
  req->context = context;
  req->send_spans = std::move(data);
  req->send_buf = req->send_spans.part_count() > 0
                      ? req->send_spans.parts().front().data()
                      : nullptr;
  req->buffer_bytes = req->send_spans.total_bytes();
  req->sync = sync;
  const std::size_t total = req->buffer_bytes;

  PacketHeader hdr;
  hdr.src = my_rank_;
  hdr.tag = tag;
  hdr.context = context;
  hdr.msg_bytes = total;
  hdr.sreq_id = req->id;

  if (total <= config_.eager_threshold) {
    hdr.type = sync ? PacketType::kEagerSync : PacketType::kEager;
    hdr.payload_bytes = total;
    if (sync) sync_sends_[req->id] = req;
    enqueue_data(dst, hdr, req->send_spans, req, /*completes_on_drain=*/!sync,
                 total);
  } else {
    // Rendezvous: announce, wait for CTS, then stream. A rendezvous send is
    // inherently synchronous — data only moves after the receiver matched.
    hdr.type = PacketType::kRndvRts;
    hdr.payload_bytes = 0;
    rndv_sends_[req->id] = req;
    enqueue_control(dst, hdr);
  }
  return req;
}

Request Device::post_recv(MutableByteSpan buf, int src, int tag, int context) {
  auto req = std::make_shared<RequestState>();
  req->kind = RequestKind::kRecv;
  req->id = next_req_id_++;
  req->peer = src;
  req->tag = tag;
  req->context = context;
  req->recv_buf = buf.data();
  req->buffer_bytes = buf.size();

  // First look for an already-arrived message (the unexpected queue).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!envelope_matches(req, it->hdr)) continue;
    UnexpectedMsg msg = std::move(*it);
    unexpected_.erase(it);
    deliver_unexpected_to(req, msg);
    // Matching may have produced control packets (sync acks, CTS). Flush
    // them now: the request may already be complete, in which case the
    // caller never drives progress again.
    pump_outbound();
    return req;
  }
  posted_recvs_.push_back(req);
  return req;
}

void Device::deliver_unexpected_to(const Request& req, UnexpectedMsg& msg) {
  const PacketHeader& hdr = msg.hdr;
  if (is_eager(hdr.type)) {
    const std::size_t n = std::min<std::size_t>(msg.payload.size(),
                                                req->buffer_bytes);
    if (n > 0) std::memcpy(req->recv_buf, msg.payload.data(), n);
    const ErrorCode err = msg.payload.size() > req->buffer_bytes
                              ? ErrorCode::kTruncate
                              : ErrorCode::kSuccess;
    on_matched(hdr, req);
    complete_recv(req, hdr, n, err);
  } else {
    // Buffered RTS: match now, ask the sender to stream.
    MOTOR_CHECK(hdr.type == PacketType::kRndvRts, "bad unexpected packet");
    on_matched(hdr, req);
  }
}

bool Device::try_match_posted(const PacketHeader& hdr, Request* out) {
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    if (envelope_matches(*it, hdr)) {
      *out = *it;
      posted_recvs_.erase(it);
      return true;
    }
  }
  return false;
}

void Device::on_matched(const PacketHeader& hdr, const Request& rreq) {
  if (hdr.type == PacketType::kEagerSync) {
    PacketHeader ack;
    ack.type = PacketType::kSyncAck;
    ack.src = my_rank_;
    ack.tag = hdr.tag;
    ack.context = hdr.context;
    ack.sreq_id = hdr.sreq_id;
    enqueue_control(hdr.src, ack);
  } else if (hdr.type == PacketType::kRndvRts) {
    rreq->transferred = 0;
    if (hdr.msg_bytes > rreq->buffer_bytes) rreq->error = ErrorCode::kTruncate;
    rndv_recvs_[rreq->id] = rreq;
    PacketHeader cts;
    cts.type = PacketType::kRndvCts;
    cts.src = my_rank_;
    cts.tag = hdr.tag;
    cts.context = hdr.context;
    cts.sreq_id = hdr.sreq_id;
    cts.rreq_id = rreq->id;
    enqueue_control(hdr.src, cts);
  }
}

void Device::complete_recv(const Request& req, const PacketHeader& hdr,
                           std::size_t bytes, ErrorCode err) {
  req->peer = hdr.src;
  req->tag = hdr.tag;
  req->transferred = bytes;
  if (req->error == ErrorCode::kSuccess) req->error = err;
  req->mark_complete();
}

void Device::enqueue_control(int dst, const PacketHeader& hdr) {
  OutPacket pkt;
  encode_header(hdr, pkt.header);
  outq_[dst].push_back(std::move(pkt));
}

void Device::enqueue_data(int dst, const PacketHeader& hdr, SpanVec payload,
                          Request req, bool completes_on_drain,
                          std::size_t report_bytes) {
  OutPacket pkt;
  encode_header(hdr, pkt.header);
  if (config_.staged_copies && payload.total_bytes() > 0) {
    // Ablation path: flatten the gather list into an owned packet buffer,
    // the copy the zero-copy path exists to avoid.
    const std::size_t total = payload.total_bytes();
    pkt.staged.resize(total);
    payload.copy_to({pkt.staged.data(), total});
    bytes_staged_ += total;
    pkt.payload = SpanVec(ByteSpan{pkt.staged.data(), total});
  } else {
    pkt.payload = std::move(payload);
  }
  pkt.req = std::move(req);
  pkt.completes_on_drain = completes_on_drain;
  pkt.report_bytes = report_bytes;
  outq_[dst].push_back(std::move(pkt));
}

void Device::pump_outbound() {
  for (auto& [dst, queue] : outq_) {
    while (!queue.empty()) {
      OutPacket& pkt = queue.front();
      transport::Channel& ch = fabric_.link(my_rank_, dst);
      const std::size_t psize = pkt.payload.total_bytes();

      if (config_.staged_copies) {
        // Legacy two-operation path: header write, then (flattened) payload
        // write. Staging cost was already charged at enqueue time.
        if (pkt.header_sent < kPacketHeaderBytes) {
          const std::size_t n = ch.try_write({pkt.header + pkt.header_sent,
                                              kPacketHeaderBytes - pkt.header_sent});
          pkt.header_sent += n;
          bytes_sent_ += n;
          if (pkt.header_sent < kPacketHeaderBytes) break;  // channel full
        }
        if (pkt.payload_sent < psize) {
          const std::size_t n = ch.try_write(
              ByteSpan{pkt.staged.data() + pkt.payload_sent,
                       psize - pkt.payload_sent});
          pkt.payload_sent += n;
          bytes_sent_ += n;
          if (pkt.payload_sent < psize) break;  // channel full
        }
      } else {
        // Gathered path: header remainder plus every unsent payload
        // fragment go to the channel in one scatter-gather operation.
        iov_.clear();
        if (pkt.header_sent < kPacketHeaderBytes) {
          iov_.push_back({pkt.header + pkt.header_sent,
                          kPacketHeaderBytes - pkt.header_sent});
        }
        std::size_t skip = pkt.payload_sent;
        for (ByteSpan part : pkt.payload.parts()) {
          if (skip >= part.size()) {
            skip -= part.size();
            continue;
          }
          iov_.push_back(part.subspan(skip));
          skip = 0;
        }
        std::size_t n = iov_.empty() ? 0 : ch.try_write_v(iov_);
        bytes_sent_ += n;
        const std::size_t hdr_take =
            std::min(n, kPacketHeaderBytes - pkt.header_sent);
        pkt.header_sent += hdr_take;
        n -= hdr_take;
        pkt.payload_sent += n;
        bytes_direct_ += n;
        if (pkt.header_sent < kPacketHeaderBytes || pkt.payload_sent < psize) {
          break;  // channel full
        }
      }

      // Fully on the wire.
      if (pkt.req) {
        pkt.req->payload_drained = true;
        if (pkt.completes_on_drain) {
          pkt.req->transferred = pkt.report_bytes;
          pkt.req->mark_complete();
        } else if (pkt.req->sync && pkt.req->sync_acked) {
          pkt.req->transferred = pkt.report_bytes;
          pkt.req->mark_complete();
        }
      }
      queue.pop_front();
    }
  }
}

void Device::dispatch_header(int src, InState& st) {
  const PacketHeader& hdr = st.hdr;
  st.sink_req.reset();
  st.sink_offset = 0;
  st.to_staging = false;
  st.staging.clear();

  switch (hdr.type) {
    case PacketType::kEager:
    case PacketType::kEagerSync: {
      Request rreq;
      if (try_match_posted(hdr, &rreq)) {
        on_matched(hdr, rreq);
        st.sink_req = rreq;
        if (config_.staged_copies) {
          // Bounce ablation: land in staging first, memcpy on finish.
          st.to_staging = true;
          st.staging.resize(hdr.payload_bytes);
        }
      } else {
        st.to_staging = true;
        st.staging.resize(hdr.payload_bytes);
      }
      break;
    }
    case PacketType::kRndvRts: {
      Request rreq;
      if (try_match_posted(hdr, &rreq)) {
        on_matched(hdr, rreq);
      } else {
        unexpected_.push_back(UnexpectedMsg{hdr, {}});
      }
      break;
    }
    case PacketType::kRndvCts: {
      auto it = rndv_sends_.find(hdr.sreq_id);
      MOTOR_CHECK(it != rndv_sends_.end(), "CTS for unknown send");
      Request sreq = it->second;
      rndv_sends_.erase(it);
      // Receiver has matched: stream the message as a train of DATA
      // packets no larger than max_packet_payload, slicing the sender's
      // gather list in place (no flattening, no per-chunk copies). Only
      // the final chunk carries the request; rendezvous sends satisfy
      // synchronous mode by construction, so completion on drain of that
      // last chunk is always correct.
      const std::size_t total = sreq->send_spans.total_bytes();
      const std::size_t chunk_max =
          std::max<std::size_t>(std::size_t{1}, config_.max_packet_payload);
      std::size_t off = 0;
      do {
        const std::size_t chunk = std::min(chunk_max, total - off);
        PacketHeader data;
        data.type = PacketType::kRndvData;
        data.src = my_rank_;
        data.tag = sreq->tag;
        data.context = sreq->context;
        data.payload_bytes = chunk;
        data.msg_bytes = total;
        data.sreq_id = sreq->id;
        data.rreq_id = hdr.rreq_id;
        const bool last = off + chunk == total;
        enqueue_data(src, data, sreq->send_spans.slice(off, chunk),
                     last ? sreq : Request{}, /*completes_on_drain=*/last,
                     total);
        off += chunk;
      } while (off < total);
      break;
    }
    case PacketType::kRndvData: {
      auto it = rndv_recvs_.find(hdr.rreq_id);
      MOTOR_CHECK(it != rndv_recvs_.end(), "DATA for unknown recv");
      Request rreq = it->second;
      st.sink_req = rreq;
      st.sink_offset = rreq->transferred;  // bytes placed by earlier chunks
      if (config_.staged_copies) {
        st.to_staging = true;
        st.staging.resize(hdr.payload_bytes);
      }
      break;
    }
    case PacketType::kSyncAck: {
      auto it = sync_sends_.find(hdr.sreq_id);
      if (it != sync_sends_.end()) {
        Request sreq = it->second;
        sync_sends_.erase(it);
        sreq->sync_acked = true;
        if (sreq->payload_drained) {
          sreq->transferred = sreq->buffer_bytes;
          sreq->mark_complete();
        }
      }
      break;
    }
  }
}

void Device::finish_payload(int src, InState& st) {
  (void)src;
  const PacketHeader& hdr = st.hdr;
  if (st.to_staging && !st.sink_req) {
    UnexpectedMsg msg{hdr, std::move(st.staging)};
    st.staging = {};
    // A matching receive may have been POSTED while this payload was
    // still streaming into staging (the staging decision is made at
    // header time). Deliver straight to it; otherwise it would sit in
    // the unexpected queue facing a posted receive forever.
    Request rreq;
    if (is_eager(hdr.type) && try_match_posted(hdr, &rreq)) {
      deliver_unexpected_to(rreq, msg);
      return;
    }
    unexpected_.push_back(std::move(msg));
    return;
  }
  if (!st.sink_req) return;  // control packet

  Request req = st.sink_req;
  const std::size_t cap = req->buffer_bytes;
  const std::size_t cap_left = cap > st.sink_offset ? cap - st.sink_offset : 0;
  const std::size_t fitted =
      std::min<std::size_t>(hdr.payload_bytes, cap_left);

  if (st.to_staging && fitted > 0) {
    // staged_copies bounce: staging buffer -> posted buffer.
    std::memcpy(req->recv_buf + st.sink_offset, st.staging.data(), fitted);
  }

  if (hdr.type == PacketType::kRndvData) {
    // Chunked stream: complete only once every DATA packet has arrived.
    req->rndv_received += hdr.payload_bytes;
    req->transferred += fitted;
    if (req->rndv_received >= hdr.msg_bytes) {
      rndv_recvs_.erase(hdr.rreq_id);
      // Truncation (if any) was recorded on the request at match time.
      complete_recv(req, hdr, req->transferred, req->error);
    }
    return;
  }

  const ErrorCode err = hdr.payload_bytes > cap_left ? ErrorCode::kTruncate
                                                     : ErrorCode::kSuccess;
  complete_recv(req, hdr, fitted, err);
}

void Device::pump_inbound() {
  const int n = fabric_.size();
  std::byte scratch[4096];  // sink for truncated-overflow bytes

  for (int src = 0; src < n; ++src) {
    transport::Channel& ch = fabric_.link(src, my_rank_);
    InState& st = in_[src];

    for (;;) {
      if (!st.in_payload) {
        if (st.header_got < kPacketHeaderBytes) {
          const std::size_t got = ch.try_read(
              {st.header + st.header_got, kPacketHeaderBytes - st.header_got});
          st.header_got += got;
          bytes_received_ += got;
          if (st.header_got < kPacketHeaderBytes) break;  // need more bytes
        }
        st.hdr = decode_header(st.header);
        st.in_payload = true;
        st.payload_got = 0;
        dispatch_header(src, st);
        if (st.hdr.payload_bytes == 0) {
          finish_payload(src, st);
          st.in_payload = false;
          st.header_got = 0;
          continue;
        }
      }

      // Stream payload bytes toward the chosen sink.
      std::size_t remaining = st.hdr.payload_bytes - st.payload_got;
      std::size_t got = 0;
      if (st.to_staging) {
        got = ch.try_read({st.staging.data() + st.payload_got, remaining});
        bytes_staged_ += got;
      } else if (st.sink_req &&
                 st.sink_offset + st.payload_got < st.sink_req->buffer_bytes) {
        // Scattered receive: land straight in the posted buffer, offset by
        // what earlier rendezvous chunks already placed.
        const std::size_t placed = st.sink_offset + st.payload_got;
        const std::size_t room =
            std::min(remaining, st.sink_req->buffer_bytes - placed);
        got = ch.recv_into({st.sink_req->recv_buf + placed, room});
        bytes_direct_ += got;
      } else {
        // Discard: truncated tail or a control payload we cannot place.
        got = ch.try_read({scratch, std::min(remaining, sizeof scratch)});
      }
      st.payload_got += got;
      bytes_received_ += got;
      if (st.payload_got < st.hdr.payload_bytes) break;  // need more bytes

      finish_payload(src, st);
      st.in_payload = false;
      st.header_got = 0;
    }
  }
}

void Device::progress() {
  // Quiescence pump: drain everything the channels can currently move in
  // ONE poll. A drained packet can unlock cascaded work inside the same
  // call (a CTS arriving triggers DATA packets; an ack completes a send
  // whose queue slot frees room for the next packet), so a single
  // outbound/inbound pass is not enough — loop until the byte counters
  // stop advancing.
  for (;;) {
    const std::uint64_t before = bytes_sent_ + bytes_received_;
    pump_outbound();
    pump_inbound();
    // Inbound handling may have queued control packets (acks, CTS); give
    // them an immediate chance to leave so latency stays low per hop.
    pump_outbound();
    if (bytes_sent_ + bytes_received_ == before) break;
  }
}

bool Device::test(const Request& req) {
  if (req->is_complete()) return true;
  progress();
  return req->is_complete();
}

MsgStatus Device::wait(const Request& req,
                       const std::function<void()>& poll_hook) {
  // Polling wait (paper §7.1): no blocking system call; every iteration is
  // a progress pump plus the caller's yield hook (GC poll for Motor).
  // One unconditional pump keeps already-queued control packets moving
  // even when the request completed earlier.
  progress();
  while (!req->is_complete()) {
    if (poll_hook) poll_hook();
    pal::Thread::yield();
    progress();
  }
  return status_of(req);
}

void Device::cancel(const Request& req) {
  if (req->is_complete()) return;
  if (req->kind == RequestKind::kRecv) {
    for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
      if (it->get() == req.get()) {
        posted_recvs_.erase(it);
        req->cancelled = true;
        req->error = ErrorCode::kCancelled;
        req->mark_complete();
        return;
      }
    }
    return;  // already matched; will complete normally
  }
  // Sends: cancellable only while entirely un-transmitted.
  auto qit = outq_.find(req->peer);
  if (qit == outq_.end()) return;
  for (auto it = qit->second.begin(); it != qit->second.end(); ++it) {
    if (it->req.get() == req.get() && it->header_sent == 0 &&
        it->payload_sent == 0) {
      qit->second.erase(it);
      rndv_sends_.erase(req->id);
      sync_sends_.erase(req->id);
      req->cancelled = true;
      req->error = ErrorCode::kCancelled;
      req->mark_complete();
      return;
    }
  }
}

bool Device::iprobe(int src, int tag, int context, MsgStatus* out) {
  progress();
  for (const auto& msg : unexpected_) {
    if (msg.hdr.context != context) continue;
    if (tag != kAnyTag && tag != msg.hdr.tag) continue;
    if (src != kAnySource && src != msg.hdr.src) continue;
    if (out != nullptr) {
      out->source = msg.hdr.src;
      out->tag = msg.hdr.tag;
      out->count_bytes = msg.hdr.msg_bytes;
      out->error = ErrorCode::kSuccess;
    }
    return true;
  }
  return false;
}

void Device::dump_state(std::FILE* out) const {
  std::fprintf(out, "device rank %d: posted=%zu unexpected=%zu rndv_s=%zu "
               "rndv_r=%zu sync=%zu\n",
               my_rank_, posted_recvs_.size(), unexpected_.size(),
               rndv_sends_.size(), rndv_recvs_.size(), sync_sends_.size());
  for (const Request& r : posted_recvs_) {
    std::fprintf(out, "  posted: src=%d tag=%d ctx=%d cap=%zu\n", r->peer,
                 r->tag, r->context, r->buffer_bytes);
  }
  for (const UnexpectedMsg& m : unexpected_) {
    std::fprintf(out, "  unexpected: type=%d src=%d tag=%d ctx=%d bytes=%llu\n",
                 static_cast<int>(m.hdr.type), m.hdr.src, m.hdr.tag,
                 m.hdr.context,
                 static_cast<unsigned long long>(m.hdr.msg_bytes));
  }
  for (const auto& [dst, queue] : outq_) {
    if (!queue.empty()) {
      std::fprintf(out, "  outq to %d: %zu packets (front hdr %zu/%zu payload %zu/%zu in %zu parts)\n",
                   dst, queue.size(), queue.front().header_sent,
                   kPacketHeaderBytes, queue.front().payload_sent,
                   queue.front().payload.total_bytes(),
                   queue.front().payload.part_count());
    }
  }
}

MsgStatus Device::status_of(const Request& req) {
  MsgStatus st;
  st.source = req->peer;
  st.tag = req->tag;
  st.error = req->error;
  st.count_bytes = req->transferred;
  st.cancelled = req->cancelled;
  return st;
}

}  // namespace motor::mpi
