#include "mpi/device.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/checksum.hpp"
#include "pal/thread.hpp"

namespace motor::mpi {

namespace {

bool envelope_matches(const Request& recv, const PacketHeader& hdr) {
  if (recv->context != hdr.context) return false;
  if (recv->tag != kAnyTag && recv->tag != hdr.tag) return false;
  if (recv->peer != kAnySource && recv->peer != hdr.src) return false;
  return true;
}

bool is_eager(PacketType t) {
  return t == PacketType::kEager || t == PacketType::kEagerSync;
}

}  // namespace

Device::Device(transport::Fabric& fabric, int world_rank, DeviceConfig config)
    : fabric_(fabric), my_rank_(world_rank), config_(config) {
  MOTOR_CHECK(world_rank >= 0 && world_rank < fabric.size(),
              "device rank outside fabric");
}

Request Device::post_send(ByteSpan data, int dst, int tag, int context,
                          bool sync) {
  return post_send(SpanVec(data), dst, tag, context, sync);
}

Request Device::post_send(SpanVec data, int dst, int tag, int context,
                          bool sync) {
  refresh_links();
  MOTOR_CHECK(dst >= 0 && dst < static_cast<int>(out_links_.size()),
              "send to bad rank");
  auto req = std::make_shared<RequestState>();
  {
    // A flow that exhausted its retries — or whose link broke under a
    // cross-process transport — is dead: fail fast instead of queueing
    // traffic that can never arrive.
    auto it = tx_.find(dst);
    if (it != tx_.end() && it->second.failed) {
      req->kind = RequestKind::kSend;
      req->id = next_req_id_++;
      req->peer = dst;
      req->tag = tag;
      req->context = context;
      req->error = ErrorCode::kCommError;
      req->mark_complete();
      return req;
    }
  }
  req->kind = RequestKind::kSend;
  req->id = next_req_id_++;
  req->peer = dst;
  req->tag = tag;
  req->context = context;
  req->send_spans = std::move(data);
  req->send_buf = req->send_spans.part_count() > 0
                      ? req->send_spans.parts().front().data()
                      : nullptr;
  req->buffer_bytes = req->send_spans.total_bytes();
  req->sync = sync;
  const std::size_t total = req->buffer_bytes;

  PacketHeader hdr;
  hdr.src = my_rank_;
  hdr.tag = tag;
  hdr.context = context;
  hdr.msg_bytes = total;
  hdr.sreq_id = req->id;

  if (total <= config_.eager_threshold) {
    hdr.type = sync ? PacketType::kEagerSync : PacketType::kEager;
    hdr.payload_bytes = total;
    if (sync) sync_sends_[req->id] = req;
    enqueue_data(dst, hdr, req->send_spans, req, /*completes_on_drain=*/!sync,
                 total);
  } else {
    // Rendezvous: announce, wait for CTS, then stream. A rendezvous send is
    // inherently synchronous — data only moves after the receiver matched.
    hdr.type = PacketType::kRndvRts;
    hdr.payload_bytes = 0;
    rndv_sends_[req->id] = req;
    enqueue_control(dst, hdr);
  }
  return req;
}

Request Device::post_recv(MutableByteSpan buf, int src, int tag, int context) {
  auto req = std::make_shared<RequestState>();
  req->kind = RequestKind::kRecv;
  req->id = next_req_id_++;
  req->peer = src;
  req->tag = tag;
  req->context = context;
  req->recv_buf = buf.data();
  req->buffer_bytes = buf.size();

  // A dead flow to `src` means nothing it sends can be acked any more:
  // the connection is gone both ways, so fail fast exactly like sends do
  // (buffered unexpected data, if any, is still drained first below).
  if (src != kAnySource) {
    auto it = tx_.find(src);
    if (it != tx_.end() && it->second.failed) {
      bool buffered = false;
      for (const UnexpectedMsg& msg : unexpected_) {
        if (envelope_matches(req, msg.hdr)) {
          buffered = true;
          break;
        }
      }
      if (!buffered) {
        req->error = ErrorCode::kCommError;
        req->mark_complete();
        return req;
      }
    }
  }

  // First look for an already-arrived message (the unexpected queue).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!envelope_matches(req, it->hdr)) continue;
    UnexpectedMsg msg = std::move(*it);
    unexpected_.erase(it);
    deliver_unexpected_to(req, msg);
    // Matching may have produced control packets (sync acks, CTS). Flush
    // them now: the request may already be complete, in which case the
    // caller never drives progress again.
    pump_outbound();
    return req;
  }
  posted_recvs_.push_back(req);
  return req;
}

void Device::deliver_unexpected_to(const Request& req, UnexpectedMsg& msg) {
  const PacketHeader& hdr = msg.hdr;
  if (is_eager(hdr.type)) {
    const std::size_t n = std::min<std::size_t>(msg.payload.size(),
                                                req->buffer_bytes);
    if (n > 0) std::memcpy(req->recv_buf, msg.payload.data(), n);
    const ErrorCode err = msg.payload.size() > req->buffer_bytes
                              ? ErrorCode::kTruncate
                              : ErrorCode::kSuccess;
    on_matched(hdr, req);
    complete_recv(req, hdr, n, err);
  } else {
    // Buffered RTS: match now, ask the sender to stream.
    MOTOR_CHECK(hdr.type == PacketType::kRndvRts, "bad unexpected packet");
    on_matched(hdr, req);
  }
}

bool Device::try_match_posted(const PacketHeader& hdr, Request* out) {
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    if (envelope_matches(*it, hdr)) {
      *out = *it;
      posted_recvs_.erase(it);
      return true;
    }
  }
  return false;
}

void Device::on_matched(const PacketHeader& hdr, const Request& rreq) {
  if (hdr.type == PacketType::kEagerSync) {
    PacketHeader ack;
    ack.type = PacketType::kSyncAck;
    ack.src = my_rank_;
    ack.tag = hdr.tag;
    ack.context = hdr.context;
    ack.sreq_id = hdr.sreq_id;
    enqueue_control(hdr.src, ack);
  } else if (hdr.type == PacketType::kRndvRts) {
    rreq->transferred = 0;
    if (hdr.msg_bytes > rreq->buffer_bytes) rreq->error = ErrorCode::kTruncate;
    rreq->last_progress_poll = poll_clock_;
    rndv_recvs_[rreq->id] = rreq;
    PacketHeader cts;
    cts.type = PacketType::kRndvCts;
    cts.src = my_rank_;
    cts.tag = hdr.tag;
    cts.context = hdr.context;
    cts.sreq_id = hdr.sreq_id;
    cts.rreq_id = rreq->id;
    enqueue_control(hdr.src, cts);
  }
}

void Device::complete_recv(const Request& req, const PacketHeader& hdr,
                           std::size_t bytes, ErrorCode err) {
  req->peer = hdr.src;
  req->tag = hdr.tag;
  req->transferred = bytes;
  if (req->error == ErrorCode::kSuccess) req->error = err;
  req->mark_complete();
}

void Device::seal_header(int dst, PacketHeader& hdr,
                         std::span<const ByteSpan> parts, OutPacket& pkt) {
  // Payload CRC over the gather list incrementally — the zero-copy send
  // path checksums without flattening (crc32c(b, crc32c(a)) == crc(a++b)).
  std::uint32_t crc = 0;
  for (ByteSpan p : parts) crc = crc32c(p, crc);
  hdr.payload_crc = crc;
  if (hdr.type == PacketType::kAck) {
    // Acks are unsequenced and never retransmitted: a lost ack is repaired
    // by the next (cumulative) one, or by the sender's retry provoking it.
    hdr.seq = 0;
  } else {
    TxFlow& fl = tx_[dst];
    hdr.seq = fl.next_seq++;
    pkt.seq = hdr.seq;
    pkt.reliable = true;
  }
  encode_header_sealed(hdr, pkt.header);
}

void Device::enqueue_control(int dst, PacketHeader hdr) {
  OutPacket pkt;
  if (config_.reliability.enabled) {
    seal_header(dst, hdr, {}, pkt);
  } else {
    encode_header(hdr, pkt.header);
  }
  outq_[dst].push_back(std::move(pkt));
}

void Device::enqueue_data(int dst, PacketHeader hdr, SpanVec payload,
                          Request req, bool completes_on_drain,
                          std::size_t report_bytes) {
  OutPacket pkt;
  if (config_.staged_copies && payload.total_bytes() > 0) {
    // Ablation path: flatten the gather list into an owned packet buffer,
    // the copy the zero-copy path exists to avoid.
    const std::size_t total = payload.total_bytes();
    pkt.staged.resize(total);
    payload.copy_to({pkt.staged.data(), total});
    bytes_staged_ += total;
    pkt.payload = SpanVec(ByteSpan{pkt.staged.data(), total});
  } else {
    pkt.payload = std::move(payload);
  }
  if (config_.reliability.enabled) {
    seal_header(dst, hdr, pkt.payload.parts(), pkt);
  } else {
    encode_header(hdr, pkt.header);
  }
  pkt.req = std::move(req);
  pkt.completes_on_drain = completes_on_drain;
  pkt.report_bytes = report_bytes;
  outq_[dst].push_back(std::move(pkt));
}

void Device::complete_drained(OutPacket& pkt) {
  if (!pkt.req) return;
  pkt.req->payload_drained = true;
  if (pkt.completes_on_drain) {
    pkt.req->transferred = pkt.report_bytes;
    pkt.req->mark_complete();
  } else if (pkt.req->sync && pkt.req->sync_acked) {
    pkt.req->transferred = pkt.report_bytes;
    pkt.req->mark_complete();
  }
}

void Device::refresh_links() {
  if (fabric_.epoch() == link_epoch_) return;
  link_epoch_ = fabric_.snapshot_rank(my_rank_, in_links_, out_links_);
}

transport::Channel& Device::out_link(int dst) {
  refresh_links();
  if (dst >= 0 && dst < static_cast<int>(out_links_.size()) &&
      out_links_[static_cast<std::size_t>(dst)] != nullptr) {
    return *out_links_[static_cast<std::size_t>(dst)];
  }
  // First send to this peer: materialise the link (bumps the epoch) and
  // pick it up with a fresh snapshot.
  transport::Channel& ch = fabric_.link(my_rank_, dst);
  refresh_links();
  return ch;
}

void Device::pump_outbound() {
  for (auto& [dst, queue] : outq_) {
    while (!queue.empty()) {
      OutPacket& pkt = queue.front();
      transport::Channel& ch = out_link(dst);
      const std::size_t psize = pkt.payload.total_bytes();

      if (config_.staged_copies) {
        // Legacy two-operation path: header write, then (flattened) payload
        // write. Staging cost was already charged at enqueue time.
        if (pkt.header_sent < kPacketHeaderBytes) {
          const std::size_t n = ch.try_write({pkt.header + pkt.header_sent,
                                              kPacketHeaderBytes - pkt.header_sent});
          pkt.header_sent += n;
          bytes_sent_ += n;
          if (pkt.header_sent < kPacketHeaderBytes) break;  // channel full
        }
        if (pkt.payload_sent < psize) {
          const std::size_t n = ch.try_write(
              ByteSpan{pkt.staged.data() + pkt.payload_sent,
                       psize - pkt.payload_sent});
          pkt.payload_sent += n;
          bytes_sent_ += n;
          if (pkt.payload_sent < psize) break;  // channel full
        }
      } else {
        // Gathered path: header remainder plus every unsent payload
        // fragment go to the channel in one scatter-gather operation.
        iov_.clear();
        if (pkt.header_sent < kPacketHeaderBytes) {
          iov_.push_back({pkt.header + pkt.header_sent,
                          kPacketHeaderBytes - pkt.header_sent});
        }
        std::size_t skip = pkt.payload_sent;
        for (ByteSpan part : pkt.payload.parts()) {
          if (skip >= part.size()) {
            skip -= part.size();
            continue;
          }
          iov_.push_back(part.subspan(skip));
          skip = 0;
        }
        std::size_t n = iov_.empty() ? 0 : ch.try_write_v(iov_);
        bytes_sent_ += n;
        const std::size_t hdr_take =
            std::min(n, kPacketHeaderBytes - pkt.header_sent);
        pkt.header_sent += hdr_take;
        n -= hdr_take;
        pkt.payload_sent += n;
        bytes_direct_ += n;
        if (pkt.header_sent < kPacketHeaderBytes || pkt.payload_sent < psize) {
          break;  // channel full
        }
      }

      // Fully on the wire. Reliable frames park in the unacked window —
      // they complete (and may be retransmitted from there) on ack, not on
      // drain, because the wire is allowed to eat them.
      if (pkt.reliable) {
        TxFlow& fl = tx_[dst];
        if (fl.unacked.empty()) {
          if (fl.timeout_polls == 0) {
            fl.timeout_polls = config_.reliability.retry_timeout_polls;
          }
          fl.deadline = poll_clock_ + fl.timeout_polls;
        }
        fl.unacked.push_back(std::move(pkt));
      } else {
        complete_drained(pkt);
      }
      queue.pop_front();
    }
  }
}

void Device::dispatch_header(int src, InState& st) {
  const PacketHeader& hdr = st.hdr;
  st.sink_req.reset();
  st.sink_offset = 0;
  st.to_staging = false;
  st.staging.clear();

  switch (hdr.type) {
    case PacketType::kEager:
    case PacketType::kEagerSync: {
      Request rreq;
      if (try_match_posted(hdr, &rreq)) {
        on_matched(hdr, rreq);
        st.sink_req = rreq;
        if (config_.staged_copies) {
          // Bounce ablation: land in staging first, memcpy on finish.
          st.to_staging = true;
          st.staging.resize(hdr.payload_bytes);
        }
      } else {
        st.to_staging = true;
        st.staging.resize(hdr.payload_bytes);
      }
      break;
    }
    case PacketType::kRndvRts: {
      Request rreq;
      if (try_match_posted(hdr, &rreq)) {
        on_matched(hdr, rreq);
      } else {
        unexpected_.push_back(UnexpectedMsg{hdr, {}});
      }
      break;
    }
    case PacketType::kRndvCts: {
      auto it = rndv_sends_.find(hdr.sreq_id);
      if (it == rndv_sends_.end()) {
        // Under reliability a send can be failed (retries exhausted) while
        // its CTS is still in flight; ignore rather than assert.
        MOTOR_CHECK(config_.reliability.enabled, "CTS for unknown send");
        break;
      }
      Request sreq = it->second;
      rndv_sends_.erase(it);
      // Receiver has matched: stream the message as a train of DATA
      // packets no larger than max_packet_payload, slicing the sender's
      // gather list in place (no flattening, no per-chunk copies). Only
      // the final chunk carries the request; rendezvous sends satisfy
      // synchronous mode by construction, so completion on drain of that
      // last chunk is always correct.
      const std::size_t total = sreq->send_spans.total_bytes();
      const std::size_t chunk_max =
          std::max<std::size_t>(std::size_t{1}, config_.max_packet_payload);
      std::size_t off = 0;
      do {
        const std::size_t chunk = std::min(chunk_max, total - off);
        PacketHeader data;
        data.type = PacketType::kRndvData;
        data.src = my_rank_;
        data.tag = sreq->tag;
        data.context = sreq->context;
        data.payload_bytes = chunk;
        data.msg_bytes = total;
        data.sreq_id = sreq->id;
        data.rreq_id = hdr.rreq_id;
        const bool last = off + chunk == total;
        enqueue_data(src, data, sreq->send_spans.slice(off, chunk),
                     last ? sreq : Request{}, /*completes_on_drain=*/last,
                     total);
        off += chunk;
      } while (off < total);
      break;
    }
    case PacketType::kRndvData: {
      auto it = rndv_recvs_.find(hdr.rreq_id);
      if (it == rndv_recvs_.end()) {
        // The receive may have been errored out by the stall watchdog;
        // discard the late payload instead of asserting.
        MOTOR_CHECK(config_.reliability.enabled, "DATA for unknown recv");
        break;
      }
      Request rreq = it->second;
      rreq->last_progress_poll = poll_clock_;
      st.sink_req = rreq;
      st.sink_offset = rreq->transferred;  // bytes placed by earlier chunks
      if (config_.staged_copies) {
        st.to_staging = true;
        st.staging.resize(hdr.payload_bytes);
      }
      break;
    }
    case PacketType::kSyncAck: {
      auto it = sync_sends_.find(hdr.sreq_id);
      if (it != sync_sends_.end()) {
        Request sreq = it->second;
        sync_sends_.erase(it);
        sreq->sync_acked = true;
        if (sreq->payload_drained) {
          sreq->transferred = sreq->buffer_bytes;
          sreq->mark_complete();
        }
      }
      break;
    }
    case PacketType::kAck:
      // Reliability acks are consumed by handle_frame_reliable before
      // dispatch; nothing reaches here.
      break;
  }
}

void Device::finish_payload(int src, InState& st) {
  (void)src;
  const PacketHeader& hdr = st.hdr;
  if (st.to_staging && !st.sink_req) {
    UnexpectedMsg msg{hdr, std::move(st.staging)};
    st.staging = {};
    // A matching receive may have been POSTED while this payload was
    // still streaming into staging (the staging decision is made at
    // header time). Deliver straight to it; otherwise it would sit in
    // the unexpected queue facing a posted receive forever.
    Request rreq;
    if (is_eager(hdr.type) && try_match_posted(hdr, &rreq)) {
      deliver_unexpected_to(rreq, msg);
      return;
    }
    unexpected_.push_back(std::move(msg));
    return;
  }
  if (!st.sink_req) return;  // control packet

  Request req = st.sink_req;
  const std::size_t cap = req->buffer_bytes;
  const std::size_t cap_left = cap > st.sink_offset ? cap - st.sink_offset : 0;
  const std::size_t fitted =
      std::min<std::size_t>(hdr.payload_bytes, cap_left);

  if (st.to_staging && fitted > 0) {
    // staged_copies bounce: staging buffer -> posted buffer.
    std::memcpy(req->recv_buf + st.sink_offset, st.staging.data(), fitted);
  }

  if (hdr.type == PacketType::kRndvData) {
    // Chunked stream: complete only once every DATA packet has arrived.
    req->rndv_received += hdr.payload_bytes;
    req->transferred += fitted;
    if (req->rndv_received >= hdr.msg_bytes) {
      rndv_recvs_.erase(hdr.rreq_id);
      // Truncation (if any) was recorded on the request at match time.
      complete_recv(req, hdr, req->transferred, req->error);
    }
    return;
  }

  const ErrorCode err = hdr.payload_bytes > cap_left ? ErrorCode::kTruncate
                                                     : ErrorCode::kSuccess;
  complete_recv(req, hdr, fitted, err);
}

void Device::pump_inbound() {
  refresh_links();
  const int n = static_cast<int>(in_links_.size());

  if (config_.reliability.enabled) {
    for (int src = 0; src < n; ++src) {
      if (in_links_[static_cast<std::size_t>(src)] == nullptr) continue;
      InState& st = in_[src];
      pump_inbound_reliable(src, st);
      if (st.ack_pending) {
        // One coalesced cumulative ack per source per pump, covering every
        // frame delivered (or duplicate re-acked) above.
        PacketHeader ack;
        ack.type = PacketType::kAck;
        ack.src = my_rank_;
        ack.msg_bytes = st.expected_seq - 1;
        enqueue_control(src, ack);
        ++acks_sent_;
        st.ack_pending = false;
      }
    }
    return;
  }

  std::byte scratch[4096];  // sink for truncated-overflow bytes

  for (int src = 0; src < n; ++src) {
    if (in_links_[static_cast<std::size_t>(src)] == nullptr) continue;
    transport::Channel& ch = *in_links_[static_cast<std::size_t>(src)];
    InState& st = in_[src];

    for (;;) {
      if (!st.in_payload) {
        if (st.header_got < kPacketHeaderBytes) {
          const std::size_t got = ch.try_read(
              {st.header + st.header_got, kPacketHeaderBytes - st.header_got});
          st.header_got += got;
          bytes_received_ += got;
          if (st.header_got < kPacketHeaderBytes) break;  // need more bytes
        }
        st.hdr = decode_header(st.header);
        st.in_payload = true;
        st.payload_got = 0;
        dispatch_header(src, st);
        if (st.hdr.payload_bytes == 0) {
          finish_payload(src, st);
          st.in_payload = false;
          st.header_got = 0;
          continue;
        }
      }

      // Stream payload bytes toward the chosen sink.
      std::size_t remaining = st.hdr.payload_bytes - st.payload_got;
      std::size_t got = 0;
      if (st.to_staging) {
        got = ch.try_read({st.staging.data() + st.payload_got, remaining});
        bytes_staged_ += got;
      } else if (st.sink_req &&
                 st.sink_offset + st.payload_got < st.sink_req->buffer_bytes) {
        // Scattered receive: land straight in the posted buffer, offset by
        // what earlier rendezvous chunks already placed.
        const std::size_t placed = st.sink_offset + st.payload_got;
        const std::size_t room =
            std::min(remaining, st.sink_req->buffer_bytes - placed);
        got = ch.recv_into({st.sink_req->recv_buf + placed, room});
        bytes_direct_ += got;
      } else {
        // Discard: truncated tail or a control payload we cannot place.
        got = ch.try_read({scratch, std::min(remaining, sizeof scratch)});
      }
      st.payload_got += got;
      bytes_received_ += got;
      if (st.payload_got < st.hdr.payload_bytes) break;  // need more bytes

      finish_payload(src, st);
      st.in_payload = false;
      st.header_got = 0;
    }
  }
}

void Device::pump_inbound_reliable(int src, InState& st) {
  transport::Channel& ch = *in_links_[static_cast<std::size_t>(src)];

  for (;;) {
    if (!st.in_payload) {
      if (st.header_got < kPacketHeaderBytes) {
        const std::size_t got = ch.try_read(
            {st.header + st.header_got, kPacketHeaderBytes - st.header_got});
        st.header_got += got;
        bytes_received_ += got;
        if (st.header_got < kPacketHeaderBytes) break;  // need more bytes
      }
      // Frame-boundary scan: the wire may have truncated or corrupted an
      // earlier frame, so this window might sit mid-stream. Hunt for the
      // magic anchor; a matching anchor with a bad CRC is a real corrupt
      // header (count it), a non-anchor is just scan noise (silent).
      const HeaderCheck hc = check_sealed_header(st.header);
      if (hc != HeaderCheck::kOk) {
        if (hc == HeaderCheck::kBadCrc) ++checksum_failures_;
        std::memmove(st.header, st.header + 1, kPacketHeaderBytes - 1);
        st.header_got = kPacketHeaderBytes - 1;
        continue;
      }
      st.hdr = decode_header(st.header);
      st.in_payload = true;
      st.payload_got = 0;
      st.frame.resize(static_cast<std::size_t>(st.hdr.payload_bytes));
    }

    // Buffer the whole payload before ANY protocol action: a corrupt or
    // out-of-window frame must produce zero side effects, and the payload
    // CRC can only be checked once every byte is in hand.
    const std::size_t remaining =
        static_cast<std::size_t>(st.hdr.payload_bytes) - st.payload_got;
    if (remaining > 0) {
      const std::size_t got =
          ch.try_read({st.frame.data() + st.payload_got, remaining});
      st.payload_got += got;
      bytes_received_ += got;
      if (st.payload_got < st.hdr.payload_bytes) break;  // need more bytes
    }

    handle_frame_reliable(src, st);
    st.in_payload = false;
    st.header_got = 0;
  }
}

void Device::handle_frame_reliable(int src, InState& st) {
  const PacketHeader& hdr = st.hdr;

  if (crc32c({st.frame.data(), st.frame.size()}) != hdr.payload_crc) {
    // Header survived but the payload didn't. Drop the frame whole; the
    // sender's window retransmits it.
    ++checksum_failures_;
    ++frames_dropped_;
    return;  // no ack — an ack would confirm delivery that never happened
  }

  if (hdr.type == PacketType::kAck) {
    process_ack(src, static_cast<std::uint32_t>(hdr.msg_bytes));
    return;
  }

  if (hdr.seq != st.expected_seq) {
    if (hdr.seq < st.expected_seq) {
      // Retransmitted copy of a frame already delivered (its ack was lost
      // or late). Suppress — protocol side effects must be single-shot.
      ++duplicates_suppressed_;
    } else {
      // Gap: a predecessor was eaten. Go-Back-N discards successors; the
      // sender retransmits from the loss point.
      ++frames_dropped_;
    }
    st.ack_pending = true;  // re-ack so the sender can resync its window
    return;
  }

  st.expected_seq += 1;
  st.ack_pending = true;
  deliver_frame_reliable(src, st);
}

void Device::deliver_frame_reliable(int src, InState& st) {
  dispatch_header(src, st);

  const std::size_t bytes = st.frame.size();
  if (bytes > 0) {
    if (st.to_staging) {
      std::memcpy(st.staging.data(), st.frame.data(), bytes);
      bytes_staged_ += bytes;
    } else if (st.sink_req) {
      // Verified bounce into the posted buffer. This copy is the price of
      // verify-before-deliver (the send side stays zero-copy); it is
      // charged to bytes_staged_ so the copy-accounting benches see it.
      const std::size_t cap = st.sink_req->buffer_bytes;
      const std::size_t room = cap > st.sink_offset ? cap - st.sink_offset : 0;
      const std::size_t fitted = std::min(bytes, room);
      if (fitted > 0) {
        std::memcpy(st.sink_req->recv_buf + st.sink_offset, st.frame.data(),
                    fitted);
      }
      bytes_staged_ += bytes;
    }
    // else: no sink — truncated tail or a late DATA frame; discard.
  }
  st.payload_got = bytes;
  finish_payload(src, st);
}

void Device::process_ack(int src, std::uint32_t cum_seq) {
  auto txit = tx_.find(src);
  if (txit == tx_.end()) return;
  TxFlow& fl = txit->second;
  bool progressed = false;

  while (!fl.unacked.empty() && fl.unacked.front().seq <= cum_seq) {
    complete_drained(fl.unacked.front());
    fl.unacked.pop_front();
    progressed = true;
  }

  // Retransmit copies still queued whose delivery this ack just confirmed:
  // drop the ones that have not touched the wire. A partially-written copy
  // must finish draining (aborting it would corrupt the byte stream); the
  // receiver will suppress it as a duplicate and re-ack.
  auto qit = outq_.find(src);
  if (qit != outq_.end()) {
    auto& q = qit->second;
    for (auto it = q.begin(); it != q.end();) {
      if (it->reliable && it->seq <= cum_seq && it->header_sent == 0) {
        complete_drained(*it);
        it = q.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }

  if (progressed) {
    fl.retries = 0;
    fl.timeout_polls = config_.reliability.retry_timeout_polls;
  }
  fl.deadline = fl.unacked.empty() ? 0 : poll_clock_ + fl.timeout_polls;
}

void Device::fail_flow(int dst) {
  TxFlow& fl = tx_[dst];
  if (!fl.failed) failed_peers_.push_back(dst);
  fl.failed = true;
  fl.deadline = 0;

  auto fail_req = [](const Request& r) {
    if (r && !r->is_complete()) {
      r->error = ErrorCode::kCommError;
      r->mark_complete();
    }
  };

  for (OutPacket& p : fl.unacked) fail_req(p.req);
  fl.unacked.clear();
  auto qit = outq_.find(dst);
  if (qit != outq_.end()) {
    for (OutPacket& p : qit->second) fail_req(p.req);
    qit->second.clear();
  }
  // Sends parked on control traffic from the dead peer (CTS, sync ack)
  // would otherwise wait forever.
  for (auto it = rndv_sends_.begin(); it != rndv_sends_.end();) {
    if (it->second->peer == dst) {
      fail_req(it->second);
      it = rndv_sends_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = sync_sends_.begin(); it != sync_sends_.end();) {
    if (it->second->peer == dst) {
      fail_req(it->second);
      it = sync_sends_.erase(it);
    } else {
      ++it;
    }
  }
  // Acks for inbound data ride this same (now dead) flow, so nothing the
  // peer sends can ever be acknowledged either: the pairwise connection is
  // gone in both directions. Receives addressed to the peer fail too —
  // this is what lets a collective blocked in sendrecv() with a dead
  // partner return kCommError instead of waiting forever on the recv half.
  // Wildcard receives stay posted; another peer can still match them.
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end();) {
    if ((*it)->peer == dst) {
      fail_req(*it);
      it = posted_recvs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = rndv_recvs_.begin(); it != rndv_recvs_.end();) {
    if (it->second->peer == dst) {
      fail_req(it->second);
      it = rndv_recvs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Device::reliability_tick() {
  ++poll_clock_;
  const ReliabilityConfig& rc = config_.reliability;

  // Retry timers, in rank order for run-to-run determinism.
  refresh_links();
  const int n = static_cast<int>(out_links_.size());
  for (int dst = 0; dst < n; ++dst) {
    auto it = tx_.find(dst);
    if (it == tx_.end()) continue;
    TxFlow& fl = it->second;
    if (fl.failed || fl.unacked.empty() || fl.deadline == 0) continue;
    if (poll_clock_ < fl.deadline) continue;

    if (fl.retries >= rc.max_retries) {
      fail_flow(dst);
      continue;
    }
    ++fl.retries;
    frames_retried_ += fl.unacked.size();
    // Go-Back-N: the whole window returns to the head of the queue in
    // sequence order and rides the normal outbound path again.
    auto& q = outq_[dst];
    while (!fl.unacked.empty()) {
      OutPacket pkt = std::move(fl.unacked.back());
      fl.unacked.pop_back();
      pkt.header_sent = 0;
      pkt.payload_sent = 0;
      q.push_front(std::move(pkt));
    }
    fl.timeout_polls =
        std::min(fl.timeout_polls * 2, rc.retry_timeout_cap_polls);
    fl.deadline = poll_clock_ + fl.timeout_polls;
  }

  // Rendezvous-receive stall watchdog: a sender that died mid-stream never
  // delivers the remaining DATA frames, and no ack timer fires on the
  // receive side — this is the only way out.
  for (auto it = rndv_recvs_.begin(); it != rndv_recvs_.end();) {
    Request& r = it->second;
    if (poll_clock_ - r->last_progress_poll > rc.recv_stall_polls) {
      if (!r->is_complete()) {
        r->error = ErrorCode::kCommError;
        r->mark_complete();
      }
      it = rndv_recvs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Device::scan_dead_links() {
  refresh_links();
  const int n = static_cast<int>(in_links_.size());
  for (int peer = 0; peer < n; ++peer) {
    if (peer == my_rank_) continue;
    transport::Channel* in = in_links_[static_cast<std::size_t>(peer)];
    transport::Channel* out = out_links_[static_cast<std::size_t>(peer)];
    if (!(in != nullptr && in->broken()) &&
        !(out != nullptr && out->broken())) {
      continue;
    }
    auto it = tx_.find(peer);
    if (it != tx_.end() && it->second.failed) continue;  // already declared
    fail_flow(peer);
  }
}

std::vector<int> Device::take_failed_peers() {
  return std::exchange(failed_peers_, {});
}

void Device::progress() {
  // Quiescence pump: drain everything the channels can currently move in
  // ONE poll. A drained packet can unlock cascaded work inside the same
  // call (a CTS arriving triggers DATA packets; an ack completes a send
  // whose queue slot frees room for the next packet), so a single
  // outbound/inbound pass is not enough — loop until the byte counters
  // stop advancing.
  if (config_.reliability.enabled) reliability_tick();
  scan_dead_links();
  for (;;) {
    const std::uint64_t before = bytes_sent_ + bytes_received_;
    pump_outbound();
    pump_inbound();
    // Inbound handling may have queued control packets (acks, CTS); give
    // them an immediate chance to leave so latency stays low per hop.
    pump_outbound();
    if (bytes_sent_ + bytes_received_ == before) break;
  }
}

bool Device::test(const Request& req) {
  if (req->is_complete()) return true;
  progress();
  return req->is_complete();
}

MsgStatus Device::wait(const Request& req,
                       const std::function<void()>& poll_hook) {
  // Polling wait (paper §7.1): no blocking system call; every iteration is
  // a progress pump plus the caller's yield hook (GC poll for Motor).
  // One unconditional pump keeps already-queued control packets moving
  // even when the request completed earlier.
  progress();
  while (!req->is_complete()) {
    if (poll_hook) poll_hook();
    pal::Thread::yield();
    progress();
  }
  return status_of(req);
}

void Device::cancel(const Request& req) {
  if (req->is_complete()) return;
  if (req->kind == RequestKind::kRecv) {
    for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
      if (it->get() == req.get()) {
        posted_recvs_.erase(it);
        req->cancelled = true;
        req->error = ErrorCode::kCancelled;
        req->mark_complete();
        return;
      }
    }
    return;  // already matched; will complete normally
  }
  // Sends: cancellable only while entirely un-transmitted.
  auto qit = outq_.find(req->peer);
  if (qit == outq_.end()) return;
  for (auto it = qit->second.begin(); it != qit->second.end(); ++it) {
    if (it->req.get() == req.get() && it->header_sent == 0 &&
        it->payload_sent == 0) {
      qit->second.erase(it);
      rndv_sends_.erase(req->id);
      sync_sends_.erase(req->id);
      req->cancelled = true;
      req->error = ErrorCode::kCancelled;
      req->mark_complete();
      return;
    }
  }
}

bool Device::iprobe(int src, int tag, int context, MsgStatus* out) {
  progress();
  for (const auto& msg : unexpected_) {
    if (msg.hdr.context != context) continue;
    if (tag != kAnyTag && tag != msg.hdr.tag) continue;
    if (src != kAnySource && src != msg.hdr.src) continue;
    if (out != nullptr) {
      out->source = msg.hdr.src;
      out->tag = msg.hdr.tag;
      out->count_bytes = msg.hdr.msg_bytes;
      out->error = ErrorCode::kSuccess;
    }
    return true;
  }
  return false;
}

void Device::dump_state(std::FILE* out) const {
  std::fprintf(out, "device rank %d: posted=%zu unexpected=%zu rndv_s=%zu "
               "rndv_r=%zu sync=%zu\n",
               my_rank_, posted_recvs_.size(), unexpected_.size(),
               rndv_sends_.size(), rndv_recvs_.size(), sync_sends_.size());
  for (const Request& r : posted_recvs_) {
    std::fprintf(out, "  posted: src=%d tag=%d ctx=%d cap=%zu\n", r->peer,
                 r->tag, r->context, r->buffer_bytes);
  }
  for (const UnexpectedMsg& m : unexpected_) {
    std::fprintf(out, "  unexpected: type=%d src=%d tag=%d ctx=%d bytes=%llu\n",
                 static_cast<int>(m.hdr.type), m.hdr.src, m.hdr.tag,
                 m.hdr.context,
                 static_cast<unsigned long long>(m.hdr.msg_bytes));
  }
  for (const auto& [dst, queue] : outq_) {
    if (!queue.empty()) {
      std::fprintf(out, "  outq to %d: %zu packets (front hdr %zu/%zu payload %zu/%zu in %zu parts)\n",
                   dst, queue.size(), queue.front().header_sent,
                   kPacketHeaderBytes, queue.front().payload_sent,
                   queue.front().payload.total_bytes(),
                   queue.front().payload.part_count());
    }
  }
  if (config_.reliability.enabled) {
    std::fprintf(out,
                 "  reliability: poll=%llu dropped=%llu retried=%llu "
                 "crc_fail=%llu dups=%llu acks=%llu\n",
                 static_cast<unsigned long long>(poll_clock_),
                 static_cast<unsigned long long>(frames_dropped_),
                 static_cast<unsigned long long>(frames_retried_),
                 static_cast<unsigned long long>(checksum_failures_),
                 static_cast<unsigned long long>(duplicates_suppressed_),
                 static_cast<unsigned long long>(acks_sent_));
    for (const auto& [dst, fl] : tx_) {
      if (!fl.unacked.empty() || fl.failed) {
        std::fprintf(out, "  tx flow to %d: unacked=%zu retries=%u%s\n", dst,
                     fl.unacked.size(), fl.retries,
                     fl.failed ? " FAILED" : "");
      }
    }
  }
}

MsgStatus Device::status_of(const Request& req) {
  MsgStatus st;
  st.source = req->peer;
  st.tag = req->tag;
  st.error = req->error;
  st.count_bytes = req->transferred;
  st.cancelled = req->cancelled;
  return st;
}

}  // namespace motor::mpi
