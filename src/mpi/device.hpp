// The per-rank communication device — the analog of MPICH2's CH3/ADI3
// layer. It owns:
//   * the posted-receive queue and the unexpected-message queue,
//   * per-peer outbound packet queues and inbound reassembly state,
//   * the eager/rendezvous protocol state machines,
//   * the progress engine that pumps bytes through the channel layer.
//
// Threading model: exactly one application thread drives a Device (posts
// operations and calls progress/wait), matching MPICH2's sock-channel
// single-threaded progress. Channels themselves are safe for their single
// producer / single consumer pair.
//
// Blocking waits are implemented as *polling waits* — the paper replaces
// blocking system calls with poll loops so the calling FCall can yield to
// the garbage collector (§7.1). The `poll_hook` parameter is that yield
// point: Motor passes a GC-poll closure; native code passes nothing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "mpi/coll_algo.hpp"
#include "mpi/packet.hpp"
#include "mpi/request.hpp"
#include "transport/fabric.hpp"

namespace motor::mpi {

/// Reliability layer knobs. Timeouts are measured in progress() calls
/// ("polls"), not wall-clock time: the device is driven by polling waits,
/// so poll counts are the natural virtual clock — and they make fault
/// scenarios fully deterministic (identical counters run over run), which
/// wall-clock timers can never be.
struct ReliabilityConfig {
  /// Master switch. Off (default) is the paper's trusting lossless mode:
  /// no checksums computed, no acks sent, no retransmit state kept — the
  /// zero-copy path is byte-for-byte the PR 1 behaviour.
  bool enabled = false;
  /// Polls without a covering ack before the unacked window retransmits.
  std::uint32_t retry_timeout_polls = 1 << 12;
  /// The timeout doubles per consecutive retry, capped here.
  std::uint32_t retry_timeout_cap_polls = 1 << 16;
  /// Consecutive whole-window retries before the flow is declared dead
  /// and its requests complete with ErrorCode::kCommError (MPI_ERR_OTHER
  /// analog) instead of hanging.
  std::uint32_t max_retries = 16;
  /// Rendezvous-receive watchdog: polls without accepted DATA progress
  /// before the matched receive errors out (covers a sender that died
  /// mid-stream, which acks alone cannot detect on the receive side).
  std::uint32_t recv_stall_polls = 1 << 20;
};

/// Device tuning knobs (MPICH2-style).
struct DeviceConfig {
  /// Messages <= this many bytes are sent eagerly; larger ones rendezvous.
  std::size_t eager_threshold = 64 * 1024;
  /// Largest single DATA packet for rendezvous streaming.
  std::size_t max_packet_payload = 256 * 1024;
  /// Ablation/baseline: reproduce the wrapper-style STAGED data path —
  /// every send flattens header+payload into an owned packet buffer and
  /// every matched receive bounces through a staging buffer before the
  /// posted buffer. Off (default) = the zero-copy scatter-gather path.
  bool staged_copies = false;
  /// Checksums + sequence window + retransmission (see ReliabilityConfig).
  ReliabilityConfig reliability;
  /// Collective algorithm overrides (kAuto = size/world/topology
  /// selection; see mpi/collectives.hpp).
  CollectiveTuning collectives;
};

class Device {
 public:
  Device(transport::Fabric& fabric, int world_rank,
         DeviceConfig config = DeviceConfig{});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] int world_rank() const noexcept { return my_rank_; }
  [[nodiscard]] const DeviceConfig& config() const noexcept { return config_; }
  [[nodiscard]] transport::Fabric& fabric() noexcept { return fabric_; }

  // ---- posting ----

  /// Start a send of `data` to world rank `dst` on (tag, context).
  /// `sync` requests synchronous-mode completion (matched before complete).
  Request post_send(ByteSpan data, int dst, int tag, int context, bool sync);

  /// Gathered send: the message is the concatenation of `data`'s parts,
  /// pushed onto the wire with no flattening — header and fragments go to
  /// the channel in one gathered operation. The caller keeps every
  /// fragment valid (pinned, for managed memory) until completion.
  Request post_send(SpanVec data, int dst, int tag, int context, bool sync);

  /// Start a receive into `buf` from world rank `src` (or kAnySource) with
  /// `tag` (or kAnyTag) on `context`.
  Request post_recv(MutableByteSpan buf, int src, int tag, int context);

  // ---- completion ----

  /// Drive progress once and report whether `req` has completed.
  bool test(const Request& req);

  /// Poll until `req` completes. `poll_hook` (may be empty) runs every
  /// iteration — the GC-yield point for managed callers.
  MsgStatus wait(const Request& req, const std::function<void()>& poll_hook = {});

  /// Attempt to cancel. Receives not yet matched and sends not yet on the
  /// wire are cancelled; otherwise the request completes normally.
  void cancel(const Request& req);

  /// Non-blocking probe: true when a matching message is available, with
  /// its envelope in `out` (count_bytes = full message size).
  bool iprobe(int src, int tag, int context, MsgStatus* out);

  /// One pump of the progress engine: flush outbound queues, drain inbound
  /// channels, run protocol state machines.
  void progress();

  // ---- introspection (tests / diagnostics) ----
  [[nodiscard]] std::size_t posted_recv_count() const {
    return posted_recvs_.size();
  }
  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_.size();
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }

  // Copy accounting for the zero-copy property (benches/tests assert it).
  /// Payload bytes that passed through an intermediate buffer: inbound
  /// staging for unexpected messages, plus every flatten/bounce in the
  /// staged_copies ablation mode.
  [[nodiscard]] std::uint64_t bytes_staged() const noexcept {
    return bytes_staged_;
  }
  /// Payload bytes moved directly between user/serializer memory and the
  /// channel, with no intermediate copy.
  [[nodiscard]] std::uint64_t bytes_direct() const noexcept {
    return bytes_direct_;
  }

  // Reliability counters (zero while the layer is disabled). The benches
  // report these alongside the copy-accounting block above.
  /// Inbound frames discarded: payload checksum mismatch or a sequence
  /// gap (frames past a loss are dropped and retransmitted, Go-Back-N).
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_;
  }
  /// Outbound frames retransmitted after an ack timeout.
  [[nodiscard]] std::uint64_t frames_retried() const noexcept {
    return frames_retried_;
  }
  /// Header or payload CRC mismatches detected on inbound frames.
  [[nodiscard]] std::uint64_t checksum_failures() const noexcept {
    return checksum_failures_;
  }
  /// Inbound frames that had already been delivered (seq below the
  /// window), discarded without re-dispatching protocol side effects.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept {
    return duplicates_suppressed_;
  }
  /// Cumulative ack frames emitted.
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }

  static MsgStatus status_of(const Request& req);

  /// Diagnostic dump of queues and protocol state (stderr-style text).
  void dump_state(std::FILE* out) const;

 private:
  // One queued outbound transmission: an owned header plus a non-owning
  // gather list (zero-copy: payload fragments stream from the user /
  // serializer buffers straight into the channel in one gathered write).
  // In staged_copies mode the payload is instead flattened into `staged`
  // at enqueue time and `payload` views that copy.
  struct OutPacket {
    std::byte header[kPacketHeaderBytes];
    std::size_t header_sent = 0;
    SpanVec payload;
    std::vector<std::byte> staged;  // staged_copies flatten buffer
    std::size_t payload_sent = 0;
    Request req;              // may be null for control packets
    bool completes_on_drain = false;
    std::size_t report_bytes = 0;  // transferred value on completion
    std::uint32_t seq = 0;    // reliability sequence (0 = unsequenced/ack)
    bool reliable = false;    // parked in the unacked window after drain
  };

  // Inbound reassembly per source: header accumulation, then payload
  // streaming into a sink. Matched messages land directly in the posted
  // buffer at `sink_offset` (nonzero for rendezvous DATA chunks past the
  // first); only genuinely unexpected messages stage. staged_copies mode
  // forces matched payloads through staging too (the bounce ablation).
  struct InState {
    std::byte header[kPacketHeaderBytes];
    std::size_t header_got = 0;
    bool in_payload = false;
    PacketHeader hdr;
    std::size_t payload_got = 0;
    // Sink selection after header dispatch:
    Request sink_req;                // request the payload completes
    std::size_t sink_offset = 0;     // write position inside recv_buf
    std::vector<std::byte> staging;  // unexpected / bounce buffer
    bool to_staging = false;
    // Reliability-mode receive state. The whole frame payload is buffered
    // in `frame` and checksum-verified BEFORE dispatch, so a corrupt frame
    // produces zero protocol side effects.
    std::uint32_t expected_seq = 1;  // next in-order sequence number
    bool ack_pending = false;        // coalesced ack owed to this source
    std::vector<std::byte> frame;    // payload bounce buffer
  };

  // Per-destination reliability transmit state: Go-Back-N with a
  // cumulative-ack window and capped exponential backoff (poll clock).
  struct TxFlow {
    std::uint32_t next_seq = 1;
    std::deque<OutPacket> unacked;   // drained but not yet acked, seq order
    std::uint32_t retries = 0;       // consecutive timeouts without progress
    std::uint32_t timeout_polls = 0; // current (backed-off) timeout
    std::uint64_t deadline = 0;      // poll_clock_ value that fires a retry
    bool failed = false;             // flow declared dead; sends fail fast
  };

  struct UnexpectedMsg {
    PacketHeader hdr;
    std::vector<std::byte> payload;  // eager only; empty for RTS
  };

  /// Outbound channel to `dst`, creating the fabric link on first send
  /// and caching the pointer (invalidated by fabric epoch bumps).
  transport::Channel& out_link(int dst);
  /// Refresh the cached inbound/outbound rows if the fabric epoch moved.
  /// The steady-state progress pump then iterates only channels that
  /// exist, without touching the fabric mutex.
  void refresh_links();

  void enqueue_control(int dst, PacketHeader hdr);
  void enqueue_data(int dst, PacketHeader hdr, SpanVec payload,
                    Request req, bool completes_on_drain,
                    std::size_t report_bytes);
  void seal_header(int dst, PacketHeader& hdr, std::span<const ByteSpan> parts,
                   OutPacket& pkt);
  void pump_outbound();
  void pump_inbound();
  void pump_inbound_reliable(int src, InState& st);
  void handle_frame_reliable(int src, InState& st);
  void deliver_frame_reliable(int src, InState& st);
  void reliability_tick();
  void process_ack(int src, std::uint32_t cum_seq);
  void fail_flow(int dst);
  /// Fail the flow to every peer whose link reports broken() (a rank
  /// process died under a cross-process transport). In-process channels
  /// never break, so this is a cheap flag scan in thread worlds.
  void scan_dead_links();

 public:
  /// Drain the peers whose flow newly failed (broken link or retry
  /// exhaustion) since the last call. Pollers that keep no posted
  /// requests — e.g. a PS client parked on window credit — have no
  /// pending operation for fail_flow() to complete, so this is their
  /// only way to learn a peer died.
  std::vector<int> take_failed_peers();

 private:
  void complete_drained(OutPacket& pkt);
  void dispatch_header(int src, InState& st);
  void finish_payload(int src, InState& st);
  void deliver_unexpected_to(const Request& req, UnexpectedMsg& msg);
  bool try_match_posted(const PacketHeader& hdr, Request* out);
  void on_matched(const PacketHeader& hdr, const Request& rreq);
  void complete_recv(const Request& req, const PacketHeader& hdr,
                     std::size_t bytes, ErrorCode err);

  transport::Fabric& fabric_;
  int my_rank_;
  DeviceConfig config_;
  std::uint64_t next_req_id_ = 1;

  // Cached link rows, valid for `link_epoch_` (0 = never snapshot).
  // in_links_[src] is null until rank `src` first sends to us; the
  // inbound pump skips null entries, so a 256-rank world costs each
  // progress call only its live peers, not the whole rank column.
  std::uint64_t link_epoch_ = 0;
  std::vector<transport::Channel*> in_links_;
  std::vector<transport::Channel*> out_links_;

  std::unordered_map<int, std::deque<OutPacket>> outq_;   // by destination
  std::unordered_map<int, InState> in_;                   // by source
  std::list<Request> posted_recvs_;
  std::list<UnexpectedMsg> unexpected_;
  std::unordered_map<std::uint64_t, Request> rndv_sends_;  // by sreq_id
  std::unordered_map<std::uint64_t, Request> rndv_recvs_;  // by rreq_id
  std::unordered_map<std::uint64_t, Request> sync_sends_;  // awaiting ack

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t bytes_staged_ = 0;
  std::uint64_t bytes_direct_ = 0;

  // Reliability state (untouched while config_.reliability.enabled is off).
  std::unordered_map<int, TxFlow> tx_;  // by destination
  std::vector<int> failed_peers_;       // transitions, for take_failed_peers()
  std::uint64_t poll_clock_ = 0;        // progress() call count
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_retried_ = 0;
  std::uint64_t checksum_failures_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t acks_sent_ = 0;

  // Reusable gather scratch for pump_outbound (avoids an allocation per
  // partially-written packet resume).
  std::vector<ByteSpan> iov_;
};

}  // namespace motor::mpi
