#include "mpi/group.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace motor::mpi {

Group Group::contiguous(int n) {
  std::vector<int> ranks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ranks[static_cast<std::size_t>(i)] = i;
  return Group(std::move(ranks));
}

int Group::world_rank(int group_rank) const {
  MOTOR_CHECK(group_rank >= 0 && group_rank < size(),
              "group rank out of range");
  return world_ranks_[static_cast<std::size_t>(group_rank)];
}

std::optional<int> Group::rank_of(int world_rank) const {
  auto it = std::find(world_ranks_.begin(), world_ranks_.end(), world_rank);
  if (it == world_ranks_.end()) return std::nullopt;
  return static_cast<int>(it - world_ranks_.begin());
}

Group Group::incl(const std::vector<int>& group_ranks) const {
  std::vector<int> out;
  out.reserve(group_ranks.size());
  for (int gr : group_ranks) out.push_back(world_rank(gr));
  return Group(std::move(out));
}

Group Group::excl(const std::vector<int>& group_ranks) const {
  std::vector<int> out;
  for (int gr = 0; gr < size(); ++gr) {
    if (std::find(group_ranks.begin(), group_ranks.end(), gr) ==
        group_ranks.end()) {
      out.push_back(world_rank(gr));
    }
  }
  return Group(std::move(out));
}

Group Group::set_union(const Group& other) const {
  std::vector<int> out = world_ranks_;
  for (int wr : other.world_ranks_) {
    if (std::find(out.begin(), out.end(), wr) == out.end()) out.push_back(wr);
  }
  return Group(std::move(out));
}

Group Group::set_intersection(const Group& other) const {
  std::vector<int> out;
  for (int wr : world_ranks_) {
    if (other.rank_of(wr).has_value()) out.push_back(wr);
  }
  return Group(std::move(out));
}

}  // namespace motor::mpi
