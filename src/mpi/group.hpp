// Process groups: ordered sets of world ranks, per MPI-1 group semantics.
#pragma once

#include <optional>
#include <vector>

namespace motor::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks)
      : world_ranks_(std::move(world_ranks)) {}

  /// Group {0, 1, ..., n-1}.
  static Group contiguous(int n);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(world_ranks_.size());
  }

  /// World rank of group member `group_rank`.
  [[nodiscard]] int world_rank(int group_rank) const;

  /// Group rank of `world_rank`, if a member.
  [[nodiscard]] std::optional<int> rank_of(int world_rank) const;

  [[nodiscard]] const std::vector<int>& members() const noexcept {
    return world_ranks_;
  }

  /// Subset selection (MPI_Group_incl).
  [[nodiscard]] Group incl(const std::vector<int>& group_ranks) const;

  /// Complement selection (MPI_Group_excl).
  [[nodiscard]] Group excl(const std::vector<int>& group_ranks) const;

  /// Set union keeping this group's order first (MPI_Group_union).
  [[nodiscard]] Group set_union(const Group& other) const;

  /// Members of this group also in `other`, in this group's order.
  [[nodiscard]] Group set_intersection(const Group& other) const;

  friend bool operator==(const Group& a, const Group& b) noexcept {
    return a.world_ranks_ == b.world_ranks_;
  }

 private:
  std::vector<int> world_ranks_;
};

}  // namespace motor::mpi
