#include "mpi/pack.hpp"

#include <cstring>

namespace motor::mpi {

std::size_t pack_size(std::size_t count, Datatype t) noexcept {
  return count * datatype_size(t);
}

ErrorCode pack(const void* inbuf, std::size_t count, Datatype t, void* outbuf,
               std::size_t outsize, std::size_t& position) {
  const std::size_t bytes = pack_size(count, t);
  if (inbuf == nullptr && bytes > 0) return ErrorCode::kBufferError;
  if (position + bytes > outsize) return ErrorCode::kTruncate;
  std::memcpy(static_cast<std::byte*>(outbuf) + position, inbuf, bytes);
  position += bytes;
  return ErrorCode::kSuccess;
}

ErrorCode unpack(const void* inbuf, std::size_t insize, std::size_t& position,
                 void* outbuf, std::size_t count, Datatype t) {
  const std::size_t bytes = pack_size(count, t);
  if (outbuf == nullptr && bytes > 0) return ErrorCode::kBufferError;
  if (position + bytes > insize) return ErrorCode::kTruncate;
  std::memcpy(outbuf, static_cast<const std::byte*>(inbuf) + position, bytes);
  position += bytes;
  return ErrorCode::kSuccess;
}

}  // namespace motor::mpi
