// MPI_Pack / MPI_Unpack. The Motor managed bindings drop pack/unpack in
// favour of the OO operations (paper §4.2.1), but the native baseline and
// the wrapper baselines still use them, as real MPICH2 applications do.
#pragma once

#include <cstddef>

#include "mpi/datatype.hpp"
#include "mpi/request.hpp"

namespace motor::mpi {

/// Bytes needed to pack `count` elements of `t`.
std::size_t pack_size(std::size_t count, Datatype t) noexcept;

/// Append count elements of `t` from `inbuf` at `position` within `outbuf`
/// (capacity `outsize`); advances position.
ErrorCode pack(const void* inbuf, std::size_t count, Datatype t, void* outbuf,
               std::size_t outsize, std::size_t& position);

/// Extract count elements of `t` into `outbuf` from `inbuf` at `position`;
/// advances position.
ErrorCode unpack(const void* inbuf, std::size_t insize, std::size_t& position,
                 void* outbuf, std::size_t count, Datatype t);

}  // namespace motor::mpi
