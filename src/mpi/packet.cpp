#include "mpi/packet.hpp"

#include <cstring>
#include <type_traits>

namespace motor::mpi {

static_assert(std::is_trivially_copyable_v<PacketHeader>,
              "packet headers must be raw-copyable");

void encode_header(const PacketHeader& hdr, std::byte* out) noexcept {
  std::memcpy(out, &hdr, kPacketHeaderBytes);
}

PacketHeader decode_header(const std::byte* in) noexcept {
  PacketHeader hdr;
  std::memcpy(&hdr, in, kPacketHeaderBytes);
  return hdr;
}

}  // namespace motor::mpi
