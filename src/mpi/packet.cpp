#include "mpi/packet.hpp"

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "common/checksum.hpp"

namespace motor::mpi {

static_assert(std::is_trivially_copyable_v<PacketHeader>,
              "packet headers must be raw-copyable");

namespace {

constexpr std::size_t kMagicOffset = offsetof(PacketHeader, magic);
constexpr std::size_t kHeaderCrcOffset = offsetof(PacketHeader, header_crc);
static_assert(kHeaderCrcOffset + sizeof(std::uint32_t) == kPacketHeaderBytes,
              "header_crc must be the trailing field (sealed-encode patch)");

}  // namespace

void encode_header(const PacketHeader& hdr, std::byte* out) noexcept {
  std::memcpy(out, &hdr, kPacketHeaderBytes);
}

PacketHeader decode_header(const std::byte* in) noexcept {
  PacketHeader hdr;
  std::memcpy(&hdr, in, kPacketHeaderBytes);
  return hdr;
}

void encode_header_sealed(PacketHeader& hdr, std::byte* out) noexcept {
  hdr.magic = kPacketMagic;
  hdr.header_crc = 0;
  std::memcpy(out, &hdr, kPacketHeaderBytes);
  hdr.header_crc = crc32c({out, kPacketHeaderBytes});
  std::memcpy(out + kHeaderCrcOffset, &hdr.header_crc,
              sizeof hdr.header_crc);
}

HeaderCheck check_sealed_header(const std::byte* in) noexcept {
  std::uint32_t magic = 0;
  std::memcpy(&magic, in + kMagicOffset, sizeof magic);
  if (magic != kPacketMagic) return HeaderCheck::kBadMagic;
  std::uint32_t claimed = 0;
  std::memcpy(&claimed, in + kHeaderCrcOffset, sizeof claimed);
  // Recompute with the crc field zeroed, exactly as it was sealed.
  std::byte scratch[kPacketHeaderBytes];
  std::memcpy(scratch, in, kPacketHeaderBytes);
  std::memset(scratch + kHeaderCrcOffset, 0, sizeof claimed);
  if (crc32c({scratch, kPacketHeaderBytes}) != claimed) {
    return HeaderCheck::kBadCrc;
  }
  return HeaderCheck::kOk;
}

}  // namespace motor::mpi
