// Wire packets for the CH3-like device layer.
//
// Every transmission is [PacketHeader][payload bytes]. Small messages go
// eagerly (payload immediately follows); large messages use the MPICH2
// rendezvous protocol: RTS (no payload) -> CTS (no payload) -> DATA.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/buffer.hpp"

namespace motor::mpi {

enum class PacketType : std::uint8_t {
  kEager,      // complete message payload follows
  kEagerSync,  // eager + receiver must ack on match (synchronous send)
  kRndvRts,    // request-to-send; msg_bytes announces size
  kRndvCts,    // clear-to-send; pairs sreq_id with rreq_id
  kRndvData,   // rendezvous payload follows
  kSyncAck,    // matched notification for kEagerSync / rendezvous ssend
  kAck,        // reliability: cumulative frame ack; msg_bytes = highest
               // in-order seq delivered on this flow
};

/// Resync anchor for the reliability layer's frame scan ("MOTR").
inline constexpr std::uint32_t kPacketMagic = 0x4D4F5452u;

struct PacketHeader {
  PacketType type = PacketType::kEager;
  std::int32_t src = 0;      // world rank of sender
  std::int32_t tag = 0;
  std::int32_t context = 0;  // communicator context id
  std::uint64_t payload_bytes = 0;  // bytes following this header
  std::uint64_t msg_bytes = 0;      // full message size (RTS announces it);
                                    // for kAck: cumulative acked seq
  std::uint64_t sreq_id = 0;        // sender-side request cookie
  std::uint64_t rreq_id = 0;        // receiver-side request cookie

  // Reliability trailer — populated only when DeviceConfig::reliability is
  // enabled; zero (written, never read) in the default trusting mode, so
  // the lossless fast path pays nothing but 16 wire bytes per packet.
  std::uint32_t magic = 0;        // kPacketMagic (resync anchor)
  std::uint32_t seq = 0;          // per-flow sequence number (kAck: 0)
  std::uint32_t payload_crc = 0;  // CRC-32C of the payload bytes
  std::uint32_t header_crc = 0;   // CRC-32C of this header, field zeroed
};

inline constexpr std::size_t kPacketHeaderBytes = sizeof(PacketHeader);

/// Serialize a header into exactly kPacketHeaderBytes at `out`.
void encode_header(const PacketHeader& hdr, std::byte* out) noexcept;

/// Decode a header from exactly kPacketHeaderBytes at `in`.
PacketHeader decode_header(const std::byte* in) noexcept;

/// Reliability encode: stamps `hdr.magic` and `hdr.header_crc` (computed
/// over the encoded bytes with the crc field zeroed), then serializes.
/// The caller must have set seq/payload_crc first.
void encode_header_sealed(PacketHeader& hdr, std::byte* out) noexcept;

enum class HeaderCheck {
  kOk,
  kBadMagic,  // not a frame start — slide the scan window silently
  kBadCrc,    // magic matched but the header is corrupt
};

/// Validate kPacketHeaderBytes at `in` as a sealed reliability header.
HeaderCheck check_sealed_header(const std::byte* in) noexcept;

}  // namespace motor::mpi
