// Wire packets for the CH3-like device layer.
//
// Every transmission is [PacketHeader][payload bytes]. Small messages go
// eagerly (payload immediately follows); large messages use the MPICH2
// rendezvous protocol: RTS (no payload) -> CTS (no payload) -> DATA.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/buffer.hpp"

namespace motor::mpi {

enum class PacketType : std::uint8_t {
  kEager,      // complete message payload follows
  kEagerSync,  // eager + receiver must ack on match (synchronous send)
  kRndvRts,    // request-to-send; msg_bytes announces size
  kRndvCts,    // clear-to-send; pairs sreq_id with rreq_id
  kRndvData,   // rendezvous payload follows
  kSyncAck,    // matched notification for kEagerSync / rendezvous ssend
};

struct PacketHeader {
  PacketType type = PacketType::kEager;
  std::int32_t src = 0;      // world rank of sender
  std::int32_t tag = 0;
  std::int32_t context = 0;  // communicator context id
  std::uint64_t payload_bytes = 0;  // bytes following this header
  std::uint64_t msg_bytes = 0;      // full message size (RTS announces it)
  std::uint64_t sreq_id = 0;        // sender-side request cookie
  std::uint64_t rreq_id = 0;        // receiver-side request cookie
};

inline constexpr std::size_t kPacketHeaderBytes = sizeof(PacketHeader);

/// Serialize a header into exactly kPacketHeaderBytes at `out`.
void encode_header(const PacketHeader& hdr, std::byte* out) noexcept;

/// Decode a header from exactly kPacketHeaderBytes at `in`.
PacketHeader decode_header(const std::byte* in) noexcept;

}  // namespace motor::mpi
