#include "mpi/persistent.hpp"

#include "mpi/device.hpp"

namespace motor::mpi {

PersistentRequest send_init(Comm& comm, const void* buf, std::size_t bytes,
                            int dst, int tag) {
  PersistentRequest req;
  req.comm_ = &comm;
  req.is_send_ = true;
  req.buf_ = const_cast<void*>(buf);
  req.bytes_ = bytes;
  req.peer_ = dst;
  req.tag_ = tag;
  return req;
}

PersistentRequest ssend_init(Comm& comm, const void* buf, std::size_t bytes,
                             int dst, int tag) {
  PersistentRequest req = send_init(comm, buf, bytes, dst, tag);
  req.sync_ = true;
  return req;
}

PersistentRequest recv_init(Comm& comm, void* buf, std::size_t capacity,
                            int src, int tag) {
  PersistentRequest req;
  req.comm_ = &comm;
  req.buf_ = buf;
  req.bytes_ = capacity;
  req.peer_ = src;
  req.tag_ = tag;
  return req;
}

ErrorCode start(PersistentRequest& req) {
  if (!req.valid()) return ErrorCode::kRequestError;
  if (req.active()) return ErrorCode::kPending;
  if (req.is_send_) {
    req.active_ = req.sync_
                      ? issend(*req.comm_, req.buf_, req.bytes_, req.peer_,
                               req.tag_)
                      : isend(*req.comm_, req.buf_, req.bytes_, req.peer_,
                              req.tag_);
  } else {
    req.active_ = irecv(*req.comm_, req.buf_, req.bytes_, req.peer_, req.tag_);
  }
  return req.active_ != nullptr ? ErrorCode::kSuccess
                                : ErrorCode::kRequestError;
}

ErrorCode startall(std::span<PersistentRequest> reqs) {
  for (PersistentRequest& r : reqs) {
    const ErrorCode err = start(r);
    if (err != ErrorCode::kSuccess) return err;
  }
  return ErrorCode::kSuccess;
}

MsgStatus wait(PersistentRequest& req, const PollHook& poll) {
  MOTOR_CHECK(req.valid() && req.active_ != nullptr,
              "wait on never-started persistent request");
  MsgStatus st = wait(*req.comm_, req.active_, poll);
  req.active_.reset();  // startable again
  return st;
}

bool test(PersistentRequest& req, MsgStatus* status) {
  if (!req.valid() || req.active_ == nullptr) return false;
  if (!test(*req.comm_, req.active_, status)) return false;
  req.active_.reset();
  return true;
}

}  // namespace motor::mpi
