// Persistent communication requests (MPI-1 §3.9): MPI_Send_init /
// MPI_Recv_init create a frozen communication recipe; MPI_Start fires it;
// the handle is reusable after each completion. The classic use is a
// fixed halo-exchange pattern started every iteration without re-paying
// argument validation and matching setup.
#pragma once

#include "mpi/pt2pt.hpp"

namespace motor::mpi {

class PersistentRequest {
 public:
  PersistentRequest() = default;

  [[nodiscard]] bool valid() const noexcept { return comm_ != nullptr; }
  /// True while a started operation has not yet completed.
  [[nodiscard]] bool active() const noexcept {
    return active_ != nullptr && !active_->is_complete();
  }
  /// The in-flight request of the current start (null when inactive).
  [[nodiscard]] const Request& current() const noexcept { return active_; }

 private:
  friend PersistentRequest send_init(Comm&, const void*, std::size_t, int,
                                     int);
  friend PersistentRequest ssend_init(Comm&, const void*, std::size_t, int,
                                      int);
  friend PersistentRequest recv_init(Comm&, void*, std::size_t, int, int);
  friend ErrorCode start(PersistentRequest&);
  friend MsgStatus wait(PersistentRequest&, const PollHook&);
  friend bool test(PersistentRequest&, MsgStatus*);

  Comm* comm_ = nullptr;
  bool is_send_ = false;
  bool sync_ = false;
  void* buf_ = nullptr;
  std::size_t bytes_ = 0;
  int peer_ = kAnySource;
  int tag_ = kAnyTag;
  Request active_;
};

/// Freeze a standard-mode send recipe (MPI_Send_init).
PersistentRequest send_init(Comm& comm, const void* buf, std::size_t bytes,
                            int dst, int tag);

/// Freeze a synchronous-mode send recipe (MPI_Ssend_init).
PersistentRequest ssend_init(Comm& comm, const void* buf, std::size_t bytes,
                             int dst, int tag);

/// Freeze a receive recipe (MPI_Recv_init).
PersistentRequest recv_init(Comm& comm, void* buf, std::size_t capacity,
                            int src, int tag);

/// Fire the recipe (MPI_Start). Error if already active or invalid.
ErrorCode start(PersistentRequest& req);

/// Fire a set of recipes (MPI_Startall); stops at the first error.
ErrorCode startall(std::span<PersistentRequest> reqs);

/// Complete the current firing; the handle becomes startable again.
MsgStatus wait(PersistentRequest& req, const PollHook& poll = {});

/// Non-blocking completion check for the current firing.
bool test(PersistentRequest& req, MsgStatus* status = nullptr);

}  // namespace motor::mpi
