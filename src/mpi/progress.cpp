#include "mpi/progress.hpp"

#include "pal/thread.hpp"

namespace motor::mpi {

void progress_until_all(Device& dev, std::span<const Request> reqs,
                        const std::function<void()>& poll_hook) {
  for (;;) {
    if (all_complete(dev, reqs)) return;
    if (poll_hook) poll_hook();
    pal::Thread::yield();
  }
}

bool all_complete(Device& dev, std::span<const Request> reqs) {
  // One progress() call drains every packet the channels can currently
  // deliver (the device pumps to quiescence), so a poll iteration never
  // leaves ready work behind.
  dev.progress();
  for (const Request& r : reqs) {
    if (r && !r->is_complete()) return false;
  }
  return true;
}

bool progress_pair_until(Device& a, Device& b, std::span<const Request> reqs,
                         std::uint64_t max_rounds) {
  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    a.progress();
    b.progress();
    if (first_incomplete(reqs) < 0) return true;
  }
  return first_incomplete(reqs) < 0;
}

int first_incomplete(std::span<const Request> reqs) {
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] && !reqs[i]->is_complete()) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace motor::mpi
