// Progress helpers: waiting on many requests and bounded progress pumping.
#pragma once

#include <span>

#include "mpi/device.hpp"

namespace motor::mpi {

/// Pump `dev` until every request in `reqs` completes.
void progress_until_all(Device& dev, std::span<const Request> reqs,
                        const std::function<void()>& poll_hook = {});

/// True iff every request completed (drives progress once).
bool all_complete(Device& dev, std::span<const Request> reqs);

/// Index of the first incomplete request, or -1 when all are done.
int first_incomplete(std::span<const Request> reqs);

}  // namespace motor::mpi
