// Progress helpers: waiting on many requests and bounded progress pumping.
#pragma once

#include <span>

#include "mpi/device.hpp"

namespace motor::mpi {

/// Pump `dev` until every request in `reqs` completes.
void progress_until_all(Device& dev, std::span<const Request> reqs,
                        const std::function<void()>& poll_hook = {});

/// True iff every request completed (drives progress once).
bool all_complete(Device& dev, std::span<const Request> reqs);

/// Index of the first incomplete request, or -1 when all are done.
int first_incomplete(std::span<const Request> reqs);

/// Pump both devices alternately until every request in `reqs` completes
/// or `max_rounds` rounds elapse; true when all completed. This is the
/// deadline primitive for fault-injection tests: a reliability bug that
/// would hang a wait() instead fails a bounded assertion. Deterministic —
/// both devices run on the calling thread, one progress() each per round.
bool progress_pair_until(Device& a, Device& b, std::span<const Request> reqs,
                         std::uint64_t max_rounds);

}  // namespace motor::mpi
