#include "mpi/pt2pt.hpp"

#include "common/buffer.hpp"
#include "mpi/device.hpp"
#include "pal/thread.hpp"

namespace motor::mpi {

namespace {

ErrorCode validate(Comm& comm, const void* buf, std::size_t bytes, int peer,
                   int tag, bool allow_wildcards) {
  if (comm.is_null()) return ErrorCode::kCommError;
  if (buf == nullptr && bytes > 0) return ErrorCode::kBufferError;
  // User tags live in [0, kMaxUserTag]; tags at or above kCollectiveTagBase
  // are reserved for internal collective traffic and always legal here.
  const bool internal_tag = tag >= kCollectiveTagBase;
  if ((tag > kMaxUserTag && !internal_tag) ||
      (tag < 0 && !(allow_wildcards && tag == kAnyTag))) {
    return ErrorCode::kTagError;
  }
  const int peer_count = comm.is_inter() ? comm.remote_size() : comm.size();
  if (peer >= peer_count ||
      (peer < 0 && !(allow_wildcards && peer == kAnySource))) {
    return ErrorCode::kRankError;
  }
  return ErrorCode::kSuccess;
}

/// Convert a device status (world ranks) into communicator terms.
MsgStatus to_comm_status(Comm& comm, const MsgStatus& dev_status) {
  MsgStatus st = dev_status;
  if (st.source >= 0) st.source = comm.peer_comm_rank(st.source);
  return st;
}

}  // namespace

ErrorCode send(Comm& comm, const void* buf, std::size_t bytes, int dst,
               int tag, const PollHook& poll) {
  Request req = isend(comm, buf, bytes, dst, tag);
  if (!req) return ErrorCode::kRankError;
  return comm.device().wait(req, poll).error;
}

ErrorCode ssend(Comm& comm, const void* buf, std::size_t bytes, int dst,
                int tag, const PollHook& poll) {
  Request req = issend(comm, buf, bytes, dst, tag);
  if (!req) return ErrorCode::kRankError;
  return comm.device().wait(req, poll).error;
}

ErrorCode recv(Comm& comm, void* buf, std::size_t capacity, int src, int tag,
               MsgStatus* status, const PollHook& poll) {
  Request req = irecv(comm, buf, capacity, src, tag);
  if (!req) return ErrorCode::kRankError;
  MsgStatus st = to_comm_status(comm, comm.device().wait(req, poll));
  if (status != nullptr) *status = st;
  return st.error;
}

ErrorCode sendrecv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                   int dst, int send_tag, void* recv_buf,
                   std::size_t recv_capacity, int src, int recv_tag,
                   MsgStatus* status, const PollHook& poll) {
  Request r = irecv(comm, recv_buf, recv_capacity, src, recv_tag);
  Request s = isend(comm, send_buf, send_bytes, dst, send_tag);
  if (!r || !s) return ErrorCode::kRankError;
  comm.device().wait(s, poll);
  MsgStatus st = to_comm_status(comm, comm.device().wait(r, poll));
  if (status != nullptr) *status = st;
  if (s->error != ErrorCode::kSuccess) return s->error;
  return st.error;
}

Request isend(Comm& comm, const void* buf, std::size_t bytes, int dst,
              int tag) {
  if (validate(comm, buf, bytes, dst, tag, false) != ErrorCode::kSuccess) {
    return nullptr;
  }
  return comm.device().post_send(as_bytes_of(buf, bytes),
                                 comm.peer_world_rank(dst), tag,
                                 comm.context_id(), /*sync=*/false);
}

ErrorCode send_v(Comm& comm, const SpanVec& msg, int dst, int tag,
                 const PollHook& poll) {
  Request req = isend_v(comm, msg, dst, tag);
  if (!req) return ErrorCode::kRankError;
  return comm.device().wait(req, poll).error;
}

Request isend_v(Comm& comm, const SpanVec& msg, int dst, int tag) {
  const void* probe_ptr =
      msg.part_count() > 0 ? msg.parts().front().data() : nullptr;
  if (validate(comm, probe_ptr, msg.total_bytes(), dst, tag, false) !=
      ErrorCode::kSuccess) {
    return nullptr;
  }
  return comm.device().post_send(msg, comm.peer_world_rank(dst), tag,
                                 comm.context_id(), /*sync=*/false);
}

Request issend(Comm& comm, const void* buf, std::size_t bytes, int dst,
               int tag) {
  if (validate(comm, buf, bytes, dst, tag, false) != ErrorCode::kSuccess) {
    return nullptr;
  }
  return comm.device().post_send(as_bytes_of(buf, bytes),
                                 comm.peer_world_rank(dst), tag,
                                 comm.context_id(), /*sync=*/true);
}

Request irecv(Comm& comm, void* buf, std::size_t capacity, int src, int tag) {
  if (validate(comm, buf, capacity, src, tag, true) != ErrorCode::kSuccess) {
    return nullptr;
  }
  const int world_src =
      src == kAnySource ? kAnySource : comm.peer_world_rank(src);
  return comm.device().post_recv(as_writable_bytes_of(buf, capacity),
                                 world_src, tag, comm.context_id());
}

bool test(Comm& comm, const Request& req, MsgStatus* status) {
  if (!comm.device().test(req)) return false;
  if (status != nullptr) {
    *status = to_comm_status(comm, Device::status_of(req));
  }
  return true;
}

MsgStatus wait(Comm& comm, const Request& req, const PollHook& poll) {
  return to_comm_status(comm, comm.device().wait(req, poll));
}

void waitall(Comm& comm, std::span<const Request> reqs, const PollHook& poll) {
  for (const Request& req : reqs) {
    if (req) comm.device().wait(req, poll);
  }
}

int waitany(Comm& comm, std::span<const Request> reqs, MsgStatus* status,
            const PollHook& poll) {
  bool any = false;
  for (const Request& r : reqs) any = any || r != nullptr;
  if (!any) return -1;
  for (;;) {
    const int idx = testany(comm, reqs, status);
    if (idx >= 0) return idx;
    if (poll) poll();
    pal::Thread::yield();
  }
}

bool testall(Comm& comm, std::span<const Request> reqs) {
  comm.device().progress();
  for (const Request& r : reqs) {
    if (r && !r->is_complete()) return false;
  }
  return true;
}

int testany(Comm& comm, std::span<const Request> reqs, MsgStatus* status) {
  comm.device().progress();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] && reqs[i]->is_complete()) {
      if (status != nullptr) {
        *status = to_comm_status(comm, Device::status_of(reqs[i]));
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

void cancel(Comm& comm, const Request& req) { comm.device().cancel(req); }

bool iprobe(Comm& comm, int src, int tag, MsgStatus* status) {
  const int world_src =
      src == kAnySource ? kAnySource : comm.peer_world_rank(src);
  MsgStatus st;
  if (!comm.device().iprobe(world_src, tag, comm.context_id(), &st)) {
    return false;
  }
  if (status != nullptr) *status = to_comm_status(comm, st);
  return true;
}

MsgStatus probe(Comm& comm, int src, int tag, const PollHook& poll) {
  MsgStatus st;
  while (!iprobe(comm, src, tag, &st)) {
    if (poll) poll();
    pal::Thread::yield();
  }
  return st;
}

}  // namespace motor::mpi
