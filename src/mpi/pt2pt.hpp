// Point-to-point operations over a communicator. Ranks and statuses are in
// communicator terms; the device speaks world ranks underneath.
//
// All blocking variants accept an optional `poll_hook` executed on every
// progress iteration — Motor threads pass a GC-yield closure through here
// (paper §7.1/§7.4); native callers omit it.
#pragma once

#include <functional>
#include <span>
#include <type_traits>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/request.hpp"

namespace motor::mpi {

using PollHook = std::function<void()>;

// ---- blocking ----

ErrorCode send(Comm& comm, const void* buf, std::size_t bytes, int dst,
               int tag, const PollHook& poll = {});

/// Synchronous-mode send: completes only after the receiver matched.
ErrorCode ssend(Comm& comm, const void* buf, std::size_t bytes, int dst,
                int tag, const PollHook& poll = {});

ErrorCode recv(Comm& comm, void* buf, std::size_t capacity, int src, int tag,
               MsgStatus* status = nullptr, const PollHook& poll = {});

ErrorCode sendrecv(Comm& comm, const void* send_buf, std::size_t send_bytes,
                   int dst, int send_tag, void* recv_buf,
                   std::size_t recv_capacity, int src, int recv_tag,
                   MsgStatus* status = nullptr, const PollHook& poll = {});

/// Gathered send: the message is the concatenation of `msg`'s parts,
/// streamed to the wire without flattening. Every fragment must stay valid
/// (and, for managed memory, pinned) until the call returns.
ErrorCode send_v(Comm& comm, const SpanVec& msg, int dst, int tag,
                 const PollHook& poll = {});

// ---- non-blocking ----

Request isend(Comm& comm, const void* buf, std::size_t bytes, int dst, int tag);

/// Non-blocking gathered send; fragments must stay valid until completion.
Request isend_v(Comm& comm, const SpanVec& msg, int dst, int tag);
Request issend(Comm& comm, const void* buf, std::size_t bytes, int dst, int tag);
Request irecv(Comm& comm, void* buf, std::size_t capacity, int src, int tag);

/// Drive progress once; true when complete (status filled if non-null).
bool test(Comm& comm, const Request& req, MsgStatus* status = nullptr);

MsgStatus wait(Comm& comm, const Request& req, const PollHook& poll = {});
void waitall(Comm& comm, std::span<const Request> reqs,
             const PollHook& poll = {});

/// Block until at least one request completes; returns its index (null
/// entries are skipped; -1 if every entry is null).
int waitany(Comm& comm, std::span<const Request> reqs,
            MsgStatus* status = nullptr, const PollHook& poll = {});

/// True iff every request has completed (drives progress once).
bool testall(Comm& comm, std::span<const Request> reqs);

/// Index of a completed request after one progress pump, or -1.
int testany(Comm& comm, std::span<const Request> reqs,
            MsgStatus* status = nullptr);

void cancel(Comm& comm, const Request& req);

// ---- probing ----

bool iprobe(Comm& comm, int src, int tag, MsgStatus* status = nullptr);
MsgStatus probe(Comm& comm, int src, int tag, const PollHook& poll = {});

// ---- typed convenience (native-baseline style: buf, count, datatype) ----
//
// These move raw object representations, so the element type must be
// memcpy-safe: the static_asserts below turn what used to be a runtime
// assert deep in the serializer (or silent garbage across a process
// boundary) into a compile error at the call site. The motor::typed layer
// (motor/typed/transport.hpp) provides the richer concept-guarded entry
// points; these remain for the native baselines.

template <typename T>
ErrorCode send_typed(Comm& comm, const T* buf, std::size_t count, int dst,
                     int tag) {
  static_assert(std::is_trivially_copyable_v<T>,
                "send_typed moves raw bytes: T must be trivially copyable");
  static_assert(std::is_standard_layout_v<T>,
                "send_typed requires a standard-layout T: the receiver "
                "reconstructs the object from its byte representation");
  static_assert(!std::is_pointer_v<T>,
                "send_typed of a pointer ships an address, not the data");
  return send(comm, buf, count * sizeof(T), dst, tag);
}

template <typename T>
ErrorCode recv_typed(Comm& comm, T* buf, std::size_t count, int src, int tag,
                     MsgStatus* status = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "recv_typed fills raw bytes: T must be trivially copyable");
  static_assert(std::is_standard_layout_v<T>,
                "recv_typed requires a standard-layout T: the object is "
                "reconstructed from its byte representation");
  static_assert(!std::is_pointer_v<T>,
                "recv_typed into a pointer receives an address, not data");
  return recv(comm, buf, count * sizeof(T), src, tag, status);
}

}  // namespace motor::mpi
