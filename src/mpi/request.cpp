#include "mpi/request.hpp"

// RequestState is header-only; this TU anchors the library target.
namespace motor::mpi {}
