// Communication requests and completion status.
//
// Requests are shared_ptr-managed: besides the application handle, the
// device's queues and — crucially for Motor — the garbage collector's
// *conditional pin table* hold references. The paper's non-blocking unpin
// scheme (§4.3/§7.4) checks request status during the GC mark phase, which
// can happen after the application has already waited on and released the
// request, so request state must outlive the application handle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/spanvec.hpp"
#include "common/status.hpp"

namespace motor::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

enum class RequestKind : std::uint8_t { kSend, kRecv };

struct RequestState {
  RequestKind kind = RequestKind::kSend;
  std::uint64_t id = 0;  // device-unique cookie (rendezvous pairing)

  // Posted parameters. Ranks are world ranks; `peer` is the destination for
  // sends and the matched source (or kAnySource until matched) for receives.
  int peer = kAnySource;
  int tag = kAnyTag;
  int context = 0;

  // Buffers. Non-owning: the MPI contract (and, in managed hosts, pinning)
  // guarantees validity until completion. Sends carry a gather list so a
  // message can be a header + many fragments (the serializer's split
  // representation) without flattening; `send_buf` remains the first
  // fragment for diagnostics.
  SpanVec send_spans;
  const std::byte* send_buf = nullptr;
  std::byte* recv_buf = nullptr;
  std::size_t buffer_bytes = 0;  // posted capacity (recv) or size (send)

  // Completion.
  std::atomic<bool> complete{false};
  std::size_t transferred = 0;  // valid once complete
  // Rendezvous receive streaming progress: wire payload bytes consumed so
  // far across DATA packets (transferred counts only bytes that fit).
  std::size_t rndv_received = 0;
  ErrorCode error = ErrorCode::kSuccess;
  bool cancelled = false;

  // Synchronous-mode sends complete only after the matching ack.
  bool sync = false;
  bool sync_acked = false;
  bool payload_drained = false;

  // Reliability watchdog stamp: the device poll-clock value at the last
  // forward progress on this request (rendezvous receives only). Lets the
  // receive side detect a sender that died mid-stream.
  std::uint64_t last_progress_poll = 0;

  [[nodiscard]] bool is_complete() const noexcept {
    return complete.load(std::memory_order_acquire);
  }
  void mark_complete() noexcept {
    complete.store(true, std::memory_order_release);
  }
};

using Request = std::shared_ptr<RequestState>;

/// Result record delivered by Recv/Wait/Probe (the MPI_Status analog).
struct MsgStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  ErrorCode error = ErrorCode::kSuccess;
  std::size_t count_bytes = 0;
  bool cancelled = false;
};

}  // namespace motor::mpi
