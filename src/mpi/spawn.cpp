#include "mpi/world.hpp"

#include "mpi/collectives.hpp"

namespace motor::mpi {

Comm spawn(Comm& comm, int root, int n_children,
           std::function<void(RankCtx&)> child_main) {
  MOTOR_CHECK(!comm.is_null() && !comm.is_inter(),
              "spawn is collective over an intracommunicator");
  MOTOR_CHECK(n_children >= 1, "spawn: need at least one child");
  World& world = comm.world();

  struct SpawnInfo {
    int first_new_rank;
    int child_world_ctx;  // children's own comm_world
    int inter_ctx;        // parent<->children intercommunicator
  };
  SpawnInfo info{};
  if (comm.rank() == root) {
    info.first_new_rank = world.extend(n_children);
    info.child_world_ctx = world.allocate_context();
    info.inter_ctx = world.allocate_context();
  }
  bcast(comm, &info, sizeof info, root);

  std::vector<int> child_ranks(static_cast<std::size_t>(n_children));
  for (int i = 0; i < n_children; ++i) {
    child_ranks[static_cast<std::size_t>(i)] = info.first_new_rank + i;
  }
  const Group children(child_ranks);
  const Group parents = comm.group();

  if (comm.rank() == root) {
    for (int i = 0; i < n_children; ++i) {
      const int wr = info.first_new_rank + i;
      world.launch_rank_thread(
          "spawned" + std::to_string(wr),
          [&world, wr, children, parents, info, child_main] {
            Device& dev = world.device(wr);
            Comm child_world(&world, &dev, children, info.child_world_ctx);
            Comm parent_inter(&world, &dev, children, parents, info.inter_ctx);
            RankCtx ctx(world, wr, std::move(child_world),
                        std::move(parent_inter));
            child_main(ctx);
          });
    }
  }
  return Comm(&world, &comm.device(), parents, children, info.inter_ctx);
}

}  // namespace motor::mpi
