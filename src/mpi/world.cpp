#include "mpi/world.hpp"

namespace motor::mpi {

World::World(int n_ranks, WorldConfig config)
    : config_(config),
      fabric_(n_ranks, config.channel, config.channel_capacity,
              config.wire_latency_ns, config.wire_bandwidth_bps,
              config.topology),
      initial_n_(n_ranks) {
  if (config_.link_factory) fabric_.set_link_factory(config_.link_factory);
  std::lock_guard lk(mu_);
  devices_.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    devices_.push_back(std::make_unique<Device>(fabric_, r, config_.device));
  }
}

World::~World() {
  // Threads are joined in run(); any stragglers (e.g. run() never called)
  // are joined by pal::Thread destructors.
}

Device& World::device(int world_rank) {
  std::lock_guard lk(mu_);
  MOTOR_CHECK(world_rank >= 0 &&
                  world_rank < static_cast<int>(devices_.size()),
              "device: bad world rank");
  return *devices_[static_cast<std::size_t>(world_rank)];
}

int World::shared_context_for(std::uint64_t key) {
  std::lock_guard lk(mu_);
  auto it = shared_contexts_.find(key);
  if (it != shared_contexts_.end()) return it->second;
  const int ctx = next_context_.fetch_add(1, std::memory_order_relaxed);
  shared_contexts_.emplace(key, ctx);
  return ctx;
}

int World::extend(int extra) {
  const int first_new = fabric_.add_ranks(extra);
  std::lock_guard lk(mu_);
  for (int r = first_new; r < first_new + extra; ++r) {
    devices_.push_back(std::make_unique<Device>(fabric_, r, config_.device));
  }
  return first_new;
}

void World::record_exception() {
  std::lock_guard lk(mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void World::launch_rank_thread(std::string name, std::function<void()> body) {
  auto wrapped = [this, body = std::move(body)] {
    try {
      body();
    } catch (...) {
      record_exception();
    }
  };
  std::lock_guard lk(mu_);
  threads_.push_back(
      std::make_unique<pal::Thread>(std::move(name), std::move(wrapped)));
}

void World::run_rank(int rank,
                     const std::function<void(RankCtx&)>& rank_main) {
  MOTOR_CHECK(rank >= 0 && rank < initial_n_, "run_rank: bad rank");
  const Group world_group = Group::contiguous(initial_n_);
  Comm comm_world(this, &device(rank), world_group, /*context_id=*/1);
  RankCtx ctx(*this, rank, std::move(comm_world), Comm{});
  rank_main(ctx);
}

void World::run(const std::function<void(RankCtx&)>& rank_main) {
  const Group world_group = Group::contiguous(initial_n_);
  for (int r = 0; r < initial_n_; ++r) {
    launch_rank_thread(
        "rank" + std::to_string(r), [this, r, world_group, &rank_main] {
          Comm comm_world(this, &device(r), world_group, /*context_id=*/1);
          RankCtx ctx(*this, r, std::move(comm_world), Comm{});
          rank_main(ctx);
        });
  }

  // Join every rank thread, including ranks spawned while we were joining.
  std::size_t joined = 0;
  for (;;) {
    pal::Thread* next = nullptr;
    {
      std::lock_guard lk(mu_);
      if (joined < threads_.size()) next = threads_[joined].get();
    }
    if (next == nullptr) break;
    next->join();
    ++joined;
  }

  std::exception_ptr err;
  {
    std::lock_guard lk(mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

RankCtx::RankCtx(World& world, int world_rank, Comm comm_world, Comm parent)
    : world_(world),
      world_rank_(world_rank),
      comm_world_(std::move(comm_world)),
      parent_(std::move(parent)) {}

}  // namespace motor::mpi
