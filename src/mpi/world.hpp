// World: the process universe. Owns the fabric, one Device per rank, the
// context-id allocator, and the rank threads.
//
// Ranks are threads with fully disjoint logical address spaces (each Motor
// rank additionally instantiates its own VM and heap); the shared process
// is only the "cluster". World::run launches the initial ranks and joins
// everything, including ranks added later by MPI-2 spawn.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/device.hpp"
#include "pal/thread.hpp"
#include "transport/fabric.hpp"

namespace motor::mpi {

class RankCtx;

struct WorldConfig {
  transport::ChannelKind channel = transport::ChannelKind::kRing;
  std::size_t channel_capacity = 1 << 20;
  /// One-way interconnect propagation delay (0 = in-process speed). The
  /// paper-reproduction benchmarks set this to localhost-TCP scale; see
  /// transport/latency_channel.hpp and EXPERIMENTS.md.
  std::uint64_t wire_latency_ns = 0;
  /// Wire throughput cap in bytes/second (0 = unlimited); see
  /// transport/bandwidth_channel.hpp.
  std::uint64_t wire_bandwidth_bps = 0;
  /// Link-graph model (mesh/torus/fat-tree) over the ranks; per-link
  /// latency scales with hop distance. Default: flat full mesh, the
  /// paper's single-testbed behaviour. See transport/topology.hpp.
  transport::TopologySpec topology;
  /// Cross-process mode: custom base-channel builder for non-loopback
  /// links (sockets/shm the launcher pre-wired). Installed on the fabric
  /// before any link materialises; see transport::LinkFactory.
  transport::LinkFactory link_factory;
  DeviceConfig device;
};

class World {
 public:
  explicit World(int n_ranks, WorldConfig config = WorldConfig{});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int initial_size() const noexcept { return initial_n_; }
  [[nodiscard]] transport::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] Device& device(int world_rank);

  /// Launch the initial ranks, each executing `rank_main`, and join every
  /// rank thread (including dynamically spawned ones) before returning.
  /// Rethrows the first rank exception after all threads finish.
  void run(const std::function<void(RankCtx&)>& rank_main);

  /// Cross-process mode: run exactly ONE rank's main on the calling
  /// thread. The other ranks live in sibling OS processes wired up by a
  /// link factory; their Device slots here exist but stay idle.
  /// Exceptions propagate to the caller.
  void run_rank(int rank, const std::function<void(RankCtx&)>& rank_main);

  /// Fresh communicator context id (world-unique).
  int allocate_context() {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Reserve `n` consecutive context ids; returns the first.
  int allocate_context_block(int n) {
    return next_context_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Context id shared by every caller presenting the same key — used where
  /// a real MPI would run a leader-exchange protocol (intercomm merge).
  int shared_context_for(std::uint64_t key);

  // ---- dynamic process management plumbing (used by spawn()) ----

  /// Grow the fabric and device table by `extra` ranks; returns the first
  /// new world rank.
  int extend(int extra);

  /// Launch an additional rank thread tracked by the join loop in run().
  void launch_rank_thread(std::string name, std::function<void()> body);

 private:
  void record_exception();

  WorldConfig config_;
  transport::Fabric fabric_;
  int initial_n_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<pal::Thread>> threads_;
  std::unordered_map<std::uint64_t, int> shared_contexts_;
  std::exception_ptr first_error_;
  std::atomic<int> next_context_{2};  // context 1 = the world communicator
};

/// Per-rank execution context handed to rank_main.
class RankCtx {
 public:
  RankCtx(World& world, int world_rank, Comm comm_world, Comm parent);

  [[nodiscard]] World& world() noexcept { return world_; }
  [[nodiscard]] int world_rank() const noexcept { return world_rank_; }
  [[nodiscard]] Device& device() { return world_.device(world_rank_); }
  [[nodiscard]] Comm& comm_world() noexcept { return comm_world_; }

  /// Intercommunicator to the spawning group; null for initial ranks.
  [[nodiscard]] Comm& parent() noexcept { return parent_; }

 private:
  World& world_;
  int world_rank_;
  Comm comm_world_;
  Comm parent_;
};

/// MPI-2 MPI_Comm_spawn: collectively (over `comm`) start `n_children` new
/// ranks running `child_main`. Returns the parent-side intercommunicator;
/// children find theirs via RankCtx::parent() and get their own
/// comm_world spanning exactly the spawned group.
Comm spawn(Comm& comm, int root, int n_children,
           std::function<void(RankCtx&)> child_main);

}  // namespace motor::mpi
