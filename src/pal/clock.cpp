#include "pal/clock.hpp"

namespace motor::pal {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double wtime_us() noexcept {
  return static_cast<double>(monotonic_ns()) / 1e3;
}

void spin_for_ns(std::uint64_t ns) noexcept {
  const std::uint64_t deadline = monotonic_ns() + ns;
  while (monotonic_ns() < deadline) {
    // Intentional busy wait: the charge must be CPU time, as the modelled
    // overhead (marshalling, security checks) is CPU-bound.
  }
}

}  // namespace motor::pal
