// PAL monotonic clock (QueryPerformanceCounter analog) plus a stopwatch and
// a calibrated spin-delay used by runtime-profile cost models.
#pragma once

#include <chrono>
#include <cstdint>

namespace motor::pal {

/// Nanoseconds from an arbitrary monotonic epoch.
std::uint64_t monotonic_ns() noexcept;

/// Microseconds from the same epoch (convenience for MPI-style Wtime).
double wtime_us() noexcept;

class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_ns()) {}
  void restart() noexcept { start_ = monotonic_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return monotonic_ns() - start_;
  }
  [[nodiscard]] double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }

 private:
  std::uint64_t start_;
};

/// Busy-wait for approximately `ns` nanoseconds. Used by the runtime-profile
/// cost models to charge documented per-call overheads (e.g. the marshalling
/// cost of a P/Invoke transition) without descheduling the thread.
void spin_for_ns(std::uint64_t ns) noexcept;

}  // namespace motor::pal
