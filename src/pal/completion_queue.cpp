#include "pal/completion_queue.hpp"

namespace motor::pal {

void CompletionQueue::post(Completion c) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(c);
  }
  cv_.notify_one();
}

std::optional<Completion> CompletionQueue::poll() {
  std::lock_guard lk(mu_);
  if (queue_.empty()) return std::nullopt;
  Completion c = queue_.front();
  queue_.pop_front();
  return c;
}

std::optional<Completion> CompletionQueue::wait(
    std::chrono::nanoseconds timeout) {
  std::unique_lock lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return !queue_.empty(); })) {
    return std::nullopt;
  }
  Completion c = queue_.front();
  queue_.pop_front();
  return c;
}

std::size_t CompletionQueue::depth() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

}  // namespace motor::pal
