// A completion-port-like queue (the IOCP mechanism MPICH2's Windows sock
// channel uses lives below the PAL; this is the PAL-visible analog the
// ported channel posts completions through).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace motor::pal {

struct Completion {
  std::uint64_t key = 0;        // which endpoint / socket
  std::uint64_t bytes = 0;      // bytes transferred
  std::uint64_t user_data = 0;  // caller cookie
};

class CompletionQueue {
 public:
  void post(Completion c);

  /// Non-blocking poll; empty optional when nothing is pending.
  std::optional<Completion> poll();

  /// Blocking dequeue with timeout; empty optional on timeout.
  std::optional<Completion> wait(std::chrono::nanoseconds timeout);

  [[nodiscard]] std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> queue_;
};

}  // namespace motor::pal
