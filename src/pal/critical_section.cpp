#include "pal/critical_section.hpp"

namespace motor::pal {}
