// PAL critical section: recursive lock with try-enter, matching the Win32
// CRITICAL_SECTION the SSCLI PAL provides.
#pragma once

#include <mutex>

namespace motor::pal {

class CriticalSection {
 public:
  CriticalSection() = default;
  CriticalSection(const CriticalSection&) = delete;
  CriticalSection& operator=(const CriticalSection&) = delete;

  void enter() { mu_.lock(); }
  bool try_enter() { return mu_.try_lock(); }
  void leave() { mu_.unlock(); }

 private:
  std::recursive_mutex mu_;
};

/// RAII scope for a critical section.
class CsLock {
 public:
  explicit CsLock(CriticalSection& cs) : cs_(cs) { cs_.enter(); }
  ~CsLock() { cs_.leave(); }
  CsLock(const CsLock&) = delete;
  CsLock& operator=(const CsLock&) = delete;

 private:
  CriticalSection& cs_;
};

}  // namespace motor::pal
