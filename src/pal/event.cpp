#include "pal/event.hpp"

namespace motor::pal {

void Event::set() {
  {
    std::lock_guard lk(mu_);
    signalled_ = true;
  }
  if (mode_ == ResetMode::kManual) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
}

void Event::reset() {
  std::lock_guard lk(mu_);
  signalled_ = false;
}

void Event::wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return signalled_; });
  if (mode_ == ResetMode::kAuto) signalled_ = false;
}

bool Event::timed_wait(std::chrono::nanoseconds timeout) {
  std::unique_lock lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return signalled_; })) return false;
  if (mode_ == ResetMode::kAuto) signalled_ = false;
  return true;
}

bool Event::poll() {
  std::lock_guard lk(mu_);
  if (!signalled_) return false;
  if (mode_ == ResetMode::kAuto) signalled_ = false;
  return true;
}

}  // namespace motor::pal
