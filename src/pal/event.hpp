// PAL event object, modelled on the Win32 event the SSCLI PAL exposes:
// manual-reset or auto-reset, with Set / Reset / Wait / TimedWait.
// Everything above the PAL uses these instead of raw std primitives,
// mirroring how Rotor keeps platform dependence in one layer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace motor::pal {

class Event {
 public:
  enum class ResetMode { kManual, kAuto };

  explicit Event(ResetMode mode = ResetMode::kAuto, bool initially_set = false)
      : mode_(mode), signalled_(initially_set) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Signal the event. Wakes one waiter (auto) or all waiters (manual).
  void set();

  /// Clear the signalled state (meaningful for manual-reset events).
  void reset();

  /// Block until signalled. Auto-reset events consume the signal.
  void wait();

  /// Returns true if signalled within the timeout, false on timeout.
  bool timed_wait(std::chrono::nanoseconds timeout);

  /// Non-blocking poll; consumes the signal for auto-reset events.
  bool poll();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  ResetMode mode_;
  bool signalled_;
};

}  // namespace motor::pal
