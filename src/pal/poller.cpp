#include "pal/poller.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <unistd.h>

#include "common/status.hpp"

namespace motor::pal {

Poller::Poller() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  MOTOR_CHECK(epfd_ >= 0, "Poller: epoll_create1 failed");
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, bool want_read, bool want_write,
                 std::uint64_t user_data) {
  epoll_event ev{};
  ev.events = EPOLLRDHUP;
  if (want_read) ev.events |= EPOLLIN;
  if (want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = user_data;
  const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  MOTOR_CHECK(rc == 0, "Poller::add: epoll_ctl failed");
}

void Poller::remove(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

int Poller::wait(std::vector<PollEvent>& out, int timeout_ms) {
  epoll_event evs[16];
  int n;
  do {
    n = ::epoll_wait(epfd_, evs, 16, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  for (int i = 0; i < n; ++i) {
    PollEvent pe;
    pe.user_data = evs[i].data.u64;
    pe.readable = (evs[i].events & EPOLLIN) != 0;
    pe.writable = (evs[i].events & EPOLLOUT) != 0;
    pe.hangup = (evs[i].events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR)) != 0;
    out.push_back(pe);
  }
  return n;
}

}  // namespace motor::pal
