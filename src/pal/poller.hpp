// PAL fd readiness poller — the epoll analog of the PAL's completion
// queue, for file descriptors instead of posted packets. The launcher and
// socket rendezvous use it to wait on many listeners/connections without
// per-fd threads; the device's progress engine stays non-blocking and
// never needs it.
#pragma once

#include <cstdint>
#include <vector>

namespace motor::pal {

struct PollEvent {
  std::uint64_t user_data = 0;  // callers usually stash the fd here
  bool readable = false;
  bool writable = false;
  bool hangup = false;  // peer closed / error on the fd
};

class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Watch `fd`. `user_data` rides back on every event for that fd.
  void add(int fd, bool want_read, bool want_write, std::uint64_t user_data);
  void remove(int fd);

  /// Wait up to `timeout_ms` (-1 = forever, 0 = poll) and append ready
  /// fds to `out`. Returns the number of events appended (0 on timeout).
  int wait(std::vector<PollEvent>& out, int timeout_ms);

 private:
  int epfd_ = -1;
};

}  // namespace motor::pal
