#include "pal/process.hpp"

#include <csignal>
#include <cstdlib>
#include <utility>

#include <errno.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/status.hpp"

extern char** environ;

namespace motor::pal {

Process::Process(Process&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      status_(std::exchange(other.status_, std::nullopt)) {}

Process& Process::operator=(Process&& other) noexcept {
  if (this != &other) {
    pid_ = std::exchange(other.pid_, -1);
    status_ = std::exchange(other.status_, std::nullopt);
  }
  return *this;
}

Process Process::spawn(const std::vector<std::string>& argv,
                       const std::vector<std::string>& extra_env) {
  MOTOR_CHECK(!argv.empty(), "Process::spawn: empty argv");

  // Build the child argv/envp BEFORE forking: only async-signal-safe
  // calls are legal between fork and exec.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  std::vector<char*> cenv;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    cenv.push_back(*e);
  }
  for (const std::string& e : extra_env) {
    cenv.push_back(const_cast<char*>(e.c_str()));
  }
  cenv.push_back(nullptr);

  const pid_t pid = ::fork();
  MOTOR_CHECK(pid >= 0, "Process::spawn: fork failed");
  if (pid == 0) {
    ::execve(cargv[0], cargv.data(), cenv.data());
    // exec failed: the conventional "command not runnable" code, reported
    // through the normal exit-status path so the parent can't hang.
    ::_exit(127);
  }

  Process p;
  p.pid_ = pid;
  return p;
}

namespace {

ExitStatus decode_wait_status(int wstatus) {
  ExitStatus st;
  if (WIFEXITED(wstatus)) {
    st.exited = true;
    st.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    st.signalled = true;
    st.term_signal = WTERMSIG(wstatus);
  }
  return st;
}

}  // namespace

std::optional<ExitStatus> Process::try_wait() {
  if (status_.has_value()) return status_;
  if (pid_ <= 0) return std::nullopt;
  int wstatus = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid_), &wstatus, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    // ECHILD: reaped elsewhere (shouldn't happen under our ownership) —
    // report a generic failure rather than looping forever.
    ExitStatus st;
    st.exited = true;
    st.exit_code = 255;
    status_ = st;
    return status_;
  }
  status_ = decode_wait_status(wstatus);
  return status_;
}

ExitStatus Process::wait() {
  if (status_.has_value()) return *status_;
  MOTOR_CHECK(pid_ > 0, "Process::wait: no child");
  int wstatus = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid_), &wstatus, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    ExitStatus st;
    st.exited = true;
    st.exit_code = 255;
    status_ = st;
    return *status_;
  }
  status_ = decode_wait_status(wstatus);
  return *status_;
}

void Process::kill(int signum) {
  if (pid_ > 0 && !status_.has_value()) {
    ::kill(static_cast<pid_t>(pid_), signum);
  }
}

bool process_alive(std::int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

std::int64_t current_pid() noexcept { return static_cast<std::int64_t>(::getpid()); }

}  // namespace motor::pal
