// PAL process objects: spawn/wait/signal for child processes, the
// CreateProcess/WaitForSingleObject analog of the SSCLI PAL. The launcher
// (src/launch) uses these to run one OS process per rank; everything
// above the PAL sees pids and exit reports, never raw fork/exec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace motor::pal {

/// How a child process ended.
struct ExitStatus {
  bool exited = false;      // normal _exit / return from main
  int exit_code = 0;        // valid when exited
  bool signalled = false;   // killed by a signal
  int term_signal = 0;      // valid when signalled
  [[nodiscard]] bool ok() const noexcept { return exited && exit_code == 0; }
};

/// One spawned child. Movable, not copyable; the destructor does NOT kill
/// or reap — call kill()/wait() explicitly (the launcher owns teardown
/// policy, the PAL only owns the mechanism).
class Process {
 public:
  Process() = default;
  Process(Process&& other) noexcept;
  Process& operator=(Process&& other) noexcept;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// fork+exec `argv` (argv[0] = executable path) with `extra_env`
  /// ("KEY=VALUE") appended to the inherited environment. Throws
  /// FatalError when the fork or exec setup fails; an exec failure inside
  /// the child surfaces as exit code 127.
  static Process spawn(const std::vector<std::string>& argv,
                       const std::vector<std::string>& extra_env = {});

  [[nodiscard]] std::int64_t pid() const noexcept { return pid_; }
  [[nodiscard]] bool running() const noexcept {
    return pid_ > 0 && !status_.has_value();
  }

  /// Non-blocking reap: returns the exit status if the child has ended
  /// (idempotent afterwards), std::nullopt while it is still running.
  std::optional<ExitStatus> try_wait();

  /// Blocking reap.
  ExitStatus wait();

  /// Send `signum` (e.g. SIGTERM, SIGKILL). No-op once reaped.
  void kill(int signum);

 private:
  std::int64_t pid_ = -1;
  std::optional<ExitStatus> status_;
};

/// True when a process with `pid` still exists from this process's view
/// (signal-0 probe; a dead-but-unreaped zombie still "exists" until its
/// parent reaps it).
bool process_alive(std::int64_t pid);

/// This process's pid.
std::int64_t current_pid() noexcept;

}  // namespace motor::pal
