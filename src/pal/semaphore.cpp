#include "pal/semaphore.hpp"

namespace motor::pal {

void Semaphore::release(int n) {
  {
    std::lock_guard lk(mu_);
    count_ += n;
  }
  if (n == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void Semaphore::acquire() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return count_ > 0; });
  --count_;
}

bool Semaphore::try_acquire() {
  std::lock_guard lk(mu_);
  if (count_ <= 0) return false;
  --count_;
  return true;
}

bool Semaphore::timed_acquire(std::chrono::nanoseconds timeout) {
  std::unique_lock lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return count_ > 0; })) return false;
  --count_;
  return true;
}

}  // namespace motor::pal
