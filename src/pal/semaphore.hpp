// PAL counting semaphore.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace motor::pal {

class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void release(int n = 1);
  void acquire();
  bool try_acquire();
  bool timed_acquire(std::chrono::nanoseconds timeout);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace motor::pal
