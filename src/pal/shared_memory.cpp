#include "pal/shared_memory.hpp"

#include <utility>

#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/status.hpp"
#include "pal/clock.hpp"
#include "pal/thread.hpp"

namespace motor::pal {

SharedMemory::~SharedMemory() { reset(); }

SharedMemory::SharedMemory(SharedMemory&& other) noexcept
    : name_(std::move(other.name_)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      owner_(std::exchange(other.owner_, false)) {}

SharedMemory& SharedMemory::operator=(SharedMemory&& other) noexcept {
  if (this != &other) {
    reset();
    name_ = std::move(other.name_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

void SharedMemory::reset() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (owner_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

SharedMemory SharedMemory::create(const std::string& name, std::size_t bytes) {
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Leftover from a killed run: names are unique per launch, so it can
    // never belong to a live peer.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  MOTOR_CHECK(fd >= 0, "SharedMemory::create: shm_open failed");
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    MOTOR_CHECK(false, "SharedMemory::create: ftruncate failed");
  }
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    MOTOR_CHECK(false, "SharedMemory::create: mmap failed");
  }
  SharedMemory sm;
  sm.name_ = name;
  sm.base_ = base;
  sm.size_ = bytes;
  sm.owner_ = true;
  return sm;
}

SharedMemory SharedMemory::open(const std::string& name, std::size_t bytes,
                                std::uint64_t timeout_ns) {
  const std::uint64_t deadline = monotonic_ns() + timeout_ns;
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd >= 0) {
      // The creator sizes before any opener can see a consistent ring, so
      // wait until ftruncate has landed too.
      struct stat st{};
      const bool sized =
          ::fstat(fd, &st) == 0 && static_cast<std::size_t>(st.st_size) >= bytes;
      if (sized) {
        void* base =
            ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        ::close(fd);
        if (base != MAP_FAILED) {
          SharedMemory sm;
          sm.name_ = name;
          sm.base_ = base;
          sm.size_ = bytes;
          sm.owner_ = false;
          return sm;
        }
      } else {
        ::close(fd);
      }
    }
    if (monotonic_ns() >= deadline) return SharedMemory{};
    Thread::sleep_for(std::chrono::microseconds(200));
  }
}

void SharedMemory::unlink(const std::string& name) {
  ::shm_unlink(name.c_str());
}

}  // namespace motor::pal
