// PAL POSIX shared-memory mapping (shm_open/mmap RAII). A segment is
// created by exactly one process and opened by its peer; open() retries
// until the creator has published the segment or a deadline passes, which
// is the only rendezvous the shm transport needs beyond an agreed name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace motor::pal {

class SharedMemory {
 public:
  SharedMemory() = default;
  ~SharedMemory();
  SharedMemory(SharedMemory&& other) noexcept;
  SharedMemory& operator=(SharedMemory&& other) noexcept;
  SharedMemory(const SharedMemory&) = delete;
  SharedMemory& operator=(const SharedMemory&) = delete;

  /// Create (O_EXCL) and size a segment. The creator owns the name: its
  /// destructor unlinks it. Throws FatalError on failure (a stale segment
  /// with the same name is unlinked and recreated — names are unique per
  /// launch, so a collision is always a leftover from a killed run).
  static SharedMemory create(const std::string& name, std::size_t bytes);

  /// Map an existing segment, retrying until it appears and is fully
  /// sized, up to `timeout_ns`. Returns an unmapped object (valid() ==
  /// false) on timeout. The opener never unlinks.
  static SharedMemory open(const std::string& name, std::size_t bytes,
                           std::uint64_t timeout_ns);

  /// Remove a name from the shm namespace (idempotent; for launcher
  /// cleanup of segments a killed rank never destructed).
  static void unlink(const std::string& name);

  [[nodiscard]] bool valid() const noexcept { return base_ != nullptr; }
  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  void reset() noexcept;

  std::string name_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool owner_ = false;  // creator unlinks on destruction
};

}  // namespace motor::pal
