#include "pal/thread.hpp"

#include <atomic>

namespace motor::pal {

namespace {
std::atomic<ThreadId> g_next_id{1};
thread_local ThreadId t_id = 0;
}  // namespace

Thread::Thread(std::string name, std::function<void()> body)
    : name_(std::move(name)), impl_([body = std::move(body)] { body(); }) {}

Thread::~Thread() {
  if (impl_.joinable()) impl_.join();
}

void Thread::join() {
  if (impl_.joinable()) impl_.join();
}

ThreadId Thread::current_id() noexcept {
  if (t_id == 0) t_id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  return t_id;
}

}  // namespace motor::pal
