// PAL thread: a named OS thread with join semantics and a cooperative
// yield/sleep surface, equivalent to the thread slice of the SSCLI PAL.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace motor::pal {

using ThreadId = std::uint64_t;

class Thread {
 public:
  Thread() = default;
  Thread(std::string name, std::function<void()> body);
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;

  void join();
  [[nodiscard]] bool joinable() const noexcept { return impl_.joinable(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Id of the calling thread (stable for its lifetime).
  static ThreadId current_id() noexcept;

  static void yield() noexcept { std::this_thread::yield(); }
  static void sleep_for(std::chrono::nanoseconds d) {
    std::this_thread::sleep_for(d);
  }

 private:
  std::string name_;
  std::thread impl_;
};

}  // namespace motor::pal
