#include "ps/client.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "pal/clock.hpp"

namespace motor::ps {

PsClient::PsClient(mp::MPDirect& direct, PsConfig config)
    : direct_(direct),
      cfg_(std::move(config)),
      n_servers_(cfg_.servers),
      self_(direct.rank()),
      comm_(direct, CommThreadConfig{cfg_.tag}) {
  co_.resize(static_cast<std::size_t>(n_servers_));
  credits_.assign(static_cast<std::size_t>(n_servers_), cfg_.window_batches);
  sent_.resize(static_cast<std::size_t>(n_servers_));
  next_seq_.assign(static_cast<std::size_t>(n_servers_), 0);
  comm_.set_inbound_handler(
      [this](ByteBuffer buf, int src) { on_reply(std::move(buf), src); });
  comm_.set_failure_handler(
      [this](int peer, ErrorCode err) { on_failure(peer, err); });
  comm_.set_tick_handler([this] { on_tick(); });
  comm_.start();
}

PsClient::~PsClient() { Close(); }

int PsClient::route(std::uint64_t key) const {
  if (cfg_.route_hook) return cfg_.route_hook(key);
  return shard_of(key, n_servers_);
}

PsClient::Coalescer& PsClient::open_locked(int shard) {
  Coalescer& c = co_[static_cast<std::size_t>(shard)];
  if (!c.open) {
    c.buf = direct_.pool().take();
    BatchHeader h;
    h.kind = MsgKind::kRequest;
    h.origin = static_cast<std::uint32_t>(self_);
    h.seq = next_seq_[static_cast<std::size_t>(shard)]++;
    write_header(c.buf, h);
    c.records = 0;
    c.opened_ns = pal::monotonic_ns();
    c.open = true;
    c.want_flush = false;
  }
  return c;
}

void PsClient::note_queued_locked() {
  std::uint64_t open_bytes = 0;
  for (const Coalescer& c : co_) {
    if (c.open) open_bytes += c.buf.size();
  }
  const std::uint64_t queued = in_flight_bytes_ + open_bytes;
  if (queued > stats_.peak_queued_bytes) stats_.peak_queued_bytes = queued;
}

void PsClient::send_locked(int shard) {
  Coalescer& c = co_[static_cast<std::size_t>(shard)];
  patch_header(c.buf, c.records, 0);
  credits_[static_cast<std::size_t>(shard)]--;
  const std::uint64_t bytes = c.buf.size();
  in_flight_bytes_ += bytes;
  sent_[static_cast<std::size_t>(shard)].push_back(
      SentBatch{pal::monotonic_ns(), bytes});
  stats_.batches_flushed++;
  stats_.records_flushed += c.records;
  stats_.bytes_flushed += bytes;
  note_queued_locked();
  comm_.post(shard, std::move(c.buf));
  c.open = false;
  c.records = 0;
  c.want_flush = false;
}

Status PsClient::wait_while(std::unique_lock<std::mutex>& lk,
                            const std::function<bool()>& blocked) {
  const std::uint64_t start_ns = pal::monotonic_ns();
  while (blocked() && !failed_) {
    cv_.wait_for(lk, std::chrono::milliseconds(50));
    if (cfg_.op_timeout_ns != 0 && blocked() && !failed_ &&
        pal::monotonic_ns() - start_ns > cfg_.op_timeout_ns) {
      // Watchdog: a peer stopped answering entirely. Fail the endpoint so
      // nothing (including other waiters) wedges.
      failed_ = true;
      fail_code_ = ErrorCode::kCommError;
      for (auto& [corr, p] : pending_) {
        if (!p.done) {
          p.done = true;
          p.err = fail_code_;
        }
      }
      cv_.notify_all();
      break;
    }
  }
  if (failed_) return Status(fail_code_, "ps client failed");
  return Status::ok();
}

Status PsClient::flush_locked(int shard, std::unique_lock<std::mutex>& lk) {
  Coalescer& c = co_[static_cast<std::size_t>(shard)];
  if (!c.open || c.records == 0) return Status::ok();
  // The back-pressure point: no credit means window_batches batches are
  // already unapplied at this shard. Block the worker here rather than
  // letting queue memory grow without bound.
  if (credits_[static_cast<std::size_t>(shard)] == 0) stats_.credit_waits++;
  MOTOR_RETURN_IF_ERROR(wait_while(lk, [this, shard] {
    // The comm thread may flush this batch itself (deadline + returned
    // credit) while we wait — then there is nothing left to send here.
    const Coalescer& now = co_[static_cast<std::size_t>(shard)];
    return now.open && now.records > 0 &&
           credits_[static_cast<std::size_t>(shard)] == 0;
  }));
  Coalescer& again = co_[static_cast<std::size_t>(shard)];
  if (!again.open || again.records == 0) return Status::ok();
  send_locked(shard);
  return Status::ok();
}

Status PsClient::maybe_flush_locked(int shard,
                                    std::unique_lock<std::mutex>& lk) {
  Coalescer& c = co_[static_cast<std::size_t>(shard)];
  note_queued_locked();
  if (!cfg_.coalesce) {
    stats_.immediate_flushes++;
  } else if (c.records >= cfg_.flush_records) {
    stats_.count_flushes++;
  } else if (c.buf.size() >= cfg_.flush_bytes) {
    stats_.size_flushes++;
  } else {
    return Status::ok();
  }
  return flush_locked(shard, lk);
}

Status PsClient::Push(std::uint64_t key, std::span<const float> delta) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Status(ErrorCode::kRequestError, "ps client closed");
  if (failed_) return Status(fail_code_, "ps client failed");
  stats_.pushes++;
  const int shard = route(key);
  Coalescer& c = open_locked(shard);
  append_push(c.buf, key, delta);  // typed record: one statically-sized memcpy
  c.records++;
  return maybe_flush_locked(shard, lk);
}

Status PsClient::enqueue_pull(std::uint64_t key, ReqOp op,
                              std::uint64_t* corr_out) {
  // Caller holds mu_ via the public entry points below.
  const int shard = route(key);
  const std::uint64_t corr = next_corr_++;
  Coalescer& c = open_locked(shard);
  if (op == ReqOp::kPull) {
    append_pull(c.buf, key, corr);
  } else {
    append_get_object(c.buf, key, corr);
  }
  c.records++;
  pending_.emplace(corr, Pending{});
  *corr_out = corr;
  return Status::ok();
}

Status PsClient::pull_bytes(std::uint64_t key, ByteBuffer* data) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Status(ErrorCode::kRequestError, "ps client closed");
  if (failed_) return Status(fail_code_, "ps client failed");
  stats_.pulls++;
  std::uint64_t corr = 0;
  MOTOR_RETURN_IF_ERROR(enqueue_pull(key, ReqOp::kPull, &corr));
  const int shard = route(key);
  stats_.immediate_flushes++;
  Status st = flush_locked(shard, lk);
  if (!st.is_ok()) {
    pending_.erase(corr);
    return st;
  }
  st = wait_while(lk, [this, corr] { return !pending_.at(corr).done; });
  auto it = pending_.find(corr);
  if (!st.is_ok() && !it->second.done) {
    pending_.erase(it);
    return st;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.err != ErrorCode::kSuccess) {
    direct_.pool().put(std::move(p.data));
    return Status(p.err, "ps pull failed");
  }
  *data = std::move(p.data);  // caller recycles via pool().put
  return Status::ok();
}

Status PsClient::Pull(std::uint64_t key, std::vector<float>* out) {
  ByteBuffer data;
  MOTOR_RETURN_IF_ERROR(pull_bytes(key, &data));
  const std::size_t n = data.size() / sizeof(float);
  out->resize(n);
  if (n > 0) std::memcpy(out->data(), data.data(), n * sizeof(float));
  direct_.pool().put(std::move(data));
  return Status::ok();
}

Status PsClient::Pull(std::uint64_t key, std::span<float> out) {
  ByteBuffer data;
  MOTOR_RETURN_IF_ERROR(pull_bytes(key, &data));
  if (data.size() != out.size_bytes()) {
    direct_.pool().put(std::move(data));
    return Status(ErrorCode::kCountError,
                  "ps pull: entry length does not match the span");
  }
  if (!out.empty()) std::memcpy(out.data(), data.data(), out.size_bytes());
  direct_.pool().put(std::move(data));
  return Status::ok();
}

Status PsClient::put_object_bytes(std::uint64_t key, const ByteBuffer& bytes) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Status(ErrorCode::kRequestError, "ps client closed");
  if (failed_) return Status(fail_code_, "ps client failed");
  stats_.object_puts++;
  const int shard = route(key);
  Coalescer& c = open_locked(shard);
  append_put_object(c.buf, key, ByteSpan{bytes.data(), bytes.size()});
  c.records++;
  return maybe_flush_locked(shard, lk);
}

Status PsClient::PutObject(std::uint64_t key, vm::Obj obj) {
  // Serialize on the managed thread before taking mu_: serialization may
  // allocate (visited sets) but never touches client state.
  ByteBuffer tmp = direct_.pool().take();
  Status st = direct_.serializer().serialize(obj, tmp);
  if (st.is_ok()) st = put_object_bytes(key, tmp);
  direct_.pool().put(std::move(tmp));
  return st;
}

Status PsClient::get_object_bytes(std::uint64_t key, ByteBuffer* data) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Status(ErrorCode::kRequestError, "ps client closed");
  if (failed_) return Status(fail_code_, "ps client failed");
  stats_.object_gets++;
  std::uint64_t corr = 0;
  MOTOR_RETURN_IF_ERROR(enqueue_pull(key, ReqOp::kGetObject, &corr));
  const int shard = route(key);
  stats_.immediate_flushes++;
  Status st = flush_locked(shard, lk);
  if (!st.is_ok()) {
    pending_.erase(corr);
    return st;
  }
  st = wait_while(lk, [this, corr] { return !pending_.at(corr).done; });
  auto it = pending_.find(corr);
  if (!st.is_ok() && !it->second.done) {
    pending_.erase(it);
    return st;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.err != ErrorCode::kSuccess) {
    direct_.pool().put(std::move(p.data));
    return Status(p.err, "ps get-object failed");
  }
  *data = std::move(p.data);  // caller recycles via pool().put
  return Status::ok();
}

Status PsClient::GetObject(std::uint64_t key, vm::Obj* out) {
  ByteBuffer data;
  MOTOR_RETURN_IF_ERROR(get_object_bytes(key, &data));
  // Deserialize outside mu_ (get_object_bytes released it): managed-heap
  // allocation may run a GC; reply dispatch must not stall behind that.
  data.seek(0);
  Status result = direct_.serializer().deserialize(data, direct_.thread(), out);
  direct_.pool().put(std::move(data));
  return result;
}

Status PsClient::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  for (int s = 0; s < n_servers_; ++s) {
    MOTOR_RETURN_IF_ERROR(flush_locked(s, lk));
  }
  // Quiesce: every credit home means every flushed batch was applied.
  return wait_while(lk, [this] {
    if (!pending_.empty()) return true;
    for (const auto& q : sent_) {
      if (!q.empty()) return true;
    }
    return false;
  });
}

Status PsClient::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Status::ok();
  }
  Status st = Flush();
  std::unique_lock<std::mutex> lk(mu_);
  // Verdict point: a successful Flush means every credit is home, i.e.
  // every batch was applied server-side — from here the only frame we
  // still owe the wire is the FIN itself. A shard tears down once it
  // holds every client's FIN, and a dead shard acks nothing, so a lossy
  // wire can fail the flow while our own FIN retransmits race its exit.
  // That failure carries no data loss; judge Close by the state here.
  const bool failed_pre_fin = failed_;
  closed_ = true;
  // End-of-stream to every shard, credit-exempt: header-only kFin.
  for (int s = 0; s < n_servers_; ++s) {
    ByteBuffer fin = direct_.pool().take();
    BatchHeader h;
    h.kind = MsgKind::kFin;
    h.origin = static_cast<std::uint32_t>(self_);
    h.seq = next_seq_[static_cast<std::size_t>(s)]++;
    write_header(fin, h);
    comm_.post(s, std::move(fin));
  }
  lk.unlock();
  comm_.request_stop();
  comm_.join();
  // Return any parked coalescer storage to the pool.
  std::lock_guard<std::mutex> lk2(mu_);
  for (Coalescer& c : co_) {
    if (c.open) {
      direct_.pool().put(std::move(c.buf));
      c.open = false;
    }
  }
  if (!st.is_ok()) return st;
  if (failed_pre_fin) return Status(fail_code_, "ps client failed");
  return Status::ok();
}

PsClientStats PsClient::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::uint64_t PsClient::queued_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t open_bytes = 0;
  for (const Coalescer& c : co_) {
    if (c.open) open_bytes += c.buf.size();
  }
  return in_flight_bytes_ + open_bytes;
}

std::vector<std::uint64_t> PsClient::take_latency_samples() {
  std::lock_guard<std::mutex> lk(mu_);
  return std::move(latency_ns_);
}

void PsClient::on_reply(ByteBuffer buf, int src) {
  BatchHeader h;
  Status st = read_header(buf, &h);
  if (!st.is_ok() || h.kind != MsgKind::kReply || src < 0 ||
      src >= n_servers_) {
    direct_.pool().put(std::move(buf));
    on_failure(src, ErrorCode::kSerialization);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  // Credits come home: the server applied h.credit_return of our batches.
  auto& acks = sent_[static_cast<std::size_t>(src)];
  const std::uint64_t now =
      cfg_.collect_latency && h.credit_return > 0 ? pal::monotonic_ns() : 0;
  for (std::uint32_t i = 0; i < h.credit_return && !acks.empty(); ++i) {
    const SentBatch sb = acks.front();
    acks.pop_front();
    in_flight_bytes_ -= sb.bytes;
    if (cfg_.collect_latency) latency_ns_.push_back(now - sb.flushed_ns);
  }
  credits_[static_cast<std::size_t>(src)] +=
      static_cast<int>(h.credit_return);
  bool parse_ok = true;
  for (std::uint32_t i = 0; i < h.record_count; ++i) {
    ReplyRecord r;
    if (!read_reply(buf, &r).is_ok()) {
      parse_ok = false;
      break;
    }
    auto it = pending_.find(r.correlation);
    if (it == pending_.end()) {
      stats_.orphan_replies++;
      continue;
    }
    Pending& p = it->second;
    p.err = r.op == ReplyOp::kError ? r.error : ErrorCode::kSuccess;
    p.data = direct_.pool().take();
    p.data.append(r.payload);
    p.done = true;
  }
  // Credit may have unblocked a deadline-flush that found the window shut.
  for (int s = 0; s < n_servers_; ++s) {
    Coalescer& c = co_[static_cast<std::size_t>(s)];
    if (c.want_flush && c.open && c.records > 0 &&
        credits_[static_cast<std::size_t>(s)] > 0) {
      stats_.deadline_flushes++;
      send_locked(s);
    }
  }
  direct_.pool().put(std::move(buf));
  cv_.notify_all();
  if (!parse_ok) on_failure(src, ErrorCode::kSerialization);
}

void PsClient::on_failure(int peer, ErrorCode err) {
  // Only a server's death strands this client's operations. Another
  // worker exiting (cross-process worlds tear links down rank by rank)
  // must not poison the client.
  if (peer >= n_servers_) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (!failed_) {
    failed_ = true;
    fail_code_ = err == ErrorCode::kSuccess ? ErrorCode::kCommError : err;
  }
  // Nothing will ever complete these; fail them so no caller hangs.
  for (auto& [corr, p] : pending_) {
    if (!p.done) {
      p.done = true;
      p.err = fail_code_;
    }
  }
  cv_.notify_all();
}

void PsClient::on_tick() {
  if (cfg_.flush_deadline_ns == 0) return;
  const std::uint64_t now = pal::monotonic_ns();
  // Rate-limit: the comm loop ticks far more often than deadlines expire.
  if (now - last_tick_ns_ < cfg_.flush_deadline_ns / 2) return;
  last_tick_ns_ = now;
  std::lock_guard<std::mutex> lk(mu_);
  if (failed_) return;
  for (int s = 0; s < n_servers_; ++s) {
    Coalescer& c = co_[static_cast<std::size_t>(s)];
    if (!c.open || c.records == 0 || c.want_flush) continue;
    if (now - c.opened_ns < cfg_.flush_deadline_ns) continue;
    if (credits_[static_cast<std::size_t>(s)] > 0) {
      stats_.deadline_flushes++;
      send_locked(s);
    } else {
      c.want_flush = true;  // flushed by on_reply when a credit returns
    }
  }
}

}  // namespace motor::ps
