// PsClient: the worker-side endpoint of the sharded parameter server.
//
// Hot path (Push): route the key to its shard, append one thin record to
// that shard's open coalescer — a pooled native buffer — and return.
// Nothing touches the wire on the application thread; the per-endpoint
// CommThread drains flushed batches asynchronously (Multiverso idiom).
//
// Flush triggers, in priority order:
//   * size      open batch reached flush_bytes,
//   * count     open batch reached flush_records,
//   * deadline  comm-thread tick found a batch older than
//               flush_deadline_ns (so stragglers never wait on a full
//               batch),
//   * immediate coalesce=false (the ablation), and every Pull (reads are
//               latency-sensitive and must not sit in a half-full batch).
//
// Back-pressure: each server shard extends the client window_batches
// credits. A flush consumes one; the server returns it in a reply header
// only AFTER applying the batch. When a shard's credits hit zero, flush
// blocks the application thread — a stalled server therefore bounds
// client-side queue memory at window_batches * flush_bytes + one open
// coalescer per shard, which tests/ps/ps_backpressure_test.cpp asserts.
//
// Pulls carry a correlation id; replies may arrive on any future inbound
// batch and complete the matching Pending entry. Forwarded pulls (the
// first-hop shard did not own the key) are answered directly by the
// owning server — the client never knows the difference.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "motor/mp_direct.hpp"
#include "motor/typed/codec.hpp"
#include "ps/comm_thread.hpp"
#include "ps/config.hpp"
#include "ps/wire.hpp"

namespace motor::ps {

struct PsClientStats {
  std::uint64_t pushes = 0;
  std::uint64_t pulls = 0;
  std::uint64_t object_puts = 0;
  std::uint64_t object_gets = 0;
  std::uint64_t batches_flushed = 0;
  std::uint64_t records_flushed = 0;
  std::uint64_t bytes_flushed = 0;
  std::uint64_t size_flushes = 0;
  std::uint64_t count_flushes = 0;
  std::uint64_t deadline_flushes = 0;
  std::uint64_t immediate_flushes = 0;
  std::uint64_t credit_waits = 0;     // flushes that blocked on a credit
  std::uint64_t orphan_replies = 0;   // reply records with no pending op
  std::uint64_t peak_queued_bytes = 0;  // in-flight + open coalescer bytes
};

class PsClient {
 public:
  PsClient(mp::MPDirect& direct, PsConfig config);
  ~PsClient();

  PsClient(const PsClient&) = delete;
  PsClient& operator=(const PsClient&) = delete;

  /// Accumulate `delta` element-wise into the value at `key` (creating a
  /// zero vector of delta's length on first touch). Asynchronous: returns
  /// after coalescing; delivery is bounded by the credit window. The
  /// span-typed record lands in the coalescer as one statically-sized
  /// memcpy (see append_push) — no caller-side size bookkeeping.
  Status Push(std::uint64_t key, std::span<const float> delta);
  /// Read the current value at `key` into *out. Blocks until the owning
  /// shard replies.
  Status Pull(std::uint64_t key, std::vector<float>* out);
  /// Typed pull into caller-owned storage: the entry's length must equal
  /// out.size() exactly (the preallocated-buffer hot path — no resize, no
  /// allocation on the application thread).
  Status Pull(std::uint64_t key, std::span<float> out);
  /// Replace the entry at `key` with a serialized managed object.
  Status PutObject(std::uint64_t key, vm::Obj obj);
  /// Fetch and deserialize the object at `key` into *out.
  Status GetObject(std::uint64_t key, vm::Obj* out);

  /// Typed PutObject: encode a described native struct with the
  /// compile-time codec — byte-identical to the managed stream, so the
  /// server's reflective deserializer (and any GetObject caller, typed or
  /// managed) reads it unchanged. Requires the server VM to know the
  /// type (typed::register_managed_twin on the server rank).
  template <typed::motor_described T>
  Status PutObject(std::uint64_t key, const T& value) {
    ByteBuffer tmp = direct_.pool().take();
    typed::serialize_value(value, tmp);
    Status st = put_object_bytes(key, tmp);
    direct_.pool().put(std::move(tmp));
    return st;
  }

  /// Typed GetObject: fetch the entry's serialized form and decode it
  /// with the compile-time codec — no managed allocation, no GC, works
  /// from native threads. Accepts entries written by either PutObject.
  template <typed::motor_described T>
  Status GetObject(std::uint64_t key, T* out) {
    ByteBuffer data;  // filled from the reply path's pooled buffer
    Status st = get_object_bytes(key, &data);
    if (st.is_ok()) {
      data.seek(0);
      st = typed::deserialize_value(data, out);
    }
    direct_.pool().put(std::move(data));
    return st;
  }

  /// Flush all open coalescers and block until every in-flight batch has
  /// been applied (all credits home) and every pull completed.
  Status Flush();
  /// Flush, send end-of-stream FINs to every shard, and join the comm
  /// thread. The client is unusable afterwards. Idempotent.
  Status Close();

  [[nodiscard]] PsClientStats stats() const;
  /// Current worker-side queue footprint: in-flight batch bytes plus open
  /// coalescer bytes (the quantity back-pressure bounds).
  [[nodiscard]] std::uint64_t queued_bytes() const;
  /// Flush->credit-return round-trip samples (collect_latency only).
  std::vector<std::uint64_t> take_latency_samples();
  [[nodiscard]] const CommThreadStats& comm_stats() const {
    return comm_.stats();
  }

 private:
  struct Coalescer {
    ByteBuffer buf;
    std::uint32_t records = 0;
    std::uint64_t opened_ns = 0;
    bool open = false;
    bool want_flush = false;  // deadline hit while out of credit
  };
  struct Pending {
    bool done = false;
    ErrorCode err = ErrorCode::kSuccess;
    ByteBuffer data;
  };
  struct SentBatch {
    std::uint64_t flushed_ns = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] int route(std::uint64_t key) const;
  /// Wait (with the op_timeout_ns watchdog) until !blocked() or failure.
  Status wait_while(std::unique_lock<std::mutex>& lk,
                    const std::function<bool()>& blocked);
  Coalescer& open_locked(int shard);
  Status maybe_flush_locked(int shard, std::unique_lock<std::mutex>& lk);
  Status flush_locked(int shard, std::unique_lock<std::mutex>& lk);
  /// Requires credits_[shard] > 0; consumes one and posts the batch.
  void send_locked(int shard);
  void note_queued_locked();
  Status enqueue_pull(std::uint64_t key, ReqOp op, std::uint64_t* corr_out);
  /// Issue a pull for `key` and hand back the raw reply payload (shared
  /// body of the two Pull overloads).
  Status pull_bytes(std::uint64_t key, ByteBuffer* data);
  /// Append `bytes` as a kPutObject record (shared body of the PutObject
  /// overloads; `bytes` is read, never consumed).
  Status put_object_bytes(std::uint64_t key, const ByteBuffer& bytes);
  /// Fetch the serialized entry at `key` into *data (shared body of the
  /// GetObject overloads).
  Status get_object_bytes(std::uint64_t key, ByteBuffer* data);

  // Comm-thread callbacks.
  void on_reply(ByteBuffer buf, int src);
  void on_failure(int peer, ErrorCode err);
  void on_tick();

  mp::MPDirect& direct_;
  PsConfig cfg_;
  int n_servers_;
  int self_;
  CommThread comm_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool failed_ = false;
  ErrorCode fail_code_ = ErrorCode::kSuccess;
  bool closed_ = false;
  std::vector<Coalescer> co_;
  std::vector<int> credits_;
  std::vector<std::deque<SentBatch>> sent_;  // FIFO per shard, credit acks
  std::vector<std::uint64_t> next_seq_;
  std::uint64_t in_flight_bytes_ = 0;
  std::uint64_t next_corr_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  PsClientStats stats_;
  std::vector<std::uint64_t> latency_ns_;
  std::uint64_t last_tick_ns_ = 0;  // comm thread only
};

}  // namespace motor::ps
