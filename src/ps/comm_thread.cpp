#include "ps/comm_thread.hpp"

#include <chrono>
#include <utility>

namespace motor::ps {

CommThread::CommThread(mp::MPDirect& direct, CommThreadConfig config)
    : direct_(direct), config_(config) {}

CommThread::~CommThread() {
  request_stop();
  join();
}

void CommThread::start() {
  if (started_) return;
  started_ = true;
  thread_ = pal::Thread("ps-comm", [this] { run(); });
}

void CommThread::request_stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.set();
}

void CommThread::join() {
  if (thread_.joinable()) thread_.join();
}

void CommThread::post(int dst, ByteBuffer buf) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    outbound_.push_back(Outbound{dst, std::move(buf)});
  }
  wake_.set();
}

void CommThread::fail(int peer, ErrorCode err) {
  if (on_failure_) on_failure_(peer, err);
}

bool CommThread::pump_outbound(std::vector<Outbound>& scratch) {
  scratch.clear();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (outbound_.empty()) return false;
    if (outbound_.size() > stats_.max_outbound_depth) {
      stats_.max_outbound_depth = outbound_.size();
    }
    while (!outbound_.empty()) {
      scratch.push_back(std::move(outbound_.front()));
      outbound_.pop_front();
    }
  }
  for (Outbound& out : scratch) {
    stats_.posted++;
    ByteSpan bytes{out.buf.data(), out.buf.size()};
    mp::MPRequest req = direct_.isend_batch(bytes, out.dst, config_.tag);
    if (!req.valid()) {
      stats_.send_errors++;
      direct_.pool().put(std::move(out.buf));
      fail(out.dst, ErrorCode::kRequestError);
      continue;
    }
    in_flight_.push_back(InFlight{out.dst, std::move(req), std::move(out.buf)});
    if (in_flight_.size() > stats_.max_in_flight) {
      stats_.max_in_flight = in_flight_.size();
    }
  }
  return true;
}

bool CommThread::pump_completions() {
  bool did_work = false;
  for (std::size_t i = 0; i < in_flight_.size();) {
    InFlight& f = in_flight_[i];
    mp::MpStatus st;
    if (!direct_.test_batch(f.req, &st)) {
      ++i;
      continue;
    }
    did_work = true;
    stats_.sent++;
    if (st.error != ErrorCode::kSuccess) {
      stats_.send_errors++;
      fail(f.dst, st.error);
    }
    direct_.pool().put(std::move(f.buf));
    in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return did_work;
}

bool CommThread::pump_inbound(ByteBuffer& staging) {
  // Bounded drain so a flood of inbound batches cannot starve the
  // outbound queue (replies carrying credits must keep flowing).
  bool did_work = false;
  for (int i = 0; i < 16; ++i) {
    mp::MpStatus st;
    if (!direct_.try_recv_batch(staging, config_.tag, &st)) break;
    did_work = true;
    stats_.received++;
    if (st.error != ErrorCode::kSuccess) {
      stats_.recv_errors++;
      fail(st.source, st.error);
      staging.clear();
      continue;
    }
    if (on_inbound_) {
      on_inbound_(std::move(staging), st.source);
      staging = direct_.pool().take();
    }
  }
  return did_work;
}

void CommThread::run() {
  std::vector<Outbound> scratch;
  ByteBuffer staging = direct_.pool().take();
  int idle = 0;
  for (;;) {
    bool did_work = false;
    did_work |= pump_outbound(scratch);
    did_work |= pump_completions();
    did_work |= pump_inbound(staging);
    // A peer whose flow died between our operations leaves nothing
    // in-flight to fail: surface it here so a client parked on window
    // credit gets kCommError instead of waiting out its op timeout.
    for (int peer : direct_.take_failed_peers()) {
      stats_.recv_errors++;
      fail(peer, ErrorCode::kCommError);
      did_work = true;
    }
    if (on_tick_) on_tick_();

    if (!did_work) {
      bool stop_now = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop_now = stop_ && outbound_.empty() && in_flight_.empty();
      }
      if (stop_now) break;
      if (++idle >= config_.idle_spins) {
        // Park instead of spinning: on a single-core box the worker and
        // server threads need the CPU to produce the next batch at all.
        stats_.parks++;
        if (wake_.timed_wait(std::chrono::nanoseconds(config_.idle_park_ns))) {
          stats_.wakeups++;
        }
        idle = 0;
      } else {
        direct_.progress_batch();
        pal::Thread::yield();
      }
    } else {
      idle = 0;
    }
  }
  direct_.pool().put(std::move(staging));
}

}  // namespace motor::ps
