// CommThread: the asynchronous progress thread behind a parameter-server
// endpoint (Multiverso communicator idiom). One native pal::Thread per
// rank owns ALL wire traffic for that endpoint:
//
//   * drains an outbound queue of coalesced batches (posted by the
//     managed application thread via post()) into non-blocking
//     isend_batch operations,
//   * completes in-flight sends and recycles their pooled buffers,
//   * probes for inbound batches and hands each to the inbound handler
//     (client: reply dispatch + credit return; server: request enqueue),
//   * runs a periodic tick (deadline-triggered coalescer flush).
//
// Worker compute never blocks on the wire: Push() appends to a local
// coalescer and returns; the comm thread moves the bytes.
//
// Threading contract: while the comm thread runs, it is the device's
// single driver — the endpoint's managed thread must not issue MPDirect
// operations on any communicator sharing the device. The PS facade
// guarantees this by construction: the managed thread only talks to the
// wire through post() until the comm thread is joined.
//
// Handlers run ON the comm thread. They must not block on the wire and
// must not touch managed-heap state: native buffers, mutexes and condvars
// only. (The single managed thread per rank VM only runs GC at its own
// polls, so a non-polling native thread is GC-safe by construction.)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/buffer.hpp"
#include "motor/mp_direct.hpp"
#include "pal/event.hpp"
#include "pal/thread.hpp"

namespace motor::ps {

struct CommThreadConfig {
  int tag = 71;
  /// Consecutive idle loops before the thread parks on the wake event
  /// (cooperative yielding matters: CI boxes are often single-core).
  int idle_spins = 64;
  /// Park duration while idle; a post() wakes the thread early.
  std::uint64_t idle_park_ns = 200'000;
};

struct CommThreadStats {
  std::uint64_t posted = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t recv_errors = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t max_outbound_depth = 0;
  std::uint64_t max_in_flight = 0;
};

class CommThread {
 public:
  /// Inbound batch: ownership of the buffer transfers to the handler,
  /// which must return it to the endpoint's pool when done. `src` is the
  /// sender's comm rank.
  using InboundHandler = std::function<void(ByteBuffer buf, int src)>;
  /// A send or receive failed terminally (`peer` is -1 when unknown).
  using FailureHandler = std::function<void(int peer, ErrorCode err)>;
  using TickHandler = std::function<void()>;

  CommThread(mp::MPDirect& direct, CommThreadConfig config);
  ~CommThread();

  CommThread(const CommThread&) = delete;
  CommThread& operator=(const CommThread&) = delete;

  void set_inbound_handler(InboundHandler h) { on_inbound_ = std::move(h); }
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }
  void set_tick_handler(TickHandler h) { on_tick_ = std::move(h); }

  void start();
  /// Ask the loop to exit once the outbound queue and in-flight sends are
  /// drained (inbound delivery stops immediately after the drain).
  void request_stop();
  void join();

  /// Enqueue one batch for transmission (thread-safe; any thread). The
  /// buffer's bytes [0, size) go out as one wire message; the buffer is
  /// recycled through the endpoint pool on completion.
  void post(int dst, ByteBuffer buf);

  [[nodiscard]] const CommThreadStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] int tag() const noexcept { return config_.tag; }

 private:
  struct Outbound {
    int dst = -1;
    ByteBuffer buf;
  };
  struct InFlight {
    int dst = -1;
    mp::MPRequest req;
    ByteBuffer buf;
  };

  void run();
  bool pump_outbound(std::vector<Outbound>& scratch);
  bool pump_inbound(ByteBuffer& staging);
  bool pump_completions();
  void fail(int peer, ErrorCode err);

  mp::MPDirect& direct_;
  CommThreadConfig config_;
  InboundHandler on_inbound_;
  FailureHandler on_failure_;
  TickHandler on_tick_;

  std::mutex mu_;                 // guards outbound_ + stop_
  std::deque<Outbound> outbound_;
  bool stop_ = false;
  pal::Event wake_{pal::Event::ResetMode::kAuto};

  std::vector<InFlight> in_flight_;  // comm thread only
  CommThreadStats stats_;            // comm thread only (read after join)
  pal::Thread thread_;
  bool started_ = false;
};

}  // namespace motor::ps
