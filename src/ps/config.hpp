// Shared configuration for the sharded parameter server (client, server
// and facade all read the same struct so one object configures a job).
#pragma once

#include <cstdint>
#include <functional>

namespace motor::ps {

struct PsConfig {
  /// The first `servers` comm ranks host shards; the rest are clients.
  int servers = 1;

  // ---- coalescing (client) ----
  /// false = the ablation path: every record flushes as its own batch,
  /// paying full per-message device overhead (bench --coalesce=off).
  bool coalesce = true;
  /// Flush when the open batch reaches this many payload bytes...
  std::size_t flush_bytes = 32 * 1024;
  /// ...or this many records, whichever first.
  std::uint32_t flush_records = 512;
  /// Deadline flush: an open batch older than this is flushed by the comm
  /// thread's tick so stragglers never wait on a full batch. 0 disables
  /// (required by determinism tests — timing must not shape traffic).
  std::uint64_t flush_deadline_ns = 500'000;

  // ---- back-pressure (client) ----
  /// Credit window: batches in flight to one server before Push/Pull
  /// blocks. Credits return with replies only after the server APPLIED
  /// the batch, so a stalled shard bounds client-side memory at
  /// window_batches * flush_bytes (plus one open coalescer).
  int window_batches = 8;

  // ---- server ----
  /// Pin table values in the managed heap (paper §7.4 trade-off: no GC
  /// copy cost on the apply path, at the price of heap fragmentation).
  bool pin_values = false;
  /// Give up waiting for client FINs after this long; 0 = wait forever.
  /// Fault tests use a finite timeout so a lost client fails the serve
  /// loop with kCommError instead of hanging the suite.
  std::uint64_t serve_timeout_ns = 0;

  // ---- plumbing ----
  /// Client watchdog: a credit or pull wait longer than this fails with
  /// kCommError instead of hanging (0 = wait forever). Normal runs never
  /// get near it; it exists so a dead peer cannot wedge a worker.
  std::uint64_t op_timeout_ns = 120ull * 1000 * 1000 * 1000;
  /// Tag reserved for PS batches on the dup'd communicator.
  int tag = 71;
  /// Record per-batch flush->credit round-trip samples (bench p99).
  bool collect_latency = false;
  /// Test hook: overrides shard_of() routing on the CLIENT only, to force
  /// misrouted records through the server-side forwarding path.
  std::function<int(std::uint64_t)> route_hook;
  /// Test hook: runs on the server thread before each apply cycle (used
  /// to stall a shard and observe client-side back-pressure).
  std::function<void()> apply_gate;
};

}  // namespace motor::ps
