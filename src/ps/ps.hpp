// PsNode: the collective facade over the sharded parameter server.
//
// Construct one on EVERY rank of a Motor world (it is collective: the
// constructor dups the world communicator so PS batch traffic rides an
// isolated context, away from application tags). The first
// PsConfig::servers comm ranks become shards; the rest become clients:
//
//   run_motor_world(cfg, [&](mp::MotorContext& ctx) {
//     ps::PsNode node(ctx, psc);
//     if (node.is_server()) {
//       node.server().Serve();            // until every client Close()s
//     } else {
//       node.client().Push(key, delta);
//       node.client().Pull(key, &value);
//       node.client().Close();
//     }
//   });
//
// Threading: the facade spawns one comm thread per rank (inside the
// client/server endpoint). From construction until Close()/Serve()
// returns, that comm thread is the dup'd device's driver; the rank's
// managed thread must route all PS traffic through the endpoint API and
// may keep using ctx.mp() for unrelated traffic ONLY before construction
// or after shutdown (one device per rank, one driver at a time).
#pragma once

#include <memory>

#include "motor/motor_runtime.hpp"
#include "ps/client.hpp"
#include "ps/config.hpp"
#include "ps/server.hpp"

namespace motor::ps {

class PsNode {
 public:
  /// Collective over ctx's world. Requires 1 <= config.servers < size.
  PsNode(mp::MotorContext& ctx, PsConfig config)
      : comm_(ctx.mp().Dup()), config_(std::move(config)) {
    MOTOR_CHECK(config_.servers >= 1 && config_.servers < comm_.Size(),
                "PsConfig::servers must leave at least one client rank");
    if (comm_.Rank() < config_.servers) {
      server_ = std::make_unique<PsServer>(ctx.vm(), ctx.thread(),
                                           comm_.direct(), config_);
    } else {
      client_ = std::make_unique<PsClient>(comm_.direct(), config_);
    }
  }

  [[nodiscard]] bool is_server() const noexcept { return server_ != nullptr; }
  [[nodiscard]] PsServer& server() { return *server_; }
  [[nodiscard]] PsClient& client() { return *client_; }
  [[nodiscard]] int rank() const { return comm_.Rank(); }
  [[nodiscard]] int n_servers() const noexcept { return config_.servers; }
  [[nodiscard]] int n_clients() const { return comm_.Size() - config_.servers; }
  [[nodiscard]] mp::MPDirect& direct() noexcept { return comm_.direct(); }

 private:
  mp::Communicator comm_;
  PsConfig config_;
  std::unique_ptr<PsServer> server_;
  std::unique_ptr<PsClient> client_;
};

}  // namespace motor::ps
