#include "ps/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "pal/clock.hpp"
#include "vm/object.hpp"

namespace motor::ps {

namespace {

/// splitmix64 step, used to fold table bytes into the checksum.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PsServer::PsServer(vm::Vm& vm, vm::ManagedThread& thread,
                   mp::MPDirect& direct, PsConfig config)
    : vm_(vm),
      thread_(thread),
      direct_(direct),
      cfg_(std::move(config)),
      self_(direct.rank()),
      n_servers_(cfg_.servers),
      expected_client_fins_(direct.size() - cfg_.servers),
      f32_mt_(vm.types().primitive_array(vm::ElementKind::kFloat)),
      comm_(direct, CommThreadConfig{cfg_.tag}),
      values_(thread) {
  comm_.set_inbound_handler(
      [this](ByteBuffer buf, int src) { on_message(std::move(buf), src); });
  comm_.set_failure_handler(
      [this](int peer, ErrorCode err) { on_failure(peer, err); });
  comm_.start();
}

PsServer::~PsServer() {
  comm_.request_stop();
  comm_.join();
  std::lock_guard<std::mutex> lk(qmu_);
  for (Inbound& m : queue_) direct_.pool().put(std::move(m.buf));
  queue_.clear();
  if (cfg_.pin_values) {
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (values_.at(i) != nullptr) vm_.heap().unpin(values_.at(i));
    }
  }
}

void PsServer::on_message(ByteBuffer buf, int src) {
  std::lock_guard<std::mutex> lk(qmu_);
  queue_.push_back(Inbound{src, std::move(buf)});
  qcv_.notify_all();
}

void PsServer::on_failure(int peer, ErrorCode err) {
  std::lock_guard<std::mutex> lk(qmu_);
  // Recorded per peer, judged only once the inbound queue is drained: a
  // peer whose FIN reached us before its link died (cross-process worlds
  // tear links down rank by rank at clean exit) is shutdown order, not a
  // failure — but its FIN may still be sitting unprocessed in the queue
  // when the link break is noticed, so the verdict cannot be made here.
  peer_failures_.emplace(peer,
                         err == ErrorCode::kSuccess ? ErrorCode::kCommError
                                                    : err);
  qcv_.notify_all();
}

void PsServer::store(std::uint64_t key, vm::Obj obj) {
  auto payload_of = [this](vm::Obj o) -> std::uint64_t {
    return (o != nullptr && vm::obj_mt(o) == f32_mt_)
               ? vm::array_payload_bytes(o)
               : 0;
  };
  auto it = index_.find(key);
  if (it != index_.end()) {
    vm::Obj old = values_[it->second];
    stats_.value_bytes -= payload_of(old);
    if (cfg_.pin_values && old != nullptr) vm_.heap().unpin(old);
    values_[it->second] = obj;
  } else {
    index_.emplace(key, values_.size());
    values_.add(obj);
    stats_.keys++;
  }
  stats_.value_bytes += payload_of(obj);
  if (cfg_.pin_values) vm_.heap().pin(obj);
}

Status PsServer::apply_push(std::uint64_t key, ByteSpan payload) {
  if (payload.size() % sizeof(float) != 0) {
    return Status(ErrorCode::kCountError, "push payload not float-sized");
  }
  const std::size_t n = payload.size() / sizeof(float);
  vm::Obj obj = nullptr;
  auto it = index_.find(key);
  if (it == index_.end()) {
    // First touch: a zeroed float vector of the delta's length. The
    // allocation may run a GC; `payload` views native batch memory, which
    // the collector never moves.
    obj = vm_.new_array(f32_mt_, static_cast<std::int64_t>(n));
    if (obj == nullptr) return Status(ErrorCode::kNoMem, "ps table alloc");
    store(key, obj);
  } else {
    obj = values_[it->second];
    if (obj == nullptr || vm::obj_mt(obj) != f32_mt_) {
      return Status(ErrorCode::kTypeError, "push to non-float entry");
    }
    if (vm::array_payload_bytes(obj) != payload.size()) {
      return Status(ErrorCode::kCountError, "push length mismatch");
    }
  }
  float* v = reinterpret_cast<float*>(vm::array_data(obj));
  const std::byte* src = payload.data();
  for (std::size_t i = 0; i < n; ++i) {
    float d;  // memcpy: record payloads are not float-aligned in the batch
    std::memcpy(&d, src + i * sizeof(float), sizeof(float));
    v[i] += d;
  }
  return Status::ok();
}

Status PsServer::apply_put_object(std::uint64_t key, ByteSpan payload) {
  ByteBuffer tmp = direct_.pool().take();
  tmp.append(payload);
  tmp.seek(0);
  vm::Obj obj = nullptr;
  Status st = direct_.serializer().deserialize(tmp, thread_, &obj);
  direct_.pool().put(std::move(tmp));
  if (!st.is_ok()) return st;
  store(key, obj);
  return Status::ok();
}

void PsServer::serve_pull(std::uint64_t key, std::uint64_t corr,
                          Reply& reply) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    append_reply_error(reply.buf, key, corr, ErrorCode::kRequestError);
    stats_.errors_replied++;
  } else {
    vm::Obj obj = values_[it->second];
    if (obj == nullptr || vm::obj_mt(obj) != f32_mt_) {
      append_reply_error(reply.buf, key, corr, ErrorCode::kTypeError);
      stats_.errors_replied++;
    } else {
      append_reply_data(reply.buf, ReplyOp::kPullData, key, corr,
                        ByteSpan{vm::array_data(obj),
                                 vm::array_payload_bytes(obj)});
      stats_.pulls_served++;
    }
  }
  reply.records++;
}

void PsServer::serve_get_object(std::uint64_t key, std::uint64_t corr,
                                Reply& reply) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    append_reply_error(reply.buf, key, corr, ErrorCode::kRequestError);
    stats_.errors_replied++;
    reply.records++;
    return;
  }
  ByteBuffer tmp = direct_.pool().take();
  Status st = direct_.serializer().serialize(values_[it->second], tmp);
  if (!st.is_ok()) {
    append_reply_error(reply.buf, key, corr, st.code());
    stats_.errors_replied++;
  } else {
    append_reply_data(reply.buf, ReplyOp::kObjectData, key, corr,
                      ByteSpan{tmp.data(), tmp.size()});
    stats_.object_gets++;
  }
  direct_.pool().put(std::move(tmp));
  reply.records++;
}

PsServer::Reply& PsServer::reply_for(Cycle& cycle, int origin) {
  Reply& rep = cycle.replies[origin];
  if (!rep.open) {
    rep.buf = direct_.pool().take();
    BatchHeader h;
    h.kind = MsgKind::kReply;
    h.origin = static_cast<std::uint32_t>(self_);
    h.seq = reply_seq_[origin]++;
    write_header(rep.buf, h);
    rep.open = true;
  }
  return rep;
}

PsServer::Forward& PsServer::forward_for(Cycle& cycle, int owner,
                                         std::uint32_t origin) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner)) << 32) |
      origin;
  Forward& fwd = cycle.forwards[key];
  if (!fwd.open) {
    fwd.owner = owner;
    fwd.buf = direct_.pool().take();
    BatchHeader h;
    h.kind = MsgKind::kForward;
    h.origin = origin;  // masquerade: the owner replies to the client
    h.seq = fwd_seq_[owner]++;
    write_header(fwd.buf, h);
    fwd.open = true;
  }
  return fwd;
}

Status PsServer::apply_records(const BatchHeader& h, ByteBuffer& buf,
                               Cycle& cycle) {
  const bool allow_forward = h.kind == MsgKind::kRequest;
  const int origin = static_cast<int>(h.origin);
  for (std::uint32_t i = 0; i < h.record_count; ++i) {
    ReqRecord r;
    MOTOR_RETURN_IF_ERROR(read_request(buf, &r));
    const int owner = shard_of(r.key, n_servers_);
    if (allow_forward && owner != self_) {
      // Not ours (a client route hook, or a stale shard map): re-pack for
      // the owning shard instead of failing the whole batch.
      Forward& fwd = forward_for(cycle, owner, h.origin);
      switch (r.op) {
        case ReqOp::kPush:
          append_push(fwd.buf, r.key, r.payload);
          break;
        case ReqOp::kPull:
          append_pull(fwd.buf, r.key, r.correlation);
          break;
        case ReqOp::kPutObject:
          append_put_object(fwd.buf, r.key, r.payload);
          break;
        case ReqOp::kGetObject:
          append_get_object(fwd.buf, r.key, r.correlation);
          break;
      }
      fwd.records++;
      stats_.records_forwarded++;
      continue;
    }
    switch (r.op) {
      case ReqOp::kPush:
        if (apply_push(r.key, r.payload).is_ok()) {
          stats_.pushes_applied++;
        } else {
          stats_.push_errors++;  // malformed pushes drop, reads still serve
        }
        break;
      case ReqOp::kPull:
        serve_pull(r.key, r.correlation, reply_for(cycle, origin));
        break;
      case ReqOp::kPutObject:
        if (apply_put_object(r.key, r.payload).is_ok()) {
          stats_.object_puts++;
        } else {
          stats_.push_errors++;
        }
        break;
      case ReqOp::kGetObject:
        serve_get_object(r.key, r.correlation, reply_for(cycle, origin));
        break;
    }
  }
  return Status::ok();
}

Status PsServer::process(Inbound& msg, Cycle& cycle) {
  BatchHeader h;
  MOTOR_RETURN_IF_ERROR(read_header(msg.buf, &h));
  switch (h.kind) {
    case MsgKind::kFin:
      stats_.fins_received++;
      if (msg.src < n_servers_) {
        server_fins_++;
      } else {
        client_fins_++;
      }
      {
        std::lock_guard<std::mutex> lk(qmu_);
        finned_.insert(msg.src);
      }
      return Status::ok();
    case MsgKind::kRequest: {
      MOTOR_RETURN_IF_ERROR(apply_records(h, msg.buf, cycle));
      stats_.batches_applied++;
      // The batch is applied (or re-packed onward) — only now does its
      // credit go home. The window models the client -> first-hop flow.
      reply_for(cycle, msg.src).credits++;
      return Status::ok();
    }
    case MsgKind::kForward:
      MOTOR_RETURN_IF_ERROR(apply_records(h, msg.buf, cycle));
      stats_.forwards_applied++;
      return Status::ok();
    case MsgKind::kReply:
      return Status(ErrorCode::kSerialization, "ps server got a reply batch");
  }
  return Status(ErrorCode::kInternal, "unreachable");
}

void PsServer::flush_cycle(Cycle& cycle) {
  // Forwards first: they keep downstream shards busy while the replies
  // (credits) unblock upstream clients.
  for (auto& [key, fwd] : cycle.forwards) {
    if (!fwd.open) continue;
    if (fwd.records == 0) {
      direct_.pool().put(std::move(fwd.buf));
      continue;
    }
    patch_header(fwd.buf, fwd.records, 0);
    stats_.forward_batches_sent++;
    comm_.post(fwd.owner, std::move(fwd.buf));
  }
  for (auto& [origin, rep] : cycle.replies) {
    if (!rep.open) continue;
    if (rep.records == 0 && rep.credits == 0) {
      direct_.pool().put(std::move(rep.buf));
      continue;
    }
    patch_header(rep.buf, rep.records, rep.credits);
    stats_.replies_sent++;
    stats_.credits_returned += rep.credits;
    comm_.post(origin, std::move(rep.buf));
  }
}

void PsServer::send_server_fins() {
  for (int s = 0; s < n_servers_; ++s) {
    if (s == self_) continue;
    ByteBuffer fin = direct_.pool().take();
    BatchHeader h;
    h.kind = MsgKind::kFin;
    h.origin = static_cast<std::uint32_t>(self_);
    h.seq = fwd_seq_[s]++;
    write_header(fin, h);
    comm_.post(s, std::move(fin));
  }
  server_fins_sent_ = true;
}

Status PsServer::Serve() {
  const std::uint64_t start_ns = pal::monotonic_ns();
  std::vector<Inbound> cycle_msgs;
  Status result = Status::ok();
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(qmu_);
      if (queue_.empty()) {
        // Queue drained: every FIN that arrived before a link break has
        // been applied, so any failed peer NOT in finned_ really died.
        bool fatal = false;
        ErrorCode fatal_code = ErrorCode::kCommError;
        for (const auto& [peer, code] : peer_failures_) {
          if (finned_.count(peer) == 0) {
            fatal = true;
            fatal_code = code;
            break;
          }
        }
        if (fatal) {
          result = Status(fatal_code, "ps server comm failure");
          break;
        }
        if (client_fins_ >= expected_client_fins_) {
          if (!server_fins_sent_) {
            lk.unlock();
            // Every client batch is applied and every forward posted
            // (FIFO outbound), so peer shards see forwards before this.
            send_server_fins();
            continue;
          }
          if (server_fins_ >= n_servers_ - 1) break;
        }
        if (cfg_.serve_timeout_ns != 0 &&
            pal::monotonic_ns() - start_ns > cfg_.serve_timeout_ns) {
          result = Status(ErrorCode::kCommError,
                          "ps serve timed out waiting for fins");
          break;
        }
        qcv_.wait_for(lk, std::chrono::milliseconds(1));
        continue;
      }
      cycle_msgs.clear();
      std::swap(cycle_msgs, queue_);
    }
    if (cfg_.apply_gate) cfg_.apply_gate();
    Cycle cycle;
    Status st = Status::ok();
    for (Inbound& m : cycle_msgs) {
      if (st.is_ok()) st = process(m, cycle);
      direct_.pool().put(std::move(m.buf));
    }
    flush_cycle(cycle);
    stats_.apply_cycles++;
    thread_.poll_gc();  // the serve loop is this rank's only GC-yield point
    if (!st.is_ok()) {
      result = st;
      break;
    }
  }
  comm_.request_stop();
  comm_.join();
  return result;
}

bool PsServer::Lookup(std::uint64_t key, std::vector<float>* out) const {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  vm::Obj obj = values_.at(it->second);
  if (obj == nullptr || vm::obj_mt(obj) != f32_mt_) return false;
  const std::size_t n = vm::array_payload_bytes(obj) / sizeof(float);
  out->resize(n);
  if (n > 0) std::memcpy(out->data(), vm::array_data(obj), n * sizeof(float));
  return true;
}

std::uint64_t PsServer::table_checksum() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  for (const auto& [key, slot] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = 0x6d6f746f722d7073ull;  // "motor-ps"
  for (std::uint64_t key : keys) {
    h = mix(h, key);
    vm::Obj obj = values_.at(index_.at(key));
    if (obj == nullptr) {
      h = mix(h, 0);
      continue;
    }
    const bool is_f32 = vm::obj_mt(obj) == f32_mt_;
    h = mix(h, is_f32 ? 1 : 2);
    if (is_f32) {
      const std::size_t bytes = vm::array_payload_bytes(obj);
      const std::byte* p = vm::array_data(obj);
      h = mix(h, bytes);
      for (std::size_t i = 0; i + 8 <= bytes; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = mix(h, w);
      }
      std::uint64_t tail = 0;
      const std::size_t rem = bytes % 8;
      if (rem != 0) {
        std::memcpy(&tail, p + (bytes - rem), rem);
        h = mix(h, tail);
      }
    } else {
      // Object entries fold in their (deterministic) wire bytes.
      ByteBuffer tmp;
      if (direct_.serializer().serialize(obj, tmp).is_ok()) {
        h = mix(h, tmp.size());
        for (std::size_t i = 0; i + 8 <= tmp.size(); i += 8) {
          std::uint64_t w;
          std::memcpy(&w, tmp.data() + i, 8);
          h = mix(h, w);
        }
      }
    }
  }
  return h;
}

}  // namespace motor::ps
