// PsServer: one shard of the parameter server. Owns a key -> managed
// object table on this rank's VM heap: float-vector entries (the Push/
// Pull hot path) and arbitrary serialized objects (PutObject/GetObject),
// all rooted through a RootRange so the moving collector sees and may
// relocate them (or pinned in place with PsConfig::pin_values).
//
// Division of labour across the rank's two threads:
//   comm thread     (CommThread) receives request batches and enqueues
//                   the raw pooled buffers — it never touches the
//                   managed heap;
//   managed thread  (Serve()) drains the queue, decodes records, applies
//                   them to the table, and builds reply batches. All
//                   allocation, GC polling and serialization happen here,
//                   keeping the VM's one-managed-thread-per-rank rule.
//
// Back-pressure: each applied request batch earns its origin one credit,
// returned in the reply header — accumulated per origin per apply cycle,
// so one reply message acks many batches (reply coalescing). Credits are
// counted only AFTER apply, which is what lets a stalled shard (see
// PsConfig::apply_gate) freeze its clients' windows.
//
// Forwarding (ceph fwdreq idiom): a record whose key hashes to another
// shard is re-packed into a kForward batch carrying the ORIGINAL client
// as origin; the owning shard applies it and replies directly to that
// client with credit_return = 0 — the first hop already returned the
// batch credit, the owner only owes pull data.
//
// Shutdown: clients FIN every shard after flushing. Once all expected
// client FINs are in and the queue is drained, a shard FINs its peer
// shards (per-link FIFO puts these after any forwards it sent) and exits
// when it has every peer's FIN — so no forwarded record can be lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "motor/mp_direct.hpp"
#include "ps/comm_thread.hpp"
#include "ps/config.hpp"
#include "ps/wire.hpp"
#include "vm/handles.hpp"

namespace motor::ps {

struct PsServerStats {
  std::uint64_t batches_applied = 0;    // kRequest batches
  std::uint64_t forwards_applied = 0;   // kForward batches
  std::uint64_t fins_received = 0;      // client + server FINs
  std::uint64_t pushes_applied = 0;
  std::uint64_t pulls_served = 0;
  std::uint64_t object_puts = 0;
  std::uint64_t object_gets = 0;
  std::uint64_t records_forwarded = 0;
  std::uint64_t forward_batches_sent = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t credits_returned = 0;
  std::uint64_t errors_replied = 0;   // pull/get error records
  std::uint64_t push_errors = 0;      // dropped malformed pushes
  std::uint64_t apply_cycles = 0;
  std::uint64_t keys = 0;             // gauge: live table entries
  std::uint64_t value_bytes = 0;      // gauge: float payload bytes held
};

class PsServer {
 public:
  PsServer(vm::Vm& vm, vm::ManagedThread& thread, mp::MPDirect& direct,
           PsConfig config);
  ~PsServer();

  PsServer(const PsServer&) = delete;
  PsServer& operator=(const PsServer&) = delete;

  /// Run the shard until every expected FIN arrived (or failure /
  /// serve_timeout_ns). Call on the rank's managed thread. Returns with
  /// the comm thread joined, so the table is quiescent afterwards.
  Status Serve();

  // ---- post-Serve introspection (managed thread) ----
  /// Copy the float vector at `key` out of the table; false if absent or
  /// not a float entry.
  bool Lookup(std::uint64_t key, std::vector<float>* out) const;
  [[nodiscard]] std::size_t table_size() const { return index_.size(); }
  /// Order-independent-input digest of the full table (keys, kinds and
  /// payload bytes, accumulated in sorted key order) — the determinism
  /// anchor for the fault tests.
  [[nodiscard]] std::uint64_t table_checksum() const;

  [[nodiscard]] const PsServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CommThreadStats& comm_stats() const {
    return comm_.stats();
  }

 private:
  struct Inbound {
    int src = -1;
    ByteBuffer buf;
  };
  struct Reply {
    ByteBuffer buf;
    std::uint32_t records = 0;
    std::uint32_t credits = 0;
    bool open = false;
  };
  struct Forward {
    int owner = -1;
    ByteBuffer buf;
    std::uint32_t records = 0;
    bool open = false;
  };
  /// Per-apply-cycle outbound accumulators, keyed by destination.
  struct Cycle {
    std::map<int, Reply> replies;               // origin -> reply batch
    std::map<std::uint64_t, Forward> forwards;  // (owner, origin) key
  };

  void on_message(ByteBuffer buf, int src);
  void on_failure(int peer, ErrorCode err);

  Status process(Inbound& msg, Cycle& cycle);
  Status apply_records(const BatchHeader& h, ByteBuffer& buf, Cycle& cycle);
  Status apply_push(std::uint64_t key, ByteSpan payload);
  Status apply_put_object(std::uint64_t key, ByteSpan payload);
  void serve_pull(std::uint64_t key, std::uint64_t corr, Reply& reply);
  void serve_get_object(std::uint64_t key, std::uint64_t corr, Reply& reply);
  Reply& reply_for(Cycle& cycle, int origin);
  Forward& forward_for(Cycle& cycle, int owner, std::uint32_t origin);
  void flush_cycle(Cycle& cycle);
  void send_server_fins();
  void store(std::uint64_t key, vm::Obj obj);

  vm::Vm& vm_;
  vm::ManagedThread& thread_;
  mp::MPDirect& direct_;
  PsConfig cfg_;
  int self_;
  int n_servers_;
  int expected_client_fins_;
  const vm::MethodTable* f32_mt_;
  CommThread comm_;

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::vector<Inbound> queue_;
  // Peer -> first error reported by the comm thread (guarded by qmu_).
  // Judged against finned_ only when the inbound queue is empty; see
  // on_failure() for why the verdict is deferred.
  std::unordered_map<int, ErrorCode> peer_failures_;

  // Managed-thread state.
  vm::RootRange values_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
  int client_fins_ = 0;
  int server_fins_ = 0;
  std::unordered_set<int> finned_;  // FIN arrived; peer may exit (qmu_)
  bool server_fins_sent_ = false;
  std::unordered_map<int, std::uint64_t> reply_seq_;
  std::unordered_map<int, std::uint64_t> fwd_seq_;
  PsServerStats stats_;
};

}  // namespace motor::ps
