#include "ps/wire.hpp"

namespace motor::ps {

namespace {

Status read_payload(ByteBuffer& buf, ByteSpan* out) {
  std::uint32_t len = 0;
  MOTOR_RETURN_IF_ERROR(buf.get(len));
  if (len > buf.remaining()) {
    return Status(ErrorCode::kSerialization, "ps record payload underrun");
  }
  *out = ByteSpan{buf.data() + buf.cursor(), len};
  buf.seek(buf.cursor() + len);
  return Status::ok();
}

}  // namespace

Status read_header(ByteBuffer& buf, BatchHeader* out) {
  std::uint32_t magic = 0;
  MOTOR_RETURN_IF_ERROR(buf.get(magic));
  if (magic != kBatchMagic) {
    return Status(ErrorCode::kSerialization, "bad ps batch magic");
  }
  std::uint8_t kind = 0, pad8 = 0;
  std::uint16_t pad16 = 0;
  MOTOR_RETURN_IF_ERROR(buf.get(kind));
  MOTOR_RETURN_IF_ERROR(buf.get(pad8));
  MOTOR_RETURN_IF_ERROR(buf.get(pad16));
  if (kind < 1 || kind > 4) {
    return Status(ErrorCode::kSerialization, "bad ps batch kind");
  }
  out->kind = static_cast<MsgKind>(kind);
  MOTOR_RETURN_IF_ERROR(buf.get(out->origin));
  MOTOR_RETURN_IF_ERROR(buf.get(out->record_count));
  MOTOR_RETURN_IF_ERROR(buf.get(out->seq));
  MOTOR_RETURN_IF_ERROR(buf.get(out->credit_return));
  return Status::ok();
}

Status read_request(ByteBuffer& buf, ReqRecord* out) {
  std::uint8_t op = 0;
  MOTOR_RETURN_IF_ERROR(buf.get(op));
  if (op < 1 || op > 4) {
    return Status(ErrorCode::kSerialization, "bad ps request op");
  }
  out->op = static_cast<ReqOp>(op);
  MOTOR_RETURN_IF_ERROR(buf.get(out->key));
  out->correlation = 0;
  out->payload = ByteSpan{};
  switch (out->op) {
    case ReqOp::kPush:
    case ReqOp::kPutObject:
      return read_payload(buf, &out->payload);
    case ReqOp::kPull:
    case ReqOp::kGetObject:
      return buf.get(out->correlation);
  }
  return Status(ErrorCode::kInternal, "unreachable");
}

Status read_reply(ByteBuffer& buf, ReplyRecord* out) {
  std::uint8_t op = 0;
  MOTOR_RETURN_IF_ERROR(buf.get(op));
  if (op < 1 || op > 3) {
    return Status(ErrorCode::kSerialization, "bad ps reply op");
  }
  out->op = static_cast<ReplyOp>(op);
  MOTOR_RETURN_IF_ERROR(buf.get(out->key));
  MOTOR_RETURN_IF_ERROR(buf.get(out->correlation));
  out->error = ErrorCode::kSuccess;
  out->payload = ByteSpan{};
  if (out->op == ReplyOp::kError) {
    std::uint32_t code = 0;
    MOTOR_RETURN_IF_ERROR(buf.get(code));
    out->error = static_cast<ErrorCode>(code);
    return Status::ok();
  }
  return read_payload(buf, &out->payload);
}

}  // namespace motor::ps
