// Parameter-server wire format: typed request/reply records coalesced
// into batch messages (the ClassdescMP-thin-record idiom over Motor's
// byte device).
//
// One batch = one wire message = one MPDirect batched-delivery send:
//
//   [BatchHeader][record][record]...[record]
//
// Everything is little-endian via ByteBuffer's scalar accessors, so the
// format is defined (not host-dependent) and batches are comparable in
// tests. The header's record_count and credit_return are back-patched at
// flush time — the coalescer appends records into a pooled buffer whose
// header was written when the batch was opened.
//
// Message kinds:
//   kRequest  client -> server    push/pull/put/get records
//   kForward  server -> server    records re-packed for their owning
//                                 shard; `origin` masquerades the
//                                 original client (ceph fwdreq idiom):
//                                 the owner replies DIRECTLY to the
//                                 origin, never back through the first
//                                 hop.
//   kReply    server -> client    pull data / object data / error
//                                 records, plus credit_return — the
//                                 back-pressure tokens restoring the
//                                 client's in-flight window.
//   kFin      client -> server    end-of-stream: the client will send no
//                                 further batches; servers exit Serve()
//                                 once every expected client has finned.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "common/buffer.hpp"

namespace motor::ps {

inline constexpr std::uint32_t kBatchMagic = 0x50534231;  // "PSB1"

enum class MsgKind : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kForward = 3,
  kFin = 4,
};

/// Request-batch record opcodes.
enum class ReqOp : std::uint8_t {
  kPush = 1,       // key, len, payload: element-wise delta accumulate
  kPull = 2,       // key, correlation: read current value
  kPutObject = 3,  // key, len, serialized object: replace entry
  kGetObject = 4,  // key, correlation: read serialized object
};

/// Reply-batch record opcodes.
enum class ReplyOp : std::uint8_t {
  kPullData = 1,    // key, correlation, len, payload
  kObjectData = 2,  // key, correlation, len, serialized object
  kError = 3,       // key, correlation, error code
};

struct BatchHeader {
  MsgKind kind = MsgKind::kRequest;
  std::uint32_t origin = 0;        // comm rank of the requesting client
  std::uint32_t record_count = 0;  // records following the header
  std::uint64_t seq = 0;           // per (origin, destination) sequence
  std::uint32_t credit_return = 0; // replies: request batches acked
};

// Fixed header layout (offsets for back-patching).
inline constexpr std::size_t kMagicOffset = 0;
inline constexpr std::size_t kKindOffset = 4;
inline constexpr std::size_t kOriginOffset = 8;
inline constexpr std::size_t kRecordCountOffset = 12;
inline constexpr std::size_t kSeqOffset = 16;
inline constexpr std::size_t kCreditOffset = 24;
inline constexpr std::size_t kBatchHeaderBytes = 28;

/// Append a batch header to `buf` (normally the first bytes of a fresh
/// pooled buffer).
inline void write_header(ByteBuffer& buf, const BatchHeader& h) {
  buf.put_u32(kBatchMagic);
  buf.put_u8(static_cast<std::uint8_t>(h.kind));
  buf.put_u8(0);
  buf.put_u16(0);
  buf.put_u32(h.origin);
  buf.put_u32(h.record_count);
  buf.put_u64(h.seq);
  buf.put_u32(h.credit_return);
}

/// Back-patch the mutable header fields at flush time.
inline void patch_header(ByteBuffer& buf, std::uint32_t record_count,
                         std::uint32_t credit_return) {
  buf.overwrite_at(kRecordCountOffset, record_count);
  buf.overwrite_at(kCreditOffset, credit_return);
}

Status read_header(ByteBuffer& buf, BatchHeader* out);

// ---- request records ----

/// Bytes a push record of `payload_bytes` occupies in a batch — the
/// closed form the typed client uses to budget coalescer capacity.
inline constexpr std::size_t push_record_bytes(std::size_t payload_bytes) {
  return 1 + 8 + 4 + payload_bytes;
}

inline void append_push(ByteBuffer& buf, std::uint64_t key, ByteSpan delta) {
  // Exactly one capacity decision per record: a cold coalescer grows once
  // to the full record size instead of once per field put; a warm pooled
  // buffer never grows at all.
  buf.reserve(buf.size() + push_record_bytes(delta.size()));
  buf.put_u8(static_cast<std::uint8_t>(ReqOp::kPush));
  buf.put_u64(key);
  buf.put_u32(static_cast<std::uint32_t>(delta.size()));
  buf.append(delta);
}

/// Typed push record: the element span goes into the batch as one
/// statically-sized memcpy — no caller-side byte bookkeeping. The element
/// type is guarded here (compile error, not a runtime assert) because the
/// server accumulates raw element payloads.
template <typename T>
inline void append_push(ByteBuffer& buf, std::uint64_t key,
                        std::span<const T> delta) {
  static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>,
                "push payloads are raw element bytes: T must be trivially "
                "copyable and not a pointer");
  append_push(buf, key, as_bytes_of(delta.data(), delta.size_bytes()));
}

inline void append_pull(ByteBuffer& buf, std::uint64_t key,
                        std::uint64_t correlation) {
  buf.put_u8(static_cast<std::uint8_t>(ReqOp::kPull));
  buf.put_u64(key);
  buf.put_u64(correlation);
}

inline void append_put_object(ByteBuffer& buf, std::uint64_t key,
                              ByteSpan bytes) {
  buf.reserve(buf.size() + 1 + 8 + 4 + bytes.size());
  buf.put_u8(static_cast<std::uint8_t>(ReqOp::kPutObject));
  buf.put_u64(key);
  buf.put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf.append(bytes);
}

inline void append_get_object(ByteBuffer& buf, std::uint64_t key,
                              std::uint64_t correlation) {
  buf.put_u8(static_cast<std::uint8_t>(ReqOp::kGetObject));
  buf.put_u64(key);
  buf.put_u64(correlation);
}

/// One decoded request record. `payload` views into the batch buffer.
struct ReqRecord {
  ReqOp op = ReqOp::kPush;
  std::uint64_t key = 0;
  std::uint64_t correlation = 0;  // pull / get_object
  ByteSpan payload;               // push / put_object
};

Status read_request(ByteBuffer& buf, ReqRecord* out);

// ---- reply records ----

inline void append_reply_data(ByteBuffer& buf, ReplyOp op, std::uint64_t key,
                              std::uint64_t correlation, ByteSpan payload) {
  buf.reserve(buf.size() + 1 + 8 + 8 + 4 + payload.size());
  buf.put_u8(static_cast<std::uint8_t>(op));
  buf.put_u64(key);
  buf.put_u64(correlation);
  buf.put_u32(static_cast<std::uint32_t>(payload.size()));
  buf.append(payload);
}

inline void append_reply_error(ByteBuffer& buf, std::uint64_t key,
                               std::uint64_t correlation, ErrorCode code) {
  buf.put_u8(static_cast<std::uint8_t>(ReplyOp::kError));
  buf.put_u64(key);
  buf.put_u64(correlation);
  buf.put_u32(static_cast<std::uint32_t>(code));
}

/// One decoded reply record. `payload` views into the batch buffer.
struct ReplyRecord {
  ReplyOp op = ReplyOp::kPullData;
  std::uint64_t key = 0;
  std::uint64_t correlation = 0;
  ErrorCode error = ErrorCode::kSuccess;  // kError records
  ByteSpan payload;
};

Status read_reply(ByteBuffer& buf, ReplyRecord* out);

/// The shard map: keys scatter over server ranks by a splitmix64 hash —
/// cheap, uniform, and stable across ranks.
inline int shard_of(std::uint64_t key, int n_servers) {
  std::uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(n_servers));
}

}  // namespace motor::ps
