#include "transport/bandwidth_channel.hpp"

#include <algorithm>
#include <vector>

#include "pal/clock.hpp"

namespace motor::transport {

TokenBucket::TokenBucket(std::uint64_t bytes_per_second,
                         std::size_t burst_bytes)
    : bytes_per_second_(bytes_per_second),
      burst_bytes_(burst_bytes),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_ns_(pal::monotonic_ns()) {}

std::size_t TokenBucket::refill_locked() {
  const std::uint64_t now = pal::monotonic_ns();
  const double elapsed_s = static_cast<double>(now - last_refill_ns_) / 1e9;
  last_refill_ns_ = now;
  tokens_ = std::min(
      static_cast<double>(burst_bytes_),
      tokens_ + elapsed_s * static_cast<double>(bytes_per_second_));
  return static_cast<std::size_t>(tokens_);
}

std::size_t TokenBucket::take(std::size_t want) {
  std::lock_guard lk(mu_);
  const std::size_t got = std::min(want, refill_locked());
  tokens_ -= static_cast<double>(got);
  return got;
}

void TokenBucket::refund(std::size_t n) {
  if (n == 0) return;
  std::lock_guard lk(mu_);
  tokens_ = std::min(static_cast<double>(burst_bytes_),
                     tokens_ + static_cast<double>(n));
}

std::size_t TokenBucket::peek() {
  std::lock_guard lk(mu_);
  return refill_locked();
}

BandwidthChannel::BandwidthChannel(std::unique_ptr<Channel> inner,
                                   std::uint64_t bytes_per_second,
                                   std::size_t burst_bytes)
    : inner_(std::move(inner)),
      bucket_(std::make_shared<TokenBucket>(bytes_per_second, burst_bytes)) {}

BandwidthChannel::BandwidthChannel(std::unique_ptr<Channel> inner,
                                   std::shared_ptr<TokenBucket> bucket)
    : inner_(std::move(inner)), bucket_(std::move(bucket)) {}

std::size_t BandwidthChannel::try_write(ByteSpan bytes) {
  const std::size_t reserved = bucket_->take(bytes.size());
  if (reserved == 0) return 0;
  const std::size_t n = inner_->try_write(bytes.first(reserved));
  bucket_->refund(reserved - n);
  return n;
}

std::size_t BandwidthChannel::try_write_v(std::span<const ByteSpan> parts) {
  std::size_t total = 0;
  for (const ByteSpan p : parts) total += p.size();
  std::size_t budget = bucket_->take(total);
  if (budget == 0) return 0;
  const std::size_t reserved = budget;
  // Clip the gather list to the byte budget, then commit through the
  // inner channel's own gathered write.
  std::vector<ByteSpan> clipped;
  clipped.reserve(parts.size());
  for (ByteSpan p : parts) {
    if (budget == 0) break;
    const std::size_t take = std::min(p.size(), budget);
    if (take > 0) clipped.push_back(p.first(take));
    budget -= take;
  }
  const std::size_t n = inner_->try_write_v(clipped);
  bucket_->refund(reserved - n);
  return n;
}

std::size_t BandwidthChannel::writable() const {
  return std::min(bucket_->peek(), inner_->writable());
}

}  // namespace motor::transport
