#include "transport/bandwidth_channel.hpp"

#include <algorithm>

#include "pal/clock.hpp"

namespace motor::transport {

BandwidthChannel::BandwidthChannel(std::unique_ptr<Channel> inner,
                                   std::uint64_t bytes_per_second,
                                   std::size_t burst_bytes)
    : inner_(std::move(inner)),
      bytes_per_second_(bytes_per_second),
      burst_bytes_(burst_bytes),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_ns_(pal::monotonic_ns()) {}

std::size_t BandwidthChannel::refill_locked() {
  const std::uint64_t now = pal::monotonic_ns();
  const double elapsed_s =
      static_cast<double>(now - last_refill_ns_) / 1e9;
  last_refill_ns_ = now;
  tokens_ = std::min(static_cast<double>(burst_bytes_),
                     tokens_ + elapsed_s * static_cast<double>(
                                               bytes_per_second_));
  return static_cast<std::size_t>(tokens_);
}

std::size_t BandwidthChannel::try_write(ByteSpan bytes) {
  std::lock_guard lk(mu_);
  const std::size_t budget = refill_locked();
  const std::size_t want = std::min(bytes.size(), budget);
  if (want == 0) return 0;
  const std::size_t n = inner_->try_write(bytes.first(want));
  tokens_ -= static_cast<double>(n);
  return n;
}

std::size_t BandwidthChannel::try_write_v(std::span<const ByteSpan> parts) {
  std::lock_guard lk(mu_);
  std::size_t budget = refill_locked();
  if (budget == 0) return 0;
  // Clip the gather list to the byte budget, then commit through the
  // inner channel's own gathered write.
  std::vector<ByteSpan> clipped;
  clipped.reserve(parts.size());
  for (ByteSpan p : parts) {
    if (budget == 0) break;
    const std::size_t take = std::min(p.size(), budget);
    if (take > 0) clipped.push_back(p.first(take));
    budget -= take;
  }
  const std::size_t n = inner_->try_write_v(clipped);
  tokens_ -= static_cast<double>(n);
  return n;
}

std::size_t BandwidthChannel::writable() const {
  std::lock_guard lk(mu_);
  const std::size_t budget =
      const_cast<BandwidthChannel*>(this)->refill_locked();
  return std::min(budget, inner_->writable());
}

}  // namespace motor::transport
