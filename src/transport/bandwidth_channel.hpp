// BandwidthChannel: a decorator that models a finite-throughput link.
//
// Complements LatencyChannel: where latency delays *visibility*,
// bandwidth limits the *rate* at which the wire accepts bytes, using a
// token bucket refilled at `bytes_per_second`. Together they let the
// benchmarks sweep interconnect classes (in-process, GbE-ish, WAN-ish)
// and watch where the Figure 9 crossovers move — an experiment the paper
// gestures at ("The layered Motor architecture will allow us to port
// Motor to other platforms and interconnects", §9).
#pragma once

#include <memory>
#include <mutex>

#include "transport/channel.hpp"

namespace motor::transport {

class BandwidthChannel final : public Channel {
 public:
  BandwidthChannel(std::unique_ptr<Channel> inner,
                   std::uint64_t bytes_per_second,
                   std::size_t burst_bytes = 16 * 1024);

  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: one token-bucket refill for the whole gather; the
  /// budget-clipped part list is forwarded to the inner gather in one
  /// operation (no flattening).
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override {
    return inner_->try_read(out);
  }
  [[nodiscard]] std::size_t readable() const override {
    return inner_->readable();
  }
  [[nodiscard]] std::size_t writable() const override;
  void close() override { inner_->close(); }
  [[nodiscard]] bool at_eof() const override { return inner_->at_eof(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+bw";
  }

 private:
  std::size_t refill_locked();

  std::unique_ptr<Channel> inner_;
  std::uint64_t bytes_per_second_;
  std::size_t burst_bytes_;

  mutable std::mutex mu_;
  double tokens_;
  std::uint64_t last_refill_ns_;
};

}  // namespace motor::transport
