// BandwidthChannel: a decorator that models a finite-throughput link.
//
// Complements LatencyChannel: where latency delays *visibility*,
// bandwidth limits the *rate* at which the wire accepts bytes, using a
// token bucket refilled at `bytes_per_second`. Together they let the
// benchmarks sweep interconnect classes (in-process, GbE-ish, WAN-ish)
// and watch where the Figure 9 crossovers move — an experiment the paper
// gestures at ("The layered Motor architecture will allow us to port
// Motor to other platforms and interconnects", §9).
//
// The bucket can be SHARED between channels: the fabric hands every
// egress link of a rank the same bucket, so the bucket models the
// rank's NIC — a root fanning a broadcast out to 63 peers serialises
// at its own wire rate instead of enjoying 63 private wires. (A bucket
// per link would make the linear fan-out algorithms look free at scale.)
#pragma once

#include <memory>
#include <mutex>

#include "transport/channel.hpp"

namespace motor::transport {

/// Refillable byte budget (thread-safe). One per modelled NIC.
class TokenBucket {
 public:
  TokenBucket(std::uint64_t bytes_per_second, std::size_t burst_bytes);

  /// Clip `want` to the refilled budget and consume the clip.
  std::size_t take(std::size_t want);
  /// Return tokens a caller reserved but did not use (inner wrote less).
  void refund(std::size_t n);
  /// Current budget after a refill (no consumption).
  [[nodiscard]] std::size_t peek();

 private:
  std::size_t refill_locked();

  std::uint64_t bytes_per_second_;
  std::size_t burst_bytes_;
  std::mutex mu_;
  double tokens_;
  std::uint64_t last_refill_ns_;
};

class BandwidthChannel final : public Channel {
 public:
  /// Private bucket: this link alone is rate-limited.
  BandwidthChannel(std::unique_ptr<Channel> inner,
                   std::uint64_t bytes_per_second,
                   std::size_t burst_bytes = 16 * 1024);
  /// Shared bucket: this link draws from `bucket` (the NIC model).
  BandwidthChannel(std::unique_ptr<Channel> inner,
                   std::shared_ptr<TokenBucket> bucket);

  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: one token-bucket reservation for the whole gather;
  /// the budget-clipped part list is forwarded to the inner gather in one
  /// operation (no flattening).
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override {
    return inner_->try_read(out);
  }
  [[nodiscard]] std::size_t readable() const override {
    return inner_->readable();
  }
  [[nodiscard]] std::size_t writable() const override;
  void close() override { inner_->close(); }
  [[nodiscard]] bool at_eof() const override { return inner_->at_eof(); }
  [[nodiscard]] bool broken() const override { return inner_->broken(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+bw";
  }

 private:
  std::unique_ptr<Channel> inner_;
  std::shared_ptr<TokenBucket> bucket_;
};

}  // namespace motor::transport
