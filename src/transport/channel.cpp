#include "transport/channel.hpp"

#include "transport/loopback_channel.hpp"
#include "transport/ring_channel.hpp"
#include "transport/stream_channel.hpp"

namespace motor::transport {

std::size_t Channel::try_write_v(std::span<const ByteSpan> parts) {
  // Default fallback: one try_write per part. No staging buffer — the
  // bytes still move source -> channel directly — but each part pays its
  // own synchronisation (lock or atomic pair). Concrete channels override
  // this with a single-commit gather.
  std::size_t total = 0;
  for (ByteSpan p : parts) {
    if (p.empty()) continue;
    const std::size_t n = try_write(p);
    total += n;
    if (n < p.size()) break;  // channel full
  }
  return total;
}

std::unique_ptr<Channel> make_channel(ChannelKind kind,
                                      std::size_t capacity_bytes) {
  switch (kind) {
    case ChannelKind::kRing:
      return std::make_unique<RingChannel>(capacity_bytes);
    case ChannelKind::kStream:
      return std::make_unique<StreamChannel>(capacity_bytes);
    case ChannelKind::kLoopback:
      return std::make_unique<LoopbackChannel>();
  }
  return nullptr;
}

}  // namespace motor::transport
