#include "transport/channel.hpp"

#include "transport/loopback_channel.hpp"
#include "transport/ring_channel.hpp"
#include "transport/stream_channel.hpp"

namespace motor::transport {

std::unique_ptr<Channel> make_channel(ChannelKind kind,
                                      std::size_t capacity_bytes) {
  switch (kind) {
    case ChannelKind::kRing:
      return std::make_unique<RingChannel>(capacity_bytes);
    case ChannelKind::kStream:
      return std::make_unique<StreamChannel>(capacity_bytes);
    case ChannelKind::kLoopback:
      return std::make_unique<LoopbackChannel>();
  }
  return nullptr;
}

}  // namespace motor::transport
