// Transport channel interface — the analog of the MPICH2 channel layer.
//
// A Channel moves raw bytes one way, from exactly one producer thread to
// exactly one consumer thread. Like the MPICH2 channel interface (Gropp &
// Lusk, ANL/MCS-TM-213), the contract is intentionally tiny — five
// operations — so a new transport (shared memory, sockets, interconnect)
// is a small port:
//   try_write   non-blocking partial write
//   try_read    non-blocking partial read
//   readable    bytes currently available to the consumer
//   writable    bytes currently acceptable from the producer
//   close       producer-side end-of-stream
//
// The scatter-gather extension adds two operations with working default
// implementations, so a minimal port stays five functions:
//   try_write_v  gathered write of a span list in one channel operation
//   recv_into    scattered read landing bytes directly in a caller buffer
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/buffer.hpp"
#include "common/spanvec.hpp"

namespace motor::transport {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Append up to bytes.size() bytes; returns how many were accepted.
  /// Never blocks. Returns 0 when the channel is full or closed.
  virtual std::size_t try_write(ByteSpan bytes) = 0;

  /// Remove up to out.size() bytes; returns how many were delivered.
  /// Never blocks. Returns 0 when no data is available.
  virtual std::size_t try_read(MutableByteSpan out) = 0;

  /// Gathered write: append the logical byte sequence described by
  /// `parts` (in order), up to current capacity; returns bytes accepted.
  /// The default forwards part-by-part through try_write — correct under
  /// the single-producer contract and already staging-free, but it pays
  /// one synchronisation round per part. Transports override it to
  /// commit all parts in ONE channel operation.
  virtual std::size_t try_write_v(std::span<const ByteSpan> parts);
  std::size_t try_write_v(const SpanVec& msg) {
    return try_write_v(msg.parts());
  }

  /// Scattered read: land up to out.size() bytes directly in the caller's
  /// buffer — the posted-receive landing primitive. Semantically identical
  /// to try_read today; a separate virtual so transports that stage reads
  /// internally can special-case the direct-landing path.
  virtual std::size_t recv_into(MutableByteSpan out) { return try_read(out); }

  /// Bytes the consumer could read right now.
  [[nodiscard]] virtual std::size_t readable() const = 0;

  /// Bytes the producer could write right now.
  [[nodiscard]] virtual std::size_t writable() const = 0;

  /// Producer signals no more data. Buffered bytes remain readable.
  virtual void close() = 0;

  /// True once closed *and* drained.
  [[nodiscard]] virtual bool at_eof() const = 0;

  /// True when the transport failed underneath: the peer process died or
  /// the wire reset, as opposed to a clean local close(). A broken
  /// channel delivers no further bytes and black-holes writes; the device
  /// reacts by failing the whole flow with kCommError. In-process
  /// channels never break — only genuinely external transports (sockets,
  /// shared memory) can report it.
  [[nodiscard]] virtual bool broken() const { return false; }

  /// Short transport name for diagnostics ("ring", "stream", "loopback").
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Kinds of channel the fabric can build between every rank pair.
enum class ChannelKind {
  kRing,     // lock-free SPSC ring: the shared-memory-style channel
  kStream,   // mutex/condvar byte stream: the sock-style channel
  kLoopback, // unbounded self-channel (rank -> itself)
};

std::unique_ptr<Channel> make_channel(ChannelKind kind,
                                      std::size_t capacity_bytes);

}  // namespace motor::transport
