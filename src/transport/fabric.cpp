#include "transport/fabric.hpp"

#include "common/status.hpp"
#include "transport/bandwidth_channel.hpp"
#include "transport/latency_channel.hpp"

namespace motor::transport {

Fabric::Fabric(int n_ranks, ChannelKind kind, std::size_t capacity_bytes,
               std::uint64_t wire_latency_ns,
               std::uint64_t wire_bandwidth_bps)
    : kind_(kind), capacity_(capacity_bytes),
      wire_latency_ns_(wire_latency_ns),
      wire_bandwidth_bps_(wire_bandwidth_bps) {
  MOTOR_CHECK(n_ranks >= 1, "fabric needs at least one rank");
  std::lock_guard lk(mu_);
  grow_locked(n_ranks);
}

int Fabric::size() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(links_.size());
}

Channel& Fabric::link(int from, int to) {
  std::lock_guard lk(mu_);
  MOTOR_CHECK(from >= 0 && from < static_cast<int>(links_.size()),
              "link: bad source rank");
  MOTOR_CHECK(to >= 0 && to < static_cast<int>(links_.size()),
              "link: bad destination rank");
  return *links_[from][to];
}

int Fabric::add_ranks(int extra) {
  MOTOR_CHECK(extra >= 1, "add_ranks: extra must be positive");
  std::lock_guard lk(mu_);
  const int first_new = static_cast<int>(links_.size());
  grow_locked(first_new + extra);
  return first_new;
}

FaultyChannel* Fabric::inject_faults(int from, int to,
                                     const FaultConfig& config) {
  std::lock_guard lk(mu_);
  MOTOR_CHECK(from >= 0 && from < static_cast<int>(links_.size()),
              "inject_faults: bad source rank");
  MOTOR_CHECK(to >= 0 && to < static_cast<int>(links_.size()),
              "inject_faults: bad destination rank");
  auto wrapped =
      std::make_unique<FaultyChannel>(std::move(links_[from][to]), config);
  FaultyChannel* handle = wrapped.get();
  links_[from][to] = std::move(wrapped);
  return handle;
}

void Fabric::grow_locked(int new_size) {
  const int old_size = static_cast<int>(links_.size());
  links_.resize(new_size);
  for (int from = 0; from < new_size; ++from) {
    links_[from].resize(new_size);
    for (int to = (from < old_size ? old_size : 0); to < new_size; ++to) {
      if (!links_[from][to]) {
        if (from == to) {
          links_[from][to] = make_channel(ChannelKind::kLoopback, 0);
        } else {
          std::unique_ptr<Channel> link = make_channel(kind_, capacity_);
          if (wire_bandwidth_bps_ > 0) {
            link = std::make_unique<BandwidthChannel>(std::move(link),
                                                      wire_bandwidth_bps_);
          }
          if (wire_latency_ns_ > 0) {
            link = std::make_unique<LatencyChannel>(std::move(link),
                                                    wire_latency_ns_);
          }
          links_[from][to] = std::move(link);
        }
      }
    }
  }
}

}  // namespace motor::transport
