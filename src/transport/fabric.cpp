#include "transport/fabric.hpp"

#include "common/status.hpp"
#include "transport/bandwidth_channel.hpp"
#include "transport/latency_channel.hpp"

namespace motor::transport {

Fabric::Fabric(int n_ranks, ChannelKind kind, std::size_t capacity_bytes,
               std::uint64_t wire_latency_ns,
               std::uint64_t wire_bandwidth_bps, TopologySpec topology)
    : kind_(kind), capacity_(capacity_bytes),
      wire_latency_ns_(wire_latency_ns),
      wire_bandwidth_bps_(wire_bandwidth_bps),
      topo_(topology, n_ranks) {
  MOTOR_CHECK(n_ranks >= 1, "fabric needs at least one rank");
  std::lock_guard lk(mu_);
  links_.resize(static_cast<std::size_t>(n_ranks));
  for (auto& row : links_) row.resize(static_cast<std::size_t>(n_ranks));
  egress_.resize(static_cast<std::size_t>(n_ranks));
}

int Fabric::size() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(links_.size());
}

void Fabric::set_link_factory(LinkFactory factory) {
  std::lock_guard lk(mu_);
  link_factory_ = std::move(factory);
}

std::unique_ptr<Channel> Fabric::make_link(int from, int to) const {
  if (from == to) return make_channel(ChannelKind::kLoopback, 0);
  std::unique_ptr<Channel> link;
  if (link_factory_) link = link_factory_(from, to);
  if (!link) link = make_channel(kind_, capacity_);
  if (wire_bandwidth_bps_ > 0) {
    // All egress links of `from` share one bucket: the rate limit models
    // the rank's NIC, not a private wire per destination.
    auto& bucket = egress_[static_cast<std::size_t>(from)];
    if (!bucket) {
      bucket = std::make_shared<TokenBucket>(wire_bandwidth_bps_, 16 * 1024);
    }
    link = std::make_unique<BandwidthChannel>(std::move(link), bucket);
  }
  if (wire_latency_ns_ > 0) {
    const auto hops =
        static_cast<std::uint64_t>(topo_.distance(from, to));
    link = std::make_unique<LatencyChannel>(std::move(link),
                                            wire_latency_ns_ * hops);
  }
  return link;
}

Channel& Fabric::link_locked(int from, int to) {
  MOTOR_CHECK(from >= 0 && from < static_cast<int>(links_.size()),
              "link: bad source rank");
  MOTOR_CHECK(to >= 0 && to < static_cast<int>(links_.size()),
              "link: bad destination rank");
  auto& slot = links_[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(to)];
  if (!slot) {
    slot = make_link(from, to);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Channel& Fabric::link(int from, int to) {
  std::lock_guard lk(mu_);
  return link_locked(from, to);
}

std::uint64_t Fabric::snapshot_inbound(int to,
                                       std::vector<Channel*>& out) const {
  std::lock_guard lk(mu_);
  MOTOR_CHECK(to >= 0 && to < static_cast<int>(links_.size()),
              "snapshot_inbound: bad rank");
  const std::size_t n = links_.size();
  out.assign(n, nullptr);
  for (std::size_t src = 0; src < n; ++src) {
    out[src] = links_[src][static_cast<std::size_t>(to)].get();
  }
  return epoch_.load(std::memory_order_acquire);
}

std::uint64_t Fabric::snapshot_rank(int rank, std::vector<Channel*>& in,
                                    std::vector<Channel*>& out) const {
  std::lock_guard lk(mu_);
  MOTOR_CHECK(rank >= 0 && rank < static_cast<int>(links_.size()),
              "snapshot_rank: bad rank");
  const std::size_t n = links_.size();
  in.assign(n, nullptr);
  out.assign(n, nullptr);
  for (std::size_t peer = 0; peer < n; ++peer) {
    in[peer] = links_[peer][static_cast<std::size_t>(rank)].get();
    out[peer] = links_[static_cast<std::size_t>(rank)][peer].get();
  }
  return epoch_.load(std::memory_order_acquire);
}

std::size_t Fabric::live_links() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& row : links_) {
    for (const auto& ch : row) n += ch ? 1 : 0;
  }
  return n;
}

int Fabric::add_ranks(int extra) {
  MOTOR_CHECK(extra >= 1, "add_ranks: extra must be positive");
  std::lock_guard lk(mu_);
  const int first_new = static_cast<int>(links_.size());
  const int new_size = first_new + extra;
  links_.resize(static_cast<std::size_t>(new_size));
  for (auto& row : links_) row.resize(static_cast<std::size_t>(new_size));
  egress_.resize(static_cast<std::size_t>(new_size));
  topo_.resize(new_size);
  epoch_.fetch_add(1, std::memory_order_release);
  return first_new;
}

FaultyChannel* Fabric::inject_faults(int from, int to,
                                     const FaultConfig& config) {
  std::lock_guard lk(mu_);
  link_locked(from, to);  // materialise the link before wrapping it
  auto& slot = links_[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(to)];
  auto wrapped = std::make_unique<FaultyChannel>(std::move(slot), config);
  FaultyChannel* handle = wrapped.get();
  slot = std::move(wrapped);
  epoch_.fetch_add(1, std::memory_order_release);
  return handle;
}

}  // namespace motor::transport
