// Fabric: the full-mesh interconnect between ranks. One directed Channel
// per ordered rank pair (i -> j), created up front; rank i's send side is
// the only producer of channel (i, j) and rank j's progress engine is the
// only consumer, which is what lets the ring channel stay lock-free.
//
// The fabric can grow (add_ranks) to support MPI-2 dynamic process
// management: spawned worlds get fresh rows/columns of channels.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "transport/channel.hpp"
#include "transport/faulty_channel.hpp"

namespace motor::transport {

class Fabric {
 public:
  /// Builds an n_ranks x n_ranks mesh. Diagonal entries are loopback
  /// channels regardless of `kind` (self-sends must not block on capacity).
  /// `wire_latency_ns` > 0 wraps every non-loopback channel in a
  /// LatencyChannel modelling interconnect propagation delay.
  /// `wire_bandwidth_bps` > 0 additionally rate-limits every non-loopback
  /// channel (token bucket), composing as latency(bandwidth(channel)).
  Fabric(int n_ranks, ChannelKind kind, std::size_t capacity_bytes,
         std::uint64_t wire_latency_ns = 0,
         std::uint64_t wire_bandwidth_bps = 0);

  [[nodiscard]] int size() const;

  /// Channel carrying bytes from rank `from` to rank `to`.
  Channel& link(int from, int to);

  /// Extend the mesh by `extra` ranks (dynamic process management).
  /// Returns the rank id of the first new rank.
  int add_ranks(int extra);

  /// Wrap the `from` -> `to` link in a fault-injecting decorator (see
  /// transport/faulty_channel.hpp). Call during setup, BEFORE any rank
  /// starts moving bytes over the link — wrapping swaps the channel out
  /// from under a concurrent producer/consumer otherwise. Returns the
  /// decorator (owned by the fabric) so tests can read its fault stats.
  FaultyChannel* inject_faults(int from, int to, const FaultConfig& config);

  [[nodiscard]] ChannelKind kind() const noexcept { return kind_; }

 private:
  void grow_locked(int new_size);

  mutable std::mutex mu_;
  ChannelKind kind_;
  std::size_t capacity_;
  std::uint64_t wire_latency_ns_;
  std::uint64_t wire_bandwidth_bps_;
  // links_[from][to]
  std::vector<std::vector<std::unique_ptr<Channel>>> links_;
};

}  // namespace motor::transport
