// Fabric: the interconnect between ranks. One directed Channel per
// ordered rank pair (i -> j), created LAZILY on first use; rank i's send
// side is the only producer of channel (i, j) and rank j's progress
// engine is the only consumer, which is what lets the ring channel stay
// lock-free.
//
// Lazy creation is what makes 64-256-rank worlds affordable: a scalable
// collective touches O(log n) peers per rank, so only a sliver of the
// n^2 pair matrix ever materialises. Consumers discover fresh links via
// the fabric epoch: every channel creation (or fault wrap, or growth)
// bumps an atomic counter, and Device re-snapshots its inbound row only
// when the epoch moved — the steady-state progress pump never takes the
// fabric mutex.
//
// The fabric composes the existing latency/bandwidth channel decorators
// per link according to an explicit Topology (transport/topology.hpp):
// a link's one-way propagation delay is wire_latency_ns x hop count, so
// a mesh/torus/fat-tree wire is honestly slower across the diameter.
//
// The fabric can grow (add_ranks) to support MPI-2 dynamic process
// management: spawned worlds get fresh rows/columns of channels.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "transport/channel.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/topology.hpp"

namespace motor::transport {

class TokenBucket;  // transport/bandwidth_channel.hpp

/// Builds the base channel for a directed link (cross-process transports:
/// a socket or shm ring the launcher pre-wired for the pair). The fabric
/// still composes its latency/bandwidth decorators on top.
using LinkFactory =
    std::function<std::unique_ptr<Channel>(int from, int to)>;

class Fabric {
 public:
  /// Prepares an n_ranks x n_ranks link table; channels are created on
  /// first link() access. Diagonal entries are loopback channels
  /// regardless of `kind` (self-sends must not block on capacity).
  /// `wire_latency_ns` > 0 wraps every non-loopback channel in a
  /// LatencyChannel modelling interconnect propagation delay, scaled by
  /// the topology's hop count for the pair. `wire_bandwidth_bps` > 0
  /// additionally rate-limits every non-loopback channel, composing as
  /// latency(bandwidth(channel)); all egress links of one rank share one
  /// token bucket, so the limit models the rank's NIC — a broadcast root
  /// fanning out to n-1 peers serialises at wire rate rather than
  /// enjoying n-1 private wires.
  Fabric(int n_ranks, ChannelKind kind, std::size_t capacity_bytes,
         std::uint64_t wire_latency_ns = 0,
         std::uint64_t wire_bandwidth_bps = 0,
         TopologySpec topology = TopologySpec{});

  [[nodiscard]] int size() const;

  /// Channel carrying bytes from rank `from` to rank `to`, created on
  /// first use (bumps the epoch).
  Channel& link(int from, int to);

  /// Monotonic counter bumped whenever the set of live channels changes
  /// (creation, fault wrapping, growth). Cached Channel* rows are valid
  /// while the epoch they were snapshot under is current.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Snapshot the inbound row of rank `to`: out[src] = the existing
  /// channel src -> to, or nullptr where none has been created yet.
  /// Returns the epoch the snapshot is valid for.
  std::uint64_t snapshot_inbound(int to, std::vector<Channel*>& out) const;

  /// Snapshot both link rows of `rank` under one lock hold: in[src] is
  /// the channel src -> rank, out[dst] the channel rank -> dst (nullptr
  /// where not yet created). Returns the epoch of the snapshot.
  std::uint64_t snapshot_rank(int rank, std::vector<Channel*>& in,
                              std::vector<Channel*>& out) const;

  /// Count of channels actually created so far (diagnostics/tests).
  [[nodiscard]] std::size_t live_links() const;

  /// The link-graph model the fabric was built over.
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Extend the mesh by `extra` ranks (dynamic process management).
  /// Returns the rank id of the first new rank.
  int add_ranks(int extra);

  /// Wrap the `from` -> `to` link in a fault-injecting decorator (see
  /// transport/faulty_channel.hpp). Call during setup, BEFORE any rank
  /// starts moving bytes over the link — wrapping swaps the channel out
  /// from under a concurrent producer/consumer otherwise. Returns the
  /// decorator (owned by the fabric) so tests can read its fault stats.
  FaultyChannel* inject_faults(int from, int to, const FaultConfig& config);

  [[nodiscard]] ChannelKind kind() const noexcept { return kind_; }

  /// Install a custom base-channel builder for non-loopback links
  /// (cross-process transports). Must be called BEFORE the links it
  /// should affect materialise; already-created links keep their old
  /// channel. The factory may return nullptr to fall back to the
  /// fabric's built-in channel kind for that pair.
  void set_link_factory(LinkFactory factory);

 private:
  Channel& link_locked(int from, int to);
  std::unique_ptr<Channel> make_link(int from, int to) const;

  mutable std::mutex mu_;
  ChannelKind kind_;
  std::size_t capacity_;
  std::uint64_t wire_latency_ns_;
  std::uint64_t wire_bandwidth_bps_;
  LinkFactory link_factory_;
  Topology topo_;
  std::atomic<std::uint64_t> epoch_{1};
  // links_[from][to]; null until first use.
  std::vector<std::vector<std::unique_ptr<Channel>>> links_;
  // Per-rank shared egress budget (the NIC model); null until the rank's
  // first rate-limited link materialises.
  mutable std::vector<std::shared_ptr<TokenBucket>> egress_;
};

}  // namespace motor::transport
