#include "transport/faulty_channel.hpp"

#include <algorithm>

namespace motor::transport {

namespace {

std::size_t total_of(std::span<const ByteSpan> parts) {
  std::size_t n = 0;
  for (ByteSpan p : parts) n += p.size();
  return n;
}

}  // namespace

FaultyChannel::FaultyChannel(std::unique_ptr<Channel> inner,
                             FaultConfig config)
    : inner_(std::move(inner)), config_(config), prng_(config.seed) {}

std::size_t FaultyChannel::try_write(ByteSpan bytes) {
  const ByteSpan parts[] = {bytes};
  return write_frame(parts);
}

std::size_t FaultyChannel::try_write_v(std::span<const ByteSpan> parts) {
  return write_frame(parts);
}

void FaultyChannel::close() {
  flush_delayed(/*force=*/true);
  inner_->close();
}

std::size_t FaultyChannel::flatten_prefix(std::span<const ByteSpan> parts,
                                          std::size_t limit,
                                          std::vector<std::byte>& out) {
  out.clear();
  out.reserve(limit);
  for (ByteSpan p : parts) {
    if (out.size() >= limit) break;
    const std::size_t take = std::min(p.size(), limit - out.size());
    out.insert(out.end(), p.begin(), p.begin() + static_cast<long>(take));
  }
  return out.size();
}

std::size_t FaultyChannel::forward_prefix(std::span<const ByteSpan> parts,
                                          std::size_t limit) {
  // Clip the gather list to `limit` logical bytes, then hand it to the
  // inner channel in ONE operation so the wrapped transport's own gather
  // semantics (single-commit, capacity cut mid-part) stay observable.
  std::vector<ByteSpan> clipped;
  clipped.reserve(parts.size());
  std::size_t left = limit;
  for (ByteSpan p : parts) {
    if (left == 0) break;
    if (p.empty()) continue;
    const std::size_t take = std::min(p.size(), left);
    clipped.push_back(p.first(take));
    left -= take;
  }
  if (clipped.empty()) return 0;
  return inner_->try_write_v(clipped);
}

void FaultyChannel::flush_delayed(bool force) {
  if (delayed_.empty()) return;
  ++delayed_age_;
  if (!force && delayed_age_ <= config_.delay_ops) return;
  const ByteSpan rest{delayed_.data() + delayed_sent_,
                      delayed_.size() - delayed_sent_};
  delayed_sent_ += inner_->try_write(rest);
  if (delayed_sent_ == delayed_.size()) {
    delayed_.clear();
    delayed_sent_ = 0;
    delayed_age_ = 0;
  }
}

std::size_t FaultyChannel::write_frame(std::span<const ByteSpan> parts) {
  // A held frame past its age goes out first, so it lands BEHIND traffic
  // written while it was held — the reordering a delayed route produces.
  flush_delayed(/*force=*/false);

  const std::size_t total = total_of(parts);
  if (total == 0) return 0;
  ++stats_.frames_total;

  // Short write first: only a prefix of the frame is accepted at all, and
  // the accepted prefix then rides the wire-fault pipeline like any frame.
  std::size_t accept = total;
  if (config_.short_write_rate > 0 && total > 1 &&
      prng_.next_bool(config_.short_write_rate)) {
    accept = 1 + static_cast<std::size_t>(prng_.next_below(total - 1));
    ++stats_.short_writes;
  }

  // At most one wire fault per frame, drawn in a fixed order so the fault
  // schedule is reproducible from the seed.
  enum class Wire { kNone, kDrop, kTruncate, kDuplicate, kBitflip, kDelay };
  Wire wire = Wire::kNone;
  if (config_.drop_rate > 0 && prng_.next_bool(config_.drop_rate)) {
    wire = Wire::kDrop;
  } else if (config_.truncate_rate > 0 &&
             prng_.next_bool(config_.truncate_rate)) {
    wire = Wire::kTruncate;
  } else if (config_.duplicate_rate > 0 &&
             prng_.next_bool(config_.duplicate_rate)) {
    wire = Wire::kDuplicate;
  } else if (config_.bitflip_rate > 0 &&
             prng_.next_bool(config_.bitflip_rate)) {
    wire = Wire::kBitflip;
  } else if (config_.delay_rate > 0 && prng_.next_bool(config_.delay_rate)) {
    wire = Wire::kDelay;
  }

  switch (wire) {
    case Wire::kNone:
      return forward_prefix(parts, accept);

    case Wire::kDrop:
      // The writer is told the bytes left; the wire ate them.
      ++stats_.frames_dropped;
      return accept;

    case Wire::kTruncate: {
      // A strict prefix reaches the wire; the writer believes all did.
      const auto keep = static_cast<std::size_t>(prng_.next_below(accept));
      if (keep > 0) forward_prefix(parts, keep);
      ++stats_.frames_truncated;
      return accept;
    }

    case Wire::kDuplicate: {
      const std::size_t n = forward_prefix(parts, accept);
      if (n == accept && inner_->writable() >= accept) {
        // Only a complete back-to-back copy counts as a duplicate; a
        // partial copy would be corruption, which bitflip already covers.
        forward_prefix(parts, accept);
        ++stats_.frames_duplicated;
      }
      return n;
    }

    case Wire::kBitflip: {
      flatten_prefix(parts, accept, scratch_);
      const std::size_t flips =
          1 + static_cast<std::size_t>(prng_.next_below(config_.max_bitflips));
      for (std::size_t i = 0; i < flips; ++i) {
        const auto bit = prng_.next_below(scratch_.size() * 8);
        scratch_[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      }
      ++stats_.frames_bitflipped;
      return inner_->try_write(scratch_);
    }

    case Wire::kDelay:
      if (!delayed_.empty()) {
        // Only one frame is held at a time; a second candidate passes
        // through clean (it overtakes the held one, which is the point).
        return forward_prefix(parts, accept);
      }
      flatten_prefix(parts, accept, delayed_);
      delayed_sent_ = 0;
      delayed_age_ = 0;
      ++stats_.frames_delayed;
      return accept;
  }
  return 0;
}

}  // namespace motor::transport
