// FaultyChannel: a deterministic fault-injecting decorator.
//
// Wraps any Channel and perturbs the producer side the way a real lossy
// interconnect (or a buggy driver) would: whole frames silently dropped,
// truncated mid-frame, duplicated, bit-flipped, delayed past later
// traffic, or committed only partially (short writes — including
// mid-gather partial commits of try_write_v). Every decision comes from a
// seeded PRNG (common/prng), so a fault schedule is a pure function of
// the seed and the call sequence: stress tests replay scenarios and
// assert identical outcomes and counters run over run.
//
// A "frame" here is one producer call (try_write or try_write_v) — the
// granularity at which the device commits packets, so faults land on
// protocol-meaningful boundaries. Partial-resume calls (the device
// re-offering the unaccepted tail of an earlier frame) are treated as
// fresh frames, which is exactly the chaos a real wire provides.
//
// Fault semantics (drop/truncate report FULL acceptance — the writer must
// believe the bytes are gone, like a UDP sendto or a failing DMA):
//   drop        frame vanishes entirely
//   truncate    a strict prefix reaches the wire, the rest vanishes
//   duplicate   frame arrives twice back-to-back
//   bitflip     1..max_bitflips random bits corrupted in transit
//   delay       frame held back and released after `delay_ops` later
//               writes (reordering past subsequent traffic)
//   short write only a prefix is ACCEPTED (honestly reported) — exercises
//               the caller's partial-commit resume path
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/prng.hpp"
#include "transport/channel.hpp"

namespace motor::transport {

struct FaultConfig {
  std::uint64_t seed = 1;
  // Per-frame probabilities. Wire faults (drop/truncate/duplicate/
  // bitflip/delay) are mutually exclusive per frame, drawn in that order;
  // a short write composes with any of them.
  double drop_rate = 0.0;
  double truncate_rate = 0.0;
  double duplicate_rate = 0.0;
  double bitflip_rate = 0.0;
  double delay_rate = 0.0;
  double short_write_rate = 0.0;
  /// A delayed frame is released after this many subsequent write calls.
  std::size_t delay_ops = 3;
  /// Upper bound on corrupted bits per bit-flipped frame.
  std::size_t max_bitflips = 4;
};

struct FaultStats {
  std::uint64_t frames_total = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_truncated = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_bitflipped = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t short_writes = 0;

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return frames_dropped + frames_truncated + frames_duplicated +
           frames_bitflipped + frames_delayed + short_writes;
  }
};

class FaultyChannel final : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner, FaultConfig config);

  std::size_t try_write(ByteSpan bytes) override;
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override {
    return inner_->try_read(out);
  }
  std::size_t recv_into(MutableByteSpan out) override {
    return inner_->recv_into(out);
  }
  [[nodiscard]] std::size_t readable() const override {
    return inner_->readable();
  }
  [[nodiscard]] std::size_t writable() const override {
    return inner_->writable();
  }
  void close() override;
  [[nodiscard]] bool at_eof() const override { return inner_->at_eof(); }
  [[nodiscard]] bool broken() const override { return inner_->broken(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+faulty";
  }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  /// The whole fault pipeline for one frame; returns bytes "accepted".
  std::size_t write_frame(std::span<const ByteSpan> parts);

  /// Forward up to `limit` logical bytes of `parts` to the inner channel
  /// in one gathered operation; returns bytes the inner channel took.
  std::size_t forward_prefix(std::span<const ByteSpan> parts,
                             std::size_t limit);

  /// Flatten up to `limit` bytes of `parts` into `out`.
  static std::size_t flatten_prefix(std::span<const ByteSpan> parts,
                                    std::size_t limit,
                                    std::vector<std::byte>& out);

  /// Release a held (delayed) frame once it has aged out. `force` flushes
  /// regardless of age (close()).
  void flush_delayed(bool force);

  std::unique_ptr<Channel> inner_;
  FaultConfig config_;
  Prng prng_;
  FaultStats stats_;
  std::vector<std::byte> scratch_;   // bitflip / clip staging
  std::vector<std::byte> delayed_;   // the held frame (at most one)
  std::size_t delayed_sent_ = 0;     // prefix of delayed_ already flushed
  std::size_t delayed_age_ = 0;      // write calls since it was held
};

}  // namespace motor::transport
