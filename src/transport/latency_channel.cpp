#include "transport/latency_channel.hpp"

#include <algorithm>

#include "pal/clock.hpp"

namespace motor::transport {

std::size_t LatencyChannel::try_write(ByteSpan bytes) {
  const std::size_t n = inner_->try_write(bytes);
  if (n > 0 && latency_ns_ > 0) {
    std::lock_guard lk(mu_);
    written_ += n;
    stamps_.emplace_back(written_, pal::monotonic_ns() + latency_ns_);
  }
  return n;
}

std::size_t LatencyChannel::try_write_v(std::span<const ByteSpan> parts) {
  const std::size_t n = inner_->try_write_v(parts);
  if (n > 0 && latency_ns_ > 0) {
    std::lock_guard lk(mu_);
    written_ += n;
    stamps_.emplace_back(written_, pal::monotonic_ns() + latency_ns_);
  }
  return n;
}

std::size_t LatencyChannel::released_locked() const {
  const std::uint64_t now = pal::monotonic_ns();
  while (!stamps_.empty() && stamps_.front().second <= now) {
    released_ = stamps_.front().first;
    stamps_.pop_front();
  }
  return static_cast<std::size_t>(released_ - read_);
}

std::size_t LatencyChannel::try_read(MutableByteSpan out) {
  if (latency_ns_ == 0) return inner_->try_read(out);
  std::lock_guard lk(mu_);
  const std::size_t limit = std::min(out.size(), released_locked());
  if (limit == 0) return 0;
  const std::size_t n = inner_->try_read(out.first(limit));
  read_ += n;
  return n;
}

std::size_t LatencyChannel::readable() const {
  if (latency_ns_ == 0) return inner_->readable();
  std::lock_guard lk(mu_);
  return std::min(inner_->readable(), released_locked());
}

}  // namespace motor::transport
