// LatencyChannel: a decorator that models interconnect propagation delay.
//
// Bytes written become readable only after `latency_ns` — the wire time a
// localhost-TCP hop had on the paper's 2005 testbed. Without this, an
// in-process transport completes round trips in ~2 us and managed-call
// overheads dominate the ping-pong far more than in Figure 9; with a
// calibrated one-way latency the cost *proportions* match the paper
// (calibration in EXPERIMENTS.md). Latency zero is a passthrough.
#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "transport/channel.hpp"

namespace motor::transport {

class LatencyChannel final : public Channel {
 public:
  LatencyChannel(std::unique_ptr<Channel> inner, std::uint64_t latency_ns)
      : inner_(std::move(inner)), latency_ns_(latency_ns) {}

  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: one release timestamp for the whole gather.
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override {
    return inner_->writable();
  }
  void close() override { inner_->close(); }
  [[nodiscard]] bool at_eof() const override {
    return inner_->at_eof();
  }
  [[nodiscard]] bool broken() const override { return inner_->broken(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+latency";
  }

 private:
  /// Bytes whose release time has passed and are thus visible.
  std::size_t released_locked() const;

  std::unique_ptr<Channel> inner_;
  std::uint64_t latency_ns_;

  mutable std::mutex mu_;
  // (cumulative byte count, release timestamp) per write, FIFO.
  mutable std::deque<std::pair<std::uint64_t, std::uint64_t>> stamps_;
  std::uint64_t written_ = 0;
  mutable std::uint64_t released_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace motor::transport
