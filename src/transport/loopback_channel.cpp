#include "transport/loopback_channel.hpp"

#include <algorithm>
#include <limits>

namespace motor::transport {

std::size_t LoopbackChannel::try_write(ByteSpan bytes) {
  std::lock_guard lk(mu_);
  if (closed_) return 0;
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  return bytes.size();
}

std::size_t LoopbackChannel::try_write_v(std::span<const ByteSpan> parts) {
  std::lock_guard lk(mu_);
  if (closed_) return 0;
  std::size_t written = 0;
  for (ByteSpan p : parts) {
    data_.insert(data_.end(), p.begin(), p.end());
    written += p.size();
  }
  return written;
}

std::size_t LoopbackChannel::try_read(MutableByteSpan out) {
  std::lock_guard lk(mu_);
  const std::size_t n = std::min(out.size(), data_.size());
  std::copy_n(data_.begin(), n, out.begin());
  data_.erase(data_.begin(), data_.begin() + n);
  return n;
}

std::size_t LoopbackChannel::readable() const {
  std::lock_guard lk(mu_);
  return data_.size();
}

std::size_t LoopbackChannel::writable() const {
  std::lock_guard lk(mu_);
  return closed_ ? 0 : std::numeric_limits<std::size_t>::max();
}

void LoopbackChannel::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
}

bool LoopbackChannel::at_eof() const {
  std::lock_guard lk(mu_);
  return closed_ && data_.empty();
}

}  // namespace motor::transport
