// Unbounded self-channel for rank->self sends. A rank sending to itself
// must never deadlock on channel capacity, so loopback grows on demand.
#pragma once

#include <deque>
#include <mutex>

#include "transport/channel.hpp"

namespace motor::transport {

class LoopbackChannel final : public Channel {
 public:
  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: unbounded, so every part lands under ONE lock.
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override;
  void close() override;
  [[nodiscard]] bool at_eof() const override;
  [[nodiscard]] std::string name() const override { return "loopback"; }

 private:
  mutable std::mutex mu_;
  std::deque<std::byte> data_;
  bool closed_ = false;
};

}  // namespace motor::transport
