#include "transport/ring_channel.hpp"

#include <bit>
#include <cstring>

namespace motor::transport {

RingChannel::RingChannel(std::size_t capacity_bytes) {
  capacity_ = std::bit_ceil(capacity_bytes < 64 ? std::size_t{64}
                                                : capacity_bytes);
  mask_ = capacity_ - 1;
  data_.resize(capacity_);
}

void RingChannel::place(std::size_t pos, ByteSpan bytes) {
  const std::size_t start = pos & mask_;
  const std::size_t first = std::min(bytes.size(), capacity_ - start);
  std::memcpy(data_.data() + start, bytes.data(), first);
  if (bytes.size() > first) {
    std::memcpy(data_.data(), bytes.data() + first, bytes.size() - first);
  }
}

std::size_t RingChannel::try_write(ByteSpan bytes) {
  if (closed_.load(std::memory_order_relaxed)) return 0;
  const std::size_t head = head_.load(std::memory_order_acquire);
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t free_space = capacity_ - (tail - head);
  const std::size_t n = bytes.size() < free_space ? bytes.size() : free_space;
  if (n == 0) return 0;

  place(tail, bytes.first(n));
  tail_.store(tail + n, std::memory_order_release);
  return n;
}

std::size_t RingChannel::try_write_v(std::span<const ByteSpan> parts) {
  if (closed_.load(std::memory_order_relaxed)) return 0;
  const std::size_t head = head_.load(std::memory_order_acquire);
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t free_space = capacity_ - (tail - head);
  if (free_space == 0) return 0;

  std::size_t written = 0;
  for (ByteSpan p : parts) {
    const std::size_t n = std::min(p.size(), free_space - written);
    if (n > 0) place(tail + written, p.first(n));
    written += n;
    if (n < p.size()) break;  // out of space mid-gather
  }
  if (written > 0) tail_.store(tail + written, std::memory_order_release);
  return written;
}

std::size_t RingChannel::try_read(MutableByteSpan out) {
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t avail = tail - head;
  const std::size_t n = out.size() < avail ? out.size() : avail;
  if (n == 0) return 0;

  const std::size_t start = head & mask_;
  const std::size_t first = std::min(n, capacity_ - start);
  std::memcpy(out.data(), data_.data() + start, first);
  if (n > first) {
    std::memcpy(out.data() + first, data_.data(), n - first);
  }
  head_.store(head + n, std::memory_order_release);
  return n;
}

std::size_t RingChannel::readable() const {
  return tail_.load(std::memory_order_acquire) -
         head_.load(std::memory_order_acquire);
}

std::size_t RingChannel::writable() const {
  if (closed_.load(std::memory_order_relaxed)) return 0;
  return capacity_ - readable();
}

void RingChannel::close() { closed_.store(true, std::memory_order_release); }

bool RingChannel::at_eof() const {
  return closed_.load(std::memory_order_acquire) && readable() == 0;
}

}  // namespace motor::transport
