// Lock-free single-producer single-consumer byte ring. This is the
// shared-memory-style channel: fixed capacity, cache-line-separated
// indices, real memcpy of every payload byte.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "transport/channel.hpp"

namespace motor::transport {

class RingChannel final : public Channel {
 public:
  /// Capacity is rounded up to a power of two (min 64 bytes).
  explicit RingChannel(std::size_t capacity_bytes);

  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: all parts copied under ONE head/tail exchange — the
  /// consumer observes the whole gather (up to capacity) atomically.
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override;
  void close() override;
  [[nodiscard]] bool at_eof() const override;
  [[nodiscard]] std::string name() const override { return "ring"; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Copy `bytes` into the ring at producer position `pos` (handles wrap).
  void place(std::size_t pos, ByteSpan bytes);

  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::vector<std::byte> data_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer position
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer position
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace motor::transport
