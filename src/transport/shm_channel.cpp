#include "transport/shm_channel.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include <errno.h>
#include <semaphore.h>
#include <time.h>

#include "common/status.hpp"
#include "pal/clock.hpp"
#include "pal/process.hpp"
#include "pal/thread.hpp"

namespace motor::transport {

namespace {
constexpr std::uint64_t kMagic = 0x4d4f544f525348ull;  // "MOTORSH"
// Peer-death probes are syscalls; one per interval is plenty — the
// crash-test watchdogs run in seconds, detection in tens of millis.
constexpr std::uint64_t kProbeIntervalNs = 10ull * 1000 * 1000;
}  // namespace

/// Lives at offset 0 of the segment; the ring data follows. Only
/// address-free members (std::atomic over plain integers, pshared
/// semaphores) — the segment maps at different addresses per process.
struct ShmRingHeader {
  std::atomic<std::uint64_t> magic;
  std::uint64_t capacity;  // power of two; written before magic
  alignas(64) std::atomic<std::uint64_t> head;  // consumer position
  alignas(64) std::atomic<std::uint64_t> tail;  // producer position
  alignas(64) std::atomic<std::uint32_t> closed;
  std::atomic<std::int64_t> producer_pid;
  std::atomic<std::int64_t> consumer_pid;
  sem_t data_doorbell;   // posted by the producer after publishing bytes
  sem_t space_doorbell;  // posted by the consumer after freeing space
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm ring indices must be address-free atomics");

namespace {

/// sem_timedwait for a bounded slice of wall time. Returns true when the
/// semaphore was taken. Waits are sliced so a missed doorbell (posts are
/// best-effort) only costs one slice, never the whole deadline.
bool sem_wait_slice(sem_t* sem, std::uint64_t slice_ns) {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  ts.tv_sec += static_cast<time_t>(slice_ns / 1'000'000'000ull);
  ts.tv_nsec += static_cast<long>(slice_ns % 1'000'000'000ull);
  if (ts.tv_nsec >= 1'000'000'000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1'000'000'000L;
  }
  int rc;
  do {
    rc = ::sem_timedwait(sem, &ts);
  } while (rc != 0 && errno == EINTR);
  return rc == 0;
}

}  // namespace

ShmChannel::ShmChannel(pal::SharedMemory segment, Role role)
    : segment_(std::move(segment)), role_(role) {
  ShmRingHeader* h = hdr();
  capacity_ = static_cast<std::size_t>(h->capacity);
  mask_ = capacity_ - 1;
  const std::int64_t me = pal::current_pid();
  if (role_ == Role::kProducer || role_ == Role::kBoth) {
    h->producer_pid.store(me, std::memory_order_release);
  }
  if (role_ == Role::kConsumer || role_ == Role::kBoth) {
    h->consumer_pid.store(me, std::memory_order_release);
  }
}

ShmChannel::~ShmChannel() = default;

ShmRingHeader* ShmChannel::hdr() const noexcept {
  return static_cast<ShmRingHeader*>(segment_.base());
}

std::byte* ShmChannel::ring() const noexcept {
  return static_cast<std::byte*>(segment_.base()) + sizeof(ShmRingHeader);
}

std::unique_ptr<ShmChannel> ShmChannel::create(const std::string& name,
                                               std::size_t capacity_bytes,
                                               Role role) {
  const std::size_t cap = std::bit_ceil(
      capacity_bytes < 64 ? std::size_t{64} : capacity_bytes);
  pal::SharedMemory seg =
      pal::SharedMemory::create(name, sizeof(ShmRingHeader) + cap);
  auto* h = new (seg.base()) ShmRingHeader();
  h->capacity = cap;
  h->head.store(0, std::memory_order_relaxed);
  h->tail.store(0, std::memory_order_relaxed);
  h->closed.store(0, std::memory_order_relaxed);
  h->producer_pid.store(0, std::memory_order_relaxed);
  h->consumer_pid.store(0, std::memory_order_relaxed);
  MOTOR_CHECK(::sem_init(&h->data_doorbell, /*pshared=*/1, 0) == 0 &&
                  ::sem_init(&h->space_doorbell, /*pshared=*/1, 0) == 0,
              "ShmChannel: sem_init failed");
  // Publish last: an opener that sees the magic sees a complete ring.
  h->magic.store(kMagic, std::memory_order_release);
  return std::unique_ptr<ShmChannel>(new ShmChannel(std::move(seg), role));
}

std::unique_ptr<ShmChannel> ShmChannel::open(const std::string& name,
                                             Role role,
                                             std::uint64_t timeout_ns) {
  const std::uint64_t deadline = pal::monotonic_ns() + timeout_ns;
  pal::SharedMemory seg = pal::SharedMemory::open(
      name, sizeof(ShmRingHeader), timeout_ns);
  if (!seg.valid()) return nullptr;
  // Wait for the creator's publish (magic) — the segment can exist sized
  // but not yet initialised.
  auto* h = static_cast<ShmRingHeader*>(seg.base());
  while (h->magic.load(std::memory_order_acquire) != kMagic) {
    if (pal::monotonic_ns() >= deadline) return nullptr;
    pal::Thread::sleep_for(std::chrono::microseconds(200));
  }
  // The header-sized mapping proved rendezvous; remap at full ring size.
  const std::size_t full = sizeof(ShmRingHeader) +
                           static_cast<std::size_t>(h->capacity);
  seg = pal::SharedMemory::open(name, full, timeout_ns);
  if (!seg.valid()) return nullptr;
  return std::unique_ptr<ShmChannel>(new ShmChannel(std::move(seg), role));
}

void ShmChannel::place(std::size_t pos, ByteSpan bytes) {
  const std::size_t start = pos & mask_;
  const std::size_t first = std::min(bytes.size(), capacity_ - start);
  std::memcpy(ring() + start, bytes.data(), first);
  if (bytes.size() > first) {
    std::memcpy(ring(), bytes.data() + first, bytes.size() - first);
  }
}

std::size_t ShmChannel::try_write(ByteSpan bytes) {
  ShmRingHeader* h = hdr();
  if (h->closed.load(std::memory_order_relaxed) != 0) return 0;
  const std::uint64_t head = h->head.load(std::memory_order_acquire);
  const std::uint64_t tail = h->tail.load(std::memory_order_relaxed);
  const std::size_t free_space = capacity_ - static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(bytes.size(), free_space);
  if (n == 0) return 0;
  place(static_cast<std::size_t>(tail), bytes.first(n));
  h->tail.store(tail + n, std::memory_order_release);
  ::sem_post(&h->data_doorbell);  // best-effort; overflow is harmless
  return n;
}

std::size_t ShmChannel::try_write_v(std::span<const ByteSpan> parts) {
  ShmRingHeader* h = hdr();
  if (h->closed.load(std::memory_order_relaxed) != 0) return 0;
  const std::uint64_t head = h->head.load(std::memory_order_acquire);
  const std::uint64_t tail = h->tail.load(std::memory_order_relaxed);
  const std::size_t free_space = capacity_ - static_cast<std::size_t>(tail - head);
  if (free_space == 0) return 0;

  std::size_t written = 0;
  for (ByteSpan p : parts) {
    const std::size_t n = std::min(p.size(), free_space - written);
    if (n > 0) place(static_cast<std::size_t>(tail) + written, p.first(n));
    written += n;
    if (n < p.size()) break;  // out of space mid-gather
  }
  if (written > 0) {
    h->tail.store(tail + written, std::memory_order_release);
    ::sem_post(&h->data_doorbell);
  }
  return written;
}

std::size_t ShmChannel::try_read(MutableByteSpan out) {
  ShmRingHeader* h = hdr();
  const std::uint64_t tail = h->tail.load(std::memory_order_acquire);
  const std::uint64_t head = h->head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(out.size(), avail);
  if (n == 0) return 0;

  const std::size_t start = static_cast<std::size_t>(head) & mask_;
  const std::size_t first = std::min(n, capacity_ - start);
  std::memcpy(out.data(), ring() + start, first);
  if (n > first) {
    std::memcpy(out.data() + first, ring(), n - first);
  }
  h->head.store(head + n, std::memory_order_release);
  ::sem_post(&h->space_doorbell);
  return n;
}

std::size_t ShmChannel::readable() const {
  const ShmRingHeader* h = hdr();
  return static_cast<std::size_t>(h->tail.load(std::memory_order_acquire) -
                                  h->head.load(std::memory_order_acquire));
}

std::size_t ShmChannel::writable() const {
  const ShmRingHeader* h = hdr();
  if (h->closed.load(std::memory_order_relaxed) != 0) return 0;
  return capacity_ - readable();
}

void ShmChannel::close() {
  ShmRingHeader* h = hdr();
  h->closed.store(1, std::memory_order_release);
  ::sem_post(&h->data_doorbell);  // wake a consumer parked on the doorbell
}

bool ShmChannel::at_eof() const {
  const ShmRingHeader* h = hdr();
  return h->closed.load(std::memory_order_acquire) != 0 && readable() == 0;
}

std::int64_t ShmChannel::peer_pid() const {
  const ShmRingHeader* h = hdr();
  switch (role_) {
    case Role::kProducer:
      return h->consumer_pid.load(std::memory_order_acquire);
    case Role::kConsumer:
      return h->producer_pid.load(std::memory_order_acquire);
    case Role::kBoth:
      return 0;
  }
  return 0;
}

bool ShmChannel::broken() const {
  if (role_ == Role::kBoth) return false;  // both ends are this process
  if (!peer_dead_) {
    const std::uint64_t now = pal::monotonic_ns();
    if (now - last_probe_ns_ < kProbeIntervalNs) return false;
    last_probe_ns_ = now;
    const std::int64_t pid = peer_pid();
    // pid 0 = the peer has not attached yet (still in rendezvous).
    if (pid == 0 || pal::process_alive(pid)) return false;
    peer_dead_ = true;
  }
  // Drain-first: bytes a producer published before dying still deliver.
  return role_ == Role::kProducer || readable() == 0;
}

bool ShmChannel::wait_readable(std::uint64_t timeout_ns) {
  ShmRingHeader* h = hdr();
  const std::uint64_t deadline = pal::monotonic_ns() + timeout_ns;
  while (readable() == 0) {
    if (h->closed.load(std::memory_order_acquire) != 0) return false;
    const std::uint64_t now = pal::monotonic_ns();
    if (now >= deadline) return false;
    const std::uint64_t slice =
        std::min<std::uint64_t>(deadline - now, 10'000'000ull);
    sem_wait_slice(&h->data_doorbell, slice);
  }
  return true;
}

bool ShmChannel::wait_writable(std::uint64_t timeout_ns) {
  ShmRingHeader* h = hdr();
  const std::uint64_t deadline = pal::monotonic_ns() + timeout_ns;
  while (writable() == 0) {
    if (h->closed.load(std::memory_order_acquire) != 0) return false;
    const std::uint64_t now = pal::monotonic_ns();
    if (now >= deadline) return false;
    const std::uint64_t slice =
        std::min<std::uint64_t>(deadline - now, 10'000'000ull);
    sem_wait_slice(&h->space_doorbell, slice);
  }
  return true;
}

}  // namespace motor::transport
