// ShmChannel: the RingChannel's lock-free SPSC byte ring laid out in a
// POSIX shared-memory segment, so producer and consumer can live in
// DIFFERENT processes. Same index discipline as RingChannel
// (cache-line-separated head/tail, power-of-two capacity, one release
// store publishes a whole gather); the segment adds process-shared
// semaphore doorbells (the completion-queue idiom from src/pal: post on
// publish, wait when idle) so a blocking consumer does not have to spin,
// and producer/consumer pid slots so peer death is detectable.
//
// Rendezvous is just the agreed segment NAME: the producer side creates
// and sizes the segment (publishing a magic word last), the consumer
// open()s with retry until the magic appears. The launcher derives names
// from a per-launch prefix — segment "<prefix>.<i>.<j>" carries bytes
// from rank i to rank j and is created by rank i.
//
// Failure semantics: broken() probes the registered peer pid (rate-
// limited signal-0 check) once the ring is drained, so a crashed peer
// surfaces after its last published bytes are consumed — the same
// drain-first rule the socket channel gets from kernel EOF ordering.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pal/shared_memory.hpp"
#include "transport/channel.hpp"

namespace motor::transport {

struct ShmRingHeader;  // defined in shm_channel.cpp

class ShmChannel final : public Channel {
 public:
  /// Which end(s) of the ring this process drives. kBoth is the
  /// in-process loopback used by conformance tests.
  enum class Role { kProducer, kConsumer, kBoth };

  /// Create the segment (producer side, or kBoth). Capacity is rounded up
  /// to a power of two (min 64 bytes).
  static std::unique_ptr<ShmChannel> create(const std::string& name,
                                            std::size_t capacity_bytes,
                                            Role role);

  /// Attach to a segment the peer created, retrying up to `timeout_ns`
  /// for it to appear. Returns nullptr on timeout.
  static std::unique_ptr<ShmChannel> open(const std::string& name, Role role,
                                          std::uint64_t timeout_ns);

  ~ShmChannel() override;

  std::size_t try_write(ByteSpan bytes) override;
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override;
  void close() override;
  [[nodiscard]] bool at_eof() const override;
  [[nodiscard]] bool broken() const override;
  [[nodiscard]] std::string name() const override { return "shm"; }

  /// Block (doorbell wait) until bytes are readable, the producer closed,
  /// or `timeout_ns` passes. Returns readable() > 0.
  bool wait_readable(std::uint64_t timeout_ns);
  /// Block until ring space frees up or `timeout_ns` passes.
  bool wait_writable(std::uint64_t timeout_ns);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  ShmChannel(pal::SharedMemory segment, Role role);

  [[nodiscard]] ShmRingHeader* hdr() const noexcept;
  [[nodiscard]] std::byte* ring() const noexcept;
  void place(std::size_t pos, ByteSpan bytes);
  [[nodiscard]] std::int64_t peer_pid() const;

  pal::SharedMemory segment_;
  Role role_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  // Peer-death probe cache: at most one kill(pid, 0) per probe interval.
  mutable std::uint64_t last_probe_ns_ = 0;
  mutable bool peer_dead_ = false;
};

}  // namespace motor::transport
