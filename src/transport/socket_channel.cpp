#include "transport/socket_channel.hpp"

#include <algorithm>

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/status.hpp"

namespace motor::transport {

namespace {

constexpr int kSendFlags = MSG_DONTWAIT | MSG_NOSIGNAL;
// writable() fallback when the kernel can't report its queue depth: large
// enough that the device never throttles on the estimate (it trusts
// try_write return values for the real back-pressure).
constexpr std::size_t kWritableHint = 256 * 1024;
constexpr std::size_t kMaxIov = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MOTOR_CHECK(flags >= 0, "SocketChannel: fcntl(F_GETFL) failed");
  MOTOR_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "SocketChannel: fcntl(F_SETFL) failed");
}

}  // namespace

SocketChannel::SocketChannel(int write_fd, int read_fd)
    : wfd_(write_fd), rfd_(read_fd) {
  MOTOR_CHECK(wfd_ >= 0 || rfd_ >= 0, "SocketChannel: no fd");
  if (wfd_ >= 0) {
    set_nonblocking(wfd_);
    int sndbuf = 0;
    socklen_t len = sizeof(sndbuf);
    if (::getsockopt(wfd_, SOL_SOCKET, SO_SNDBUF, &sndbuf, &len) == 0 &&
        sndbuf > 0) {
      sndbuf_ = static_cast<std::size_t>(sndbuf);
    }
  }
  if (rfd_ >= 0 && rfd_ != wfd_) set_nonblocking(rfd_);
}

SocketChannel::~SocketChannel() {
  if (wfd_ >= 0) ::close(wfd_);
  if (rfd_ >= 0 && rfd_ != wfd_) ::close(rfd_);
}

std::unique_ptr<SocketChannel> SocketChannel::make_loopback_pair(
    std::size_t sndbuf_bytes) {
  int sv[2];
  MOTOR_CHECK(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) == 0,
              "SocketChannel: socketpair failed");
  if (sndbuf_bytes > 0) {
    const int v = static_cast<int>(sndbuf_bytes);
    ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
  }
  return std::make_unique<SocketChannel>(sv[0], sv[1]);
}

void SocketChannel::note_send_error(int err) {
  if (err == EPIPE || err == ECONNRESET || err == EBADF || err == ENOTCONN ||
      err == ESHUTDOWN) {
    tx_broken_ = true;
  }
}

std::size_t SocketChannel::try_write(ByteSpan bytes) {
  if (wfd_ < 0 || closed_ || tx_broken_ || bytes.empty()) return 0;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(wfd_, bytes.data() + written,
                             bytes.size() - written, kSendFlags);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) note_send_error(errno);
    break;
  }
  return written;
}

std::size_t SocketChannel::try_write_v(std::span<const ByteSpan> parts) {
  if (wfd_ < 0 || closed_ || tx_broken_) return 0;
  std::size_t written = 0;
  std::size_t part = 0;        // first part not fully sent
  std::size_t part_off = 0;    // bytes of parts[part] already sent
  while (part < parts.size()) {
    iovec iov[kMaxIov];
    std::size_t n_iov = 0;
    std::size_t batch_bytes = 0;
    for (std::size_t p = part; p < parts.size() && n_iov < kMaxIov; ++p) {
      const std::size_t off = (p == part) ? part_off : 0;
      const ByteSpan s = parts[p];
      if (s.size() <= off) continue;  // empty (or fully-sent head) part
      iov[n_iov].iov_base =
          const_cast<std::byte*>(s.data() + off);
      iov[n_iov].iov_len = s.size() - off;
      batch_bytes += iov[n_iov].iov_len;
      ++n_iov;
    }
    if (n_iov == 0) break;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    ssize_t n;
    do {
      n = ::sendmsg(wfd_, &msg, kSendFlags);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) note_send_error(errno);
      break;
    }
    written += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < batch_bytes) break;  // kernel is full
    // Whole batch accepted: advance past it and gather the next one.
    std::size_t left = static_cast<std::size_t>(n) + part_off;
    while (part < parts.size() && left >= parts[part].size()) {
      left -= parts[part].size();
      ++part;
    }
    part_off = left;
  }
  return written;
}

std::size_t SocketChannel::try_read(MutableByteSpan out) {
  if (rfd_ < 0 || out.empty()) return 0;
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::recv(rfd_, out.data() + got, out.size() - got, MSG_DONTWAIT);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {  // orderly shutdown from the peer, buffer fully drained
      rx_eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    rx_eof_ = true;  // ECONNRESET and friends: the stream is over
    break;
  }
  return got;
}

std::size_t SocketChannel::readable() const {
  if (rfd_ < 0) return 0;
  int avail = 0;
  if (::ioctl(rfd_, FIONREAD, &avail) != 0 || avail < 0) return 0;
  return static_cast<std::size_t>(avail);
}

std::size_t SocketChannel::writable() const {
  if (wfd_ < 0 || closed_ || tx_broken_) return 0;
  int queued = 0;
  if (sndbuf_ > 0 && ::ioctl(wfd_, TIOCOUTQ, &queued) == 0 && queued >= 0) {
    const auto q = static_cast<std::size_t>(queued);
    return q < sndbuf_ ? sndbuf_ - q : 0;
  }
  return kWritableHint;
}

void SocketChannel::close() {
  if (closed_) return;
  closed_ = true;
  if (wfd_ >= 0) ::shutdown(wfd_, SHUT_WR);
}

bool SocketChannel::at_eof() const {
  if (rfd_ < 0) return closed_;
  if (rx_eof_) return true;
  if (readable() > 0) return false;
  // No buffered data and no EOF seen yet: probe whether the peer already
  // shut its write half down (a reader that never calls try_read again
  // must still be able to observe end-of-stream).
  pollfd p{rfd_, POLLIN | POLLRDHUP, 0};
  if (::poll(&p, 1, 0) > 0 &&
      (p.revents & (POLLRDHUP | POLLHUP | POLLERR)) != 0 && readable() == 0) {
    rx_eof_ = true;
    return true;
  }
  return false;
}

bool SocketChannel::broken() const {
  // An EOF we did not cause with a local close() means the peer is gone:
  // on a rank link the remote end lives for the peer process's lifetime,
  // so remote shutdown == peer death. rx_eof_ only latches once the
  // kernel buffer is drained, so pre-death bytes still deliver first.
  return tx_broken_ || (rx_eof_ && !closed_);
}

}  // namespace motor::transport
