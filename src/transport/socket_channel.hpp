// SocketChannel: the Channel interface over a real OS socket — the first
// transport where the process does not own the wire. Bytes cross a kernel
// buffer (AF_UNIX or TCP), so partial reads/writes, EINTR, EAGAIN and
// peer death are genuine states here, not simulations.
//
// A channel is DIRECTED (the Channel contract), but a socket is
// full-duplex: the launcher establishes ONE connection per unordered rank
// pair and builds two SocketChannels over it, each owning a dup()'d fd —
// the outbound channel uses only the write half, the inbound channel only
// the read half. close() is shutdown(SHUT_WR), which travels to the peer
// as EOF after all buffered bytes, exactly the producer-side
// end-of-stream the interface asks for.
//
// writable() is an ESTIMATE (SO_SNDBUF minus the kernel's unsent queue
// where the ioctl supports it): the kernel does not expose exact
// accept-without-blocking capacity. The device only trusts try_write*
// RETURN VALUES, never writable(), so the estimate is advisory — the
// conformance harness marks socket channels `exact_backpressure = false`.
//
// Failure semantics: a send hitting EPIPE/ECONNRESET, or a recv hitting
// EOF/reset that the local side did not cause with close(), marks the
// channel broken(). Broken is only reported once nothing readable
// remains, so bytes the peer pushed before dying still deliver.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "transport/channel.hpp"

namespace motor::transport {

class SocketChannel final : public Channel {
 public:
  /// Wrap existing fds (either may be -1 for a role-limited half). Takes
  /// ownership; both are switched to non-blocking mode.
  SocketChannel(int write_fd, int read_fd);
  ~SocketChannel() override;

  /// In-process loopback over a connected AF_UNIX socketpair: writes
  /// enter one end, reads drain the other. Used by the conformance suite
  /// and the single-threaded fault determinism suite. `sndbuf_bytes` > 0
  /// shrinks SO_SNDBUF so back-pressure (EAGAIN) is reachable with small
  /// test payloads.
  static std::unique_ptr<SocketChannel> make_loopback_pair(
      std::size_t sndbuf_bytes = 0);

  std::size_t try_write(ByteSpan bytes) override;
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override;
  void close() override;
  [[nodiscard]] bool at_eof() const override;
  [[nodiscard]] bool broken() const override;
  [[nodiscard]] std::string name() const override { return "socket"; }

 private:
  void note_send_error(int err);

  int wfd_ = -1;
  int rfd_ = -1;
  bool closed_ = false;            // local close() called
  bool tx_broken_ = false;         // EPIPE/ECONNRESET on the write half
  mutable bool rx_eof_ = false;    // read half saw EOF or reset
  std::size_t sndbuf_ = 0;         // cached SO_SNDBUF for writable()
};

}  // namespace motor::transport
