#include "transport/stream_channel.hpp"

#include <algorithm>

namespace motor::transport {

std::size_t StreamChannel::try_write(ByteSpan bytes) {
  std::lock_guard lk(mu_);
  if (closed_) return 0;
  const std::size_t room = capacity_ > data_.size() ? capacity_ - data_.size()
                                                    : 0;
  const std::size_t n = std::min(bytes.size(), room);
  data_.insert(data_.end(), bytes.begin(), bytes.begin() + n);
  return n;
}

std::size_t StreamChannel::try_write_v(std::span<const ByteSpan> parts) {
  std::lock_guard lk(mu_);
  if (closed_) return 0;
  std::size_t room = capacity_ > data_.size() ? capacity_ - data_.size() : 0;
  std::size_t written = 0;
  for (ByteSpan p : parts) {
    const std::size_t n = std::min(p.size(), room);
    data_.insert(data_.end(), p.begin(), p.begin() + n);
    room -= n;
    written += n;
    if (n < p.size()) break;  // out of space mid-gather
  }
  return written;
}

std::size_t StreamChannel::try_read(MutableByteSpan out) {
  std::lock_guard lk(mu_);
  const std::size_t n = std::min(out.size(), data_.size());
  std::copy_n(data_.begin(), n, out.begin());
  data_.erase(data_.begin(), data_.begin() + n);
  return n;
}

std::size_t StreamChannel::readable() const {
  std::lock_guard lk(mu_);
  return data_.size();
}

std::size_t StreamChannel::writable() const {
  std::lock_guard lk(mu_);
  if (closed_) return 0;
  return capacity_ > data_.size() ? capacity_ - data_.size() : 0;
}

void StreamChannel::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
}

bool StreamChannel::at_eof() const {
  std::lock_guard lk(mu_);
  return closed_ && data_.empty();
}

}  // namespace motor::transport
