// Mutex-guarded byte stream with a soft capacity bound — the sock-style
// channel: unbounded-ish buffering with backpressure past the cap, the
// behaviour a localhost TCP socket gives MPICH2's sock channel.
#pragma once

#include <deque>
#include <mutex>

#include "transport/channel.hpp"

namespace motor::transport {

class StreamChannel final : public Channel {
 public:
  explicit StreamChannel(std::size_t capacity_bytes)
      : capacity_(capacity_bytes < 64 ? 64 : capacity_bytes) {}

  std::size_t try_write(ByteSpan bytes) override;
  /// Gathered write: all parts appended under ONE lock acquisition.
  std::size_t try_write_v(std::span<const ByteSpan> parts) override;
  std::size_t try_read(MutableByteSpan out) override;
  [[nodiscard]] std::size_t readable() const override;
  [[nodiscard]] std::size_t writable() const override;
  void close() override;
  [[nodiscard]] bool at_eof() const override;
  [[nodiscard]] std::string name() const override { return "stream"; }

 private:
  mutable std::mutex mu_;
  std::deque<std::byte> data_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace motor::transport
