#include "transport/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/status.hpp"

namespace motor::transport {

std::string_view topology_kind_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kFullMesh: return "fullmesh";
    case TopologyKind::kMesh2D: return "mesh2d";
    case TopologyKind::kTorus2D: return "torus2d";
    case TopologyKind::kFatTree: return "fattree";
  }
  return "<unknown>";
}

Topology::Topology(TopologySpec spec, int n_ranks) : spec_(spec) {
  MOTOR_CHECK(n_ranks >= 1, "topology needs at least one rank");
  MOTOR_CHECK(spec_.fat_tree_radix >= 2, "fat tree radix must be >= 2");
  MOTOR_CHECK(spec_.ranks_per_node >= 0, "ranks_per_node must be >= 0");
  resize(n_ranks);
}

void Topology::resize(int n_ranks) {
  n_ = n_ranks;
  // Near-square grid: cols = ceil(sqrt(n)), last row possibly partial.
  cols_ = std::max(1, static_cast<int>(
                          std::ceil(std::sqrt(static_cast<double>(n_)))));
  rows_ = (n_ + cols_ - 1) / cols_;

  if (spec_.ranks_per_node > 0) {
    per_node_ = spec_.ranks_per_node;
  } else {
    switch (spec_.kind) {
      case TopologyKind::kFullMesh: per_node_ = 8; break;
      case TopologyKind::kMesh2D:
      case TopologyKind::kTorus2D: per_node_ = cols_; break;
      case TopologyKind::kFatTree: per_node_ = spec_.fat_tree_radix; break;
    }
  }
  per_node_ = std::max(1, std::min(per_node_, n_));
}

int Topology::node_size(int node) const {
  MOTOR_CHECK(node >= 0 && node < node_count(), "node_size: bad node");
  return std::min(per_node_, n_ - node * per_node_);
}

int Topology::grid_distance(int a, int b, bool wrap) const {
  const int ra = a / cols_, ca = a % cols_;
  const int rb = b / cols_, cb = b % cols_;
  int dr = std::abs(ra - rb);
  int dc = std::abs(ca - cb);
  if (wrap) {
    // Wraparound in both dimensions. The last row/column may be partial;
    // the wrap is modelled over the full grid extent — an idealisation,
    // like every other interconnect model in transport/.
    dr = std::min(dr, rows_ - dr);
    dc = std::min(dc, cols_ - dc);
  }
  return dr + dc;
}

int Topology::distance(int a, int b) const {
  MOTOR_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_, "distance: bad rank");
  if (a == b) return 0;
  switch (spec_.kind) {
    case TopologyKind::kFullMesh:
      return 1;
    case TopologyKind::kMesh2D:
      return grid_distance(a, b, /*wrap=*/false);
    case TopologyKind::kTorus2D:
      return std::max(1, grid_distance(a, b, /*wrap=*/true));
    case TopologyKind::kFatTree:
      // Same leaf switch: one hop through the leaf. Different leaves:
      // leaf -> spine -> leaf.
      return (a / spec_.fat_tree_radix == b / spec_.fat_tree_radix) ? 1 : 3;
  }
  return 1;
}

std::vector<int> Topology::neighbors(int rank) const {
  std::vector<int> out;
  for (int r = 0; r < n_; ++r) {
    if (r != rank && distance(rank, r) == 1) out.push_back(r);
  }
  return out;
}

}  // namespace motor::transport
