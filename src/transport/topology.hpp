// Topology: an explicit link-graph model over the fabric's ranks.
//
// The paper runs on a single flat testbed; scale-out worlds need the
// fabric to know *where* ranks sit. A Topology maps every ordered rank
// pair to a hop distance on a modelled interconnect — full crossbar,
// 2-D mesh, 2-D torus, or two-level fat tree — and groups ranks into
// "nodes" (SMP boxes / leaf switches). The fabric composes the existing
// latency/bandwidth channel decorators per link, scaling the one-way
// propagation delay by the hop count, so multi-hop links are honestly
// slower. Upper layers (the collectives' selection function and the
// two-level leader algorithms) query distance, node grouping, and
// neighbourhoods through this class.
//
// Node groupings are always CONTIGUOUS rank ranges (rows for mesh/torus,
// leaf switches for fat trees, fixed-size blocks otherwise); the leader
// of a node is its lowest rank. Collectives rely on this contiguity.
#pragma once

#include <string_view>
#include <vector>

namespace motor::transport {

enum class TopologyKind : std::uint8_t {
  kFullMesh,  // flat crossbar: every pair one hop (the seed behaviour)
  kMesh2D,    // near-square grid, no wraparound; hops = Manhattan distance
  kTorus2D,   // grid with wraparound links in both dimensions
  kFatTree,   // two-level: leaf switches of `fat_tree_radix` ports + spine
};

std::string_view topology_kind_name(TopologyKind kind) noexcept;

struct TopologySpec {
  TopologyKind kind = TopologyKind::kFullMesh;
  /// Ranks per "node" for the two-level collectives' grouping. 0 = auto:
  /// one grid row (mesh/torus), one leaf switch (fat tree), blocks of 8
  /// (full mesh — an SMP-cluster-style grouping over a flat wire).
  int ranks_per_node = 0;
  /// Ports per leaf switch (fat tree only).
  int fat_tree_radix = 8;
};

class Topology {
 public:
  Topology(TopologySpec spec, int n_ranks);

  [[nodiscard]] TopologyKind kind() const noexcept { return spec_.kind; }
  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] std::string_view name() const noexcept {
    return topology_kind_name(spec_.kind);
  }

  /// Hop count between ranks: 0 for a==b, >=1 otherwise.
  [[nodiscard]] int distance(int a, int b) const;

  /// Ranks exactly one hop from `rank`, ascending.
  [[nodiscard]] std::vector<int> neighbors(int rank) const;

  // ---- node grouping (two-level collectives) ----

  [[nodiscard]] int ranks_per_node() const noexcept { return per_node_; }
  [[nodiscard]] int node_count() const noexcept {
    return (n_ + per_node_ - 1) / per_node_;
  }
  [[nodiscard]] int node_of(int rank) const { return rank / per_node_; }
  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }
  /// Lowest rank of `node` (nodes are contiguous rank ranges).
  [[nodiscard]] int leader_of(int node) const { return node * per_node_; }
  /// Number of ranks in `node` (the last node may be partial).
  [[nodiscard]] int node_size(int node) const;

  /// Grow the rank count (dynamic process management). Grid dimensions
  /// are recomputed; links the fabric already created keep the per-hop
  /// latency they were built with.
  void resize(int n_ranks);

 private:
  [[nodiscard]] int grid_distance(int a, int b, bool wrap) const;

  TopologySpec spec_;
  int n_ = 0;
  int cols_ = 1;      // grid row width (mesh/torus)
  int rows_ = 1;
  int per_node_ = 1;  // effective node grouping width
};

}  // namespace motor::transport
