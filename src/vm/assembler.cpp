#include "vm/assembler.hpp"

#include "common/status.hpp"

namespace motor::vm {

MethodAssembler::MethodAssembler(std::string name, int n_args, int n_locals) {
  method_.name = std::move(name);
  method_.n_args = n_args;
  method_.n_locals = n_locals;
}

int MethodAssembler::new_label() { return next_label_++; }

MethodAssembler& MethodAssembler::bind(int label) {
  MOTOR_CHECK(!bound_.contains(label), "label bound twice");
  bound_[label] = method_.code.size();
  return *this;
}

MethodAssembler& MethodAssembler::emit(Op op, std::int64_t i, std::int64_t aux,
                                       double f) {
  method_.code.push_back(Instr{op, i, aux, f});
  return *this;
}

MethodAssembler& MethodAssembler::emit_branch(Op op, int label) {
  pending_.emplace_back(method_.code.size(), label);
  return emit(op, -1);
}

MethodAssembler& MethodAssembler::nop() { return emit(Op::kNop); }
MethodAssembler& MethodAssembler::ldc_i4(std::int32_t v) {
  return emit(Op::kLdcI4, v);
}
MethodAssembler& MethodAssembler::ldc_i8(std::int64_t v) {
  return emit(Op::kLdcI8, v);
}
MethodAssembler& MethodAssembler::ldc_r8(double v) {
  return emit(Op::kLdcR8, 0, 0, v);
}
MethodAssembler& MethodAssembler::ldnull() { return emit(Op::kLdNull); }
MethodAssembler& MethodAssembler::ldloc(int slot) {
  return emit(Op::kLdLoc, slot);
}
MethodAssembler& MethodAssembler::stloc(int slot) {
  return emit(Op::kStLoc, slot);
}
MethodAssembler& MethodAssembler::dup() { return emit(Op::kDup); }
MethodAssembler& MethodAssembler::pop() { return emit(Op::kPop); }
MethodAssembler& MethodAssembler::add() { return emit(Op::kAdd); }
MethodAssembler& MethodAssembler::sub() { return emit(Op::kSub); }
MethodAssembler& MethodAssembler::mul() { return emit(Op::kMul); }
MethodAssembler& MethodAssembler::div() { return emit(Op::kDiv); }
MethodAssembler& MethodAssembler::rem() { return emit(Op::kRem); }
MethodAssembler& MethodAssembler::neg() { return emit(Op::kNeg); }
MethodAssembler& MethodAssembler::and_() { return emit(Op::kAnd); }
MethodAssembler& MethodAssembler::or_() { return emit(Op::kOr); }
MethodAssembler& MethodAssembler::xor_() { return emit(Op::kXor); }
MethodAssembler& MethodAssembler::not_() { return emit(Op::kNot); }
MethodAssembler& MethodAssembler::shl() { return emit(Op::kShl); }
MethodAssembler& MethodAssembler::shr() { return emit(Op::kShr); }
MethodAssembler& MethodAssembler::ceq() { return emit(Op::kCeq); }
MethodAssembler& MethodAssembler::cne() { return emit(Op::kCne); }
MethodAssembler& MethodAssembler::clt() { return emit(Op::kClt); }
MethodAssembler& MethodAssembler::cle() { return emit(Op::kCle); }
MethodAssembler& MethodAssembler::cgt() { return emit(Op::kCgt); }
MethodAssembler& MethodAssembler::cge() { return emit(Op::kCge); }
MethodAssembler& MethodAssembler::conv_i4() { return emit(Op::kConvI4); }
MethodAssembler& MethodAssembler::conv_i8() { return emit(Op::kConvI8); }
MethodAssembler& MethodAssembler::conv_r8() { return emit(Op::kConvR8); }
MethodAssembler& MethodAssembler::br(int label) {
  return emit_branch(Op::kBr, label);
}
MethodAssembler& MethodAssembler::brtrue(int label) {
  return emit_branch(Op::kBrTrue, label);
}
MethodAssembler& MethodAssembler::brfalse(int label) {
  return emit_branch(Op::kBrFalse, label);
}
MethodAssembler& MethodAssembler::call(int method_index) {
  return emit(Op::kCall, method_index);
}
MethodAssembler& MethodAssembler::call_native(int fcall_index, int n_args) {
  return emit(Op::kCallNative, fcall_index, n_args);
}
MethodAssembler& MethodAssembler::ret() { return emit(Op::kRet); }
MethodAssembler& MethodAssembler::newobj(int type_index) {
  return emit(Op::kNewObj, type_index);
}
MethodAssembler& MethodAssembler::newarr(int type_index) {
  return emit(Op::kNewArr, type_index);
}
MethodAssembler& MethodAssembler::ldfld(const FieldDesc& field) {
  return emit(Op::kLdFld, field.offset(),
              static_cast<std::int64_t>(field.kind()));
}
MethodAssembler& MethodAssembler::stfld(const FieldDesc& field) {
  return emit(Op::kStFld, field.offset(),
              static_cast<std::int64_t>(field.kind()));
}
MethodAssembler& MethodAssembler::ldelem() { return emit(Op::kLdElem); }
MethodAssembler& MethodAssembler::stelem() { return emit(Op::kStElem); }
MethodAssembler& MethodAssembler::ldlen() { return emit(Op::kLdLen); }

Method MethodAssembler::build() {
  for (const auto& [pc, label] : pending_) {
    auto it = bound_.find(label);
    MOTOR_CHECK(it != bound_.end(),
                "unbound label in method " + method_.name);
    method_.code[pc].i = static_cast<std::int64_t>(it->second);
  }
  pending_.clear();
  return std::move(method_);
}

}  // namespace motor::vm
