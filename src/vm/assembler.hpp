// MethodAssembler: a small fluent builder for interpreter bytecode with
// symbolic labels, used by examples and tests in place of a compiler
// front-end.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "vm/interpreter.hpp"

namespace motor::vm {

class MethodAssembler {
 public:
  MethodAssembler(std::string name, int n_args, int n_locals);

  // ---- labels ----
  /// Create a fresh label id (bind later with bind()).
  int new_label();
  /// Bind `label` to the next emitted instruction.
  MethodAssembler& bind(int label);

  // ---- emission (chainable) ----
  MethodAssembler& nop();
  MethodAssembler& ldc_i4(std::int32_t v);
  MethodAssembler& ldc_i8(std::int64_t v);
  MethodAssembler& ldc_r8(double v);
  MethodAssembler& ldnull();
  MethodAssembler& ldloc(int slot);
  MethodAssembler& stloc(int slot);
  MethodAssembler& dup();
  MethodAssembler& pop();
  MethodAssembler& add();
  MethodAssembler& sub();
  MethodAssembler& mul();
  MethodAssembler& div();
  MethodAssembler& rem();
  MethodAssembler& neg();
  MethodAssembler& and_();
  MethodAssembler& or_();
  MethodAssembler& xor_();
  MethodAssembler& not_();
  MethodAssembler& shl();
  MethodAssembler& shr();
  MethodAssembler& ceq();
  MethodAssembler& cne();
  MethodAssembler& clt();
  MethodAssembler& cle();
  MethodAssembler& cgt();
  MethodAssembler& cge();
  MethodAssembler& conv_i4();
  MethodAssembler& conv_i8();
  MethodAssembler& conv_r8();
  MethodAssembler& br(int label);
  MethodAssembler& brtrue(int label);
  MethodAssembler& brfalse(int label);
  MethodAssembler& call(int method_index);
  MethodAssembler& call_native(int fcall_index, int n_args);
  MethodAssembler& ret();
  MethodAssembler& newobj(int type_index);
  MethodAssembler& newarr(int type_index);
  MethodAssembler& ldfld(const FieldDesc& field);
  MethodAssembler& stfld(const FieldDesc& field);
  MethodAssembler& ldelem();
  MethodAssembler& stelem();
  MethodAssembler& ldlen();

  /// Resolve labels and return the finished method. Fatals on an unbound
  /// label reference.
  Method build();

 private:
  MethodAssembler& emit(Op op, std::int64_t i = 0, std::int64_t aux = 0,
                        double f = 0.0);
  MethodAssembler& emit_branch(Op op, int label);

  Method method_;
  std::unordered_map<int, std::size_t> bound_;          // label -> pc
  std::vector<std::pair<std::size_t, int>> pending_;    // (pc, label)
  int next_label_ = 0;
};

}  // namespace motor::vm
