#include "vm/cli_serializer.hpp"

#include <unordered_map>

#include "pal/clock.hpp"
#include "vm/serial_util.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

namespace {

constexpr std::uint32_t kMagic = 0x434C4942;  // "CLIB"

/// Bytes a class-type record's payload occupies on the wire: primitives
/// raw, references as 4-byte ids.
std::size_t class_wire_bytes(const MethodTable* mt) {
  std::size_t n = 0;
  for (const FieldDesc& f : mt->fields()) {
    n += f.is_reference() ? 4 : f.size();
  }
  return n;
}

}  // namespace

Status CliBinarySerializer::serialize(Obj root, ByteBuffer& out) {
  pal::Stopwatch sw;

  // Discover the reachable graph breadth-first, assigning ids in
  // encounter order (ObjectIDGenerator analog).
  std::unordered_map<Obj, std::int32_t> ids;
  std::vector<Obj> order;
  if (root != nullptr) {
    ids.emplace(root, 0);
    order.push_back(root);
    for (std::size_t head = 0; head < order.size(); ++head) {
      Obj obj = order[head];
      const MethodTable* mt = obj_mt(obj);
      auto discover = [&](Obj target) {
        if (target == nullptr || ids.contains(target)) return;
        ids.emplace(target, static_cast<std::int32_t>(order.size()));
        order.push_back(target);
      };
      if (mt->is_array()) {
        if (mt->element_kind() == ElementKind::kObjectRef) {
          const std::int64_t n = array_length(obj);
          for (std::int64_t i = 0; i < n; ++i) discover(get_ref_element(obj, i));
        }
      } else {
        for (std::uint32_t off : mt->reference_offsets()) {
          discover(get_ref_field(obj, off));
        }
      }
    }
  }

  out.put_u32(kMagic);
  out.put_i32(static_cast<std::int32_t>(order.size()));
  out.put_i32(root == nullptr ? -1 : 0);
  for (Obj obj : order) {
    MOTOR_RETURN_IF_ERROR(write_object_body(obj, out, ids));
  }
  objects_serialized_ += order.size();

  // Host-quality residue: a slower managed serializer costs proportionally
  // more CPU for the same structural work (see RuntimeProfile).
  const double factor = vm_.profile().serializer_cost_factor;
  if (factor > 1.0) {
    pal::spin_for_ns(
        static_cast<std::uint64_t>((factor - 1.0) * sw.elapsed_ns()));
  }
  return Status::ok();
}

Status CliBinarySerializer::write_object_body(
    Obj obj, ByteBuffer& out,
    const std::unordered_map<Obj, std::int32_t>& ids) {
  const MethodTable* mt = obj_mt(obj);
  detail::write_string(out, mt->name());

  auto id_of = [&](Obj target) -> std::int32_t {
    if (target == nullptr) return -1;
    return ids.at(target);
  };

  if (mt->is_array()) {
    if (mt->rank() > 1) {
      for (int d = 0; d < mt->rank(); ++d) out.put_i32(array_dim(obj, d));
    } else {
      out.put_i64(array_length(obj));
    }
    if (mt->element_kind() == ElementKind::kObjectRef) {
      const std::int64_t n = array_length(obj);
      for (std::int64_t i = 0; i < n; ++i) {
        out.put_i32(id_of(get_ref_element(obj, i)));
      }
    } else {
      out.append_raw(array_data(obj), array_payload_bytes(obj));
    }
    return Status::ok();
  }

  for (const FieldDesc& f : mt->fields()) {
    if (f.is_reference()) {
      out.put_i32(id_of(get_ref_field(obj, f.offset())));
    } else {
      out.append_raw(obj_data(obj) + f.offset(), f.size());
    }
  }
  return Status::ok();
}

Status CliBinarySerializer::deserialize(ByteBuffer& in, ManagedThread& thread,
                                        Obj* out) {
  pal::Stopwatch sw;
  std::uint32_t magic = 0;
  MOTOR_RETURN_IF_ERROR(in.get(magic));
  if (magic != kMagic) {
    return Status(ErrorCode::kSerialization, "bad CLI serializer magic");
  }
  std::int32_t count = 0, root_id = 0;
  MOTOR_RETURN_IF_ERROR(in.get(count));
  MOTOR_RETURN_IF_ERROR(in.get(root_id));
  if (count < 0) return Status(ErrorCode::kSerialization, "bad object count");
  if (static_cast<std::size_t>(count) > in.remaining() / 2 + 1) {
    return Status(ErrorCode::kSerialization, "object count exceeds stream");
  }

  // Pass 1: create every object (GC-protected) and remember where each
  // record's payload starts.
  RootRange table(thread);
  std::vector<std::size_t> payload_pos(static_cast<std::size_t>(count));
  for (std::int32_t id = 0; id < count; ++id) {
    std::string type_name;
    MOTOR_RETURN_IF_ERROR(detail::read_string(in, type_name));
    const MethodTable* mt = vm_.types().find(type_name);
    if (mt == nullptr) {
      return Status(ErrorCode::kSerialization, "unknown type " + type_name);
    }
    std::size_t payload = 0;
    Obj obj = nullptr;
    if (mt->is_array()) {
      std::int64_t length = 0;
      if (mt->rank() > 1) {
        std::vector<std::int32_t> dims(static_cast<std::size_t>(mt->rank()));
        std::int64_t total_elems = 1;
        for (auto& d : dims) {
          MOTOR_RETURN_IF_ERROR(in.get(d));
          if (d < 0) return Status(ErrorCode::kSerialization, "bad dim");
          total_elems *= d;
        }
        const std::size_t wire_per_elem =
            mt->element_kind() == ElementKind::kObjectRef ? 4
                                                          : mt->element_bytes();
        if (static_cast<std::size_t>(total_elems) * wire_per_elem >
            in.remaining()) {
          return Status(ErrorCode::kSerialization,
                        "announced array exceeds stream");
        }
        obj = vm_.heap().alloc_md_array(mt, dims);
        length = array_length(obj);
      } else {
        MOTOR_RETURN_IF_ERROR(in.get(length));
        if (length < 0) {
          return Status(ErrorCode::kSerialization, "negative array length");
        }
        const std::size_t wire_per_elem =
            mt->element_kind() == ElementKind::kObjectRef ? 4
                                                          : mt->element_bytes();
        if (static_cast<std::size_t>(length) * wire_per_elem >
            in.remaining()) {
          return Status(ErrorCode::kSerialization,
                        "announced array exceeds stream");
        }
        obj = vm_.heap().alloc_array(mt, length);
      }
      payload = static_cast<std::size_t>(length) *
                (mt->element_kind() == ElementKind::kObjectRef
                     ? 4
                     : mt->element_bytes());
    } else {
      obj = vm_.heap().alloc_object(mt);
      payload = class_wire_bytes(mt);
    }
    table.add(obj);
    payload_pos[static_cast<std::size_t>(id)] = in.cursor();
    if (in.remaining() < payload) {
      return Status(ErrorCode::kSerialization, "truncated record");
    }
    in.seek(in.cursor() + payload);
  }

  auto resolve = [&](std::int32_t id) -> Obj {
    return id < 0 ? nullptr : table.at(static_cast<std::size_t>(id));
  };

  // Pass 2: fill payloads with references resolved through the table.
  for (std::int32_t id = 0; id < count; ++id) {
    Obj obj = table.at(static_cast<std::size_t>(id));
    const MethodTable* mt = obj_mt(obj);
    in.seek(payload_pos[static_cast<std::size_t>(id)]);
    if (mt->is_array()) {
      if (mt->element_kind() == ElementKind::kObjectRef) {
        const std::int64_t n = array_length(obj);
        for (std::int64_t i = 0; i < n; ++i) {
          std::int32_t rid = 0;
          MOTOR_RETURN_IF_ERROR(in.get(rid));
          vm_.heap().store_ref_element(obj, i, resolve(rid));
        }
      } else {
        MOTOR_RETURN_IF_ERROR(in.read(
            {array_data(obj), array_payload_bytes(obj)}));
      }
      continue;
    }
    for (const FieldDesc& f : mt->fields()) {
      if (f.is_reference()) {
        std::int32_t rid = 0;
        MOTOR_RETURN_IF_ERROR(in.get(rid));
        vm_.heap().store_ref_field(obj, f.offset(), resolve(rid));
      } else {
        MOTOR_RETURN_IF_ERROR(in.read({obj_data(obj) + f.offset(), f.size()}));
      }
    }
  }

  *out = resolve(root_id);

  const double factor = vm_.profile().serializer_cost_factor;
  if (factor > 1.0) {
    pal::spin_for_ns(
        static_cast<std::uint64_t>((factor - 1.0) * sw.elapsed_ns()));
  }
  return Status::ok();
}

}  // namespace motor::vm
