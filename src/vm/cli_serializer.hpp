// The standard CLI runtime binary serializer (BinaryFormatter analog).
//
// This is the mechanism the Indiana-bindings baseline uses to move object
// trees over regular MPI (paper §8, Figure 10): it produces "a single
// atomic flat representation, which cannot be split or offset like
// standard memory" (§2.4) — hence no scatter/gather of object arrays.
//
// Semantics are Serializable-style OPT-OUT: every field is serialized,
// references included, by following the whole reachable graph. Cycles are
// handled with an object-id table. Cost: the structural work is real; the
// host-quality residue (Rotor's serializer being visibly slower than
// .NET's — the Figure 10 caption calls this out) is charged as a
// multiplier on measured serialization time.
#pragma once

#include <unordered_map>

#include "common/buffer.hpp"
#include "vm/handles.hpp"
#include "vm/object.hpp"

namespace motor::vm {

class Vm;

class CliBinarySerializer {
 public:
  explicit CliBinarySerializer(Vm& vm) : vm_(vm) {}

  /// Serialize the graph reachable from `root` into `out`.
  Status serialize(Obj root, ByteBuffer& out);

  /// Rebuild the graph in this VM's heap; `thread` provides GC protection
  /// for the growing object table.
  Status deserialize(ByteBuffer& in, ManagedThread& thread, Obj* out);

  [[nodiscard]] std::uint64_t objects_serialized() const noexcept {
    return objects_serialized_;
  }

 private:
  Status write_object_body(Obj obj, ByteBuffer& out,
                           const std::unordered_map<Obj, std::int32_t>& ids);

  Vm& vm_;
  std::uint64_t objects_serialized_ = 0;
};

}  // namespace motor::vm
