#include "vm/fcall.hpp"

#include "common/status.hpp"
#include "pal/clock.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

int FCallTable::register_fcall(std::string name, NativeFn fn) {
  entries_.push_back(Entry{std::move(name), std::move(fn)});
  return static_cast<int>(entries_.size()) - 1;
}

Value FCallTable::invoke(Vm& vm, ManagedThread& thread, int index,
                         std::span<const Value> args) const {
  MOTOR_CHECK(index >= 0 && index < static_cast<int>(entries_.size()),
              "unknown FCall");
  ++calls_;
  // "They must behave like managed code ... periodically yield to the
  // garbage collector" (§5.1): poll on entry and exit.
  thread.poll_gc();
  if (vm.profile().fcall_transition_ns > 0) {
    pal::spin_for_ns(vm.profile().fcall_transition_ns);
  }
  Value result = entries_[static_cast<std::size_t>(index)].fn(vm, thread, args);
  thread.poll_gc();
  return result;
}

int FCallTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace motor::vm
