// The FCall (InternalCall) mechanism — paper §5.1/§7.3.
//
// FCalls are the runtime-internal call path System libraries use: they are
// internally trusted, so there is no parameter marshalling and no security
// check; but they must behave like managed code — poll the GC on entry and
// exit, and GC-protect any object pointers they hold (GcRoot). The
// System.MP library reaches the Message Passing Core exclusively through
// this table, which is what gives Motor its per-call advantage over
// P/Invoke-based wrappers (Figure 9).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "vm/managed_thread.hpp"

namespace motor::vm {

class Vm;

/// Runtime-internal native entry point (the FCIMPL body).
using NativeFn =
    std::function<Value(Vm&, ManagedThread&, std::span<const Value>)>;

class FCallTable {
 public:
  /// Register an internal call; returns its index (the MethodImpl token).
  int register_fcall(std::string name, NativeFn fn);

  /// Invoke with FCall discipline: GC poll on entry, the (tiny) trusted
  /// transition cost, the body, GC poll on exit.
  Value invoke(Vm& vm, ManagedThread& thread, int index,
               std::span<const Value> args) const;

  [[nodiscard]] int find(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }

 private:
  struct Entry {
    std::string name;
    NativeFn fn;
  };
  std::vector<Entry> entries_;
  mutable std::uint64_t calls_ = 0;
};

}  // namespace motor::vm
