#include "vm/field_desc.hpp"

#include "common/status.hpp"

namespace motor::vm {

std::string_view element_kind_name(ElementKind kind) noexcept {
  switch (kind) {
    case ElementKind::kBool: return "bool";
    case ElementKind::kChar: return "char";
    case ElementKind::kInt8: return "int8";
    case ElementKind::kUInt8: return "uint8";
    case ElementKind::kInt16: return "int16";
    case ElementKind::kUInt16: return "uint16";
    case ElementKind::kInt32: return "int32";
    case ElementKind::kUInt32: return "uint32";
    case ElementKind::kInt64: return "int64";
    case ElementKind::kUInt64: return "uint64";
    case ElementKind::kFloat: return "float";
    case ElementKind::kDouble: return "double";
    case ElementKind::kObjectRef: return "objectref";
  }
  return "<unknown>";
}

FieldDesc::FieldDesc(std::string name, ElementKind kind, std::uint32_t offset,
                     const MethodTable* field_type, bool transportable)
    : field_type_(field_type), name_(std::move(name)) {
  MOTOR_CHECK(offset <= kOffsetMask, "field offset exceeds bitfield");
  packed_ = offset | (static_cast<std::uint32_t>(kind) << kKindShift) |
            (transportable ? kTransportableBit : 0);
  MOTOR_CHECK(kind != ElementKind::kObjectRef || field_type != nullptr,
              "reference field requires a declared type");
}

}  // namespace motor::vm
