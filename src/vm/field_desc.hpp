// FieldDesc: the per-field descriptor of the runtime class model.
//
// Mirrors the SSCLI structure the paper describes (§5.3): "a highly
// optimized structure, using a bit field to describe field information",
// onto which Motor adds a **Transportable bit** (§7.5) so the serializer
// can test the attribute without touching slow type metadata.
#pragma once

#include <cstdint>
#include <string>

namespace motor::vm {

class MethodTable;

/// Primitive element kinds of the common type system.
enum class ElementKind : std::uint8_t {
  kBool,
  kChar,
  kInt8,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
  kObjectRef,  // managed reference (pointer-sized)
};

/// Byte width of one element of `kind`. Constexpr so the typed layer's
/// compile-time wire plans (motor/typed/plan.hpp) can evaluate it.
constexpr std::size_t element_size(ElementKind kind) noexcept {
  switch (kind) {
    case ElementKind::kBool:
    case ElementKind::kInt8:
    case ElementKind::kUInt8:
      return 1;
    case ElementKind::kChar:  // CLI char is UTF-16
    case ElementKind::kInt16:
    case ElementKind::kUInt16:
      return 2;
    case ElementKind::kInt32:
    case ElementKind::kUInt32:
    case ElementKind::kFloat:
      return 4;
    case ElementKind::kInt64:
    case ElementKind::kUInt64:
    case ElementKind::kDouble:
    case ElementKind::kObjectRef:
      return 8;
  }
  return 0;
}

std::string_view element_kind_name(ElementKind kind) noexcept;

class FieldDesc {
 public:
  FieldDesc() = default;
  FieldDesc(std::string name, ElementKind kind, std::uint32_t offset,
            const MethodTable* field_type, bool transportable);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Byte offset of the field within the object's instance data.
  [[nodiscard]] std::uint32_t offset() const noexcept {
    return packed_ & kOffsetMask;
  }
  [[nodiscard]] ElementKind kind() const noexcept {
    return static_cast<ElementKind>((packed_ >> kKindShift) & 0x1F);
  }
  [[nodiscard]] bool is_reference() const noexcept {
    return kind() == ElementKind::kObjectRef;
  }

  /// The Motor Transportable bit: set iff the field carried the
  /// [Transportable] custom attribute at type-definition time.
  [[nodiscard]] bool is_transportable() const noexcept {
    return (packed_ & kTransportableBit) != 0;
  }

  /// Declared type for reference fields (null for primitives).
  [[nodiscard]] const MethodTable* field_type() const noexcept {
    return field_type_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return element_size(kind());
  }

  /// Bytes this field occupies in the Motor wire format: references
  /// travel as 4-byte object-table indices, primitives at natural size.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return is_reference() ? 4 : size();
  }

  /// Packed-layout query: true when this field's heap storage starts
  /// exactly where `prev`'s ends and neither is a reference — the
  /// condition under which the serializer may coalesce both into one
  /// contiguous copy (wire layout never has gaps between primitives, so
  /// heap adjacency is the only requirement).
  [[nodiscard]] bool follows_contiguously(const FieldDesc& prev)
      const noexcept {
    return !is_reference() && !prev.is_reference() &&
           offset() == prev.offset() + prev.size();
  }

 private:
  // Bit layout: [0..23] offset | [24..28] kind | [29] transportable.
  static constexpr std::uint32_t kOffsetMask = (1u << 24) - 1;
  static constexpr std::uint32_t kKindShift = 24;
  static constexpr std::uint32_t kTransportableBit = 1u << 29;

  std::uint32_t packed_ = 0;
  const MethodTable* field_type_ = nullptr;
  std::string name_;
};

}  // namespace motor::vm
