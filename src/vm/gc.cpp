// Collection phases of the two-generation collector. See heap.hpp for the
// overall design and the paper sections each mechanism reproduces.
//
// Both modes share one machinery: a cycle = begin (pin resolve + root
// snapshot), marking, a relocation pause (root re-scan, residual drain,
// per-region promotion decisions, fixup), then an elder sweep when due.
// The baseline runs the whole cycle inside a single stop-the-world pause;
// incremental mode spreads marking and sweeping over bounded slices with
// mutators running in between, kept sound by the Dijkstra write barrier
// (barrier_slow) and the final root re-scan.
#include <algorithm>
#include <cstring>
#include <limits>

#include "pal/clock.hpp"
#include "vm/heap.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

namespace {

/// Root visitor that collects live root targets for shading.
class ShadeVisitor final : public RootVisitor {
 public:
  explicit ShadeVisitor(std::vector<Obj>& out) : out_(out) {}
  void visit(Obj* slot) override {
    if (*slot != nullptr) out_.push_back(*slot);
  }

 private:
  std::vector<Obj>& out_;
};

/// Root visitor that repoints slots at promoted objects.
class FixupVisitor final : public RootVisitor {
 public:
  void visit(Obj* slot) override {
    if (*slot != nullptr && is_forwarded(*slot)) {
      *slot = forwarding_target(*slot);
    }
  }
};

}  // namespace

// ---- side marks ----
//
// Liveness lives outside object headers: a bitmap over the young arena
// (bit per alignment slot) and a set of marked elder objects. Mutator
// shading (the barrier) and GC slices serialize on mark_mu_; mutators
// never read or write header words the GC touches, which keeps the
// barrier TSan-clean.

bool ManagedHeap::try_mark_unlocked(Obj obj) {
  const auto* b = reinterpret_cast<const std::byte*>(obj);
  if (b >= young_base_ && b < young_base_ + config_.young_bytes &&
      region_is_young_[(static_cast<std::size_t>(b - young_base_)) >>
                       region_shift_] != 0) {
    const std::size_t slot =
        static_cast<std::size_t>(b - young_base_) / kObjectAlignment;
    std::uint64_t& word = young_mark_bits_[slot / 64];
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    return true;
  }
  // Young cycles never mark (or trace into) the elder graph: elder is
  // implicitly live until the next full cycle, and its young references
  // are covered by the remembered set.
  if (!cycle_full_) return false;
  return marked_elder_.insert(obj);
}

bool ManagedHeap::is_side_marked_unlocked(Obj obj) const {
  const auto* b = reinterpret_cast<const std::byte*>(obj);
  if (b >= young_base_ && b < young_base_ + config_.young_bytes &&
      region_is_young_[(static_cast<std::size_t>(b - young_base_)) >>
                       region_shift_] != 0) {
    const std::size_t slot =
        static_cast<std::size_t>(b - young_base_) / kObjectAlignment;
    return (young_mark_bits_[slot / 64] &
            (std::uint64_t{1} << (slot % 64))) != 0;
  }
  return marked_elder_.contains(obj);
}

void ManagedHeap::clear_side_marks() {
  std::fill(young_mark_bits_.begin(), young_mark_bits_.end(), 0);
  marked_elder_.clear();
}

// ---- mutator-facing slow paths ----

void ManagedHeap::barrier_slow(Obj holder, Obj target) {
  // Record elder objects that may now reference the young generation so
  // the relocation fixup is bounded by the mutated set, and shade the
  // stored target while a marking cycle is live (Dijkstra: the invariant
  // "no black object points at a white one" is restored by greying the
  // target).
  const bool record =
      holder != nullptr && !in_young(holder) && in_young(target);
  const bool marking =
      phase_.load(std::memory_order_relaxed) == GcPhase::kMarking;
  if (!record && !marking) return;
  std::lock_guard lk(mark_mu_);
  if (record && remset_.insert(holder)) ++stats_.remset_records;
  if (marking && try_mark_unlocked(target)) {
    mark_worklist_.push_back(target);
    ++stats_.barrier_shades;
  }
}

void ManagedHeap::shade_external(Obj obj) {
  if (obj == nullptr) return;
  std::lock_guard lk(mark_mu_);
  if (phase_.load(std::memory_order_relaxed) != GcPhase::kMarking) return;
  if (try_mark_unlocked(obj)) {
    mark_worklist_.push_back(obj);
    ++stats_.barrier_shades;
  }
}

// ---- pins ----

void ManagedHeap::resolve_conditional_pins() {
  // Conditional pins: hold iff the transport operation is still running;
  // otherwise "the pinning request is no longer necessary and is
  // disregarded" (§7.4). Re-run at every slice boundary so completed
  // sends release their buffers without waiting for the cycle to end.
  std::lock_guard lk(pin_mu_);
  cond_held_.clear();
  auto keep = conditional_pins_.begin();
  for (auto& entry : conditional_pins_) {
    ++stats_.conditional_checked;
    if (entry.req->is_complete()) {
      ++stats_.conditional_dropped;
      continue;
    }
    cond_held_.insert(entry.obj);
    *keep++ = std::move(entry);
  }
  conditional_pins_.erase(keep, conditional_pins_.end());
}

// ---- marking ----

void ManagedHeap::scan_roots(std::uint64_t& phase_ns) {
  pal::Stopwatch sw;
  std::vector<Obj> roots;
  {
    // Pinned objects are roots: the transport is actively reading them.
    std::lock_guard lk(pin_mu_);
    roots.reserve(pin_set_.size() + cond_held_.size());
    for (Obj obj : pin_set_) roots.push_back(obj);
    for (Obj obj : cond_held_) roots.push_back(obj);
  }
  // Thread stacks, native GCPROTECT slots, interpreter frames.
  ShadeVisitor visitor(roots);
  vm_.enumerate_roots(visitor);
  // Static reference fields.
  vm_.types().for_each_type([&](MethodTable* mt) {
    for (void*& slot : mt->static_ref_slots()) {
      if (slot != nullptr) roots.push_back(static_cast<Obj>(slot));
    }
  });
  {
    std::lock_guard lk(mark_mu_);
    for (Obj obj : roots) {
      if (try_mark_unlocked(obj)) mark_worklist_.push_back(obj);
    }
  }
  phase_ns += sw.elapsed_ns();
}

void ManagedHeap::trace_children(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  if (mt->is_array()) {
    if (mt->element_kind() == ElementKind::kObjectRef) {
      const std::int64_t n = array_length(obj);
      for (std::int64_t i = 0; i < n; ++i) {
        Obj elem = get_ref_element(obj, i);
        if (elem != nullptr && try_mark_unlocked(elem)) {
          mark_worklist_.push_back(elem);
        }
      }
    }
    return;
  }
  for (std::uint32_t off : mt->reference_offsets()) {
    Obj field = get_ref_field(obj, off);
    if (field != nullptr && try_mark_unlocked(field)) {
      mark_worklist_.push_back(field);
    }
  }
}

std::size_t ManagedHeap::drain_mark_worklist(std::size_t max_objects) {
  std::size_t traced = 0;
  while (!mark_worklist_.empty() && traced < max_objects) {
    Obj obj = mark_worklist_.back();
    mark_worklist_.pop_back();
    trace_children(obj);
    ++traced;
  }
  marked_this_cycle_ += traced;
  return traced;
}

// ---- cycle phases (each runs inside one stop-the-world pause) ----

void ManagedHeap::begin_cycle_locked(bool force_full) {
  phase_.store(GcPhase::kMarking, std::memory_order_relaxed);
  marked_this_cycle_ = 0;
  fresh_elder_.clear();
  // Generational schedule: trace the full graph only when this cycle
  // may sweep the elder generation (the same condition finish_cycle
  // checks); otherwise elder is implicitly live and the cycle's mark
  // cost is bounded by the nursery.
  const bool full =
      !config_.incremental || force_full ||
      collections_since_sweep_ + 1 >= config_.elder_sweep_interval;
  {
    std::lock_guard lk(mark_mu_);
    cycle_full_ = full;
    clear_side_marks();
    if (full) marked_elder_.reserve(elder_entries_.size());
    mark_worklist_.clear();
  }
  {
    pal::Stopwatch sw;
    resolve_conditional_pins();
    stats_.pin_resolve_ns += sw.elapsed_ns();
  }
  scan_roots(stats_.root_scan_ns);
  if (!full) {
    // Young cycle: elder holders that stored young references since the
    // last relocation are the only way elder reaches the nursery. Trace
    // their children (the holders themselves stay unmarked); everything
    // stored after this point is shaded by the write barrier.
    std::lock_guard lk(mark_mu_);
    remset_.for_each([this](Obj holder) { trace_children(holder); });
  }

  // Adaptive mark budget: with S = free_young / (2 * slice_alloc_step)
  // slices expected before the nursery fills, each slice must trace
  // roughly live_estimate / S objects for marking to finish comfortably
  // ahead of exhaustion (which would force a synchronous full pause).
  const std::size_t free_bytes =
      config_.young_bytes - donated_bytes_ - young_used_;
  const std::size_t step = std::max<std::size_t>(1, config_.slice_alloc_step);
  const std::size_t slices = std::max<std::size_t>(1, free_bytes / (2 * step));
  const std::uint64_t expect =
      full ? std::max<std::uint64_t>(marked_last_full_, elder_entries_.size())
           : std::max<std::uint64_t>(marked_last_young_,
                                     young_used_ / 64 + 1);
  mark_budget_ = std::max<std::size_t>(
      config_.mark_slice_objects,
      static_cast<std::size_t>(expect / slices) + 1);
  bytes_since_slice_ = 0;
}

void ManagedHeap::mark_slice_locked() {
  // Slice boundary: retire completed transport requests and make sure
  // every currently held conditional pin is shaded (§4.3 across slices).
  {
    pal::Stopwatch sw;
    resolve_conditional_pins();
    stats_.pin_resolve_ns += sw.elapsed_ns();
  }
  std::vector<Obj> held;
  {
    std::lock_guard lk(pin_mu_);
    held.assign(cond_held_.begin(), cond_held_.end());
  }
  pal::Stopwatch sw;
  bool drained;
  {
    std::lock_guard lk(mark_mu_);
    for (Obj obj : held) {
      if (try_mark_unlocked(obj)) mark_worklist_.push_back(obj);
    }
    drain_mark_worklist(mark_budget_);
    drained = mark_worklist_.empty();
  }
  stats_.mark_ns += sw.elapsed_ns();
  ++stats_.mark_slices;
  // Worklist dry: finish the cycle inside this same pause (this is the
  // "final pause" the histogram's tail measures).
  if (drained) finish_cycle_locked(false);
}

void ManagedHeap::finish_cycle_locked(bool force_elder_sweep) {
  const bool inc = config_.incremental;
  if (inc) {
    // Mutators ran since the snapshot: re-resolve pins and re-scan roots
    // (a reference held only in a stack slot has no store barrier).
    {
      pal::Stopwatch sw;
      resolve_conditional_pins();
      stats_.pin_resolve_ns += sw.elapsed_ns();
    }
    scan_roots(stats_.root_scan_ns);
  }
  {
    pal::Stopwatch sw;
    std::lock_guard lk(mark_mu_);
    drain_mark_worklist(std::numeric_limits<std::size_t>::max());
    stats_.mark_ns += sw.elapsed_ns();
  }
  if (cycle_full_) {
    marked_last_full_ = marked_this_cycle_;
  } else {
    marked_last_young_ = marked_this_cycle_;
  }
  {
    std::lock_guard lk(pin_mu_);
    std::uint64_t distinct = pin_set_.size();
    for (Obj obj : cond_held_) {
      if (!pin_set_.contains(obj)) ++distinct;
    }
    stats_.pinned_at_collection += distinct;
  }

  {
    pal::Stopwatch sw;
    bool any_donated = false;
    relocate_young_locked(any_donated);
    stats_.relocate_ns += sw.elapsed_ns();
  }

  ++stats_.collections;
  if (inc) {
    ++stats_.incremental_cycles;
    if (!cycle_full_) ++stats_.young_mark_cycles;
  }

  // Sweeping requires this cycle's marks to cover the whole graph; a
  // forced sweep arriving at the end of a young cycle is handled by the
  // caller (collect runs a second, full cycle).
  ++collections_since_sweep_;
  const bool sweep =
      cycle_full_ &&
      (force_elder_sweep ||
       collections_since_sweep_ >= config_.elder_sweep_interval);
  if (sweep) {
    collections_since_sweep_ = 0;
    if (inc) {
      // Sweep in bounded slices: two-index compaction over the entry
      // snapshot; entries appended by large allocations mid-sweep land
      // beyond end_ and are never examined. The per-slice budget is
      // paced like marking: finish comfortably within the allocation
      // headroom the empty nursery provides.
      sweep_read_ = 0;
      sweep_write_ = 0;
      sweep_end_ = elder_entries_.size();
      const std::size_t step =
          std::max<std::size_t>(1, config_.slice_alloc_step);
      const std::size_t free_bytes =
          config_.young_bytes - donated_bytes_ - young_used_;
      const std::size_t slices =
          std::max<std::size_t>(1, free_bytes / (2 * step));
      sweep_budget_ = std::max<std::size_t>(config_.sweep_slice_entries,
                                            sweep_end_ / slices + 1);
      phase_.store(GcPhase::kSweeping, std::memory_order_relaxed);
    } else {
      pal::Stopwatch sw;
      sweep_elder_full();
      stats_.sweep_ns += sw.elapsed_ns();
      ++stats_.elder_sweeps;
      phase_.store(GcPhase::kIdle, std::memory_order_relaxed);
    }
  } else {
    phase_.store(GcPhase::kIdle, std::memory_order_relaxed);
  }
  bytes_since_slice_ = 0;

  for (const GcHook& hook : gc_hooks_) hook.fn(hook.ctx, stats_.collections);
}

void ManagedHeap::collect_locked(bool force_elder_sweep) {
  // Baseline: the whole cycle in one pause. begin + finish back to back;
  // finish skips the incremental-only re-scan, so conditional pins are
  // examined exactly once per collection.
  begin_cycle_locked(force_elder_sweep);
  finish_cycle_locked(force_elder_sweep);
}

// ---- relocation ----

std::vector<ManagedHeap::YoungRecord> ManagedHeap::scan_young(
    std::vector<RegionPlan>& plans) {
  std::vector<YoungRecord> records;
  std::lock_guard pk(pin_mu_);
  std::lock_guard mk(mark_mu_);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const YoungRegion& reg = regions_[r];
    if (reg.state == RegionState::kDonated || reg.used == 0) continue;
    const std::byte* p = young_base_ + reg.base;
    const std::byte* end = p + reg.used;
    while (p < end) {
      Obj obj = reinterpret_cast<Obj>(const_cast<std::byte*>(p));
      const std::size_t size = object_total_bytes(obj);
      const bool marked = is_side_marked_unlocked(obj);
      const bool pinned =
          pin_set_.contains(obj) || cond_held_.contains(obj);
      records.push_back(
          YoungRecord{obj, size, static_cast<int>(r), marked, pinned});
      if (marked) {
        plans[r].live_bytes += size;
        ++plans[r].live_objects;
        if (pinned) ++plans[r].pinned_objects;
      }
      p += size;
    }
  }
  return records;
}

void ManagedHeap::relocate_young_locked(bool& any_donated) {
  std::vector<RegionPlan> plans(regions_.size());
  std::vector<YoungRecord> records = scan_young(plans);

  // Per-region decision: no pins -> evacuate (copy-promote survivors);
  // pinned and live-dense -> promote the region wholesale in place;
  // pinned but sparse -> evacuate unpinned survivors and donate the
  // region with the pinned residents left where they are.
  std::vector<std::uint8_t> donate(regions_.size(), 0);
  std::vector<std::uint8_t> wholesale(regions_.size(), 0);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const YoungRegion& reg = regions_[r];
    if (reg.state == RegionState::kDonated || reg.used == 0) continue;
    if (plans[r].pinned_objects > 0) {
      any_donated = true;
      donate[r] = 1;
      const double density = static_cast<double>(plans[r].live_bytes) /
                             static_cast<double>(reg.span);
      if (config_.incremental && density >= config_.wholesale_density) {
        wholesale[r] = 1;
      }
    } else if (plans[r].live_objects > 0) {
      ++stats_.regions_evacuated;
    }
  }

  // Pass 1: copy-promote survivors that move (compaction into elder).
  for (const YoungRecord& rec : records) {
    if (!rec.marked) {
      ++stats_.dead_young_objects;
      continue;
    }
    if (rec.pinned || wholesale[static_cast<std::size_t>(rec.region)] != 0) {
      continue;  // stays in place
    }
    Obj copy = elder_alloc(rec.bytes);
    std::memcpy(copy, rec.obj, rec.bytes);
    set_forwarding(rec.obj, copy);
    marked_elder_.insert(copy);
    fresh_elder_.push_back(copy);
    ++stats_.promoted_objects;
    stats_.promoted_bytes += rec.bytes;
  }

  // Pass 2: repoint every slot that can see a moved object. Baseline:
  // roots + statics + all live elder + in-place survivors. Incremental:
  // the elder scan is replaced by the remembered set (elder holders that
  // stored young references since the last relocation) plus this cycle's
  // fresh copies — bounded by mutation, not by heap size.
  FixupVisitor visitor;
  vm_.enumerate_roots(visitor);
  vm_.types().for_each_type([&](MethodTable* mt) {
    for (void*& slot : mt->static_ref_slots()) {
      Obj obj = static_cast<Obj>(slot);
      if (obj != nullptr && is_forwarded(obj)) slot = forwarding_target(obj);
    }
  });
  if (!config_.incremental) {
    for (const ElderEntry& e : elder_entries_) {
      if (marked_elder_.contains(e.obj)) fixup_object_fields(e.obj);
    }
    for (const YoungRecord& rec : records) {
      if (rec.marked && rec.pinned) fixup_object_fields(rec.obj);
    }
  } else {
    for (Obj obj : fresh_elder_) fixup_object_fields(obj);
    for (const YoungRecord& rec : records) {
      if (rec.marked &&
          (rec.pinned || wholesale[static_cast<std::size_t>(rec.region)])) {
        fixup_object_fields(rec.obj);
      }
    }
    std::lock_guard lk(mark_mu_);
    remset_.for_each([this](Obj holder) { fixup_object_fields(holder); });
  }

  // Pass 3: donate pinned regions, reset the rest.
  if (!config_.incremental) {
    if (any_donated) {
      // "The entire block of younger generational memory is assigned to
      // the elder generation, thereby promoting pinned objects" (§5.2).
      donate_region(0, records, /*promote_all_marked=*/false);
    } else {
      regions_[0].used = 0;
      regions_[0].state = RegionState::kOpen;
      open_region_ = 0;
      young_used_ = 0;
    }
    return;
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    if (regions_[r].state == RegionState::kDonated) continue;
    if (donate[r] != 0) {
      donate_region(static_cast<int>(r), records, wholesale[r] != 0);
    } else {
      regions_[r].used = 0;
      regions_[r].state = RegionState::kFree;
    }
  }
  young_used_ = 0;
  open_region_ = 0;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    if (regions_[r].state == RegionState::kFree) {
      regions_[r].state = RegionState::kOpen;
      open_region_ = static_cast<int>(r);
      break;
    }
  }
  {
    // Young is empty: every elder->young edge is gone, so the remembered
    // set restarts from scratch.
    std::lock_guard lk(mark_mu_);
    remset_.clear();
  }
  trigger_bytes_ = static_cast<std::size_t>(
      config_.incremental_trigger *
      static_cast<double>(config_.young_bytes - donated_bytes_));
}

void ManagedHeap::fixup_slot(Obj* slot) {
  if (*slot != nullptr && is_forwarded(*slot)) {
    *slot = forwarding_target(*slot);
  }
}

void ManagedHeap::fixup_object_fields(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  if (mt->is_array()) {
    if (mt->element_kind() == ElementKind::kObjectRef) {
      const std::int64_t n = array_length(obj);
      for (std::int64_t i = 0; i < n; ++i) {
        Obj elem = get_ref_element(obj, i);
        if (elem != nullptr && is_forwarded(elem)) {
          set_ref_element(obj, i, forwarding_target(elem));
        }
      }
    }
    return;
  }
  for (std::uint32_t off : mt->reference_offsets()) {
    Obj field = get_ref_field(obj, off);
    if (field != nullptr && is_forwarded(field)) {
      set_ref_field(obj, off, forwarding_target(field));
    }
  }
}

void ManagedHeap::donate_region(int region,
                                const std::vector<YoungRecord>& records,
                                bool promote_all_marked) {
  auto block = std::make_unique<ElderBlock>();
  block->donated_young = true;
  YoungRegion& reg = regions_[static_cast<std::size_t>(region)];
  if (!config_.incremental) {
    // Baseline: hand the whole nursery storage to the elder generation
    // and allocate a fresh one (addresses of residents stay valid).
    block->storage = std::move(young_storage_);
    block->base = block->storage.get();
    block->bytes = config_.young_bytes;
  } else {
    // Incremental: the region stays inside the arena on loan to elder;
    // it returns to the young free pool when its last resident dies.
    block->base = young_base_ + reg.base;
    block->bytes = reg.span;
    block->region = region;
    reg.state = RegionState::kDonated;
    reg.used = 0;
    reg.pin_count = 0;
    region_is_young_[static_cast<std::size_t>(region)] = 0;
    donated_bytes_ += reg.span;
  }
  int promoted = 0;
  for (const YoungRecord& rec : records) {
    if (rec.region != region || !rec.marked) continue;
    if (!promote_all_marked && !rec.pinned) continue;
    elder_entries_.push_back(ElderEntry{rec.obj, rec.bytes, block.get()});
    ++block->live_objects;
    elder_bytes_ += rec.bytes;
    marked_elder_.insert(rec.obj);
    ++promoted;
  }
  MOTOR_CHECK(block->live_objects > 0, "donated young block with no pins");
  if (promote_all_marked) {
    ++stats_.regions_promoted_wholesale;
    stats_.wholesale_promoted_objects += static_cast<std::uint64_t>(promoted);
  } else {
    ++stats_.regions_donated_sparse;
  }
  ++stats_.young_blocks_donated;
  elder_blocks_.push_back(std::move(block));

  if (!config_.incremental) init_young_arena();
}

// ---- sweeping ----

void ManagedHeap::release_dead_blocks() {
  for (const auto& block : elder_blocks_) {
    if (block->live_objects == 0 && block->region >= 0) {
      // Recycle the donated arena region into the young free pool.
      YoungRegion& reg = regions_[static_cast<std::size_t>(block->region)];
      reg.state = RegionState::kFree;
      reg.used = 0;
      reg.pin_count = 0;
      region_is_young_[static_cast<std::size_t>(block->region)] = 1;
      donated_bytes_ -= reg.span;
    }
  }
  if (elder_open_ != nullptr && elder_open_->live_objects == 0) {
    elder_open_ = nullptr;  // its chunk is about to be freed
  }
  std::erase_if(elder_blocks_, [](const std::unique_ptr<ElderBlock>& b) {
    return b->live_objects == 0;
  });
  trigger_bytes_ = static_cast<std::size_t>(
      config_.incremental_trigger *
      static_cast<double>(config_.young_bytes - donated_bytes_));
}

void ManagedHeap::sweep_elder_full() {
  auto keep = elder_entries_.begin();
  for (ElderEntry& e : elder_entries_) {
    if (marked_elder_.contains(e.obj)) {
      *keep++ = e;
      continue;
    }
    ++stats_.elder_freed_objects;
    stats_.elder_freed_bytes += e.bytes;
    elder_bytes_ -= e.bytes;
    --e.block->live_objects;
  }
  elder_entries_.erase(keep, elder_entries_.end());

  // Free blocks whose last object died (a donated young block lingers
  // until its final pinned resident is collected — real fragmentation).
  release_dead_blocks();
}

void ManagedHeap::sweep_slice_locked() {
  pal::Stopwatch sw;
  std::size_t budget = std::max<std::size_t>(1, sweep_budget_);
  while (budget > 0 && sweep_read_ < sweep_end_) {
    const ElderEntry& e = elder_entries_[sweep_read_++];
    if (marked_elder_.contains(e.obj)) {
      elder_entries_[sweep_write_++] = e;
    } else {
      ++stats_.elder_freed_objects;
      stats_.elder_freed_bytes += e.bytes;
      elder_bytes_ -= e.bytes;
      --e.block->live_objects;
    }
    --budget;
  }
  if (sweep_read_ >= sweep_end_) {
    elder_entries_.erase(
        elder_entries_.begin() + static_cast<std::ptrdiff_t>(sweep_write_),
        elder_entries_.begin() + static_cast<std::ptrdiff_t>(sweep_end_));
    release_dead_blocks();
    ++stats_.elder_sweeps;
    phase_.store(GcPhase::kIdle, std::memory_order_relaxed);
  }
  ++stats_.sweep_slices;
  stats_.sweep_ns += sw.elapsed_ns();
}

}  // namespace motor::vm
