// Collection phases of the two-generation collector. See heap.hpp for the
// overall design and the paper sections each mechanism reproduces.
#include <algorithm>

#include "pal/clock.hpp"
#include "vm/heap.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

namespace {

/// Root visitor that marks reachable objects into a worklist.
class MarkVisitor final : public RootVisitor {
 public:
  MarkVisitor(ManagedHeap& heap, std::vector<Obj>& worklist,
              void (ManagedHeap::*trace)(Obj, std::vector<Obj>&))
      : heap_(heap), worklist_(worklist), trace_(trace) {}

  void visit(Obj* slot) override {
    if (*slot != nullptr) (heap_.*trace_)(*slot, worklist_);
  }

 private:
  ManagedHeap& heap_;
  std::vector<Obj>& worklist_;
  void (ManagedHeap::*trace_)(Obj, std::vector<Obj>&);
};

/// Root visitor that repoints slots at promoted objects.
class FixupVisitor final : public RootVisitor {
 public:
  void visit(Obj* slot) override {
    if (*slot != nullptr && is_forwarded(*slot)) {
      *slot = forwarding_target(*slot);
    }
  }
};

}  // namespace

void ManagedHeap::collect_locked(bool force_elder_sweep) {
  pal::Stopwatch pause;
  ++stats_.collections;

  // Mark phase, beginning with pin resolution: this is where Motor's
  // request-status-dependent pins are honoured or retired (§4.3).
  resolve_conditional_pins();
  mark_from_roots();

  // Plan and promote the young generation.
  std::vector<YoungRecord> records = scan_young();
  bool any_pinned_survivor = false;
  promote_young(records, any_pinned_survivor);
  fixup_references(records);

  if (any_pinned_survivor) {
    // "The entire block of younger generational memory is assigned to the
    // elder generation, thereby promoting pinned objects" (§5.2).
    donate_young_block(records);
    ++stats_.young_blocks_donated;
  } else {
    young_used_ = 0;
  }

  const bool sweep =
      force_elder_sweep ||
      ++collections_since_sweep_ >= config_.elder_sweep_interval;
  if (sweep) {
    sweep_elder();
    collections_since_sweep_ = 0;
    ++stats_.elder_sweeps;
  }
  clear_marks();

  for (const GcHook& hook : gc_hooks_) hook.fn(hook.ctx, stats_.collections);
  stats_.total_pause_ns += pause.elapsed_ns();
}

void ManagedHeap::resolve_conditional_pins() {
  gc_pinned_now_.clear();
  gc_pin_set_.clear();

  std::lock_guard lk(pin_mu_);
  for (const auto& [obj, count] : pin_counts_) gc_pinned_now_.push_back(obj);

  // Conditional pins: hold iff the transport operation is still running;
  // otherwise "the pinning request is no longer necessary and is
  // disregarded" (§7.4).
  auto keep = conditional_pins_.begin();
  for (auto& entry : conditional_pins_) {
    ++stats_.conditional_checked;
    if (entry.req->is_complete()) {
      ++stats_.conditional_dropped;
      continue;
    }
    gc_pinned_now_.push_back(entry.obj);
    *keep++ = std::move(entry);
  }
  conditional_pins_.erase(keep, conditional_pins_.end());

  for (Obj obj : gc_pinned_now_) gc_pin_set_.insert(obj);
  stats_.pinned_at_collection += gc_pin_set_.size();
}

void ManagedHeap::trace_object(Obj obj, std::vector<Obj>& worklist) {
  if (is_marked(obj)) return;
  set_mark(obj);
  worklist.push_back(obj);
}

void ManagedHeap::mark_from_roots() {
  std::vector<Obj> worklist;
  MarkVisitor visitor(*this, worklist, &ManagedHeap::trace_object);

  // Pinned objects are roots: the transport is actively reading them.
  for (Obj obj : gc_pinned_now_) trace_object(obj, worklist);
  // Thread stacks, native GCPROTECT slots, interpreter frames.
  vm_.enumerate_roots(visitor);
  // Static reference fields.
  vm_.types().for_each_type([&](MethodTable* mt) {
    for (void*& slot : mt->static_ref_slots()) {
      if (slot != nullptr) trace_object(static_cast<Obj>(slot), worklist);
    }
  });

  while (!worklist.empty()) {
    Obj obj = worklist.back();
    worklist.pop_back();
    const MethodTable* mt = obj_mt(obj);
    if (mt->is_array()) {
      if (mt->element_kind() == ElementKind::kObjectRef) {
        const std::int64_t n = array_length(obj);
        for (std::int64_t i = 0; i < n; ++i) {
          Obj elem = get_ref_element(obj, i);
          if (elem != nullptr) trace_object(elem, worklist);
        }
      }
    } else {
      for (std::uint32_t off : mt->reference_offsets()) {
        Obj field = get_ref_field(obj, off);
        if (field != nullptr) trace_object(field, worklist);
      }
    }
  }
}

std::vector<ManagedHeap::YoungRecord> ManagedHeap::scan_young() const {
  std::vector<YoungRecord> records;
  const std::byte* p = young_base_;
  while (p < young_base_ + young_used_) {
    Obj obj = reinterpret_cast<Obj>(const_cast<std::byte*>(p));
    const std::size_t size = object_total_bytes(obj);
    records.push_back(
        YoungRecord{obj, size, is_marked(obj), gc_pin_set_.contains(obj)});
    p += size;
  }
  return records;
}

void ManagedHeap::promote_young(std::vector<YoungRecord>& records,
                                bool& any_pinned_survivor) {
  for (YoungRecord& rec : records) {
    if (!rec.marked) {
      ++stats_.dead_young_objects;
      continue;
    }
    if (rec.pinned) {
      any_pinned_survivor = true;
      continue;  // not moved
    }
    // Copy-promote with compaction into the elder generation.
    Obj copy = elder_alloc(rec.bytes);
    std::memcpy(copy, rec.obj, rec.bytes);
    set_forwarding(rec.obj, copy);
    ++stats_.promoted_objects;
    stats_.promoted_bytes += rec.bytes;
  }
}

void ManagedHeap::fixup_slot(Obj* slot) {
  if (*slot != nullptr && is_forwarded(*slot)) {
    *slot = forwarding_target(*slot);
  }
}

void ManagedHeap::fixup_object_fields(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  if (mt->is_array()) {
    if (mt->element_kind() == ElementKind::kObjectRef) {
      const std::int64_t n = array_length(obj);
      for (std::int64_t i = 0; i < n; ++i) {
        Obj elem = get_ref_element(obj, i);
        if (elem != nullptr && is_forwarded(elem)) {
          set_ref_element(obj, i, forwarding_target(elem));
        }
      }
    }
    return;
  }
  for (std::uint32_t off : mt->reference_offsets()) {
    Obj field = get_ref_field(obj, off);
    if (field != nullptr && is_forwarded(field)) {
      set_ref_field(obj, off, forwarding_target(field));
    }
  }
}

void ManagedHeap::fixup_references(const std::vector<YoungRecord>& records) {
  FixupVisitor visitor;
  vm_.enumerate_roots(visitor);
  vm_.types().for_each_type([&](MethodTable* mt) {
    for (void*& slot : mt->static_ref_slots()) {
      Obj obj = static_cast<Obj>(slot);
      if (obj != nullptr && is_forwarded(obj)) slot = forwarding_target(obj);
    }
  });

  // Live elder objects (including this cycle's fresh promotions).
  for (const ElderEntry& e : elder_entries_) {
    if (is_marked(e.obj)) fixup_object_fields(e.obj);
  }
  // Pinned young survivors still sitting in the young block.
  for (const YoungRecord& rec : records) {
    if (rec.marked && rec.pinned) fixup_object_fields(rec.obj);
  }
}

void ManagedHeap::donate_young_block(const std::vector<YoungRecord>& records) {
  auto block = std::make_unique<ElderBlock>();
  block->storage = std::move(young_storage_);
  block->bytes = config_.young_bytes;
  block->donated_young = true;
  for (const YoungRecord& rec : records) {
    if (rec.marked && rec.pinned) {
      elder_entries_.push_back(ElderEntry{rec.obj, rec.bytes, block.get()});
      ++block->live_objects;
      elder_bytes_ += rec.bytes;
    }
  }
  MOTOR_CHECK(block->live_objects > 0, "donated young block with no pins");
  elder_blocks_.push_back(std::move(block));

  young_storage_ = std::make_unique<std::byte[]>(config_.young_bytes);
  young_base_ = young_storage_.get();
  young_used_ = 0;
}

void ManagedHeap::sweep_elder() {
  auto keep = elder_entries_.begin();
  for (ElderEntry& e : elder_entries_) {
    if (is_marked(e.obj)) {
      *keep++ = e;
      continue;
    }
    ++stats_.elder_freed_objects;
    stats_.elder_freed_bytes += e.bytes;
    elder_bytes_ -= e.bytes;
    --e.block->live_objects;
  }
  elder_entries_.erase(keep, elder_entries_.end());

  // Free blocks whose last object died (a donated young block lingers
  // until its final pinned resident is collected — real fragmentation).
  std::erase_if(elder_blocks_, [](const std::unique_ptr<ElderBlock>& b) {
    return b->live_objects == 0;
  });
}

void ManagedHeap::clear_marks() {
  for (const ElderEntry& e : elder_entries_) clear_mark(e.obj);
}

}  // namespace motor::vm
