#include "vm/handles.hpp"

// GcRoot is header-only; this TU anchors the library target.
namespace motor::vm {}
