// GC-protected handles for native (runtime-internal) code.
//
// FCalls hold raw object pointers the runtime cannot see; the SSCLI makes
// the programmer declare them with GCPROTECT macros so the collector can
// update them when objects move (paper §5.1). GcRoot is the RAII analog:
// while it lives, its slot is enumerated as a root and fixed up after
// promotion.
#pragma once

#include "vm/managed_thread.hpp"

namespace motor::vm {

class GcRoot {
 public:
  GcRoot(ManagedThread& thread, Obj initial = nullptr)
      : thread_(thread), value_(initial) {
    thread_.push_root(&value_);
  }
  ~GcRoot() { thread_.pop_root(&value_); }

  GcRoot(const GcRoot&) = delete;
  GcRoot& operator=(const GcRoot&) = delete;

  [[nodiscard]] Obj get() const noexcept { return value_; }
  void set(Obj v) noexcept { value_ = v; }
  Obj operator*() const noexcept { return value_; }

 private:
  ManagedThread& thread_;
  Obj value_;
};

/// A growable set of GC-protected objects with stable slots (deque), used
/// by deserializers whose object tables grow while allocation may trigger
/// collections.
class RootRange {
 public:
  explicit RootRange(ManagedThread& thread) : thread_(thread) {
    thread_.push_root_range(&objs_);
  }
  ~RootRange() { thread_.pop_root_range(&objs_); }

  RootRange(const RootRange&) = delete;
  RootRange& operator=(const RootRange&) = delete;

  void add(Obj obj) { objs_.push_back(obj); }
  [[nodiscard]] std::size_t size() const noexcept { return objs_.size(); }
  Obj& operator[](std::size_t i) { return objs_[i]; }
  [[nodiscard]] Obj at(std::size_t i) const { return objs_.at(i); }

 private:
  ManagedThread& thread_;
  std::deque<Obj> objs_;
};

}  // namespace motor::vm
