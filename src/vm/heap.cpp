#include "vm/heap.hpp"

#include <cstdlib>
#include <cstring>

#include "pal/clock.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

ManagedHeap::ManagedHeap(Vm& vm, HeapConfig config)
    : vm_(vm), config_(config) {
  MOTOR_CHECK(config_.young_bytes >= 4096, "nursery too small");
  // MOTOR_GC_INCREMENTAL=0|1 overrides the configured collection mode so
  // existing binaries (tests, ablations) can run either schedule without
  // a rebuild. Suites that pin a mode explicitly (the gc label's
  // inc-vs-stw comparisons) must run with the variable unset.
  if (const char* env = std::getenv("MOTOR_GC_INCREMENTAL")) {
    if (env[0] == '0') config_.incremental = false;
    if (env[0] == '1') config_.incremental = true;
  }
  if (config_.incremental) {
    MOTOR_CHECK(std::has_single_bit(config_.region_bytes) &&
                    config_.region_bytes >= 4096,
                "region_bytes must be a power of two >= 4096");
  }
  init_young_arena();
}

ManagedHeap::~ManagedHeap() = default;

void ManagedHeap::init_young_arena() {
  young_storage_ = std::make_unique<std::byte[]>(config_.young_bytes);
  young_base_ = young_storage_.get();
  MOTOR_CHECK((reinterpret_cast<std::uintptr_t>(young_base_) &
               (kObjectAlignment - 1)) == 0,
              "young block misaligned");

  // Baseline: one region spanning the nursery (shift 63 maps every
  // offset to index 0). Incremental: power-of-two regions.
  std::size_t span = config_.young_bytes;
  region_shift_ = 63;
  if (config_.incremental && config_.region_bytes < config_.young_bytes) {
    span = config_.region_bytes;
    region_shift_ = static_cast<unsigned>(std::bit_width(span) - 1);
  }
  const std::size_t n = (config_.young_bytes + span - 1) / span;
  regions_.assign(n, YoungRegion{});
  region_is_young_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    regions_[i].base = i * span;
    regions_[i].span = std::min(span, config_.young_bytes - regions_[i].base);
  }
  regions_[0].state = RegionState::kOpen;
  open_region_ = 0;
  young_used_ = 0;
  donated_bytes_ = 0;

  // Large objects go straight to elder; in incremental mode they must
  // also fit a single region.
  large_threshold_ = static_cast<std::size_t>(
      config_.large_object_fraction * static_cast<double>(config_.young_bytes));
  large_threshold_ = std::min(large_threshold_, span);
  trigger_bytes_ = static_cast<std::size_t>(
      config_.incremental_trigger *
      static_cast<double>(config_.young_bytes - donated_bytes_));

  young_mark_bits_.assign(
      (config_.young_bytes / kObjectAlignment + 63) / 64, 0);
}

std::byte* ManagedHeap::try_young_bump(std::size_t bytes) {
  YoungRegion* r = &regions_[static_cast<std::size_t>(open_region_)];
  if (r->state == RegionState::kOpen && r->used + bytes <= r->span) {
    std::byte* p = young_base_ + r->base + r->used;
    r->used += bytes;
    young_used_ += bytes;
    return p;
  }
  // Open region exhausted (or donated from under us): advance to the
  // next free region that can hold the request.
  if (r->state == RegionState::kOpen) r->state = RegionState::kFull;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    YoungRegion& cand = regions_[i];
    if (cand.state != RegionState::kFree || cand.used + bytes > cand.span) {
      continue;
    }
    cand.state = RegionState::kOpen;
    open_region_ = static_cast<int>(i);
    std::byte* p = young_base_ + cand.base + cand.used;
    cand.used += bytes;
    young_used_ += bytes;
    return p;
  }
  return nullptr;
}

Obj ManagedHeap::elder_alloc(std::size_t bytes) {
  const std::size_t need = align_up(bytes);
  if (elder_open_ == nullptr ||
      elder_open_->bytes - elder_open_->used < need) {
    auto block = std::make_unique<ElderBlock>();
    block->bytes = std::max(kElderChunkBytes, need);
    block->storage = std::make_unique<std::byte[]>(block->bytes);
    block->base = block->storage.get();
    elder_open_ = block.get();
    elder_blocks_.push_back(std::move(block));
  }
  Obj obj = reinterpret_cast<Obj>(elder_open_->base + elder_open_->used);
  elder_open_->used += need;
  ++elder_open_->live_objects;
  elder_entries_.push_back(ElderEntry{obj, bytes, elder_open_});
  elder_bytes_ += bytes;
  return obj;
}

void ManagedHeap::pace_incremental(std::size_t upcoming_bytes) {
  bytes_since_slice_ += upcoming_bytes;
  const GcPhase phase = phase_.load(std::memory_order_relaxed);
  if (phase == GcPhase::kIdle) {
    if (young_used_ + upcoming_bytes >= trigger_bytes_) incremental_step();
  } else if (bytes_since_slice_ >= config_.slice_alloc_step) {
    bytes_since_slice_ = 0;
    incremental_step();
  }
}

Obj ManagedHeap::allocate_raw(const MethodTable* mt, std::size_t total_bytes) {
  const bool large = total_bytes > large_threshold_;
  std::byte* p = nullptr;
  if (!large) {
    // Incremental pacing: start or advance a cycle before the bump so a
    // completed relocation can hand regions back first.
    if (config_.incremental) pace_incremental(total_bytes);
    p = try_young_bump(total_bytes);
    if (p == nullptr) {
      // "Garbage collection ... is triggered by a request for a new
      // object" (§5.2).
      collect();
      p = try_young_bump(total_bytes);
    }
  }
  Obj obj;
  if (p != nullptr) {
    std::memset(p, 0, total_bytes);
    obj = reinterpret_cast<Obj>(p);
  } else {
    obj = elder_alloc(total_bytes);
    std::memset(obj, 0, total_bytes);
  }
  set_obj_mt(obj, mt);
  return obj;
}

Obj ManagedHeap::alloc_object(const MethodTable* mt) {
  MOTOR_CHECK(!mt->is_array(), "alloc_object on array type");
  return allocate_raw(mt, align_up(kHeaderBytes + mt->instance_bytes()));
}

Obj ManagedHeap::alloc_array(const MethodTable* mt, std::int64_t length) {
  MOTOR_CHECK(mt->is_array() && mt->rank() == 1,
              "alloc_array needs a rank-1 array type");
  MOTOR_CHECK(length >= 0, "negative array length");
  const std::size_t total =
      align_up(kHeaderBytes + array_bounds_bytes(1) +
               static_cast<std::size_t>(length) * mt->element_bytes());
  Obj obj = allocate_raw(mt, total);
  std::memcpy(obj_data(obj), &length, sizeof length);
  return obj;
}

Obj ManagedHeap::alloc_md_array(const MethodTable* mt,
                                const std::vector<std::int32_t>& dims) {
  MOTOR_CHECK(mt->is_array() && mt->rank() == static_cast<int>(dims.size()),
              "dims do not match array rank");
  std::int64_t total_elems = 1;
  for (std::int32_t d : dims) {
    MOTOR_CHECK(d >= 0, "negative array dimension");
    total_elems *= d;
  }
  if (mt->rank() == 1) return alloc_array(mt, total_elems);
  const std::size_t total =
      align_up(kHeaderBytes + array_bounds_bytes(mt->rank()) +
               static_cast<std::size_t>(total_elems) * mt->element_bytes());
  Obj obj = allocate_raw(mt, total);
  std::memcpy(obj_data(obj), dims.data(), dims.size() * sizeof(std::int32_t));
  return obj;
}

void ManagedHeap::pin(Obj obj) {
  bool shade = false;
  {
    std::lock_guard lk(pin_mu_);
    int& count = pin_counts_[obj];
    if (++count == 1) {
      pin_set_.insert(obj);
      if (in_young(obj)) ++regions_[region_index(obj)].pin_count;
    }
    ++stats_.pin_calls;
    shade = config_.incremental &&
            phase_.load(std::memory_order_relaxed) == GcPhase::kMarking;
  }
  // A pin taken mid-cycle makes the object a root of this cycle.
  if (shade) shade_external(obj);
}

void ManagedHeap::unpin(Obj obj) {
  std::lock_guard lk(pin_mu_);
  auto it = pin_counts_.find(obj);
  MOTOR_CHECK(it != pin_counts_.end(), "unpin of object that is not pinned");
  ++stats_.unpin_calls;
  if (--it->second == 0) {
    pin_counts_.erase(it);
    pin_set_.erase(obj);
    if (in_young(obj)) {
      YoungRegion& r = regions_[region_index(obj)];
      MOTOR_CHECK(r.pin_count > 0, "region pin count underflow");
      --r.pin_count;
    }
  }
}

bool ManagedHeap::is_pinned(Obj obj) const {
  std::lock_guard lk(pin_mu_);
  return pin_counts_.contains(obj);
}

void ManagedHeap::add_conditional_pin(Obj obj, mpi::Request req) {
  MOTOR_CHECK(req != nullptr, "conditional pin needs a request");
  bool shade = false;
  {
    std::lock_guard lk(pin_mu_);
    conditional_pins_.push_back(ConditionalPin{obj, std::move(req)});
    shade = config_.incremental &&
            phase_.load(std::memory_order_relaxed) == GcPhase::kMarking;
  }
  if (shade) shade_external(obj);
}

bool ManagedHeap::in_young(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  if (b < young_base_ || b >= young_base_ + config_.young_bytes) return false;
  return region_is_young_[(static_cast<std::size_t>(b - young_base_)) >>
                          region_shift_] != 0;
}

bool ManagedHeap::in_elder(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const auto& block : elder_blocks_) {
    if (b >= block->base && b < block->base + block->bytes) return true;
  }
  return false;
}

std::size_t ManagedHeap::donated_region_count() const noexcept {
  std::size_t n = 0;
  for (const YoungRegion& r : regions_) {
    if (r.state == RegionState::kDonated) ++n;
  }
  return n;
}

void ManagedHeap::collect(bool force_elder_sweep) {
  vm_.safepoints().run_stop_the_world([this, force_elder_sweep] {
    pal::Stopwatch pause;
    if (config_.incremental) {
      // A full collection finishes whatever is in flight, then runs one
      // complete cycle (mark, relocate, and — when due — sweep).
      while (phase_.load(std::memory_order_relaxed) == GcPhase::kSweeping) {
        sweep_slice_locked();
      }
      if (phase_.load(std::memory_order_relaxed) == GcPhase::kIdle) {
        begin_cycle_locked(force_elder_sweep);
      }
      finish_cycle_locked(force_elder_sweep);
      while (phase_.load(std::memory_order_relaxed) == GcPhase::kSweeping) {
        sweep_slice_locked();
      }
      if (force_elder_sweep && !cycle_full_) {
        // The in-flight cycle was generational (young-only marks), so it
        // could not satisfy the forced sweep; run a full cycle now.
        begin_cycle_locked(true);
        finish_cycle_locked(true);
        while (phase_.load(std::memory_order_relaxed) == GcPhase::kSweeping) {
          sweep_slice_locked();
        }
      }
    } else {
      collect_locked(force_elder_sweep);
    }
    const std::uint64_t ns = pause.elapsed_ns();
    stats_.total_pause_ns += ns;
    stats_.pause_hist.record(ns);
  });
}

void ManagedHeap::incremental_step() {
  if (!config_.incremental) return;
  vm_.safepoints().run_stop_the_world([this] {
    pal::Stopwatch pause;
    switch (phase_.load(std::memory_order_relaxed)) {
      case GcPhase::kIdle:
        begin_cycle_locked(false);
        break;
      case GcPhase::kMarking:
        mark_slice_locked();
        break;
      case GcPhase::kSweeping:
        sweep_slice_locked();
        break;
    }
    const std::uint64_t ns = pause.elapsed_ns();
    stats_.total_pause_ns += ns;
    stats_.pause_hist.record(ns);
  });
}

void ManagedHeap::add_gc_hook(GcEpochHook hook, void* ctx) {
  gc_hooks_.push_back(GcHook{hook, ctx});
}

void ManagedHeap::verify_heap() const {
  std::unordered_set<const void*> valid;
  // Young regions are linearly walkable between collections.
  for (const YoungRegion& r : regions_) {
    if (r.state == RegionState::kDonated) continue;
    const std::byte* p = young_base_ + r.base;
    const std::byte* end = p + r.used;
    while (p < end) {
      Obj obj = reinterpret_cast<Obj>(const_cast<std::byte*>(p));
      const MethodTable* mt = obj_mt(obj);
      MOTOR_CHECK(mt != nullptr, "verify: null MethodTable");
      const std::size_t size = object_total_bytes(obj);
      MOTOR_CHECK(size >= kHeaderBytes && p + size <= end,
                  "verify: object overruns young region");
      valid.insert(obj);
      p += size;
    }
  }
  // During a sliced sweep, unmarked entries below the end_ snapshot are
  // dead (their fields may dangle at objects already relocated) and the
  // compaction window holds stale duplicates; only marked entries are
  // authoritative there.
  const bool sweeping =
      phase_.load(std::memory_order_relaxed) == GcPhase::kSweeping;
  for (std::size_t i = 0; i < elder_entries_.size(); ++i) {
    const ElderEntry& e = elder_entries_[i];
    if (sweeping && i < sweep_end_ && !marked_elder_.contains(e.obj)) continue;
    valid.insert(e.obj);
  }

  auto check_ref = [&](Obj target) {
    MOTOR_CHECK(target == nullptr || valid.contains(target),
                "verify: dangling reference");
  };
  auto check_object = [&](Obj obj) {
    const MethodTable* mt = obj_mt(obj);
    if (mt->is_array()) {
      if (mt->element_kind() == ElementKind::kObjectRef) {
        const std::int64_t n = array_length(obj);
        for (std::int64_t i = 0; i < n; ++i) check_ref(get_ref_element(obj, i));
      }
    } else {
      for (std::uint32_t off : mt->reference_offsets()) {
        check_ref(get_ref_field(obj, off));
      }
    }
  };
  for (const void* v : valid) {
    check_object(reinterpret_cast<Obj>(const_cast<void*>(v)));
  }

  // The incrementally maintained pin mirrors must agree with the
  // authoritative pin table.
  std::lock_guard lk(pin_mu_);
  MOTOR_CHECK(pin_set_.size() == pin_counts_.size(),
              "verify: pin_set_ out of sync with pin_counts_");
  std::vector<std::uint32_t> region_pins(regions_.size(), 0);
  for (const auto& [obj, count] : pin_counts_) {
    MOTOR_CHECK(count > 0, "verify: non-positive pin count");
    MOTOR_CHECK(pin_set_.contains(obj), "verify: pinned object not in mirror");
    if (in_young(obj)) ++region_pins[region_index(obj)];
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    MOTOR_CHECK(regions_[r].pin_count == region_pins[r],
                "verify: region pin count drift");
  }
}

}  // namespace motor::vm
