#include "vm/heap.hpp"

#include <cstring>

#include "vm/vm.hpp"

namespace motor::vm {

ManagedHeap::ManagedHeap(Vm& vm, HeapConfig config)
    : vm_(vm), config_(config) {
  MOTOR_CHECK(config_.young_bytes >= 4096, "nursery too small");
  young_storage_ = std::make_unique<std::byte[]>(config_.young_bytes);
  young_base_ = young_storage_.get();
  MOTOR_CHECK((reinterpret_cast<std::uintptr_t>(young_base_) &
               (kObjectAlignment - 1)) == 0,
              "young block misaligned");
}

ManagedHeap::~ManagedHeap() = default;

std::byte* ManagedHeap::try_young_bump(std::size_t bytes) {
  if (young_used_ + bytes > config_.young_bytes) return nullptr;
  std::byte* p = young_base_ + young_used_;
  young_used_ += bytes;
  return p;
}

Obj ManagedHeap::elder_alloc(std::size_t bytes) {
  auto block = std::make_unique<ElderBlock>();
  block->storage = std::make_unique<std::byte[]>(bytes);
  block->bytes = bytes;
  block->live_objects = 1;
  Obj obj = reinterpret_cast<Obj>(block->storage.get());
  elder_entries_.push_back(ElderEntry{obj, bytes, block.get()});
  elder_blocks_.push_back(std::move(block));
  elder_bytes_ += bytes;
  return obj;
}

Obj ManagedHeap::allocate_raw(const MethodTable* mt, std::size_t total_bytes) {
  const bool large = static_cast<double>(total_bytes) >
                     config_.large_object_fraction *
                         static_cast<double>(config_.young_bytes);
  std::byte* p = nullptr;
  if (!large) {
    p = try_young_bump(total_bytes);
    if (p == nullptr) {
      // "Garbage collection ... is triggered by a request for a new
      // object" (§5.2).
      collect();
      p = try_young_bump(total_bytes);
    }
  }
  Obj obj;
  if (p != nullptr) {
    std::memset(p, 0, total_bytes);
    obj = reinterpret_cast<Obj>(p);
  } else {
    obj = elder_alloc(total_bytes);
    std::memset(obj, 0, total_bytes);
  }
  set_obj_mt(obj, mt);
  return obj;
}

Obj ManagedHeap::alloc_object(const MethodTable* mt) {
  MOTOR_CHECK(!mt->is_array(), "alloc_object on array type");
  return allocate_raw(mt, align_up(kHeaderBytes + mt->instance_bytes()));
}

Obj ManagedHeap::alloc_array(const MethodTable* mt, std::int64_t length) {
  MOTOR_CHECK(mt->is_array() && mt->rank() == 1,
              "alloc_array needs a rank-1 array type");
  MOTOR_CHECK(length >= 0, "negative array length");
  const std::size_t total =
      align_up(kHeaderBytes + array_bounds_bytes(1) +
               static_cast<std::size_t>(length) * mt->element_bytes());
  Obj obj = allocate_raw(mt, total);
  std::memcpy(obj_data(obj), &length, sizeof length);
  return obj;
}

Obj ManagedHeap::alloc_md_array(const MethodTable* mt,
                                const std::vector<std::int32_t>& dims) {
  MOTOR_CHECK(mt->is_array() && mt->rank() == static_cast<int>(dims.size()),
              "dims do not match array rank");
  std::int64_t total_elems = 1;
  for (std::int32_t d : dims) {
    MOTOR_CHECK(d >= 0, "negative array dimension");
    total_elems *= d;
  }
  if (mt->rank() == 1) return alloc_array(mt, total_elems);
  const std::size_t total =
      align_up(kHeaderBytes + array_bounds_bytes(mt->rank()) +
               static_cast<std::size_t>(total_elems) * mt->element_bytes());
  Obj obj = allocate_raw(mt, total);
  std::memcpy(obj_data(obj), dims.data(), dims.size() * sizeof(std::int32_t));
  return obj;
}

void ManagedHeap::pin(Obj obj) {
  std::lock_guard lk(pin_mu_);
  ++pin_counts_[obj];
  ++stats_.pin_calls;
}

void ManagedHeap::unpin(Obj obj) {
  std::lock_guard lk(pin_mu_);
  auto it = pin_counts_.find(obj);
  MOTOR_CHECK(it != pin_counts_.end(), "unpin of object that is not pinned");
  ++stats_.unpin_calls;
  if (--it->second == 0) pin_counts_.erase(it);
}

bool ManagedHeap::is_pinned(Obj obj) const {
  std::lock_guard lk(pin_mu_);
  return pin_counts_.contains(obj);
}

void ManagedHeap::add_conditional_pin(Obj obj, mpi::Request req) {
  MOTOR_CHECK(req != nullptr, "conditional pin needs a request");
  std::lock_guard lk(pin_mu_);
  conditional_pins_.push_back(ConditionalPin{obj, std::move(req)});
}

bool ManagedHeap::in_young(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= young_base_ && b < young_base_ + config_.young_bytes;
}

bool ManagedHeap::in_elder(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const auto& block : elder_blocks_) {
    if (b >= block->storage.get() && b < block->storage.get() + block->bytes) {
      return true;
    }
  }
  return false;
}

void ManagedHeap::collect(bool force_elder_sweep) {
  vm_.safepoints().run_stop_the_world(
      [this, force_elder_sweep] { collect_locked(force_elder_sweep); });
}

void ManagedHeap::add_gc_hook(GcEpochHook hook, void* ctx) {
  gc_hooks_.push_back(GcHook{hook, ctx});
}

void ManagedHeap::verify_heap() const {
  std::unordered_set<const void*> valid;
  // Young generation is linearly walkable between collections.
  const std::byte* p = young_base_;
  while (p < young_base_ + young_used_) {
    Obj obj = reinterpret_cast<Obj>(const_cast<std::byte*>(p));
    const MethodTable* mt = obj_mt(obj);
    MOTOR_CHECK(mt != nullptr, "verify: null MethodTable");
    const std::size_t size = object_total_bytes(obj);
    MOTOR_CHECK(size >= kHeaderBytes && p + size <= young_base_ + young_used_,
                "verify: object overruns young block");
    valid.insert(obj);
    p += size;
  }
  for (const ElderEntry& e : elder_entries_) valid.insert(e.obj);

  auto check_ref = [&](Obj target) {
    MOTOR_CHECK(target == nullptr || valid.contains(target),
                "verify: dangling reference");
  };
  auto check_object = [&](Obj obj) {
    const MethodTable* mt = obj_mt(obj);
    if (mt->is_array()) {
      if (mt->element_kind() == ElementKind::kObjectRef) {
        const std::int64_t n = array_length(obj);
        for (std::int64_t i = 0; i < n; ++i) check_ref(get_ref_element(obj, i));
      }
    } else {
      for (std::uint32_t off : mt->reference_offsets()) {
        check_ref(get_ref_field(obj, off));
      }
    }
  };
  for (const void* v : valid) {
    check_object(reinterpret_cast<Obj>(const_cast<void*>(v)));
  }
}

}  // namespace motor::vm
