// The two-generation managed heap (paper §5.2) with Motor's pin machinery
// (§4.3, §7.4).
//
// * Young generation: one contiguous block, bump allocation. Collections
//   promote live objects to the elder generation by copying (compaction).
// * Pinned objects are not moved. If any pinned object survives a
//   collection, the ENTIRE young block is donated to the elder generation
//   (promoting the pinned objects in place) and a fresh young block is
//   allocated — exactly the SSCLI behaviour the paper describes.
// * Elder generation: per-object allocations, mark-sweep, never compacted.
//   Swept only on "full" collections (elder pressure or every Nth young
//   collection), so it is "collected less frequently".
// * Conditional pin requests — Motor's non-blocking unpin mechanism — are
//   resolved during the mark phase: an entry pins its object iff the
//   associated MPI request is still incomplete; completed entries are
//   dropped (§4.3/§7.4).
//
// Collections are triggered by allocation (a request for a new object) and
// run under stop-the-world via the SafepointController.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mpi/request.hpp"
#include "vm/object.hpp"

namespace motor::vm {

class Vm;

struct HeapConfig {
  std::size_t young_bytes = 1 << 20;  // 1 MiB nursery
  /// Objects larger than this fraction of the nursery allocate directly in
  /// the elder generation (large-object path).
  double large_object_fraction = 0.25;
  /// Sweep the elder generation every Nth collection (1 = every time).
  int elder_sweep_interval = 4;
};

struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t elder_sweeps = 0;
  std::uint64_t promoted_objects = 0;
  std::uint64_t promoted_bytes = 0;
  std::uint64_t dead_young_objects = 0;
  std::uint64_t young_blocks_donated = 0;
  std::uint64_t pinned_at_collection = 0;     // explicit + conditional holds
  std::uint64_t conditional_checked = 0;      // entries examined at mark
  std::uint64_t conditional_dropped = 0;      // entries whose request completed
  std::uint64_t elder_freed_objects = 0;
  std::uint64_t elder_freed_bytes = 0;
  std::uint64_t pin_calls = 0;
  std::uint64_t unpin_calls = 0;
  std::uint64_t total_pause_ns = 0;
};

/// Root enumeration contract: the VM walks every slot that may hold a
/// managed reference and hands its *address* to the collector so moved
/// objects can be repointed.
class RootVisitor {
 public:
  virtual ~RootVisitor() = default;
  virtual void visit(Obj* slot) = 0;
};

class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void enumerate_roots(RootVisitor& visitor) = 0;
};

class ManagedHeap {
 public:
  explicit ManagedHeap(Vm& vm, HeapConfig config = HeapConfig{});
  ~ManagedHeap();

  ManagedHeap(const ManagedHeap&) = delete;
  ManagedHeap& operator=(const ManagedHeap&) = delete;

  // ---- allocation (may trigger collection) ----
  Obj alloc_object(const MethodTable* mt);
  Obj alloc_array(const MethodTable* mt, std::int64_t length);
  Obj alloc_md_array(const MethodTable* mt,
                     const std::vector<std::int32_t>& dims);

  // ---- pinning ----

  /// Counted explicit pin: the object is a root and will not move while
  /// any pin is outstanding.
  void pin(Obj obj);
  void unpin(Obj obj);
  [[nodiscard]] bool is_pinned(Obj obj) const;
  [[nodiscard]] std::size_t pin_table_size() const {
    return pin_counts_.size();
  }

  /// Motor's non-blocking pin: holds exactly while `req` is incomplete,
  /// evaluated during the mark phase of each collection.
  void add_conditional_pin(Obj obj, mpi::Request req);
  [[nodiscard]] std::size_t conditional_pin_count() const {
    return conditional_pins_.size();
  }

  // ---- generation queries (the Motor pinning-policy primitive) ----

  /// True iff `p` lies within the current young-generation block
  /// ("checks the object's internal memory address against the boundaries
  /// of the younger generation", §7.4).
  [[nodiscard]] bool in_young(const void* p) const noexcept;
  [[nodiscard]] bool in_elder(const void* p) const;

  // ---- collection ----

  /// Force a collection (allocation triggers this automatically).
  void collect(bool force_elder_sweep = false);

  /// GC-epoch counter: bumped once per collection. The Motor buffer pool
  /// uses it to detect buffers unused since the last collection (§7.5).
  /// Callbacks run during collection get invoked after sweeping.
  using GcEpochHook = void (*)(void* ctx, std::uint64_t epoch);
  void add_gc_hook(GcEpochHook hook, void* ctx);

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return stats_.collections;
  }
  [[nodiscard]] std::size_t young_used() const noexcept { return young_used_; }
  [[nodiscard]] std::size_t young_capacity() const noexcept {
    return config_.young_bytes;
  }
  [[nodiscard]] std::size_t elder_object_count() const {
    return elder_entries_.size();
  }
  [[nodiscard]] std::size_t elder_bytes() const noexcept {
    return elder_bytes_;
  }

  /// Walk the whole heap and verify every header points at a registered
  /// MethodTable and every reference field targets a live heap object.
  /// Throws FatalError on corruption. (Test/diagnostic aid.)
  void verify_heap() const;

 private:
  struct ElderBlock {
    std::unique_ptr<std::byte[]> storage;
    std::size_t bytes = 0;
    int live_objects = 0;
    bool donated_young = false;
  };
  struct ElderEntry {
    Obj obj;
    std::size_t bytes;
    ElderBlock* block;
  };
  struct ConditionalPin {
    Obj obj;
    mpi::Request req;
  };
  struct GcHook {
    GcEpochHook fn;
    void* ctx;
  };

  struct YoungRecord {
    Obj obj;
    std::size_t bytes;
    bool marked;
    bool pinned;
  };

  std::byte* try_young_bump(std::size_t bytes);
  Obj allocate_raw(const MethodTable* mt, std::size_t total_bytes);
  Obj elder_alloc(std::size_t bytes);
  void collect_locked(bool force_elder_sweep);

  // Collection phases (gc.cpp).
  void resolve_conditional_pins();
  void mark_from_roots();
  void trace_object(Obj obj, std::vector<Obj>& worklist);
  std::vector<YoungRecord> scan_young() const;
  void promote_young(std::vector<YoungRecord>& records,
                     bool& any_pinned_survivor);
  void fixup_references(const std::vector<YoungRecord>& records);
  void fixup_object_fields(Obj obj);
  static void fixup_slot(Obj* slot);
  void donate_young_block(const std::vector<YoungRecord>& records);
  void sweep_elder();
  void clear_marks();

  Vm& vm_;
  HeapConfig config_;

  std::unique_ptr<std::byte[]> young_storage_;
  std::byte* young_base_ = nullptr;
  std::size_t young_used_ = 0;

  std::vector<std::unique_ptr<ElderBlock>> elder_blocks_;
  std::vector<ElderEntry> elder_entries_;
  std::size_t elder_bytes_ = 0;

  // Pin structures are touched by any managed thread; the GC reads them
  // only inside stop-the-world, but mutator threads race each other.
  mutable std::mutex pin_mu_;
  std::unordered_map<Obj, int> pin_counts_;
  std::vector<ConditionalPin> conditional_pins_;
  std::vector<GcHook> gc_hooks_;

  // Per-collection scratch (valid only inside collect()).
  std::vector<Obj> gc_pinned_now_;
  std::unordered_set<Obj> gc_pin_set_;
  int collections_since_sweep_ = 0;

  GcStats stats_;
};

}  // namespace motor::vm
