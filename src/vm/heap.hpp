// The two-generation managed heap (paper §5.2) with Motor's pin machinery
// (§4.3, §7.4) and an optional pause-bounded incremental collection mode.
//
// * Young generation: one contiguous arena, bump allocation. In the
//   stop-the-world baseline the arena is a single block; in incremental
//   mode it is partitioned into power-of-two regions so promotion and
//   donation decisions are made per region instead of for the whole
//   nursery.
// * Pinned objects are not moved. Baseline: if any pinned object survives
//   a collection, the ENTIRE young block is donated to the elder
//   generation (promoting the pinned objects in place) and a fresh young
//   block is allocated — exactly the SSCLI behaviour the paper describes.
//   Incremental: the decision is pin-density-aware and per region — a
//   region with no pins is evacuated (copy-promoted), a pinned and
//   live-dense region is promoted wholesale in place, and a pinned but
//   sparse region evacuates its unpinned survivors and donates the region
//   with the pinned residents left where the transport expects them.
//   Donated regions return to the young free pool when their last
//   resident dies.
// * Elder generation: per-object allocations, mark-sweep, never
//   compacted. Swept only on "full" collections (every Nth young
//   collection), so it is "collected less frequently".
// * Conditional pin requests — Motor's non-blocking unpin mechanism — are
//   resolved at the start of each collection and again at every mark
//   slice boundary in incremental mode: an entry pins its object iff the
//   associated MPI request is still incomplete; completed entries are
//   dropped (§4.3/§7.4), so in-flight zero-copy sends stay correct across
//   slices.
//
// Incremental mode (HeapConfig::incremental) splits a collection into
// bounded stop-the-world slices driven by the safepoint machinery:
// begin (pin resolve + root snapshot), N mark slices, a final pause
// (root re-scan, residual drain, relocation, fixup), then sliced elder
// sweeping. Mutators run between slices; a Dijkstra-style write barrier
// on reference stores (see write_barrier) shades newly stored targets so
// the tri-color invariant holds, and records elder objects that may
// reference the young generation so the final fixup is bounded by the
// mutated set instead of the whole live elder heap. Marks live in side
// structures (a young bitmap and an elder mark set), never in object
// headers, so mutator-side shading cannot race header reads.
//
// Collections are triggered by allocation (a request for a new object)
// and every pause runs under stop-the-world via the SafepointController.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mpi/request.hpp"
#include "vm/object.hpp"

namespace motor::vm {

class Vm;

struct HeapConfig {
  std::size_t young_bytes = 1 << 20;  // 1 MiB nursery
  /// Objects larger than this fraction of the nursery allocate directly in
  /// the elder generation (large-object path).
  double large_object_fraction = 0.25;
  /// Sweep the elder generation every Nth collection (1 = every time).
  int elder_sweep_interval = 4;

  // ---- pause-bounded (incremental) collection ----

  /// Split collections into bounded mark/sweep slices with a mutator
  /// write barrier. Off = the paper-faithful stop-the-world baseline;
  /// every existing suite and the A1 ablation run against that default.
  bool incremental = false;
  /// Young-region granularity in incremental mode (power of two). The
  /// baseline always uses a single region spanning the whole nursery.
  std::size_t region_bytes = 256 * 1024;
  /// Young occupancy fraction that starts a marking cycle.
  double incremental_trigger = 0.5;
  /// Bytes of young allocation between consecutive GC slices.
  std::size_t slice_alloc_step = 64 * 1024;
  /// Minimum objects traced per mark slice (the pacer raises this when
  /// the previous cycle marked more than the remaining slices can cover).
  std::size_t mark_slice_objects = 2048;
  /// Elder entries examined per sweep slice.
  std::size_t sweep_slice_entries = 16384;
  /// A pinned region whose live-byte fraction is at least this is
  /// promoted wholesale in place instead of being evacuated around its
  /// pins.
  double wholesale_density = 0.5;
};

/// Log2-bucketed pause-duration histogram (exact max, bucket-resolution
/// quantiles). Cheap enough to record every stop-the-world pause.
struct PauseHistogram {
  static constexpr int kBuckets = 40;  // bucket b covers [2^b, 2^{b+1}) ns
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t samples = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  void record(std::uint64_t ns) noexcept {
    int b = ns == 0 ? 0 : std::bit_width(ns) - 1;
    if (b >= kBuckets) b = kBuckets - 1;
    ++counts[static_cast<std::size_t>(b)];
    ++samples;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }

  /// Upper bound of the bucket holding the q-quantile sample (q in
  /// [0,1]); the top sample reports the exact max.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept {
    if (samples == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(samples - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[static_cast<std::size_t>(b)];
      if (seen > rank) {
        const std::uint64_t hi = (std::uint64_t{2} << b) - 1;
        return hi < max_ns ? hi : max_ns;
      }
    }
    return max_ns;
  }
};

/// Open-addressing pointer set (linear probing, power-of-2 capacity, no
/// erase). Marking inserts one entry per live elder object — hundreds of
/// thousands per cycle at production heap sizes — and a node-based set
/// would put that many tiny chunks on the system allocator, degrading it
/// badly enough that unrelated allocations inside a pause stall for
/// >100 ms. All slots live in one flat vector instead.
class PtrSet {
 public:
  void reserve(std::size_t expect) {
    std::size_t cap = kMinCapacity;
    while (cap < expect * 2) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }
  void clear() noexcept {
    std::fill(slots_.begin(), slots_.end(), nullptr);
    size_ = 0;
  }
  /// True if `p` was newly inserted (false: already present).
  bool insert(Obj p) {
    if (size_ * 2 >= slots_.size()) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = slot_of(p);
    while (slots_[i] != nullptr) {
      if (slots_[i] == p) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = p;
    ++size_;
    return true;
  }
  [[nodiscard]] bool contains(Obj p) const noexcept {
    if (size_ == 0) return false;
    std::size_t i = slot_of(p);
    while (slots_[i] != nullptr) {
      if (slots_[i] == p) return true;
      i = (i + 1) & (slots_.size() - 1);
    }
    return false;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  template <typename F>
  void for_each(F&& f) const {
    for (Obj p : slots_) {
      if (p != nullptr) f(p);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 64;
  [[nodiscard]] std::size_t slot_of(Obj p) const noexcept {
    auto x = reinterpret_cast<std::uintptr_t>(p);
    x *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing
    return static_cast<std::size_t>(x >> 32) & (slots_.size() - 1);
  }
  void rehash(std::size_t cap) {
    std::vector<Obj> old = std::move(slots_);
    slots_.assign(cap, nullptr);
    size_ = 0;
    for (Obj p : old) {
      if (p != nullptr) insert(p);
    }
  }
  std::vector<Obj> slots_;
  std::size_t size_ = 0;
};

struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t elder_sweeps = 0;
  std::uint64_t promoted_objects = 0;
  std::uint64_t promoted_bytes = 0;
  std::uint64_t dead_young_objects = 0;
  std::uint64_t young_blocks_donated = 0;
  std::uint64_t pinned_at_collection = 0;     // explicit + conditional holds
  std::uint64_t conditional_checked = 0;      // entries examined at resolve
  std::uint64_t conditional_dropped = 0;      // entries whose request completed
  std::uint64_t elder_freed_objects = 0;
  std::uint64_t elder_freed_bytes = 0;
  std::uint64_t pin_calls = 0;
  std::uint64_t unpin_calls = 0;
  std::uint64_t total_pause_ns = 0;

  // ---- pause-bounded collection ----
  std::uint64_t incremental_cycles = 0;   // cycles completed incrementally
  std::uint64_t young_mark_cycles = 0;    // cycles that skipped the elder graph
  std::uint64_t mark_slices = 0;
  std::uint64_t sweep_slices = 0;
  std::uint64_t barrier_shades = 0;       // objects shaded by the barrier
  std::uint64_t remset_records = 0;       // elder holders remembered
  std::uint64_t regions_evacuated = 0;
  std::uint64_t regions_promoted_wholesale = 0;
  std::uint64_t regions_donated_sparse = 0;
  std::uint64_t wholesale_promoted_objects = 0;
  // Per-phase totals across all pauses.
  std::uint64_t pin_resolve_ns = 0;
  std::uint64_t root_scan_ns = 0;
  std::uint64_t mark_ns = 0;
  std::uint64_t relocate_ns = 0;
  std::uint64_t sweep_ns = 0;
  PauseHistogram pause_hist;  // one sample per stop-the-world pause
};

/// Collection-cycle phase, observable between pauses in incremental mode
/// (the baseline completes a whole cycle inside one pause, so it always
/// reads kIdle from mutator code).
enum class GcPhase : int { kIdle = 0, kMarking = 1, kSweeping = 2 };

/// Root enumeration contract: the VM walks every slot that may hold a
/// managed reference and hands its *address* to the collector so moved
/// objects can be repointed.
class RootVisitor {
 public:
  virtual ~RootVisitor() = default;
  virtual void visit(Obj* slot) = 0;
};

class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void enumerate_roots(RootVisitor& visitor) = 0;
};

class ManagedHeap {
 public:
  explicit ManagedHeap(Vm& vm, HeapConfig config = HeapConfig{});
  ~ManagedHeap();

  ManagedHeap(const ManagedHeap&) = delete;
  ManagedHeap& operator=(const ManagedHeap&) = delete;

  // ---- allocation (may trigger collection) ----
  Obj alloc_object(const MethodTable* mt);
  Obj alloc_array(const MethodTable* mt, std::int64_t length);
  Obj alloc_md_array(const MethodTable* mt,
                     const std::vector<std::int32_t>& dims);

  // ---- pinning ----

  /// Counted explicit pin: the object is a root and will not move while
  /// any pin is outstanding.
  void pin(Obj obj);
  void unpin(Obj obj);
  [[nodiscard]] bool is_pinned(Obj obj) const;
  [[nodiscard]] std::size_t pin_table_size() const {
    return pin_counts_.size();
  }

  /// Motor's non-blocking pin: holds exactly while `req` is incomplete,
  /// evaluated when pins are resolved (each collection, and each slice
  /// boundary in incremental mode).
  void add_conditional_pin(Obj obj, mpi::Request req);
  [[nodiscard]] std::size_t conditional_pin_count() const {
    return conditional_pins_.size();
  }

  // ---- generation queries (the Motor pinning-policy primitive) ----

  /// True iff `p` lies within the young generation ("checks the object's
  /// internal memory address against the boundaries of the younger
  /// generation", §7.4). Donated regions are elder memory even while they
  /// still sit inside the arena.
  [[nodiscard]] bool in_young(const void* p) const noexcept;
  [[nodiscard]] bool in_elder(const void* p) const;

  // ---- barriered reference stores (incremental-mode contract) ----

  /// Dijkstra-style write barrier: after storing `target` into a
  /// reference slot of `holder`, shade `target` if a marking cycle is in
  /// progress, and remember elder holders that may now reference the
  /// young generation. A no-op (one branch) in the baseline; callers that
  /// only ever run stop-the-world may keep using raw set_ref_* stores.
  void write_barrier(Obj holder, Obj target);
  /// set_ref_field / set_ref_element plus the write barrier. All ref
  /// stores into live objects must go through these (or call
  /// write_barrier themselves) for incremental mode to be sound.
  void store_ref_field(Obj holder, std::uint32_t offset, Obj value);
  void store_ref_element(Obj array, std::int64_t index, Obj value);

  // ---- collection ----

  /// Force a complete collection (allocation triggers collection
  /// automatically). In incremental mode this finishes any in-flight
  /// cycle and runs a full one synchronously.
  void collect(bool force_elder_sweep = false);

  /// One bounded stop-the-world slice: starts a cycle when idle,
  /// advances marking, or advances the elder sweep. No-op in the
  /// baseline. Allocation paces these automatically; tests and benches
  /// may call it directly for deterministic stepping.
  void incremental_step();
  [[nodiscard]] GcPhase gc_phase() const noexcept {
    return phase_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool incremental_enabled() const noexcept {
    return config_.incremental;
  }

  /// GC-epoch counter: bumped once per collection. The Motor buffer pool
  /// uses it to detect buffers unused since the last collection (§7.5).
  /// Callbacks run when a cycle completes (after the inline sweep in the
  /// baseline, after relocation in incremental mode).
  using GcEpochHook = void (*)(void* ctx, std::uint64_t epoch);
  void add_gc_hook(GcEpochHook hook, void* ctx);

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return stats_.collections;
  }
  /// Bytes currently bump-allocated in young regions (donated regions
  /// are elder memory and do not count).
  [[nodiscard]] std::size_t young_used() const noexcept { return young_used_; }
  [[nodiscard]] std::size_t young_capacity() const noexcept {
    return config_.young_bytes;
  }
  [[nodiscard]] std::size_t young_region_count() const noexcept {
    return regions_.size();
  }
  /// Arena regions currently on loan to the elder generation.
  [[nodiscard]] std::size_t donated_region_count() const noexcept;
  [[nodiscard]] std::size_t elder_object_count() const {
    return elder_entries_.size();
  }
  [[nodiscard]] std::size_t elder_bytes() const noexcept {
    return elder_bytes_;
  }

  /// Walk the whole heap and verify every header points at a registered
  /// MethodTable and every reference field targets a live heap object,
  /// and that the incrementally maintained pin structures (pin_set_,
  /// per-region pin counts) agree with the authoritative pin table.
  /// Throws FatalError on corruption. (Test/diagnostic aid.)
  void verify_heap() const;

 private:
  enum class RegionState : std::uint8_t { kFree, kOpen, kFull, kDonated };

  struct YoungRegion {
    std::size_t base = 0;  // offset into the arena
    std::size_t span = 0;
    std::size_t used = 0;
    std::uint32_t pin_count = 0;  // distinct explicitly pinned residents
    RegionState state = RegionState::kFree;
  };

  struct ElderBlock {
    std::unique_ptr<std::byte[]> storage;  // null for arena-region-backed
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    std::size_t used = 0;  // bump cursor for chunked promotion blocks
    int live_objects = 0;
    bool donated_young = false;
    int region = -1;  // arena region index when region-backed
  };
  struct ElderEntry {
    Obj obj;
    std::size_t bytes;
    ElderBlock* block;
  };
  struct ConditionalPin {
    Obj obj;
    mpi::Request req;
  };
  struct GcHook {
    GcEpochHook fn;
    void* ctx;
  };

  struct YoungRecord {
    Obj obj;
    std::size_t bytes;
    int region;
    bool marked;
    bool pinned;  // explicit pin or held conditional pin
  };

  // Per-region relocation outcome aggregates.
  struct RegionPlan {
    std::size_t live_bytes = 0;
    std::size_t live_objects = 0;
    std::size_t pinned_objects = 0;
  };

  void init_young_arena();
  [[nodiscard]] std::size_t region_index(const void* p) const noexcept {
    return (static_cast<const std::byte*>(p) - young_base_) >> region_shift_;
  }
  std::byte* try_young_bump(std::size_t bytes);
  Obj allocate_raw(const MethodTable* mt, std::size_t total_bytes);
  Obj elder_alloc(std::size_t bytes);
  void pace_incremental(std::size_t upcoming_bytes);

  // Collection phases (gc.cpp). All run inside a stop-the-world pause.
  void collect_locked(bool force_elder_sweep);  // baseline: whole cycle
  void begin_cycle_locked(bool force_full);
  void mark_slice_locked();
  void finish_cycle_locked(bool force_elder_sweep);
  void sweep_slice_locked();
  void sweep_elder_full();
  void release_dead_blocks();

  void resolve_conditional_pins();
  void scan_roots(std::uint64_t& phase_ns);
  std::size_t drain_mark_worklist(std::size_t max_objects);
  void trace_children(Obj obj);
  std::vector<YoungRecord> scan_young(std::vector<RegionPlan>& plans);
  void relocate_young_locked(bool& any_donated);
  void fixup_object_fields(Obj obj);
  static void fixup_slot(Obj* slot);
  void donate_region(int region, const std::vector<YoungRecord>& records,
                     bool promote_all_marked);

  // Side-mark helpers. `*_unlocked` variants require either mark_mu_ or a
  // stop-the-world pause.
  [[nodiscard]] bool try_mark_unlocked(Obj obj);
  [[nodiscard]] bool is_side_marked_unlocked(Obj obj) const;
  void clear_side_marks();
  void barrier_slow(Obj holder, Obj target);
  void shade_external(Obj obj);  // shade from mutator context (locks)

  Vm& vm_;
  HeapConfig config_;

  // ---- young arena ----
  std::unique_ptr<std::byte[]> young_storage_;
  std::byte* young_base_ = nullptr;
  std::size_t young_used_ = 0;      // bump bytes across non-donated regions
  std::size_t donated_bytes_ = 0;   // arena bytes on loan to elder
  std::size_t large_threshold_ = 0;
  std::size_t trigger_bytes_ = 0;   // young_used_ level that starts a cycle
  unsigned region_shift_ = 63;
  std::vector<YoungRegion> regions_;
  // 1 = arena region is young memory; 0 = donated. Written only inside
  // stop-the-world pauses, read by mutator fast paths (in_young).
  std::vector<std::uint8_t> region_is_young_;
  int open_region_ = 0;

  // ---- elder generation ----
  // Promoted objects bump-allocate into shared chunks rather than one
  // malloc per object: hundreds of thousands of tiny live chunks degrade
  // the system allocator badly enough that unrelated allocations (e.g. a
  // root-vector realloc inside a pause) stall for >100 ms.
  static constexpr std::size_t kElderChunkBytes = 256 * 1024;
  std::vector<std::unique_ptr<ElderBlock>> elder_blocks_;
  ElderBlock* elder_open_ = nullptr;  // current bump chunk, if any
  std::vector<ElderEntry> elder_entries_;
  std::size_t elder_bytes_ = 0;

  // Pin structures are touched by any managed thread; the GC reads them
  // only inside stop-the-world, but mutator threads race each other.
  // Never hold pin_mu_ and mark_mu_ at the same time.
  mutable std::mutex pin_mu_;
  std::unordered_map<Obj, int> pin_counts_;
  // Incrementally maintained mirror of pin_counts_ keys (updated on the
  // 0<->1 transitions in pin/unpin, never rebuilt per collection).
  std::unordered_set<Obj> pin_set_;
  std::vector<ConditionalPin> conditional_pins_;
  // Conditional pins held by the current resolution (request incomplete).
  std::unordered_set<Obj> cond_held_;
  std::vector<GcHook> gc_hooks_;

  // ---- cycle state (side marks, worklist, remembered set) ----
  std::atomic<GcPhase> phase_{GcPhase::kIdle};
  // Guards side marks, the worklist and the remembered set against
  // concurrent mutator-side shading between slices.
  mutable std::mutex mark_mu_;
  std::vector<std::uint64_t> young_mark_bits_;  // bit per alignment slot
  PtrSet marked_elder_;
  std::vector<Obj> mark_worklist_;
  PtrSet remset_;                       // elder holders that may ref young
  std::vector<Obj> fresh_elder_;        // entries created by this relocation
  std::size_t bytes_since_slice_ = 0;
  std::size_t mark_budget_ = 0;         // objects per mark slice this cycle
  std::uint64_t marked_this_cycle_ = 0;
  std::uint64_t marked_last_full_ = 0;  // live estimate for full cycles
  std::uint64_t marked_last_young_ = 0;
  // Generational cycle kind. Full cycles trace the whole graph (elder
  // included) and may schedule an elder sweep; young cycles treat elder
  // as implicitly live and root the young subgraph at the remembered set
  // instead — their mark cost is bounded by the nursery, not the heap.
  // The baseline is always full. Written at cycle begin under mark_mu_,
  // read by try_mark_unlocked (mark_mu_ or stop-the-world).
  bool cycle_full_ = true;
  // Sliced elder-sweep cursors (two-index compaction over elder_entries_
  // up to the end_ snapshot; entries appended mid-sweep are never swept).
  std::size_t sweep_read_ = 0;
  std::size_t sweep_write_ = 0;
  std::size_t sweep_end_ = 0;
  std::size_t sweep_budget_ = 0;        // entries per sweep slice this cycle

  int collections_since_sweep_ = 0;
  GcStats stats_;
};

inline void ManagedHeap::write_barrier(Obj holder, Obj target) {
  // Baseline fast path: one branch, no atomics, no locks.
  if (!config_.incremental || target == nullptr) return;
  barrier_slow(holder, target);
}

inline void ManagedHeap::store_ref_field(Obj holder, std::uint32_t offset,
                                         Obj value) {
  set_ref_field(holder, offset, value);
  write_barrier(holder, value);
}

inline void ManagedHeap::store_ref_element(Obj array, std::int64_t index,
                                           Obj value) {
  set_ref_element(array, index, value);
  write_barrier(array, value);
}

}  // namespace motor::vm
