#include "vm/interpreter.hpp"

#include <cmath>
#include <cstring>

#include "common/status.hpp"
#include "vm/heap.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

namespace {

constexpr int kMaxCallDepth = 512;

[[noreturn]] void throw_managed(const char* what) {
  fatal("interpreter", what);
}

Value read_slot(ElementKind kind, const std::byte* p) {
  switch (kind) {
    case ElementKind::kBool:
    case ElementKind::kInt8: {
      std::int8_t v;
      std::memcpy(&v, p, 1);
      return Value::from_i32(v);
    }
    case ElementKind::kUInt8: {
      std::uint8_t v;
      std::memcpy(&v, p, 1);
      return Value::from_i32(v);
    }
    case ElementKind::kChar:
    case ElementKind::kUInt16: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return Value::from_i32(v);
    }
    case ElementKind::kInt16: {
      std::int16_t v;
      std::memcpy(&v, p, 2);
      return Value::from_i32(v);
    }
    case ElementKind::kInt32:
    case ElementKind::kUInt32: {
      std::int32_t v;
      std::memcpy(&v, p, 4);
      return Value::from_i32(v);
    }
    case ElementKind::kInt64:
    case ElementKind::kUInt64: {
      std::int64_t v;
      std::memcpy(&v, p, 8);
      return Value::from_i64(v);
    }
    case ElementKind::kFloat: {
      float v;
      std::memcpy(&v, p, 4);
      return Value::from_f64(v);
    }
    case ElementKind::kDouble: {
      double v;
      std::memcpy(&v, p, 8);
      return Value::from_f64(v);
    }
    case ElementKind::kObjectRef: {
      Obj v;
      std::memcpy(&v, p, 8);
      return Value::from_ref(v);
    }
  }
  throw_managed("bad element kind");
}

void write_slot(ElementKind kind, std::byte* p, const Value& v) {
  switch (kind) {
    case ElementKind::kBool:
    case ElementKind::kInt8:
    case ElementKind::kUInt8: {
      const auto x = static_cast<std::int8_t>(v.i32);
      std::memcpy(p, &x, 1);
      return;
    }
    case ElementKind::kChar:
    case ElementKind::kInt16:
    case ElementKind::kUInt16: {
      const auto x = static_cast<std::int16_t>(v.i32);
      std::memcpy(p, &x, 2);
      return;
    }
    case ElementKind::kInt32:
    case ElementKind::kUInt32:
      std::memcpy(p, &v.i32, 4);
      return;
    case ElementKind::kInt64:
    case ElementKind::kUInt64:
      std::memcpy(p, &v.i64, 8);
      return;
    case ElementKind::kFloat: {
      const auto x = static_cast<float>(v.f64);
      std::memcpy(p, &x, 4);
      return;
    }
    case ElementKind::kDouble:
      std::memcpy(p, &v.f64, 8);
      return;
    case ElementKind::kObjectRef:
      std::memcpy(p, &v.ref, 8);
      return;
  }
  throw_managed("bad element kind");
}

/// RAII frame push/pop so frames unwind on FatalError too.
class FrameGuard {
 public:
  FrameGuard(ManagedThread& thread, std::size_t n_slots) : thread_(thread) {
    thread_.frames().emplace_back();
    thread_.frames().back().locals.resize(n_slots);
  }
  ~FrameGuard() { thread_.frames().pop_back(); }
  Frame& frame() { return thread_.frames().back(); }

 private:
  ManagedThread& thread_;
};

}  // namespace

int Program::method_named(std::string_view name) const {
  for (std::size_t i = 0; i < methods.size(); ++i) {
    if (methods[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Value Interpreter::invoke(const Program& program, int method_index,
                          std::span<const Value> args) {
  MOTOR_CHECK(method_index >= 0 &&
                  method_index < static_cast<int>(program.methods.size()),
              "bad method index");
  return run(program, program.methods[static_cast<std::size_t>(method_index)],
             args, 0);
}

Value Interpreter::run(const Program& program, const Method& method,
                       std::span<const Value> args, int depth) {
  if (depth > kMaxCallDepth) throw_managed("StackOverflowException");
  MOTOR_CHECK(static_cast<int>(args.size()) == method.n_args,
              "argument count mismatch: " + method.name);

  FrameGuard guard(thread_,
                   static_cast<std::size_t>(method.n_args + method.n_locals));
  Frame& frame = guard.frame();
  for (std::size_t i = 0; i < args.size(); ++i) frame.locals[i] = args[i];
  std::vector<Value>& stack = frame.stack;

  auto pop = [&]() -> Value {
    if (stack.empty()) throw_managed("operand stack underflow");
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  auto pop_i64 = [&]() -> std::int64_t {
    Value v = pop();
    if (v.kind == Value::Kind::kI64) return v.i64;
    if (v.kind == Value::Kind::kI32) return v.i32;
    throw_managed("expected integer operand");
  };
  auto pop_ref = [&]() -> Obj {
    Value v = pop();
    if (!v.is_ref()) throw_managed("expected object reference");
    return v.ref;
  };

  std::size_t pc = 0;
  while (pc < method.code.size()) {
    const Instr& ins = method.code[pc];
    ++executed_;
    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kLdcI4:
        stack.push_back(Value::from_i32(static_cast<std::int32_t>(ins.i)));
        break;
      case Op::kLdcI8:
        stack.push_back(Value::from_i64(ins.i));
        break;
      case Op::kLdcR8:
        stack.push_back(Value::from_f64(ins.f));
        break;
      case Op::kLdNull:
        stack.push_back(Value::from_ref(nullptr));
        break;
      case Op::kLdLoc:
        stack.push_back(frame.locals.at(static_cast<std::size_t>(ins.i)));
        break;
      case Op::kStLoc:
        frame.locals.at(static_cast<std::size_t>(ins.i)) = pop();
        break;
      case Op::kDup:
        if (stack.empty()) throw_managed("dup on empty stack");
        stack.push_back(stack.back());
        break;
      case Op::kPop:
        pop();
        break;

      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kRem: {
        Value b = pop();
        Value a = pop();
        if (a.kind != b.kind) throw_managed("mixed-kind arithmetic");
        auto arith = [&](auto x, auto y) -> decltype(x) {
          using T = decltype(x);
          switch (ins.op) {
            case Op::kAdd: return x + y;
            case Op::kSub: return x - y;
            case Op::kMul: return x * y;
            case Op::kDiv:
              if constexpr (std::is_integral_v<T>) {
                if (y == 0) throw_managed("DivideByZeroException");
              }
              return x / y;
            case Op::kRem:
              if constexpr (std::is_integral_v<T>) {
                if (y == 0) throw_managed("DivideByZeroException");
                return x % y;
              } else {
                return std::fmod(x, y);
              }
            default:
              throw_managed("unreachable");
          }
        };
        switch (a.kind) {
          case Value::Kind::kI32:
            stack.push_back(Value::from_i32(arith(a.i32, b.i32)));
            break;
          case Value::Kind::kI64:
            stack.push_back(Value::from_i64(arith(a.i64, b.i64)));
            break;
          case Value::Kind::kF64:
            stack.push_back(Value::from_f64(arith(a.f64, b.f64)));
            break;
          default:
            throw_managed("arithmetic on reference");
        }
        break;
      }
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr: {
        Value b = pop();
        Value a = pop();
        if (a.kind != b.kind &&
            !(ins.op == Op::kShl || ins.op == Op::kShr)) {
          throw_managed("mixed-kind bitwise op");
        }
        auto bitop = [&](auto x, auto y) -> decltype(x) {
          switch (ins.op) {
            case Op::kAnd: return x & y;
            case Op::kOr: return x | y;
            case Op::kXor: return x ^ y;
            case Op::kShl: return x << (y & (sizeof(x) * 8 - 1));
            case Op::kShr: return x >> (y & (sizeof(x) * 8 - 1));
            default: throw_managed("unreachable");
          }
        };
        if (a.kind == Value::Kind::kI32) {
          const std::int32_t shift_or_rhs =
              b.kind == Value::Kind::kI32 ? b.i32
                                          : static_cast<std::int32_t>(b.i64);
          stack.push_back(Value::from_i32(bitop(a.i32, shift_or_rhs)));
        } else if (a.kind == Value::Kind::kI64) {
          const std::int64_t shift_or_rhs =
              b.kind == Value::Kind::kI64 ? b.i64 : b.i32;
          stack.push_back(Value::from_i64(bitop(a.i64, shift_or_rhs)));
        } else {
          throw_managed("bitwise op on non-integer");
        }
        break;
      }
      case Op::kNot: {
        Value a = pop();
        if (a.kind == Value::Kind::kI32) {
          stack.push_back(Value::from_i32(~a.i32));
        } else if (a.kind == Value::Kind::kI64) {
          stack.push_back(Value::from_i64(~a.i64));
        } else {
          throw_managed("not on non-integer");
        }
        break;
      }
      case Op::kNeg: {
        Value a = pop();
        switch (a.kind) {
          case Value::Kind::kI32: stack.push_back(Value::from_i32(-a.i32)); break;
          case Value::Kind::kI64: stack.push_back(Value::from_i64(-a.i64)); break;
          case Value::Kind::kF64: stack.push_back(Value::from_f64(-a.f64)); break;
          default: throw_managed("neg on reference");
        }
        break;
      }

      case Op::kCeq:
      case Op::kCne:
      case Op::kClt:
      case Op::kCle:
      case Op::kCgt:
      case Op::kCge: {
        Value b = pop();
        Value a = pop();
        auto cmp = [&](auto x, auto y) -> bool {
          switch (ins.op) {
            case Op::kCeq: return x == y;
            case Op::kCne: return x != y;
            case Op::kClt: return x < y;
            case Op::kCle: return x <= y;
            case Op::kCgt: return x > y;
            case Op::kCge: return x >= y;
            default: throw_managed("unreachable");
          }
        };
        bool r = false;
        if (a.kind == Value::Kind::kRef || b.kind == Value::Kind::kRef) {
          if (a.kind != b.kind) throw_managed("reference compared to value");
          if (ins.op == Op::kCeq) {
            r = a.ref == b.ref;
          } else if (ins.op == Op::kCne) {
            r = a.ref != b.ref;
          } else {
            throw_managed("ordered comparison on references");
          }
        } else if (a.kind != b.kind) {
          throw_managed("mixed-kind comparison");
        } else if (a.kind == Value::Kind::kI32) {
          r = cmp(a.i32, b.i32);
        } else if (a.kind == Value::Kind::kI64) {
          r = cmp(a.i64, b.i64);
        } else {
          r = cmp(a.f64, b.f64);
        }
        stack.push_back(Value::from_i32(r ? 1 : 0));
        break;
      }

      case Op::kConvI4:
        stack.push_back(Value::from_i32([&] {
          Value v = pop();
          switch (v.kind) {
            case Value::Kind::kI32: return v.i32;
            case Value::Kind::kI64: return static_cast<std::int32_t>(v.i64);
            case Value::Kind::kF64: return static_cast<std::int32_t>(v.f64);
            default: throw_managed("conv.i4 on reference");
          }
        }()));
        break;
      case Op::kConvI8:
        stack.push_back(Value::from_i64(pop_i64()));
        break;
      case Op::kConvR8: {
        Value v = pop();
        switch (v.kind) {
          case Value::Kind::kI32: stack.push_back(Value::from_f64(v.i32)); break;
          case Value::Kind::kI64:
            stack.push_back(Value::from_f64(static_cast<double>(v.i64)));
            break;
          case Value::Kind::kF64: stack.push_back(v); break;
          default: throw_managed("conv.r8 on reference");
        }
        break;
      }

      case Op::kBr:
      case Op::kBrTrue:
      case Op::kBrFalse: {
        bool take = true;
        if (ins.op != Op::kBr) {
          const std::int64_t c = pop_i64();
          take = ins.op == Op::kBrTrue ? c != 0 : c == 0;
        }
        if (take) {
          const auto target = static_cast<std::size_t>(ins.i);
          if (target > method.code.size()) throw_managed("branch out of range");
          // Back-edge safepoint: "the jitted code periodically polls to
          // yield itself to garbage collection" (§5.2).
          if (target <= pc) thread_.poll_gc();
          pc = target;
          continue;
        }
        break;
      }

      case Op::kCall: {
        const auto callee_idx = static_cast<std::size_t>(ins.i);
        if (callee_idx >= program.methods.size()) {
          throw_managed("call target out of range");
        }
        const Method& callee = program.methods[callee_idx];
        std::vector<Value> call_args(static_cast<std::size_t>(callee.n_args));
        for (int i = callee.n_args - 1; i >= 0; --i) {
          call_args[static_cast<std::size_t>(i)] = pop();
        }
        stack.push_back(run(program, callee, call_args, depth + 1));
        break;
      }
      case Op::kCallNative: {
        const auto n_args = static_cast<std::size_t>(ins.aux);
        std::vector<Value> call_args(n_args);
        for (std::size_t i = n_args; i > 0; --i) call_args[i - 1] = pop();
        stack.push_back(vm_.fcalls().invoke(vm_, thread_,
                                            static_cast<int>(ins.i),
                                            call_args));
        break;
      }
      case Op::kRet:
        return stack.empty() ? Value::from_i32(0) : stack.back();

      case Op::kNewObj: {
        const MethodTable* mt =
            program.type_pool.at(static_cast<std::size_t>(ins.i));
        stack.push_back(Value::from_ref(vm_.heap().alloc_object(mt)));
        break;
      }
      case Op::kNewArr: {
        const MethodTable* mt =
            program.type_pool.at(static_cast<std::size_t>(ins.i));
        const std::int64_t len = pop_i64();
        if (len < 0) throw_managed("OverflowException: negative array size");
        stack.push_back(Value::from_ref(vm_.heap().alloc_array(mt, len)));
        break;
      }
      case Op::kLdFld: {
        Obj obj = pop_ref();
        if (obj == nullptr) throw_managed("NullReferenceException");
        stack.push_back(read_slot(static_cast<ElementKind>(ins.aux),
                                  obj_data(obj) + ins.i));
        break;
      }
      case Op::kStFld: {
        Value v = pop();
        Obj obj = pop_ref();
        if (obj == nullptr) throw_managed("NullReferenceException");
        write_slot(static_cast<ElementKind>(ins.aux), obj_data(obj) + ins.i, v);
        if (static_cast<ElementKind>(ins.aux) == ElementKind::kObjectRef) {
          vm_.heap().write_barrier(obj, v.ref);
        }
        break;
      }
      case Op::kLdElem: {
        const std::int64_t idx = pop_i64();
        Obj arr = pop_ref();
        if (arr == nullptr) throw_managed("NullReferenceException");
        if (idx < 0 || idx >= array_length(arr)) {
          throw_managed("IndexOutOfRangeException");
        }
        const MethodTable* mt = obj_mt(arr);
        stack.push_back(read_slot(
            mt->element_kind(),
            array_data(arr) + static_cast<std::size_t>(idx) *
                                  mt->element_bytes()));
        break;
      }
      case Op::kStElem: {
        Value v = pop();
        const std::int64_t idx = pop_i64();
        Obj arr = pop_ref();
        if (arr == nullptr) throw_managed("NullReferenceException");
        if (idx < 0 || idx >= array_length(arr)) {
          throw_managed("IndexOutOfRangeException");
        }
        const MethodTable* mt = obj_mt(arr);
        write_slot(mt->element_kind(),
                   array_data(arr) +
                       static_cast<std::size_t>(idx) * mt->element_bytes(),
                   v);
        if (mt->element_kind() == ElementKind::kObjectRef) {
          vm_.heap().write_barrier(arr, v.ref);
        }
        break;
      }
      case Op::kLdLen: {
        Obj arr = pop_ref();
        if (arr == nullptr) throw_managed("NullReferenceException");
        stack.push_back(Value::from_i64(array_length(arr)));
        break;
      }
    }
    ++pc;
  }
  return stack.empty() ? Value::from_i32(0) : stack.back();
}

}  // namespace motor::vm
