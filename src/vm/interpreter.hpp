// The execution engine: a stack-based bytecode interpreter over the
// common type system.
//
// Substitution note (DESIGN.md): the SSCLI JIT-compiles CIL; this
// reproduction interprets an equivalent stack IL instead. Everything the
// paper's mechanisms touch is preserved — GC safepoint polling on loop
// back-edges, reference values on frames as precise GC roots, allocation
// through the managed heap, and InternalCall dispatch into the FCall
// table — only native code generation is out of scope.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vm/fcall.hpp"
#include "vm/managed_thread.hpp"
#include "vm/method_table.hpp"

namespace motor::vm {

enum class Op : std::uint8_t {
  kNop,
  // constants
  kLdcI4,   // i: value
  kLdcI8,   // i: value
  kLdcR8,   // f: value
  kLdNull,
  // locals / args (locals array holds args first, then locals)
  kLdLoc,   // i: slot
  kStLoc,   // i: slot
  // stack
  kDup,
  kPop,
  // arithmetic (operands must share a kind; i32/i64/f64)
  kAdd, kSub, kMul, kDiv, kRem, kNeg,
  // comparisons (push i32 0/1)
  kCeq, kCne, kClt, kCle, kCgt, kCge,
  // bitwise / shifts (integer kinds only)
  kAnd, kOr, kXor, kNot, kShl, kShr,
  // conversions
  kConvI4, kConvI8, kConvR8,
  // control flow (i: absolute target pc); backward branches poll the GC
  kBr, kBrTrue, kBrFalse,
  // calls
  kCall,        // i: method index in the Program
  kCallNative,  // i: index in the VM FCall table (InternalCall)
  kRet,
  // objects
  kNewObj,      // i: type-pool index
  kNewArr,      // i: type-pool index (array type); pops length
  kLdFld,       // i: field offset, aux: ElementKind
  kStFld,       // i: field offset, aux: ElementKind
  kLdElem,      // pops index, array; element kind from the array type
  kStElem,      // pops value, index, array
  kLdLen,
};

struct Instr {
  Op op = Op::kNop;
  std::int64_t i = 0;
  std::int64_t aux = 0;
  double f = 0.0;
};

struct Method {
  std::string name;
  int n_args = 0;
  int n_locals = 0;  // beyond the args
  std::vector<Instr> code;
};

/// A loaded assembly: methods plus the type pool bytecode refers to.
struct Program {
  std::vector<Method> methods;
  std::vector<const MethodTable*> type_pool;

  int add_method(Method m) {
    methods.push_back(std::move(m));
    return static_cast<int>(methods.size()) - 1;
  }
  int add_type(const MethodTable* mt) {
    type_pool.push_back(mt);
    return static_cast<int>(type_pool.size()) - 1;
  }
  [[nodiscard]] int method_named(std::string_view name) const;
};

class Interpreter {
 public:
  Interpreter(Vm& vm, ManagedThread& thread) : vm_(vm), thread_(thread) {}

  /// Execute `program.methods[method_index]` with `args`. Returns the
  /// method's result (kI32 0 for void-like methods that push nothing).
  Value invoke(const Program& program, int method_index,
               std::span<const Value> args);

  [[nodiscard]] std::uint64_t instructions_executed() const noexcept {
    return executed_;
  }

 private:
  Value run(const Program& program, const Method& method,
            std::span<const Value> args, int depth);

  Vm& vm_;
  ManagedThread& thread_;
  std::uint64_t executed_ = 0;
};

}  // namespace motor::vm
