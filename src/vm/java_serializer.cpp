#include "vm/java_serializer.hpp"

#include "pal/clock.hpp"
#include "vm/serial_util.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

namespace {

constexpr std::uint32_t kMagic = 0x4A415653;  // "JAVS"

enum Token : std::uint8_t {
  kTcNull = 0,
  kTcReference = 1,
  kTcObject = 2,
  kTcArray = 3,
};
enum ClassDescToken : std::uint8_t {
  kNewClassDesc = 0,
  kClassDescRef = 1,
};

/// Per-entry cost of migrating the handle table to the large-stream
/// structure (the Figure 10 "bump"; see EXPERIMENTS.md for calibration).
constexpr std::uint64_t kHandleMigrationNsPerEntry = 400;

}  // namespace

std::int32_t JavaSerializer::lookup_handle(WriteState& ws, Obj obj) {
  if (!ws.switched) {
    for (const auto& [o, h] : ws.linear_handles) {
      if (o == obj) return h;
    }
    return -1;
  }
  auto it = ws.hashed_handles.find(obj);
  return it == ws.hashed_handles.end() ? -1 : it->second;
}

std::int32_t JavaSerializer::assign_handle(WriteState& ws, Obj obj) {
  const std::int32_t h = ws.next_handle++;
  if (!ws.switched) {
    ws.linear_handles.emplace_back(obj, h);
    if (ws.linear_handles.size() >= kHandleTableSwitch) {
      // The data-structure switch: rebuild every existing entry into the
      // large-stream table.
      for (const auto& [o, handle] : ws.linear_handles) {
        ws.hashed_handles.emplace(o, handle);
      }
      pal::spin_for_ns(kHandleMigrationNsPerEntry * ws.linear_handles.size());
      ws.linear_handles.clear();
      ws.switched = true;
    }
  } else {
    ws.hashed_handles.emplace(obj, h);
  }
  return h;
}

void JavaSerializer::write_class_desc(WriteState& ws, const MethodTable* mt,
                                      ByteBuffer& out) {
  auto it = ws.class_handles.find(mt);
  if (it != ws.class_handles.end()) {
    out.put_u8(kClassDescRef);
    out.put_i32(it->second);
    return;
  }
  const auto handle = static_cast<std::int32_t>(ws.class_handles.size());
  ws.class_handles.emplace(mt, handle);
  out.put_u8(kNewClassDesc);
  detail::write_string(out, mt->name());
  if (!mt->is_array()) {
    // Full field descriptors, as the Java stream format writes them.
    out.put_u16(static_cast<std::uint16_t>(mt->fields().size()));
    for (const FieldDesc& f : mt->fields()) {
      out.put_u8(static_cast<std::uint8_t>(f.kind()));
      detail::write_string(out, f.name());
    }
  }
}

Status JavaSerializer::write_value(WriteState& ws, Obj obj, ByteBuffer& out,
                                   int depth) {
  if (depth > kRecursionLimit) {
    return Status(ErrorCode::kStackOverflow,
                  "java serialization recursion limit");
  }
  if (obj == nullptr) {
    out.put_u8(kTcNull);
    return Status::ok();
  }
  const std::int32_t existing = lookup_handle(ws, obj);
  if (existing >= 0) {
    out.put_u8(kTcReference);
    out.put_i32(existing);
    return Status::ok();
  }
  assign_handle(ws, obj);

  const MethodTable* mt = obj_mt(obj);
  if (mt->is_array()) {
    out.put_u8(kTcArray);
    write_class_desc(ws, mt, out);
    out.put_i64(array_length(obj));
    if (mt->element_kind() == ElementKind::kObjectRef) {
      const std::int64_t n = array_length(obj);
      for (std::int64_t i = 0; i < n; ++i) {
        MOTOR_RETURN_IF_ERROR(
            write_value(ws, get_ref_element(obj, i), out, depth + 1));
      }
    } else {
      out.append_raw(array_data(obj), array_payload_bytes(obj));
    }
    return Status::ok();
  }

  out.put_u8(kTcObject);
  write_class_desc(ws, mt, out);
  for (const FieldDesc& f : mt->fields()) {
    // Tagged ("boxed") field writes, one type byte per field.
    out.put_u8(static_cast<std::uint8_t>(f.kind()));
    if (f.is_reference()) {
      MOTOR_RETURN_IF_ERROR(
          write_value(ws, get_ref_field(obj, f.offset()), out, depth + 1));
    } else {
      out.append_raw(obj_data(obj) + f.offset(), f.size());
    }
  }
  return Status::ok();
}

Status JavaSerializer::serialize(Obj root, ByteBuffer& out) {
  pal::Stopwatch sw;
  WriteState ws;
  out.put_u32(kMagic);
  MOTOR_RETURN_IF_ERROR(write_value(ws, root, out, 0));

  const double factor = vm_.profile().serializer_cost_factor;
  if (factor > 1.0) {
    pal::spin_for_ns(
        static_cast<std::uint64_t>((factor - 1.0) * sw.elapsed_ns()));
  }
  return Status::ok();
}

Status JavaSerializer::read_class_desc(ReadState& rs, ByteBuffer& in,
                                       const MethodTable** out) {
  std::uint8_t tok = 0;
  MOTOR_RETURN_IF_ERROR(in.get(tok));
  if (tok == kClassDescRef) {
    std::int32_t handle = 0;
    MOTOR_RETURN_IF_ERROR(in.get(handle));
    if (handle < 0 || handle >= static_cast<std::int32_t>(rs.classes.size())) {
      return Status(ErrorCode::kSerialization, "bad class handle");
    }
    *out = rs.classes[static_cast<std::size_t>(handle)];
    return Status::ok();
  }
  if (tok != kNewClassDesc) {
    return Status(ErrorCode::kSerialization, "bad class-desc token");
  }
  std::string name;
  MOTOR_RETURN_IF_ERROR(detail::read_string(in, name));
  const MethodTable* mt = vm_.types().find(name);
  if (mt == nullptr) {
    return Status(ErrorCode::kSerialization, "unknown type " + name);
  }
  if (!mt->is_array()) {
    std::uint16_t n_fields = 0;
    MOTOR_RETURN_IF_ERROR(in.get(n_fields));
    for (std::uint16_t i = 0; i < n_fields; ++i) {
      std::uint8_t kind = 0;
      MOTOR_RETURN_IF_ERROR(in.get(kind));
      std::string field_name;
      MOTOR_RETURN_IF_ERROR(detail::read_string(in, field_name));
    }
  }
  rs.classes.push_back(mt);
  *out = mt;
  return Status::ok();
}

Status JavaSerializer::read_value(ReadState& rs, ByteBuffer& in, int depth,
                                  Obj* out) {
  if (depth > kRecursionLimit) {
    return Status(ErrorCode::kStackOverflow,
                  "java deserialization recursion limit");
  }
  std::uint8_t tok = 0;
  MOTOR_RETURN_IF_ERROR(in.get(tok));
  switch (tok) {
    case kTcNull:
      *out = nullptr;
      return Status::ok();
    case kTcReference: {
      std::int32_t handle = 0;
      MOTOR_RETURN_IF_ERROR(in.get(handle));
      if (handle < 0 ||
          static_cast<std::size_t>(handle) >= rs.table->size()) {
        return Status(ErrorCode::kSerialization, "bad object handle");
      }
      *out = rs.table->at(static_cast<std::size_t>(handle));
      return Status::ok();
    }
    case kTcArray: {
      const MethodTable* mt = nullptr;
      MOTOR_RETURN_IF_ERROR(read_class_desc(rs, in, &mt));
      std::int64_t length = 0;
      MOTOR_RETURN_IF_ERROR(in.get(length));
      if (!mt->is_array() || length < 0) {
        return Status(ErrorCode::kSerialization, "bad array record");
      }
      // At least one wire byte per element must remain: rejects damaged
      // lengths before they drive a giant allocation.
      const std::size_t min_wire =
          mt->element_kind() == ElementKind::kObjectRef
              ? static_cast<std::size_t>(length)
              : static_cast<std::size_t>(length) * mt->element_bytes();
      if (min_wire > in.remaining()) {
        return Status(ErrorCode::kSerialization,
                      "announced array exceeds stream");
      }
      Obj arr = vm_.heap().alloc_array(mt, length);
      rs.table->add(arr);  // handle assigned before elements (cycle-safe)
      if (mt->element_kind() == ElementKind::kObjectRef) {
        for (std::int64_t i = 0; i < length; ++i) {
          Obj elem = nullptr;
          MOTOR_RETURN_IF_ERROR(read_value(rs, in, depth + 1, &elem));
          vm_.heap().store_ref_element(arr, i, elem);
        }
      } else {
        MOTOR_RETURN_IF_ERROR(
            in.read({array_data(arr), array_payload_bytes(arr)}));
      }
      *out = arr;
      return Status::ok();
    }
    case kTcObject: {
      const MethodTable* mt = nullptr;
      MOTOR_RETURN_IF_ERROR(read_class_desc(rs, in, &mt));
      if (mt->is_array()) {
        return Status(ErrorCode::kSerialization, "array in object record");
      }
      Obj obj = vm_.heap().alloc_object(mt);
      rs.table->add(obj);
      for (const FieldDesc& f : mt->fields()) {
        std::uint8_t kind = 0;
        MOTOR_RETURN_IF_ERROR(in.get(kind));
        if (static_cast<ElementKind>(kind) != f.kind()) {
          return Status(ErrorCode::kSerialization, "field kind mismatch");
        }
        if (f.is_reference()) {
          Obj field_val = nullptr;
          MOTOR_RETURN_IF_ERROR(read_value(rs, in, depth + 1, &field_val));
          vm_.heap().store_ref_field(obj, f.offset(), field_val);
        } else {
          MOTOR_RETURN_IF_ERROR(
              in.read({obj_data(obj) + f.offset(), f.size()}));
        }
      }
      *out = obj;
      return Status::ok();
    }
    default:
      return Status(ErrorCode::kSerialization, "bad token");
  }
}

Status JavaSerializer::deserialize(ByteBuffer& in, ManagedThread& thread,
                                   Obj* out) {
  pal::Stopwatch sw;
  std::uint32_t magic = 0;
  MOTOR_RETURN_IF_ERROR(in.get(magic));
  if (magic != kMagic) {
    return Status(ErrorCode::kSerialization, "bad java serializer magic");
  }
  RootRange table(thread);
  ReadState rs;
  rs.table = &table;
  MOTOR_RETURN_IF_ERROR(read_value(rs, in, 0, out));

  const double factor = vm_.profile().serializer_cost_factor;
  if (factor > 1.0) {
    pal::spin_for_ns(
        static_cast<std::uint64_t>((factor - 1.0) * sw.elapsed_ns()));
  }
  return Status::ok();
}

}  // namespace motor::vm
