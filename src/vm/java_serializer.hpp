// A java.io.ObjectOutputStream-faithful serializer for the mpiJava
// baseline (paper §8, Figure 10).
//
// Deliberately reproduces the Java mechanism's behavioural signature:
//   * depth-first RECURSIVE graph walk — deep linked structures exhaust
//     the stack; serialization fails with kStackOverflow past ~1200 frames
//     ("mpiJava results stop at 1024 objects because longer linked lists
//     caused a stack overflow exception", Figure 10 caption);
//   * class descriptors written once per class, then back-referenced by
//     handle; objects back-referenced by handle on revisits;
//   * per-field type-tagged ("boxed") writes;
//   * a handle table that switches data structures at 512 entries — the
//     paper observes a "consistent bump" in mpiJava's curve mid-range and
//     conjectures Java "employs different serialization algorithms or data
//     structures to serialize small or large numbers of objects"; the
//     switch-over cost reproduces that bump (calibration in
//     EXPERIMENTS.md).
#pragma once

#include <unordered_map>

#include "common/buffer.hpp"
#include "vm/handles.hpp"
#include "vm/object.hpp"

namespace motor::vm {

class Vm;

class JavaSerializer {
 public:
  explicit JavaSerializer(Vm& vm) : vm_(vm) {}

  /// Recursion budget before the simulated Java stack overflows.
  /// Calibrated so a 512-element list (1024 transported objects, depth
  /// ~514) serializes and a 1024-element list (2048 objects) does not —
  /// the exact failure point Figure 10 reports for mpiJava.
  static constexpr int kRecursionLimit = 700;
  /// Handle-table entries at which the implementation switches from the
  /// small-stream structure to the large-stream structure.
  static constexpr std::size_t kHandleTableSwitch = 512;

  Status serialize(Obj root, ByteBuffer& out);
  Status deserialize(ByteBuffer& in, ManagedThread& thread, Obj* out);

 private:
  // Serialization state (reset per call).
  struct WriteState {
    std::vector<std::pair<Obj, std::int32_t>> linear_handles;
    std::unordered_map<Obj, std::int32_t> hashed_handles;
    bool switched = false;
    std::unordered_map<const MethodTable*, std::int32_t> class_handles;
    std::int32_t next_handle = 0;
  };

  std::int32_t lookup_handle(WriteState& ws, Obj obj);
  std::int32_t assign_handle(WriteState& ws, Obj obj);
  void write_class_desc(WriteState& ws, const MethodTable* mt,
                        ByteBuffer& out);
  Status write_value(WriteState& ws, Obj obj, ByteBuffer& out, int depth);

  struct ReadState {
    RootRange* table = nullptr;
    std::vector<const MethodTable*> classes;
  };
  Status read_value(ReadState& rs, ByteBuffer& in, int depth, Obj* out);
  Status read_class_desc(ReadState& rs, ByteBuffer& in,
                         const MethodTable** out);

  Vm& vm_;
};

}  // namespace motor::vm
