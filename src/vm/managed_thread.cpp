#include "vm/managed_thread.hpp"

// ManagedThread's methods live in vm.cpp (they need the full Vm type);
// this TU anchors the header for the library target.
namespace motor::vm {}
