// ManagedThread: per-thread runtime state — GC-protected native slots
// (the FCall GCPROTECT discipline, paper §5.1), interpreter frames, and
// safepoint registration.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "vm/object.hpp"

namespace motor::vm {

class Vm;

/// A tagged interpreter value. Reference values are GC roots while they
/// live on a frame's locals or operand stack.
struct Value {
  enum class Kind : std::uint8_t { kI32, kI64, kF64, kRef };
  Kind kind = Kind::kI32;
  union {
    std::int32_t i32;
    std::int64_t i64;
    double f64;
    Obj ref;
  };

  Value() : i32(0) {}
  static Value from_i32(std::int32_t v) {
    Value x;
    x.kind = Kind::kI32;
    x.i32 = v;
    return x;
  }
  static Value from_i64(std::int64_t v) {
    Value x;
    x.kind = Kind::kI64;
    x.i64 = v;
    return x;
  }
  static Value from_f64(double v) {
    Value x;
    x.kind = Kind::kF64;
    x.f64 = v;
    return x;
  }
  static Value from_ref(Obj v) {
    Value x;
    x.kind = Kind::kRef;
    x.ref = v;
    return x;
  }
  [[nodiscard]] bool is_ref() const noexcept { return kind == Kind::kRef; }
};

/// One interpreter activation record.
struct Frame {
  std::vector<Value> locals;
  std::vector<Value> stack;
};

class ManagedThread {
 public:
  /// Registers with the VM's safepoint controller and root enumeration.
  explicit ManagedThread(Vm& vm);
  ~ManagedThread();

  ManagedThread(const ManagedThread&) = delete;
  ManagedThread& operator=(const ManagedThread&) = delete;

  [[nodiscard]] Vm& vm() noexcept { return vm_; }

  /// GC yield point (jitted-code poll / FCall poll / polling-wait poll).
  void poll_gc();

  // ---- native root slots (GCPROTECT) ----
  void push_root(Obj* slot) { root_slots_.push_back(slot); }
  void pop_root(Obj* slot);
  [[nodiscard]] const std::vector<Obj*>& root_slots() const noexcept {
    return root_slots_;
  }

  // ---- bulk root ranges (deserializers' growing object tables) ----
  void push_root_range(std::deque<Obj>* range) {
    root_ranges_.push_back(range);
  }
  void pop_root_range(std::deque<Obj>* range);
  [[nodiscard]] const std::vector<std::deque<Obj>*>& root_ranges()
      const noexcept {
    return root_ranges_;
  }

  // ---- interpreter frames ----
  // A deque: activation records must keep stable addresses while nested
  // invocations push new frames.
  std::deque<Frame>& frames() noexcept { return frames_; }
  [[nodiscard]] const std::deque<Frame>& frames() const noexcept {
    return frames_;
  }

 private:
  Vm& vm_;
  std::vector<Obj*> root_slots_;
  std::vector<std::deque<Obj>*> root_ranges_;
  std::deque<Frame> frames_;
};

}  // namespace motor::vm
