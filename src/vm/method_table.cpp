#include "vm/method_table.hpp"

#include "common/status.hpp"

namespace motor::vm {

MethodTable::MethodTable(std::string name, std::uint32_t type_id,
                         std::vector<FieldDesc> fields,
                         std::uint32_t instance_bytes,
                         bool transportable_class)
    : name_(std::move(name)),
      type_id_(type_id),
      fields_(std::move(fields)),
      instance_bytes_(instance_bytes),
      transportable_class_(transportable_class) {
  bool gapless = true;
  const FieldDesc* prev = nullptr;
  for (const FieldDesc& f : fields_) {
    MOTOR_CHECK(f.offset() + f.size() <= instance_bytes_,
                "field overruns instance data");
    if (f.is_reference()) ref_offsets_.push_back(f.offset());
    wire_bytes_ += static_cast<std::uint32_t>(f.wire_bytes());
    if (prev != nullptr && !f.follows_contiguously(*prev)) gapless = false;
    prev = &f;
  }
  all_primitive_ = ref_offsets_.empty();
  packed_layout_ = all_primitive_ && gapless;
}

MethodTable::MethodTable(std::string name, std::uint32_t type_id,
                         ElementKind element, int rank)
    : name_(std::move(name)),
      type_id_(type_id),
      is_array_(true),
      rank_(rank),
      element_(element) {
  MOTOR_CHECK(rank >= 1, "array rank must be positive");
  MOTOR_CHECK(element != ElementKind::kObjectRef,
              "use the reference-array constructor for object arrays");
}

MethodTable::MethodTable(std::string name, std::uint32_t type_id,
                         const MethodTable* element_type, int rank)
    : name_(std::move(name)),
      type_id_(type_id),
      is_array_(true),
      rank_(rank),
      element_(ElementKind::kObjectRef),
      element_type_(element_type) {
  MOTOR_CHECK(rank >= 1, "array rank must be positive");
  MOTOR_CHECK(element_type != nullptr, "object array needs an element type");
}

const FieldDesc* MethodTable::field_named(std::string_view name) const {
  for (const FieldDesc& f : fields_) {
    if (f.name() == name) return &f;
  }
  return nullptr;
}

}  // namespace motor::vm
