// MethodTable: the runtime type record every object header points at
// (paper §5.3). Holds instance layout, the FieldDesc array (with Motor's
// Transportable bits), array shape for array types, and the cached
// reference-field offsets the GC scans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/field_desc.hpp"

namespace motor::vm {

class MethodTable {
 public:
  /// Class (non-array) type. Field offsets must already be assigned.
  MethodTable(std::string name, std::uint32_t type_id,
              std::vector<FieldDesc> fields, std::uint32_t instance_bytes,
              bool transportable_class);

  /// Array type of primitive elements, rank >= 1 (rank > 1 = true
  /// multidimensional array, the CLI feature the paper highlights §3).
  MethodTable(std::string name, std::uint32_t type_id, ElementKind element,
              int rank);

  /// Array type of object references.
  MethodTable(std::string name, std::uint32_t type_id,
              const MethodTable* element_type, int rank);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t type_id() const noexcept { return type_id_; }

  // ---- class types ----
  [[nodiscard]] const std::vector<FieldDesc>& fields() const noexcept {
    return fields_;
  }
  [[nodiscard]] const FieldDesc* field_named(std::string_view name) const;
  /// Instance-data size in bytes (excludes the object header; for arrays
  /// this is the fixed part — bounds — only).
  [[nodiscard]] std::uint32_t instance_bytes() const noexcept {
    return instance_bytes_;
  }
  /// Offsets (within instance data) of every reference field; what the GC
  /// traces and what Motor's integrity check tests for emptiness.
  [[nodiscard]] const std::vector<std::uint32_t>& reference_offsets()
      const noexcept {
    return ref_offsets_;
  }
  [[nodiscard]] bool has_references() const noexcept {
    return !ref_offsets_.empty() ||
           (is_array_ && element_ == ElementKind::kObjectRef);
  }
  /// Class-level [Transportable] marker (types must opt in before their
  /// fields' Transportable bits are honoured).
  [[nodiscard]] bool is_transportable_class() const noexcept {
    return transportable_class_;
  }
  /// Bytes one instance record of this class occupies in the Motor wire
  /// format (references as 4-byte indices). Computed once at type-load
  /// time; serializers must use this instead of re-walking the FieldDescs
  /// per object. Zero for array types (their records are shape-dependent).
  [[nodiscard]] std::uint32_t wire_bytes() const noexcept {
    return wire_bytes_;
  }
  /// Layout query for the serializer's bulk fast path: class type whose
  /// fields are all primitive (no reference slots).
  [[nodiscard]] bool is_all_primitive() const noexcept {
    return all_primitive_;
  }
  /// Packed-layout query: class type whose primitive fields sit back to
  /// back with no alignment gaps between consecutive fields (reference
  /// fields break packing for wire purposes, so this is only true when
  /// the type is also all-primitive).
  [[nodiscard]] bool has_packed_layout() const noexcept {
    return packed_layout_;
  }

  // ---- array types ----
  [[nodiscard]] bool is_array() const noexcept { return is_array_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] ElementKind element_kind() const noexcept { return element_; }
  [[nodiscard]] const MethodTable* element_type() const noexcept {
    return element_type_;
  }
  [[nodiscard]] std::size_t element_bytes() const noexcept {
    return element_size(element_);
  }

  // ---- statics ----
  /// Static field storage is per-type; the GC treats reference statics as
  /// roots. Simplified: a single vector of reference slots.
  std::vector<void*>& static_ref_slots() noexcept { return static_refs_; }
  [[nodiscard]] const std::vector<void*>& static_ref_slots() const noexcept {
    return static_refs_;
  }

 private:
  std::string name_;
  std::uint32_t type_id_ = 0;
  std::vector<FieldDesc> fields_;
  std::vector<std::uint32_t> ref_offsets_;
  std::uint32_t instance_bytes_ = 0;
  std::uint32_t wire_bytes_ = 0;
  bool transportable_class_ = false;
  bool all_primitive_ = false;
  bool packed_layout_ = false;

  bool is_array_ = false;
  int rank_ = 0;
  ElementKind element_ = ElementKind::kUInt8;
  const MethodTable* element_type_ = nullptr;

  std::vector<void*> static_refs_;
};

}  // namespace motor::vm
