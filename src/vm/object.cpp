#include "vm/object.hpp"

// Object accessors are header-only; this TU anchors the library target.
namespace motor::vm {}
